(** Simulated durable storage (paper §4: "disk behavior (e.g. the corruption
    of unsynchronized writes when machines reboot)").

    A disk holds named files, each an append-only sequence of records. A
    record becomes durable only after {!sync}; when the owning process
    crashes, unsynced records are lost — or, under buggification, a random
    subset of them survives, modelling out-of-order page writes. Consumers
    that need ordering (write-ahead logs) must therefore embed sequence
    numbers and keep only a contiguous durable prefix, which is exactly what
    {!Fdb_kv.Persistent_store} and the LogServer do.

    Operations are serviced FCFS with seek + bandwidth service times, so a
    disk saturates realistically (LogServers are the write bottleneck in
    the paper's Figure 8a). *)

type t

val create :
  ?seek:float ->
  ?bytes_per_sec:float ->
  ?sync_latency:float ->
  name:string ->
  unit ->
  t
(** A fresh SSD-like disk: default 80 µs seek, 500 MB/s, 300 µs sync. *)

val attach : t -> Process.t -> unit
(** Arrange for the disk to drop (or corrupt, under buggify) unsynced
    writes when the process dies or reboots. Attach to every process that
    writes to the disk. *)

val append : t -> string -> string -> unit Future.t
(** [append d file record] — buffered write of one record (visible to reads
    immediately, durable only after {!sync}). *)

val sync : t -> string -> unit Future.t
(** Make all buffered records of the file durable. *)

val read_all : t -> string -> string list Future.t
(** All currently visible records of the file, in append order ([[]] if the
    file does not exist). *)

val write_file : t -> string -> string -> unit Future.t
(** Atomically replace the file's contents with a single record (truncate +
    append; still requires {!sync} for durability). *)

val read_file : t -> string -> string option Future.t
(** The last record of the file, if any. *)

val delete : t -> string -> unit Future.t
val crash : t -> unit
(** Drop unsynced data now (normally invoked via {!attach}'s hook). *)

val bytes_written : t -> float
(** Total bytes appended (diagnostics / utilization). *)

val drop_prefix : t -> string -> int -> unit
(** [drop_prefix d file n] discards the oldest [n] records of the file
    (log-rotation support: callers drop records they have proven dead).
    Durability accounting shifts accordingly; no I/O is modelled. *)
