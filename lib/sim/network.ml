module Rng = Fdb_util.Det_rng

type endpoint = int

type 'm handler = { h_proc : Process.t; h_inc : int; h_fn : 'm -> 'm Future.t }

type 'm t = {
  rng : Rng.t;
  dc_latency : (string * string, float) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t;
  isolated : (int, unit) Hashtbl.t;
  clogged : (int, float) Hashtbl.t;
  handlers : (endpoint, 'm handler) Hashtbl.t;
  pending : (int, 'm Future.promise) Hashtbl.t;
  mutable loss_prob : float;
  mutable next_endpoint : int;
  mutable next_rpc : int;
  mutable sent : int;
}

let bytes_per_sec = 1.25e9 (* 10 GbE *)

let create ?(loss_prob = 0.0) ?seed_rng () =
  let rng = match seed_rng with Some r -> r | None -> Engine.fork_rng () in
  {
    rng;
    dc_latency = Hashtbl.create 8;
    partitions = Hashtbl.create 8;
    isolated = Hashtbl.create 8;
    clogged = Hashtbl.create 8;
    handlers = Hashtbl.create 64;
    pending = Hashtbl.create 64;
    loss_prob;
    next_endpoint = 0;
    next_rpc = 0;
    sent = 0;
  }

let set_dc_latency t a b l =
  Hashtbl.replace t.dc_latency (a, b) l;
  Hashtbl.replace t.dc_latency (b, a) l

let partition t ~from ~to_ = Hashtbl.replace t.partitions (from, to_) ()
let heal t ~from ~to_ = Hashtbl.remove t.partitions (from, to_)
let isolate_machine t m = Hashtbl.replace t.isolated m ()
let unisolate_machine t m = Hashtbl.remove t.isolated m
let clog_machine t m until = Hashtbl.replace t.clogged m until
let set_loss_prob t p = t.loss_prob <- p

let fresh_endpoint t =
  t.next_endpoint <- t.next_endpoint + 1;
  t.next_endpoint

let register t ep proc fn =
  Hashtbl.replace t.handlers ep
    { h_proc = proc; h_inc = proc.Process.incarnation; h_fn = fn }

let unregister t ep = Hashtbl.remove t.handlers ep

let messages_sent t = t.sent

let base_latency t (src : Process.machine) (dst : Process.machine) =
  if src.Process.machine_id = dst.Process.machine_id then 5e-5
  else if src.Process.dc = dst.Process.dc then 1.5e-4
  else
    match Hashtbl.find_opt t.dc_latency (src.Process.dc, dst.Process.dc) with
    | Some l -> l
    | None -> 0.03

let clog_delay t machine_id =
  match Hashtbl.find_opt t.clogged machine_id with
  | Some until ->
      let d = until -. Engine.now () in
      if d > 0.0 then d else 0.0
  | None -> 0.0

let blocked t src_m dst_m =
  Hashtbl.mem t.partitions (src_m, dst_m)
  || Hashtbl.mem t.isolated src_m
  || Hashtbl.mem t.isolated dst_m

(* Compute delivery delay; None if the message is dropped. *)
let route t ~(src : Process.machine) ~(dst : Process.machine) ~bytes =
  t.sent <- t.sent + 1;
  if blocked t src.Process.machine_id dst.Process.machine_id then None
  else if Rng.chance t.rng t.loss_prob then None
  else begin
    let base = base_latency t src dst in
    let jitter = Rng.exponential t.rng (base /. 4.0) in
    let transmit = float_of_int bytes /. bytes_per_sec in
    let clog =
      clog_delay t src.Process.machine_id +. clog_delay t dst.Process.machine_id
    in
    Some (base +. jitter +. transmit +. clog)
  end

type 'm wire = Request of { rpc_id : int; reply_to : Process.t; payload : 'm }

(* Deliver a request to [ep]'s handler; route the response back. *)
let deliver t ep (Request { rpc_id; reply_to; payload }) =
  match Hashtbl.find_opt t.handlers ep with
  | None -> () (* no such endpoint (yet / anymore): caller times out *)
  | Some h ->
      if not (Process.is_live h.h_proc h.h_inc) then ()
      else
        Engine.with_process h.h_proc (fun () ->
            match h.h_fn payload with
            | exception exn ->
                Trace.emit "rpc_handler_error"
                  [ ("exn", Printexc.to_string exn); ("endpoint", string_of_int ep) ]
            | resp_fut ->
                Future.on_resolve resp_fut (function
                  | Error exn ->
                      Trace.emit "rpc_handler_error"
                        [ ("exn", Printexc.to_string exn); ("endpoint", string_of_int ep) ]
                  | Ok resp -> (
                      if rpc_id = 0 then () (* one-way *)
                      else
                        match
                          route t ~src:h.h_proc.Process.machine
                            ~dst:reply_to.Process.machine ~bytes:0
                        with
                        | None -> ()
                        | Some delay ->
                            Engine.schedule ~after:delay ~process:reply_to (fun () ->
                                match Hashtbl.find_opt t.pending rpc_id with
                                | None -> () (* already timed out *)
                                | Some promise ->
                                    Hashtbl.remove t.pending rpc_id;
                                    (* A false here is a reply the caller will
                                       never see: surface it, don't drop it. *)
                                    if not (Future.try_fulfill promise resp) then
                                      Trace.emit "rpc_reply_lost"
                                        [ ("rpc_id", string_of_int rpc_id) ]))))

let post t ?(bytes = 0) ~(from : Process.t) ep ~rpc_id payload =
  match Hashtbl.find_opt t.handlers ep with
  | None -> ()
  | Some h -> (
      match route t ~src:from.Process.machine ~dst:h.h_proc.Process.machine ~bytes with
      | None -> ()
      | Some delay ->
          let msg = Request { rpc_id; reply_to = from; payload } in
          Engine.schedule ~after:delay ~process:h.h_proc (fun () -> deliver t ep msg))

let call t ?(timeout = 5.0) ?bytes ~from ep payload =
  t.next_rpc <- t.next_rpc + 1;
  let rpc_id = t.next_rpc in
  let fut, promise = Future.make () in
  Hashtbl.replace t.pending rpc_id promise;
  post t ?bytes ~from ep ~rpc_id payload;
  Engine.schedule ~after:timeout (fun () ->
      if Hashtbl.mem t.pending rpc_id then begin
        Hashtbl.remove t.pending rpc_id;
        (* The promise was still registered, so a false break means the
           caller got neither reply nor timeout — a lost wakeup. *)
        if not (Future.try_break promise Engine.Timed_out) then
          Trace.emit "rpc_timeout_lost" [ ("rpc_id", string_of_int rpc_id) ]
      end);
  fut

let send t ?bytes ~from ep payload = post t ?bytes ~from ep ~rpc_id:0 payload
