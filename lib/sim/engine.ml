exception Deadlock
exception Timed_out
exception Killed

module Rng = Fdb_util.Det_rng

type task = {
  t_time : float;
  t_seq : int;
  t_owner : (Process.t * int) option; (* process, incarnation at schedule time *)
  t_run : unit -> unit;
}

(* Binary min-heap on (time, seq). seq breaks ties FIFO, which is what makes
   the whole simulation deterministic. *)
module Heap = struct
  type t = { mutable arr : task array; mutable len : int }

  let dummy =
    { t_time = 0.0; t_seq = 0; t_owner = None; t_run = (fun () -> ()) }

  let create () = { arr = Array.make 1024 dummy; len = 0 }

  let less a b = a.t_time < b.t_time || (a.t_time = b.t_time && a.t_seq < b.t_seq)

  let push h x =
    if h.len = Array.length h.arr then begin
      let arr' = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 arr' 0 h.len;
      h.arr <- arr'
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- x;
    (* sift up *)
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

type engine = {
  heap : Heap.t;
  mutable clock : float;
  mutable seq : int;
  root_rng : Rng.t;
  mutable proc_ctx : Process.t option;
  mutable buggify : bool;
  mutable csum : int64; (* running FNV-1a over executed events *)
}

let current : engine option ref = ref None

(* ---- trace checksum (paper §4's nondeterminism backstop) ----
   Every executed event — each dispatched task's (time, pid, seq) and each
   Trace event kind — is folded into a running FNV-1a64. Two runs of the
   same seed must produce the same final checksum; any wall-clock read,
   unseeded RNG draw, or unordered iteration shows up as a divergence. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv1a_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv1a_byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let fnv1a_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv1a_byte !h (Char.code c)) s;
  !h

let last_checksum = ref 0L
let last_lifecycle = ref Future.Lifecycle.empty

let get () =
  match !current with
  | Some e -> e
  | None -> failwith "Engine: no simulation running"

let is_running () = Option.is_some !current
let now () = (get ()).clock
let trace_checksum () = (get ()).csum
let last_run_checksum () = !last_checksum
let last_run_lifecycle () = !last_lifecycle
let buggify_enabled () = match !current with Some e -> e.buggify | None -> false
let pending_tasks () = (get ()).heap.Heap.len

let schedule ?(after = 0.0) ?process f =
  let e = get () in
  let owner =
    match process with
    | Some p -> Some (p, p.Process.incarnation)
    | None -> (
        match e.proc_ctx with
        | Some p -> Some (p, p.Process.incarnation)
        | None -> None)
  in
  e.seq <- e.seq + 1;
  let after = if after < 0.0 then 0.0 else after in
  Heap.push e.heap
    { t_time = e.clock +. after; t_seq = e.seq; t_owner = owner; t_run = f }

let with_process p f =
  let e = get () in
  let saved = e.proc_ctx in
  e.proc_ctx <- Some p;
  Fun.protect ~finally:(fun () -> e.proc_ctx <- saved) f

let current_process () = (get ()).proc_ctx

let sleep dt =
  let fut, promise = Future.make () in
  schedule ~after:dt (fun () -> Future.fulfill promise ());
  fut

let sleep_until t =
  let dt = t -. now () in
  sleep (if dt < 0.0 then 0.0 else dt)

let yield () = sleep 0.0

let spawn ?process name f =
  let start () =
    match f () with
    | fut ->
        Future.on_resolve fut (function
          | Ok () -> ()
          | Error e -> Trace.emit "actor_error" [ ("actor", name); ("exn", Printexc.to_string e) ])
    | exception e ->
        Trace.emit "actor_error" [ ("actor", name); ("exn", Printexc.to_string e) ]
  in
  match process with
  | Some p -> schedule ~process:p (fun () -> with_process p start)
  | None -> schedule start

let timeout dt fut =
  if Future.is_resolved fut then fut
  else begin
    let out, p = Future.make () in
    Future.on_resolve fut (fun r ->
        (* false = the timeout fired first; the result is intentionally dropped. *)
        ignore
          ((match r with
           | Ok v -> Future.try_fulfill p v
           | Error e -> Future.try_break p e)
           : bool));
    (* false = the underlying future won the race; not a lost wakeup. *)
    schedule ~after:dt (fun () -> ignore (Future.try_break p Timed_out : bool));
    out
  end

let fork_rng () = Rng.split (get ()).root_rng
let random_float b = Rng.float (get ()).root_rng b
let random_int b = Rng.int (get ()).root_rng b
let chance p = Rng.chance (get ()).root_rng p

let cpu p dt =
  let e = get () in
  let open Process in
  let start = if p.cpu_busy_until > e.clock then p.cpu_busy_until else e.clock in
  let finish = start +. dt in
  p.cpu_busy_until <- finish;
  p.cpu_used <- p.cpu_used +. dt;
  let fut, promise = Future.make () in
  schedule ~after:(finish -. e.clock) ~process:p (fun () -> Future.fulfill promise ());
  fut

let kill p =
  Trace.emit "kill" [ ("process", p.Process.name); ("pid", string_of_int p.Process.pid) ];
  Process.mark_dead p

let reboot p ?(delay = 0.5) () =
  if p.Process.alive then Process.mark_dead p;
  (* The reboot task must not be owned by the (dead) process itself. *)
  schedule ~after:delay (fun () ->
      if not p.Process.alive then begin
        Process.mark_rebooted p;
        Trace.emit "reboot"
          [ ("process", p.Process.name); ("pid", string_of_int p.Process.pid) ];
        with_process p (fun () -> p.Process.boot ())
      end)

let run ?(seed = 1L) ?(max_time = 1e7) ?(buggify = false) f =
  (match !current with
  | Some _ -> failwith "Engine.run: simulation already running"
  | None -> ());
  let e =
    {
      heap = Heap.create ();
      clock = 0.0;
      seq = 0;
      root_rng = Rng.create seed;
      proc_ctx = None;
      buggify;
      csum = fnv1a_int64 fnv_offset seed;
    }
  in
  current := Some e;
  Process.reset_pids ();
  Trace.reset ();
  Trace.set_clock (fun () -> e.clock);
  Trace.set_observer (fun kind -> e.csum <- fnv1a_string e.csum kind);
  Buggify.configure ~enabled:buggify ~rng:(Rng.split e.root_rng);
  (* Promise-lifecycle sanitizer: labeled promises are registered against
     the process that created them; the report at [finish] convicts the
     ones still pending with waiters on live processes (leaked wakeups).
     Pure bookkeeping — the trace checksum is unaffected. *)
  Future.Lifecycle.enable ~owner:(fun () ->
      match e.proc_ctx with
      | Some p -> Some (p, p.Process.incarnation)
      | None -> None);
  let finish () =
    Buggify.reset ();
    Trace.clear_observer ();
    last_checksum := e.csum;
    last_lifecycle := Future.Lifecycle.snapshot ();
    Future.Lifecycle.disable ();
    current := None
  in
  match
    let root = f () in
    let result = ref None in
    Future.on_resolve root (fun r -> result := Some r);
    let rec loop () =
      match !result with
      | Some r -> r
      | None -> (
          match Heap.pop e.heap with
          | None -> raise Deadlock
          | Some task ->
              if task.t_time > max_time then
                failwith
                  (Printf.sprintf "Engine.run: exceeded max_time %.0fs" max_time);
              if task.t_time > e.clock then e.clock <- task.t_time;
              let live =
                match task.t_owner with
                | None -> true
                | Some (p, inc) -> Process.is_live p inc
              in
              if live then begin
                let pid =
                  match task.t_owner with Some (p, _) -> p.Process.pid | None -> -1
                in
                e.csum <-
                  fnv1a_int64
                    (fnv1a_int64
                       (fnv1a_int64 e.csum (Int64.bits_of_float task.t_time))
                       (Int64.of_int pid))
                    (Int64.of_int task.t_seq);
                let saved = e.proc_ctx in
                e.proc_ctx <- (match task.t_owner with Some (p, _) -> Some p | None -> None);
                (try task.t_run ()
                 with exn ->
                   e.proc_ctx <- saved;
                   raise exn);
                e.proc_ctx <- saved
              end;
              loop ())
    in
    loop ()
  with
  | Ok v ->
      finish ();
      v
  | Error exn ->
      finish ();
      raise exn
  | exception exn ->
      finish ();
      raise exn
