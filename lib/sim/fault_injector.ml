module Rng = Fdb_util.Det_rng
open Future.Syntax

type config = {
  duration : float;
  kill_mean_interval : float;
  reboot_min : float;
  reboot_max : float;
  rack_kill_prob : float;
  dc_kill_prob : float;
  partition_mean_interval : float;
  partition_duration : float;
  clog_mean_interval : float;
  clog_duration : float;
}

let default =
  {
    duration = 120.0;
    kill_mean_interval = 15.0;
    reboot_min = 0.5;
    reboot_max = 10.0;
    rack_kill_prob = 0.15;
    dc_kill_prob = 0.02;
    partition_mean_interval = 20.0;
    partition_duration = 5.0;
    clog_mean_interval = 10.0;
    clog_duration = 2.0;
  }

let calm =
  {
    duration = 0.0;
    kill_mean_interval = 0.0;
    reboot_min = 0.0;
    reboot_max = 0.0;
    rack_kill_prob = 0.0;
    dc_kill_prob = 0.0;
    partition_mean_interval = 0.0;
    partition_duration = 0.0;
    clog_mean_interval = 0.0;
    clog_duration = 0.0;
  }

let kill_machine (m : Process.machine) =
  Trace.emit "fault_kill_machine" [ ("machine", string_of_int m.Process.machine_id) ];
  List.iter Engine.kill m.Process.machine_processes

let reboot_machine ?(delay = 0.5) (m : Process.machine) =
  Trace.emit "fault_reboot_machine"
    [ ("machine", string_of_int m.Process.machine_id); ("delay", string_of_float delay) ];
  List.iter (fun p -> Engine.reboot p ~delay ()) m.Process.machine_processes

let targets machines protect =
  Array.to_list machines |> List.filter (fun m -> not (protect m))

let kill_loop rng machines protect cfg stop_at =
  let rec loop () =
    let wait = Rng.exponential rng cfg.kill_mean_interval in
    let* () = Engine.sleep wait in
    if Engine.now () >= stop_at then Future.return ()
    else begin
      (match targets machines protect with
      | [] -> ()
      | candidates ->
          let victim = Rng.pick_list rng candidates in
          let scope =
            let r = Rng.float rng 1.0 in
            if r < cfg.dc_kill_prob then `Dc
            else if r < cfg.dc_kill_prob +. cfg.rack_kill_prob then `Rack
            else `Machine
          in
          let victims =
            match scope with
            | `Machine -> [ victim ]
            | `Rack ->
                List.filter (fun m -> m.Process.dc = victim.Process.dc && m.Process.rack = victim.Process.rack) candidates
            | `Dc -> List.filter (fun m -> m.Process.dc = victim.Process.dc) candidates
          in
          let delay = Rng.float rng (cfg.reboot_max -. cfg.reboot_min) +. cfg.reboot_min in
          List.iter (fun m -> reboot_machine ~delay m) victims);
      loop ()
    end
  in
  loop ()

let partition_loop rng net machines protect cfg stop_at =
  let rec loop () =
    let wait = Rng.exponential rng cfg.partition_mean_interval in
    let* () = Engine.sleep wait in
    if Engine.now () >= stop_at then Future.return ()
    else begin
      (match targets machines protect with
      | [] | [ _ ] -> ()
      | candidates ->
          let a = Rng.pick_list rng candidates in
          let b = Rng.pick_list rng candidates in
          if a.Process.machine_id <> b.Process.machine_id then begin
            let am = a.Process.machine_id and bm = b.Process.machine_id in
            let two_way = Rng.bool rng in
            Trace.emit "fault_partition"
              [ ("a", string_of_int am); ("b", string_of_int bm);
                ("two_way", string_of_bool two_way) ];
            Network.partition net ~from:am ~to_:bm;
            if two_way then Network.partition net ~from:bm ~to_:am;
            Engine.schedule ~after:cfg.partition_duration (fun () ->
                Network.heal net ~from:am ~to_:bm;
                Network.heal net ~from:bm ~to_:am)
          end);
      loop ()
    end
  in
  loop ()

let clog_loop rng net machines protect cfg stop_at =
  let rec loop () =
    let wait = Rng.exponential rng cfg.clog_mean_interval in
    let* () = Engine.sleep wait in
    if Engine.now () >= stop_at then Future.return ()
    else begin
      (match targets machines protect with
      | [] -> ()
      | candidates ->
          let m = Rng.pick_list rng candidates in
          let until = Engine.now () +. Rng.float rng cfg.clog_duration in
          Trace.emit "fault_clog"
            [ ("machine", string_of_int m.Process.machine_id);
              ("until", string_of_float until) ];
          Network.clog_machine net m.Process.machine_id until);
      loop ()
    end
  in
  loop ()

let run ~net ~machines ?(protect = fun _ -> false) cfg =
  let stop_at = Engine.now () +. cfg.duration in
  let rng = Engine.fork_rng () in
  let loops =
    List.concat
      [
        (if cfg.kill_mean_interval > 0.0 then
           [ kill_loop (Rng.split rng) machines protect cfg stop_at ]
         else []);
        (if cfg.partition_mean_interval > 0.0 then
           [ partition_loop (Rng.split rng) net machines protect cfg stop_at ]
         else []);
        (if cfg.clog_mean_interval > 0.0 then
           [ clog_loop (Rng.split rng) net machines protect cfg stop_at ]
         else []);
      ]
  in
  let* () = Future.all_unit loops in
  (* Heal the world so recoverability checks can run. *)
  Array.iter
    (fun m ->
      Network.unisolate_machine net m.Process.machine_id;
      List.iter
        (fun p -> if not p.Process.alive then Engine.reboot p ~delay:0.1 ())
        m.Process.machine_processes)
    machines;
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          Network.heal net ~from:a.Process.machine_id ~to_:b.Process.machine_id)
        machines)
    machines;
  Engine.sleep 0.2
