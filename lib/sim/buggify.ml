module Rng = Fdb_util.Det_rng
module Det_tbl = Fdb_util.Det_tbl

let enabled = ref false
let rng = ref (Rng.create 0L)
let point_active : (string, bool) Hashtbl.t = Hashtbl.create 32
let fired : (string, unit) Det_tbl.t = Det_tbl.create ~size:32 ()

let activation_probability = 0.25

let configure ~enabled:e ~rng:r =
  enabled := e;
  rng := r;
  Hashtbl.reset point_active;
  Det_tbl.reset fired

let reset () =
  enabled := false;
  Hashtbl.reset point_active;
  Det_tbl.reset fired

let on ?(p = 0.25) name =
  if not !enabled then false
  else begin
    let active =
      match Hashtbl.find_opt point_active name with
      | Some a -> a
      | None ->
          let a = Rng.chance !rng activation_probability in
          Hashtbl.add point_active name a;
          a
    in
    if active && Rng.chance !rng p then begin
      Det_tbl.replace fired name ();
      true
    end
    else false
  end

let delay ?p name = if on ?p name then Rng.float !rng 1.0 else 0.0

let points_hit () = Det_tbl.keys fired
