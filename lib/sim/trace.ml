type event = { te_time : float; te_name : string; te_fields : (string * string) list }

let buffer : event list ref = ref []
let enabled = ref true
let clock : (unit -> float) ref = ref (fun () -> 0.0)

(* The engine registers itself here to fold every emitted event into its
   running trace checksum (the double-run determinism oracle). Called on
   every emit, even with collection disabled, so the checksum does not
   depend on whether the trace buffer is being kept. *)
let observer : (string -> unit) ref = ref (fun _ -> ())

let reset () =
  buffer := [];
  clock := fun () -> 0.0

let set_clock f = clock := f
let set_enabled b = enabled := b
let set_observer f = observer := f
let clear_observer () = observer := (fun _ -> ())

let emit name fields =
  !observer name;
  if !enabled then
    buffer := { te_time = !clock (); te_name = name; te_fields = fields } :: !buffer

let events () = List.rev !buffer

let dump fmt () =
  List.iter
    (fun e ->
      Format.fprintf fmt "%.6f %s" e.te_time e.te_name;
      List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) e.te_fields;
      Format.fprintf fmt "@.")
    (events ())

let count name =
  List.fold_left (fun acc e -> if e.te_name = name then acc + 1 else acc) 0 !buffer
