type 'a state =
  | Pending of (('a, exn) result -> unit) list (* callbacks, reversed *)
  | Resolved of ('a, exn) result

type 'a t = { mutable state : 'a state }
type 'a promise = 'a t

let make () =
  let f = { state = Pending [] } in
  (f, f)

let return v = { state = Resolved (Ok v) }
let fail e = { state = Resolved (Error e) }

let resolve_with t r =
  match t.state with
  | Resolved _ -> invalid_arg "Future: already resolved"
  | Pending cbs ->
      t.state <- Resolved r;
      List.iter (fun cb -> cb r) (List.rev cbs)

let fulfill p v = resolve_with p (Ok v)
let break p e = resolve_with p (Error e)

let try_resolve_with t r =
  match t.state with
  | Resolved _ -> false
  | Pending _ ->
      resolve_with t r;
      true

let try_fulfill p v = try_resolve_with p (Ok v)
let try_break p e = try_resolve_with p (Error e)

let is_resolved t = match t.state with Resolved _ -> true | Pending _ -> false
let is_pending t = not (is_resolved t)
let peek t = match t.state with Resolved (Ok v) -> Some v | _ -> None

let on_resolve t cb =
  match t.state with
  | Resolved r -> cb r
  | Pending cbs -> t.state <- Pending (cb :: cbs)

let bind t f =
  match t.state with
  | Resolved (Ok v) -> f v
  | Resolved (Error e) -> fail e
  | Pending _ ->
      let out, p = make () in
      on_resolve t (function
        | Error e -> break p e
        | Ok v -> (
            match f v with
            | exception e -> break p e
            | t' -> on_resolve t' (resolve_with p)));
      out

let map t f =
  match t.state with
  | Resolved (Ok v) -> ( match f v with exception e -> fail e | v' -> return v')
  | Resolved (Error e) -> fail e
  | Pending _ ->
      let out, p = make () in
      on_resolve t (function
        | Error e -> break p e
        | Ok v -> ( match f v with exception e -> break p e | v' -> fulfill p v'));
      out

let catch f h =
  match f () with
  | exception e -> h e
  | t -> (
      match t.state with
      | Resolved (Ok _) -> t
      | Resolved (Error e) -> h e
      | Pending _ ->
          let out, p = make () in
          on_resolve t (function
            | Ok v -> fulfill p v
            | Error e -> (
                match h e with
                | exception e' -> break p e'
                | t' -> on_resolve t' (resolve_with p)));
          out)

let protect ~finally f =
  let t = try f () with e -> fail e in
  match t.state with
  | Resolved _ ->
      finally ();
      t
  | Pending _ ->
      let out, p = make () in
      on_resolve t (fun r ->
          finally ();
          resolve_with p r);
      out

let all ts =
  match ts with
  | [] -> return []
  | _ ->
      let n = List.length ts in
      let results = Array.make n None in
      let remaining = ref n in
      let out, p = make () in
      List.iteri
        (fun i t ->
          on_resolve t (function
            | Error e -> ignore (try_break p e : bool)
            | Ok v ->
                results.(i) <- Some v;
                decr remaining;
                if !remaining = 0 then
                  ignore
                    (try_fulfill p
                       (Array.to_list results
                       |> List.map (function Some v -> v | None -> assert false))
                     : bool)))
        ts;
      out

let all_unit ts = map (all ts) (fun _ -> ())

let join2 a b =
  bind a (fun va -> map b (fun vb -> (va, vb)))

exception Any_empty

let any_exn = Any_empty

let race ts =
  match ts with
  | [] -> fail Any_empty
  | _ ->
      let out, p = make () in
      List.iter (fun t -> on_resolve t (fun r -> ignore (try_resolve_with p r : bool))) ts;
      out

let ignore_result (_ : 'a t) = ()

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) = map
  let ( and* ) = join2
end
