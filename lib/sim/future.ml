type 'a state =
  | Pending of (('a, exn) result -> unit) list (* callbacks, reversed *)
  | Resolved of ('a, exn) result

(* [lbl] is the creation-site label ("" when unlabeled). Labeled promises
   are the unit of the lifecycle sanitizer below: they are registered at
   creation and audited at simulation end. *)
type 'a t = { mutable state : 'a state; lbl : string }
type 'a promise = 'a t

exception Cancelled of string

let is_resolved t = match t.state with Resolved _ -> true | Pending _ -> false
let is_pending t = not (is_resolved t)
let has_waiters t = match t.state with Pending (_ :: _) -> true | _ -> false
let label t = t.lbl

(* ---- promise-lifecycle sanitizer ----
   The static rule R6 keeps futures from being silently dropped; this is
   the runtime residue-catcher. While enabled (Engine.run enables it for
   the duration of a simulation), every [make] is counted, every labeled
   promise is registered with its creating process, and the engine asks for
   a report at simulation end: labeled promises still pending with waiters
   on a live process are leaked wakeups — an actor is blocked on a signal
   that can no longer arrive. Double [try_fulfill]s and detached-future
   failures are tallied the same way. Pure bookkeeping: no trace events,
   no scheduling, so enabling it never perturbs a run's trace checksum. *)
module Lifecycle = struct
  type report = {
    lr_created : int;  (* promises created via [make] *)
    lr_resolved : int;  (* promises resolved (either way) *)
    lr_leaked : (string * int) list;  (* label -> still pending, with waiters, owner live *)
    lr_double_resolved : (string * int) list;  (* label -> try_* on an already-resolved future *)
    lr_detach_failures : (string * int) list;  (* detach name -> failures routed to Trace *)
  }

  let empty =
    {
      lr_created = 0;
      lr_resolved = 0;
      lr_leaked = [];
      lr_double_resolved = [];
      lr_detach_failures = [];
    }

  let total_leaks r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.lr_leaked

  type tracked = {
    tr_label : string;
    tr_owner : (Process.t * int) option; (* creating process, incarnation *)
    tr_pending : unit -> bool;
    tr_waited : unit -> bool;
  }

  let enabled = ref false
  let owner_source : (unit -> (Process.t * int) option) ref = ref (fun () -> None)
  let n_created = ref 0
  let n_resolved = ref 0
  let tracked : tracked list ref = ref []
  let doubles : (string * int ref) list ref = ref []
  let detach_fails : (string * int ref) list ref = ref []

  let bump table name =
    match List.assoc_opt name !table with
    | Some r -> incr r
    | None -> table := (name, ref 1) :: !table

  let reset () =
    n_created := 0;
    n_resolved := 0;
    tracked := [];
    doubles := [];
    detach_fails := []

  let enable ~owner =
    reset ();
    owner_source := owner;
    enabled := true

  let disable () =
    enabled := false;
    owner_source := (fun () -> None);
    reset ()

  let owner_live = function
    | None -> true
    | Some (p, inc) -> Process.is_live p inc

  let render table = List.sort compare (List.map (fun (k, r) -> (k, !r)) !table)

  let snapshot () =
    let leaks = ref [] in
    List.iter
      (fun tr ->
        if tr.tr_pending () && tr.tr_waited () && owner_live tr.tr_owner then
          bump leaks tr.tr_label)
      !tracked;
    {
      lr_created = !n_created;
      lr_resolved = !n_resolved;
      lr_leaked = render leaks;
      lr_double_resolved = render doubles;
      lr_detach_failures = render detach_fails;
    }
end

let make ?label () =
  let f = { state = Pending []; lbl = (match label with Some l -> l | None -> "") } in
  if !Lifecycle.enabled then begin
    incr Lifecycle.n_created;
    if f.lbl <> "" then
      Lifecycle.tracked :=
        {
          Lifecycle.tr_label = f.lbl;
          tr_owner = !Lifecycle.owner_source ();
          tr_pending = (fun () -> is_pending f);
          tr_waited = (fun () -> has_waiters f);
        }
        :: !Lifecycle.tracked
  end;
  (f, f)

let return v = { state = Resolved (Ok v); lbl = "" }
let fail e = { state = Resolved (Error e); lbl = "" }

let resolve_with t r =
  match t.state with
  | Resolved _ -> invalid_arg "Future: already resolved"
  | Pending cbs ->
      t.state <- Resolved r;
      if !Lifecycle.enabled then incr Lifecycle.n_resolved;
      List.iter (fun cb -> cb r) (List.rev cbs)

let fulfill p v = resolve_with p (Ok v)
let break p e = resolve_with p (Error e)

let try_resolve_with t r =
  match t.state with
  | Resolved _ ->
      if !Lifecycle.enabled && t.lbl <> "" then
        Lifecycle.bump Lifecycle.doubles t.lbl;
      false
  | Pending _ ->
      resolve_with t r;
      true

let try_fulfill p v = try_resolve_with p (Ok v)
let try_break p e = try_resolve_with p (Error e)

let peek t = match t.state with Resolved (Ok v) -> Some v | _ -> None

let on_resolve t cb =
  match t.state with
  | Resolved r -> cb r
  | Pending cbs -> t.state <- Pending (cb :: cbs)

let bind t f =
  match t.state with
  | Resolved (Ok v) -> f v
  | Resolved (Error e) -> fail e
  | Pending _ ->
      let out, p = make () in
      on_resolve t (function
        | Error e -> break p e
        | Ok v -> (
            match f v with
            | exception e -> break p e
            | t' -> on_resolve t' (resolve_with p)));
      out

let map t f =
  match t.state with
  | Resolved (Ok v) -> ( match f v with exception e -> fail e | v' -> return v')
  | Resolved (Error e) -> fail e
  | Pending _ ->
      let out, p = make () in
      on_resolve t (function
        | Error e -> break p e
        | Ok v -> ( match f v with exception e -> break p e | v' -> fulfill p v'));
      out

let catch f h =
  match f () with
  | exception e -> h e
  | t -> (
      match t.state with
      | Resolved (Ok _) -> t
      | Resolved (Error e) -> h e
      | Pending _ ->
          let out, p = make () in
          on_resolve t (function
            | Ok v -> fulfill p v
            | Error e -> (
                match h e with
                | exception e' -> break p e'
                | t' -> on_resolve t' (resolve_with p)));
          out)

let protect ~finally f =
  let t = try f () with e -> fail e in
  match t.state with
  | Resolved _ ->
      finally ();
      t
  | Pending _ ->
      let out, p = make () in
      on_resolve t (fun r ->
          finally ();
          resolve_with p r);
      out

let all ts =
  match ts with
  | [] -> return []
  | _ ->
      let n = List.length ts in
      let results = Array.make n None in
      let remaining = ref n in
      let out, p = make () in
      List.iteri
        (fun i t ->
          on_resolve t (function
            | Error e -> ignore (try_break p e : bool)
            | Ok v ->
                results.(i) <- Some v;
                decr remaining;
                if !remaining = 0 then
                  ignore
                    (try_fulfill p
                       (Array.to_list results
                       |> List.map (function Some v -> v | None -> assert false))
                     : bool)))
        ts;
      out

let all_unit ts = map (all ts) (fun _ -> ())

let join2 a b =
  bind a (fun va -> map b (fun vb -> (va, vb)))

exception Any_empty

let any_exn = Any_empty

let race_loser_exn = Cancelled "future.race loser"

(* The winner's resolution cancels every still-pending loser with
   [Cancelled] (traced, not raised): a loser left pending forever is a
   leaked wakeup — anyone blocked on it stalls silently, and the lifecycle
   sanitizer would report it at simulation end. Cancellation is delivered
   as an ordinary [Error] resolution, so downstream combinators see a
   normal failure, never an exception on the canceller's stack. *)
let race ts =
  match ts with
  | [] -> fail Any_empty
  | _ ->
      let out, p = make () in
      let cancel_losers () =
        List.iter
          (fun t ->
            if is_pending t then begin
              Trace.emit "future_race_loser_cancelled"
                [ ("label", if t.lbl = "" then "<unlabeled>" else t.lbl) ];
              ignore (try_break t race_loser_exn : bool)
            end)
          ts
      in
      List.iter
        (fun t ->
          on_resolve t (fun r ->
              if try_resolve_with p r then cancel_losers ()))
        ts;
      out

let ignore_result (_ : 'a t) = ()

(* The approved detach idiom (lint rule R6): fire-and-forget a future
   WITHOUT swallowing its error side-channel. Failures are routed to a
   [future_detached_error] trace event (and tallied for the lifecycle
   report); successes are dropped. *)
let detach ~name t =
  let on_error e =
    if !Lifecycle.enabled then Lifecycle.bump Lifecycle.detach_fails name;
    Trace.emit "future_detached_error"
      [ ("actor", name); ("exn", Printexc.to_string e) ]
  in
  match t.state with
  | Resolved (Ok _) -> ()
  | Resolved (Error e) -> on_error e
  | Pending _ ->
      on_resolve t (function Ok _ -> () | Error e -> on_error e)

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) = map
  let ( and* ) = join2
end
