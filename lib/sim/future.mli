(** Single-threaded promises — the analogue of the paper's Flow futures.

    A future is resolved at most once, with a value or an exception.
    Callbacks run synchronously, in registration order, on the stack of
    whoever resolves the promise; all asynchrony (and hence all scheduling
    nondeterminism) lives in {!Engine}, never here. *)

type 'a t
(** A value of type ['a] that may not have arrived yet. *)

type 'a promise
(** The write end of a future. *)

exception Cancelled of string
(** Carried by futures resolved by cancellation rather than by their
    producer: {!race} losers, and anything an actor cancels explicitly.
    Delivered as an ordinary [Error] resolution — traced, never raised on
    the canceller's stack. *)

val make : ?label:string -> unit -> 'a t * 'a promise
(** A fresh pending future and its resolver. [label] names the creation
    site for the lifecycle sanitizer: labeled promises still pending (with
    waiters, on a live process) at simulation end are reported as leaked
    wakeups by {!Engine.last_run_lifecycle}. Promises whose resolution is
    guaranteed by a scheduled task (sleeps, timers) stay unlabeled. *)

val return : 'a -> 'a t
(** An already-fulfilled future. *)

val fail : exn -> 'a t
(** An already-failed future. *)

val fulfill : 'a promise -> 'a -> unit
(** Resolve with a value. Raises [Invalid_argument] if already resolved. *)

val break : 'a promise -> exn -> unit
(** Resolve with an exception. Raises [Invalid_argument] if already resolved. *)

val try_fulfill : 'a promise -> 'a -> bool
(** Like {!fulfill} but reports [false] instead of raising when the future is
    already resolved (races between a reply and a timeout are normal).
    While the lifecycle sanitizer is enabled, a [false] on a labeled
    promise is tallied in the run report's double-resolve table. *)

val try_break : 'a promise -> exn -> bool
(** Like {!break}, non-raising. *)

val is_resolved : 'a t -> bool
val is_pending : 'a t -> bool

val has_waiters : 'a t -> bool
(** [true] when the future is pending and at least one callback is
    registered — somebody is blocked on it. *)

val label : 'a t -> string
(** The creation-site label ("" when unlabeled). *)

val peek : 'a t -> 'a option
(** The fulfilled value if available now ([None] if pending or failed). *)

val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : 'a t -> ('a -> 'b) -> 'b t

val on_resolve : 'a t -> (('a, exn) result -> unit) -> unit
(** Register a callback for whichever way the future resolves. *)

val catch : (unit -> 'a t) -> (exn -> 'a t) -> 'a t
(** [catch f h] runs [f ()]; if it raises or its future fails, continue
    with [h exn]. *)

val protect : finally:(unit -> unit) -> (unit -> 'a t) -> 'a t
(** [protect ~finally f] runs [finally ()] once [f ()]'s future resolves,
    whether with a value or an exception. *)

val all : 'a t list -> 'a list t
(** Resolves with all results (in input order) once every future fulfills;
    fails as soon as any fails. *)

val all_unit : unit t list -> unit t

val join2 : 'a t -> 'b t -> ('a * 'b) t

val race : 'a t list -> 'a t
(** Resolves like the first of the inputs to resolve. The losers are then
    resolved with {!Cancelled} (a [future_race_loser_cancelled] trace event
    each) instead of being left pending forever — a pending loser is a
    leaked wakeup the lifecycle sanitizer would report at simulation end. *)

val any_exn : exn
(** Exception used by {!race} on an empty list. *)

val race_loser_exn : exn
(** The {!Cancelled} value delivered to {!race} losers. *)

val ignore_result : 'a t -> unit
(** Detach: drop the value; re-raise nothing (failures are swallowed).
    Deprecated in favor of {!detach} — lint rule R6 flags uses. *)

val detach : name:string -> 'a t -> unit
(** The approved fire-and-forget idiom (lint rule R6): drop the value but
    route a failure to a [future_detached_error] trace event naming the
    actor, and tally it in the lifecycle report. Never raises. *)

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( and* ) : 'a t -> 'b t -> ('a * 'b) t
end

module Lifecycle : sig
  (** The promise-lifecycle sanitizer: runtime backstop behind lint rule
      R6. Enabled by {!Engine.run} for the duration of a simulation; pure
      bookkeeping (no trace events, no scheduling), so it never perturbs a
      run's trace checksum. *)

  type report = {
    lr_created : int;  (** promises created via {!make} while enabled *)
    lr_resolved : int;  (** promises resolved (either way) while enabled *)
    lr_leaked : (string * int) list;
        (** label -> count of labeled promises still pending with waiters
            whose creating process is still live: leaked wakeups. *)
    lr_double_resolved : (string * int) list;
        (** label -> count of [try_fulfill]/[try_break] calls that found
            the promise already resolved. *)
    lr_detach_failures : (string * int) list;
        (** {!detach} name -> failures routed to the trace. *)
  }

  val empty : report
  val total_leaks : report -> int

  val enable : owner:(unit -> (Process.t * int) option) -> unit
  (** Reset and start tracking; [owner] supplies the creating process (and
      incarnation) for each labeled promise — the engine wires its current
      process context in. *)

  val disable : unit -> unit

  val snapshot : unit -> report
  (** The report for the tracking period so far. Leak status is evaluated
      at call time (the engine calls this once, at simulation end). *)
end
