(** Single-threaded promises — the analogue of the paper's Flow futures.

    A future is resolved at most once, with a value or an exception.
    Callbacks run synchronously, in registration order, on the stack of
    whoever resolves the promise; all asynchrony (and hence all scheduling
    nondeterminism) lives in {!Engine}, never here. *)

type 'a t
(** A value of type ['a] that may not have arrived yet. *)

type 'a promise
(** The write end of a future. *)

val make : unit -> 'a t * 'a promise
(** A fresh pending future and its resolver. *)

val return : 'a -> 'a t
(** An already-fulfilled future. *)

val fail : exn -> 'a t
(** An already-failed future. *)

val fulfill : 'a promise -> 'a -> unit
(** Resolve with a value. Raises [Invalid_argument] if already resolved. *)

val break : 'a promise -> exn -> unit
(** Resolve with an exception. Raises [Invalid_argument] if already resolved. *)

val try_fulfill : 'a promise -> 'a -> bool
(** Like {!fulfill} but reports [false] instead of raising when the future is
    already resolved (races between a reply and a timeout are normal). *)

val try_break : 'a promise -> exn -> bool
(** Like {!break}, non-raising. *)

val is_resolved : 'a t -> bool
val is_pending : 'a t -> bool

val peek : 'a t -> 'a option
(** The fulfilled value if available now ([None] if pending or failed). *)

val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : 'a t -> ('a -> 'b) -> 'b t

val on_resolve : 'a t -> (('a, exn) result -> unit) -> unit
(** Register a callback for whichever way the future resolves. *)

val catch : (unit -> 'a t) -> (exn -> 'a t) -> 'a t
(** [catch f h] runs [f ()]; if it raises or its future fails, continue
    with [h exn]. *)

val protect : finally:(unit -> unit) -> (unit -> 'a t) -> 'a t
(** [protect ~finally f] runs [finally ()] once [f ()]'s future resolves,
    whether with a value or an exception. *)

val all : 'a t list -> 'a list t
(** Resolves with all results (in input order) once every future fulfills;
    fails as soon as any fails. *)

val all_unit : unit t list -> unit t

val join2 : 'a t -> 'b t -> ('a * 'b) t

val race : 'a t list -> 'a t
(** Resolves like the first of the inputs to resolve. The losers are left
    to resolve unobserved. *)

val any_exn : exn
(** Exception used by {!race} on an empty list. *)

val ignore_result : 'a t -> unit
(** Detach: drop the value; re-raise nothing (failures are swallowed).
    Use only for fire-and-forget actors that handle their own errors. *)

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( and* ) : 'a t -> 'b t -> ('a * 'b) t
end
