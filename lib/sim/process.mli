(** Simulated processes and machines.

    A {e machine} models a physical host in a datacenter and rack (the fault
    domains of paper §2.5); a {e process} models one database server process
    pinned to a core of that machine (the paper deploys one process per
    core). Kill/reboot invalidates in-flight work via incarnation numbers:
    every scheduled task captures the incarnation of its owning process and
    is dropped by the engine if the process has died or rebooted since. *)

type machine = {
  machine_id : int;
  dc : string;  (** datacenter / availability-zone fault domain *)
  rack : string;  (** rack fault domain within the DC *)
  mutable machine_processes : t list;
}

and t = {
  pid : int;
  name : string;  (** human-readable role name, for traces *)
  machine : machine;
  mutable alive : bool;
  mutable incarnation : int;
  mutable cpu_busy_until : float;
  mutable cpu_used : float;  (** accumulated service time, for utilization *)
  mutable boot : unit -> unit;  (** run after a reboot to restart roles *)
  mutable reboot_hooks : (unit -> unit) list;
      (** run on kill/reboot, e.g. to drop unsynced disk writes *)
}

val fresh_machine : ?dc:string -> ?rack:string -> int -> machine
(** [fresh_machine id] makes a machine with no processes yet. *)

val create : ?name:string -> machine -> t
(** Make a live process on [machine] (registers itself with the machine). *)

val reset_pids : unit -> unit
(** Restart pid allocation from 0. Called by {!Engine.run} so that reruns of
    the same seed within one OS process assign identical pids — required for
    bit-identical metric dumps (the registry keys cells by pid). *)

val is_live : t -> int -> bool
(** [is_live p inc] — alive and still in incarnation [inc]? *)

val on_reboot : t -> (unit -> unit) -> unit
(** Register a cleanup hook run when the process dies or reboots. *)

val mark_dead : t -> unit
(** Flag dead and run reboot hooks. (Scheduling of the reboot itself is the
    engine's job — see {!Engine.kill} / {!Engine.reboot}.) *)

val mark_rebooted : t -> unit
(** Bump incarnation and flag alive again; resets the CPU queue. *)

val same_dc : t -> t -> bool
val same_rack : t -> t -> bool
