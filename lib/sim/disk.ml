module Rng = Fdb_util.Det_rng
module Det_tbl = Fdb_util.Det_tbl

type file = { mutable records : string list (* reversed *); mutable durable : int }

type t = {
  name : string;
  seek : float;
  bytes_per_sec : float;
  sync_latency : float;
  files : (string, file) Det_tbl.t;
  mutable busy_until : float;
  mutable written : float;
}

let create ?(seek = 8e-5) ?(bytes_per_sec = 5e8) ?(sync_latency = 3e-4) ~name () =
  {
    name;
    seek;
    bytes_per_sec;
    sync_latency;
    files = Det_tbl.create ~size:16 ();
    busy_until = 0.0;
    written = 0.0;
  }

(* FCFS service queue, like Engine.cpu but for the disk spindle. *)
let disk_op t dt =
  let now = Engine.now () in
  let start = if t.busy_until > now then t.busy_until else now in
  let finish = start +. dt in
  t.busy_until <- finish;
  Engine.sleep (finish -. now)

let get_file t name =
  match Det_tbl.find_opt t.files name with
  | Some f -> f
  | None ->
      let f = { records = []; durable = 0 } in
      Det_tbl.add t.files name f;
      f

let append t name record =
  let f = get_file t name in
  f.records <- record :: f.records;
  t.written <- t.written +. float_of_int (String.length record);
  disk_op t (t.seek +. (float_of_int (String.length record) /. t.bytes_per_sec))

let sync t name =
  let f = get_file t name in
  let n = List.length f.records in
  Future.bind (disk_op t t.sync_latency) (fun () ->
      (* Only what was buffered when sync was issued is made durable. *)
      if n > f.durable then f.durable <- n;
      Future.return ())

let read_all t name =
  match Det_tbl.find_opt t.files name with
  | None -> Future.return []
  | Some f ->
      let records = List.rev f.records in
      Future.map (disk_op t t.seek) (fun () -> records)

let write_file t name contents =
  let f = get_file t name in
  f.records <- [ contents ];
  f.durable <- 0;
  t.written <- t.written +. float_of_int (String.length contents);
  disk_op t (t.seek +. (float_of_int (String.length contents) /. t.bytes_per_sec))

let read_file t name =
  let v =
    match Det_tbl.find_opt t.files name with
    | None | Some { records = []; _ } -> None
    | Some { records = r :: _; _ } -> Some r
  in
  Future.map (disk_op t t.seek) (fun () -> v)

let delete t name =
  Det_tbl.remove t.files name;
  disk_op t t.seek

(* Iterate files in name order: the corrupting branch draws from the
   engine RNG per unsynced record, so enumeration order is part of the
   deterministic replay contract. *)
let crash t =
  let corrupting = Buggify.on ~p:0.5 "disk_partial_write" in
  Det_tbl.iter
    (fun _ f ->
      let all = Array.of_list (List.rev f.records) in
      let n = Array.length all in
      let keep = Array.sub all 0 (min f.durable n) |> Array.to_list in
      let survivors =
        if corrupting && n > f.durable then begin
          (* Unsynced records land out of order: a random subset survives.
             Consumers must detect the resulting gaps via sequence numbers. *)
          let extra = ref [] in
          for i = f.durable to n - 1 do
            if Engine.is_running () && Engine.chance 0.5 then extra := all.(i) :: !extra
          done;
          keep @ List.rev !extra
        end
        else keep
      in
      f.records <- List.rev survivors;
      f.durable <- min f.durable (List.length survivors))
    t.files

let attach t p = Process.on_reboot p (fun () -> crash t)

let bytes_written t = t.written

let drop_prefix t name n =
  match Det_tbl.find_opt t.files name with
  | None -> ()
  | Some f ->
      let total = List.length f.records in
      let n = min n total in
      (* records is newest-first: keep the newest (total - n). *)
      let rec take k l = if k = 0 then [] else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl in
      f.records <- take (total - n) f.records;
      f.durable <- max 0 (f.durable - n)
