(** Deterministic structured event trace.

    Roles emit trace events (like FDB's TraceEvent); tests compare traces
    across runs to assert determinism, and the CLI can dump them for
    debugging a failing seed. Collection is cheap and can be disabled. *)

type event = { te_time : float; te_name : string; te_fields : (string * string) list }

val reset : unit -> unit
(** Drop all collected events (called by {!Engine.run}). The simulated
    clock source is also re-armed. *)

val set_clock : (unit -> float) -> unit
(** Install the time source (the engine installs its virtual clock). *)

val set_enabled : bool -> unit
(** Enable/disable collection (default enabled). *)

val set_observer : (string -> unit) -> unit
(** Install a hook called with every emitted event name, even when
    collection is disabled. The engine uses it to fold event kinds into
    its run checksum; there is at most one observer. *)

val clear_observer : unit -> unit

val emit : string -> (string * string) list -> unit
(** Record one event at the current time. *)

val events : unit -> event list
(** All events in emission order. *)

val dump : Format.formatter -> unit -> unit
(** Pretty-print the whole trace. *)

val count : string -> int
(** Number of events with the given name — used by tests as the paper's
    conditional-coverage macros ("did this rare path run?"). *)
