(** Buggification points (paper §4).

    [Buggify.on "name"] marks a place where the simulation may inject
    unusual-but-legal behaviour: an early error return, an extra delay, an
    odd tuning value. Like FDB, each named point is independently enabled
    for a given run with probability ~25%; an enabled point then fires on
    each evaluation with its local probability (default 25%). Outside a
    buggified run every point is inert, so the same code runs in
    "production" mode. *)

val configure : enabled:bool -> rng:Fdb_util.Det_rng.t -> unit
(** Install per-run state; called by {!Engine.run}. *)

val reset : unit -> unit
(** Disable and forget per-point decisions (end of run). *)

val on : ?p:float -> string -> bool
(** [on name] — should this point fire now? Deterministic given the run
    seed. [p] is the per-evaluation firing probability (default 0.25). *)

val delay : ?p:float -> string -> float
(** Random small delay (0–1 s) to inject if the point fires, else 0. *)

val points_hit : unit -> string list
(** Names of points that fired at least once this run (coverage reporting). *)
