(** Simulated network with RPC (paper §4: "network, disk, time ... are
    abstracted" and injected with faults).

    The network is polymorphic in the message type ['m]; the database
    instantiates it with its RPC request/response variant. Latency is drawn
    per message from a distance-based model plus jitter, so reordering falls
    out naturally; partitions, clogging and loss are injectable at machine
    granularity. Delivery tasks are owned by the destination process, so
    messages to dead or rebooted processes vanish, and RPC callers see
    timeouts — exactly the failure surface real code must handle. *)

type endpoint = int
(** A well-known address for a role instance (like FDB's NetworkAddress). *)

type 'm t

val create : ?loss_prob:float -> ?seed_rng:Fdb_util.Det_rng.t -> unit -> 'm t
(** A fresh network. [loss_prob] is the baseline per-message drop
    probability (default 0). Needs a running {!Engine} for delivery. *)

(** {2 Topology and faults} *)

val set_dc_latency : 'm t -> string -> string -> float -> unit
(** One-way base latency between two datacenters (applied symmetrically).
    Defaults: 50 µs same machine, 150 µs same DC, 30 ms cross-DC. *)

val partition : 'm t -> from:int -> to_:int -> unit
(** Block messages from machine [from] to machine [to_] (directed). *)

val heal : 'm t -> from:int -> to_:int -> unit
val isolate_machine : 'm t -> int -> unit
(** Block all traffic to and from the machine. *)

val unisolate_machine : 'm t -> int -> unit
val clog_machine : 'm t -> int -> float -> unit
(** Delay all traffic touching the machine until the given absolute time. *)

val set_loss_prob : 'm t -> float -> unit

(** {2 Endpoints} *)

val fresh_endpoint : 'm t -> endpoint
val register : 'm t -> endpoint -> Process.t -> ('m -> 'm Future.t) -> unit
(** Install the request handler for an endpoint. The registration is valid
    for the process's current incarnation only; re-register after reboot. *)

val unregister : 'm t -> endpoint -> unit

(** {2 RPC} *)

val call :
  'm t -> ?timeout:float -> ?bytes:int -> from:Process.t -> endpoint -> 'm -> 'm Future.t
(** Request/response with correlation. Fails with {!Engine.Timed_out} after
    [timeout] seconds (default 5) if no response arrives — because of loss,
    partition, a dead endpoint, or a handler error. [bytes] adds
    transmission delay for large payloads. *)

val send : 'm t -> ?bytes:int -> from:Process.t -> endpoint -> 'm -> unit
(** One-way, best-effort message (response discarded). *)

val messages_sent : 'm t -> int
(** Total messages handed to the network (diagnostics). *)
