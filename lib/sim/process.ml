type machine = {
  machine_id : int;
  dc : string;
  rack : string;
  mutable machine_processes : t list;
}

and t = {
  pid : int;
  name : string;
  machine : machine;
  mutable alive : bool;
  mutable incarnation : int;
  mutable cpu_busy_until : float;
  mutable cpu_used : float;
  mutable boot : unit -> unit;
  mutable reboot_hooks : (unit -> unit) list;
}

let next_pid = ref 0
let reset_pids () = next_pid := 0

let fresh_machine ?(dc = "dc0") ?(rack = "rack0") machine_id =
  { machine_id; dc; rack; machine_processes = [] }

let create ?(name = "process") machine =
  incr next_pid;
  let p =
    {
      pid = !next_pid;
      name;
      machine;
      alive = true;
      incarnation = 0;
      cpu_busy_until = 0.0;
      cpu_used = 0.0;
      boot = (fun () -> ());
      reboot_hooks = [];
    }
  in
  machine.machine_processes <- p :: machine.machine_processes;
  p

let is_live p inc = p.alive && p.incarnation = inc
let on_reboot p hook = p.reboot_hooks <- hook :: p.reboot_hooks

let mark_dead p =
  if p.alive then begin
    p.alive <- false;
    List.iter (fun h -> h ()) p.reboot_hooks
  end

let mark_rebooted p =
  p.incarnation <- p.incarnation + 1;
  p.alive <- true;
  p.cpu_busy_until <- 0.0

let same_dc a b = a.machine.dc = b.machine.dc
let same_rack a b = a.machine.dc = b.machine.dc && a.machine.rack = b.machine.rack
