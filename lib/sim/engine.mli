(** The deterministic discrete-event scheduler (paper §4, Figure 6).

    One engine drives one simulation. All database code runs inside
    {!run}; virtual time advances only when the event queue says so, so a
    run is a pure function of its seed, and can fast-forward through idle
    stretches arbitrarily faster than real time. The engine is installed in
    a module-level slot for the duration of {!run} — simulations cannot be
    nested, mirroring the single-simulator-process design of FDB. *)

exception Deadlock
(** Raised by {!run} when the event queue empties while the root future is
    still pending — i.e. the simulated system can make no further progress. *)

exception Timed_out
(** Raised into futures by {!timeout} and by RPC timeouts. *)

exception Killed
(** Raised by blocking primitives when their owning process was killed. *)

val run :
  ?seed:int64 -> ?max_time:float -> ?buggify:bool -> (unit -> 'a Future.t) -> 'a
(** [run f] creates a fresh engine, runs [f ()] and processes events until
    the returned future resolves. Raises {!Deadlock} on quiescence, and
    [Failure] if [max_time] (default 1e7 simulated seconds) is exceeded.
    [buggify] enables the {!Buggify} fault-injection points for this run. *)

val now : unit -> float
(** Current virtual time in seconds. *)

val schedule : ?after:float -> ?process:Process.t -> (unit -> unit) -> unit
(** Enqueue a task [after] seconds from now (default 0). The task is
    dropped, not run, if [process] (default: the current process context)
    has died or rebooted by dispatch time. *)

val sleep : float -> unit Future.t
(** Resolve after the given virtual delay. Never resolves if the owning
    process dies first. *)

val sleep_until : float -> unit Future.t
val yield : unit -> unit Future.t

val spawn : ?process:Process.t -> string -> (unit -> unit Future.t) -> unit
(** [spawn name f] starts a detached actor. If its future fails the error
    is recorded in the trace (actors own their error handling). *)

val timeout : float -> 'a Future.t -> 'a Future.t
(** Fail with {!Timed_out} if the future is still pending after the delay. *)

val fork_rng : unit -> Fdb_util.Det_rng.t
(** Derive an independent deterministic RNG stream from the engine's root. *)

val random_float : float -> float
val random_int : int -> int
val chance : float -> bool
(** Draws from the engine's root RNG (for infrastructure-level jitter). *)

val with_process : Process.t -> (unit -> 'a) -> 'a
(** Run [f] with the current-process context set (tasks scheduled inside
    are owned by that process). *)

val current_process : unit -> Process.t option

val cpu : Process.t -> float -> unit Future.t
(** [cpu p dt] models [dt] seconds of CPU work on [p]'s core: an FCFS
    queue — the future resolves once all previously queued work plus [dt]
    has elapsed. This is what makes saturation experiments (Figures 8/9)
    exhibit queueing delay. *)

val kill : Process.t -> unit
(** Fail-stop the process: reboot hooks run, in-flight tasks are dropped. *)

val reboot : Process.t -> ?delay:float -> unit -> unit
(** Kill (if alive) and schedule the process to come back after [delay]
    (default 0.5 s), running its [boot] thunk in the new incarnation. *)

val buggify_enabled : unit -> bool
(** Whether this run was started with fault-injection points enabled. *)

val is_running : unit -> bool
(** True between the start and end of {!run} (some modules fall back to
    non-simulated behaviour outside a run, e.g. in bechamel microbenches). *)

val pending_tasks : unit -> int
(** Number of queued events (diagnostics). *)

val trace_checksum : unit -> int64
(** Running FNV-1a64 over every executed event so far in the current run:
    each dispatched task's (time, pid, seq) plus every {!Trace.emit} kind.
    Identical seeds must yield identical final checksums — this is the
    dynamic backstop behind the determinism lint (see DESIGN.md). *)

val last_run_checksum : unit -> int64
(** Final {!trace_checksum} of the most recently finished {!run}
    (including runs that ended in an exception). *)

val last_run_lifecycle : unit -> Future.Lifecycle.report
(** Promise-lifecycle report of the most recently finished {!run}: labeled
    promises still pending with waiters on live processes (leaked wakeups),
    double-resolve tallies, and detached-future failures. The runtime
    residue-catcher behind lint rule R6; [fdb_sim swarm --check-leaks]
    turns a nonzero leak count into a test failure. *)
