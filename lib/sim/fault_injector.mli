(** Randomized fault schedules (paper §4 "Fault injection").

    Drives machine-, rack- and datacenter-level fail-stop kills and reboots,
    network partitions and clogging against a set of machines, with rates
    tuned (like the paper says) to keep the system in interesting states
    rather than permanently flattened. All randomness comes from the
    engine's deterministic RNG. *)

type config = {
  duration : float;  (** how long to keep injecting, in simulated seconds *)
  kill_mean_interval : float;  (** mean time between kill events; 0 = off *)
  reboot_min : float;  (** min downtime after a kill *)
  reboot_max : float;  (** max downtime after a kill *)
  rack_kill_prob : float;  (** a kill event takes the whole rack *)
  dc_kill_prob : float;  (** ... or the whole datacenter *)
  partition_mean_interval : float;  (** mean time between partitions; 0 = off *)
  partition_duration : float;
  clog_mean_interval : float;  (** mean time between clog events; 0 = off *)
  clog_duration : float;
}

val default : config
(** Moderate chaos: kills every ~15 s, partitions every ~20 s, clogs every
    ~10 s, for 120 s. *)

val calm : config
(** No faults at all (performance runs). *)

val kill_machine : Process.machine -> unit
(** Fail-stop every process on the machine, without scheduling a reboot. *)

val reboot_machine : ?delay:float -> Process.machine -> unit
(** Fail-stop (if alive) and restart every process on the machine after
    [delay] (default 0.5 s), re-running each process's boot thunk. *)

val run :
  net:'m Network.t ->
  machines:Process.machine array ->
  ?protect:(Process.machine -> bool) ->
  config ->
  unit Future.t
(** Start the injection loops; the future resolves after [config.duration]
    with all partitions healed and all machines scheduled back up. *)
