(** Transactional secondary indexes over a record store (paper §1: the
    index maintenance every layer builds from the core's transactions).

    A store keeps records at [("r", pkey)] inside its subspace, plus any
    number of index definitions. Every {!set}/{!clear} derives the index
    mutations from the record's old value (read with a normal,
    conflict-adding read) and buffers them in the {e same} transaction as
    the base write — so indexes are exactly consistent with records at
    every commit boundary, and two writers of one record serialize at the
    Resolver.

    Index kinds: [Value] (extracted tuples -> entry keys [("i", name,
    entry..., pkey)]), [Counter] (atomic-op LE64 aggregates at [("c",
    name, group...)], conflict-free), and [Versionstamp] (an append-only
    changelog at [("v", name) ^ stamp ^ pkey], stamped at commit). *)

type def =
  | Value of {
      name : string;
      extract : pkey:string -> value:string -> Fdb_core.Tuple.t list;
          (** index entries for one record; each tuple becomes one entry *)
    }
  | Counter of {
      name : string;
      group : pkey:string -> value:string -> Fdb_core.Tuple.t;
          (** the aggregate bucket the record counts toward *)
    }
  | Versionstamp of { name : string }

type store

val create : Subspace.t -> def list -> store
val subspace : store -> Subspace.t

val set : store -> Fdb_core.Client.tx -> string -> string -> unit Fdb_sim.Future.t
(** Write a record and every derived index mutation in the caller's
    transaction. *)

val clear : store -> Fdb_core.Client.tx -> string -> unit Fdb_sim.Future.t
(** Delete a record and retire its index entries / counter contributions. *)

val get :
  store -> Fdb_core.Client.tx -> string -> string option Fdb_sim.Future.t

val scan :
  ?snapshot:bool ->
  ?limit:int ->
  store ->
  Fdb_core.Client.tx ->
  (string * string) list Fdb_sim.Future.t
(** All records, [(pkey, value)], in key order. *)

val lookup :
  ?limit:int ->
  store ->
  Fdb_core.Client.tx ->
  index:string ->
  entry:Fdb_core.Tuple.t ->
  string list Fdb_sim.Future.t
(** Primary keys whose [Value] index entries start with [entry] (pass the
    full extracted tuple for an exact match, a prefix for a scan). *)

val counter_value :
  store ->
  Fdb_core.Client.tx ->
  index:string ->
  group:Fdb_core.Tuple.t ->
  int64 Fdb_sim.Future.t

val changes :
  ?limit:int ->
  store ->
  Fdb_core.Client.tx ->
  index:string ->
  (string * string) list Fdb_sim.Future.t
(** The [Versionstamp] changelog in commit order: [(stamp, pkey)]. *)

val verify : store -> Fdb_core.Client.tx -> string list Fdb_sim.Future.t
(** The consistency oracle: recompute every index from the records (one
    snapshot transaction) and diff against what is stored. [\[\]] means
    the maintenance invariant held; entries are human-readable
    discrepancies. *)

(**/**)

val le64 : int64 -> string
val of_le64 : string -> int64
(** The counter encoding (exposed for tests and workloads). *)
