open Fdb_sim
open Future.Syntax
module Tuple = Fdb_core.Tuple
module Types = Fdb_core.Types
module Client = Fdb_core.Client
module Range_query = Fdb_core.Range_query
module Mutation = Fdb_kv.Mutation

type def =
  | Value of {
      name : string;
      extract : pkey:string -> value:string -> Tuple.t list;
    }
  | Counter of { name : string; group : pkey:string -> value:string -> Tuple.t }
  | Versionstamp of { name : string }

type store = { ss : Subspace.t; defs : def list }

let create ss defs = { ss; defs }
let subspace st = st.ss

let le64 n =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xFFL)))

let of_le64 s =
  let n = ref 0L in
  for i = min 7 (String.length s - 1) downto 0 do
    n := Int64.logor (Int64.shift_left !n 8) (Int64.of_int (Char.code s.[i]))
  done;
  !n

(* Key layout inside the store's subspace:
     ("r", pkey)                     -> record value
     ("i", name, entry..., pkey)     -> ""        (value index)
     ("c", name, group...)           -> LE64      (counter aggregate)
     ("v", name) ^ stamp ^ (pkey)    -> ""        (versionstamp changelog) *)

let record_key st pkey = Subspace.pack st.ss [ Tuple.String "r"; Tuple.Bytes pkey ]
let records_space st = Subspace.sub st.ss [ Tuple.String "r" ]

let value_entry_key st name entry pkey =
  Subspace.pack st.ss
    (Tuple.String "i" :: Tuple.String name :: (entry @ [ Tuple.Bytes pkey ]))

let counter_key st name group =
  Subspace.pack st.ss (Tuple.String "c" :: Tuple.String name :: group)

let vs_prefix st name = Subspace.pack st.ss [ Tuple.String "v"; Tuple.String name ]

(* ---------- transactional maintenance ---------- *)

(* The invariant: every index mutation rides in the same transaction as
   the base-record write, derived from the record's old value — which is
   read with a normal (conflict-adding) read, so a concurrent writer of
   the same record serializes at the Resolver rather than corrupting the
   index. Counters use conflict-free atomic adds; the changelog uses a
   versionstamped key minted at commit. *)

let apply_defs st tx pkey ~old_value ~new_value =
  List.iter
    (fun def ->
      match def with
      | Value { name; extract } ->
          let old_entries =
            match old_value with
            | None -> []
            | Some ov -> extract ~pkey ~value:ov
          in
          let new_entries =
            match new_value with
            | None -> []
            | Some nv -> extract ~pkey ~value:nv
          in
          List.iter
            (fun e ->
              if not (List.mem e new_entries) then
                Client.clear tx (value_entry_key st name e pkey))
            old_entries;
          List.iter
            (fun e ->
              if not (List.mem e old_entries) then
                Client.set tx (value_entry_key st name e pkey) "")
            new_entries
      | Counter { name; group } ->
          (match old_value with
          | Some ov ->
              Client.atomic_op tx Mutation.Add
                (counter_key st name (group ~pkey ~value:ov))
                (le64 (-1L))
          | None -> ());
          (match new_value with
          | Some nv ->
              Client.atomic_op tx Mutation.Add
                (counter_key st name (group ~pkey ~value:nv))
                (le64 1L)
          | None -> ())
      | Versionstamp { name } ->
          if new_value <> None then
            let p = vs_prefix st name in
            Client.set_versionstamped_key tx
              ~template:(p ^ Client.versionstamp_placeholder ^ Tuple.pack [ Tuple.Bytes pkey ])
              ~offset:(String.length p) ~value:"")
    st.defs

let set st tx pkey value =
  let* old_value = Client.get tx (record_key st pkey) in
  apply_defs st tx pkey ~old_value ~new_value:(Some value);
  Client.set tx (record_key st pkey) value;
  Future.return ()

let clear st tx pkey =
  let* old_value = Client.get tx (record_key st pkey) in
  match old_value with
  | None -> Future.return ()
  | Some _ ->
      apply_defs st tx pkey ~old_value ~new_value:None;
      Client.clear tx (record_key st pkey);
      Future.return ()

(* ---------- reads ---------- *)

let get st tx pkey = Client.get tx (record_key st pkey)

let scan ?(snapshot = false) ?(limit = 100_000) st tx =
  let r_ss = records_space st in
  let* rows = Client.range_all tx (Subspace.query ~snapshot ~limit r_ss ()) in
  Future.return
    (List.filter_map
       (fun (k, v) ->
         match Subspace.unpack r_ss k with
         | [ Tuple.Bytes p ] -> Some (p, v)
         | _ -> None)
       rows)

let lookup ?(limit = 100_000) st tx ~index ~entry =
  let e_ss =
    Subspace.sub st.ss (Tuple.String "i" :: Tuple.String index :: entry)
  in
  let* rows = Client.range_all tx (Subspace.query ~limit e_ss ()) in
  (* [entry] may be a prefix of the extracted tuple: whatever remains of
     the entry still precedes the trailing pkey element. *)
  Future.return
    (List.filter_map
       (fun (k, _) ->
         match List.rev (Subspace.unpack e_ss k) with
         | Tuple.Bytes p :: _ -> Some p
         | _ -> None)
       rows)

let counter_value st tx ~index ~group =
  let* v = Client.get tx (counter_key st index group) in
  Future.return (match v with None -> 0L | Some s -> of_le64 s)

let changes ?(limit = 100_000) st tx ~index =
  let p = vs_prefix st index in
  let from, until = Types.range_of_prefix p in
  let* rows = Client.range_all tx (Range_query.keys ~limit ~from ~until ()) in
  let plen = String.length p in
  Future.return
    (List.filter_map
       (fun (k, _) ->
         if String.length k < plen + 10 then None
         else
           let stamp = String.sub k plen 10 in
           match
             Tuple.unpack (String.sub k (plen + 10) (String.length k - plen - 10))
           with
           | [ Tuple.Bytes pkey ] -> Some (stamp, pkey)
           | _ -> None
           | exception _ -> None)
       rows)

(* ---------- the consistency oracle ---------- *)

(* One snapshot transaction recomputes what every index should contain
   from the base records and diffs it against what is actually stored.
   Returns human-readable discrepancies; [] means the maintenance
   invariant held. The versionstamp changelog is append-only history, so
   it is checked only for well-formedness. *)
let verify st tx =
  let* records = scan ~snapshot:true st tx in
  let issues = ref [] in
  let report fmt = Format.kasprintf (fun s -> issues := s :: !issues) fmt in
  let rec drain = function
    | [] -> Future.return ()
    | Value { name; extract } :: rest ->
        let expected =
          List.sort_uniq compare
            (List.concat_map
               (fun (p, v) ->
                 List.map
                   (fun e -> value_entry_key st name e p)
                   (extract ~pkey:p ~value:v))
               records)
        in
        let i_ss = Subspace.sub st.ss [ Tuple.String "i"; Tuple.String name ] in
        let* actual_rows =
          Client.range_all tx (Subspace.query ~snapshot:true ~limit:1_000_000 i_ss ())
        in
        let actual = List.map fst actual_rows in
        List.iter
          (fun k ->
            if not (List.mem k actual) then
              report "index %s: missing entry %s" name (String.escaped k))
          expected;
        List.iter
          (fun k ->
            if not (List.mem k expected) then
              report "index %s: stale entry %s" name (String.escaped k))
          actual;
        drain rest
    | Counter { name; group } :: rest ->
        let expected = Fdb_util.Det_tbl.create ~size:16 () in
        List.iter
          (fun (p, v) ->
            let k = counter_key st name (group ~pkey:p ~value:v) in
            Fdb_util.Det_tbl.replace expected k
              (Int64.add 1L
                 (Option.value ~default:0L (Fdb_util.Det_tbl.find_opt expected k))))
          records;
        let c_ss = Subspace.sub st.ss [ Tuple.String "c"; Tuple.String name ] in
        let* actual_rows =
          Client.range_all tx (Subspace.query ~snapshot:true ~limit:1_000_000 c_ss ())
        in
        List.iter
          (fun (k, v) ->
            let want =
              Option.value ~default:0L (Fdb_util.Det_tbl.find_opt expected k)
            in
            let got = of_le64 v in
            if got <> want then
              report "counter %s: %s holds %Ld, expected %Ld" name
                (String.escaped k) got want;
            Fdb_util.Det_tbl.remove expected k)
          actual_rows;
        Fdb_util.Det_tbl.iter
          (fun k want ->
            if want <> 0L then
              report "counter %s: %s missing, expected %Ld" name
                (String.escaped k) want)
          expected;
        drain rest
    | Versionstamp { name } :: rest ->
        let* entries = changes st tx ~index:name in
        List.iter
          (fun (stamp, _) ->
            if String.length stamp <> 10 then
              report "changelog %s: malformed stamp" name)
          entries;
        drain rest
  in
  let* () = drain st.defs in
  Future.return (List.rev !issues)
