module Tuple = Fdb_core.Tuple
module Types = Fdb_core.Types
module Range_query = Fdb_core.Range_query

type t = { prefix : string }

let of_raw prefix = { prefix }
let create tuple = { prefix = Tuple.pack tuple }
let sub t tuple = { prefix = t.prefix ^ Tuple.pack tuple }
let prefix t = t.prefix
let pack t tuple = t.prefix ^ Tuple.pack tuple

let contains t key = String.starts_with ~prefix:t.prefix key

let unpack t key =
  if not (contains t key) then invalid_arg "Subspace.unpack: key outside subspace";
  let plen = String.length t.prefix in
  Tuple.unpack (String.sub key plen (String.length key - plen))

(* Every key that packs a tuple inside the subspace: tuple encodings never
   begin with 0x00 or 0xff (those are terminator / reserved bytes), so
   [prefix 0x00, prefix 0xff) brackets them exactly — the standard FDB
   subspace range. *)
let range t = (t.prefix ^ "\x00", t.prefix ^ "\xff")

(* Every key that merely starts with the raw prefix (includes the bare
   prefix key itself and non-tuple suffixes). *)
let full_range t = Types.range_of_prefix t.prefix

let query ?limit ?mode ?reverse ?snapshot ?continuation t () =
  let from, until = range t in
  Range_query.keys ?limit ?mode ?reverse ?snapshot ?continuation ~from ~until ()
