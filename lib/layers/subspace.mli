(** Tuple-prefixed keyspaces — the layer ecosystem's unit of namespacing.

    A subspace is a raw byte prefix, usually the pack of a tuple; keys are
    formed by packing tuples inside it. Because the tuple encoding is
    order-preserving and prefix-compatible, tuple order inside a subspace
    equals byte order of the packed keys, so range scans over a subspace
    enumerate its tuples in order. *)

type t

val create : Fdb_core.Tuple.t -> t
(** Subspace rooted at the pack of the tuple. *)

val of_raw : string -> t
(** Subspace at an arbitrary raw prefix (e.g. a {!Directory} allocation). *)

val sub : t -> Fdb_core.Tuple.t -> t
(** Nested subspace: the tuple packed inside the parent. *)

val prefix : t -> string

val pack : t -> Fdb_core.Tuple.t -> string
(** A concrete key: the tuple packed inside the subspace. *)

val unpack : t -> string -> Fdb_core.Tuple.t
(** Inverse of {!pack}. Raises [Invalid_argument] if the key is outside
    the subspace or the remainder is not a valid tuple encoding. *)

val contains : t -> string -> bool

val range : t -> string * string
(** [\[prefix 0x00, prefix 0xff)]: every packed tuple inside the subspace
    (the standard FDB subspace range). *)

val full_range : t -> string * string
(** Every key with the raw prefix, including the bare prefix key itself —
    what {!Directory.remove} clears. *)

val query :
  ?limit:int ->
  ?mode:Fdb_core.Range_query.mode ->
  ?reverse:bool ->
  ?snapshot:bool ->
  ?continuation:string ->
  t ->
  unit ->
  Fdb_core.Range_query.t
(** A {!Fdb_core.Range_query.t} over {!range} — feed to [Client.range] /
    [Client.range_all]. *)
