open Fdb_sim
open Future.Syntax
module Tuple = Fdb_core.Tuple
module Types = Fdb_core.Types
module Client = Fdb_core.Client
module Range_query = Fdb_core.Range_query
module Mutation = Fdb_kv.Mutation

(* Directory metadata lives under the raw prefix 0xFE (just below the
   user-keyspace ceiling 0xFF); allocated directory contents live under
   0xFD. Both are ordinary user keys as far as the database core is
   concerned — the layer owns the convention, exactly as in FDB. *)
let node_root = Subspace.of_raw "\xfe"
let content_root = "\xfd"

let comps path = List.map (fun c -> Tuple.String c) path

(* The node key of a path carries the depth so that listing the children
   of [p] is one range scan over ("node", depth+1, p...) — flat keys, no
   per-level indirection. Its value is the directory's allocated raw
   prefix. *)
let node_key path =
  Subspace.pack node_root
    (Tuple.String "node" :: Tuple.Int (Int64.of_int (List.length path)) :: comps path)

let children_space path =
  Subspace.sub node_root
    (Tuple.String "node"
    :: Tuple.Int (Int64.of_int (List.length path + 1))
    :: comps path)

(* ---------- the high-contention allocator ---------- *)

(* Faithful to FDB's HCA: candidate ids are drawn randomly from a sliding
   window so concurrent allocators rarely collide; a window-utilization
   counter (maintained with conflict-free atomic adds) advances the window
   once it is half full. The only conflict-bearing operation is the final
   claim — a plain read + set of recent\[candidate\] — so two transactions
   claiming the same id conflict and one retries, which is exactly the
   uniqueness guarantee. *)

let hca_counters = Subspace.sub node_root [ Tuple.String "hca"; Tuple.Int 0L ]
let hca_recent = Subspace.sub node_root [ Tuple.String "hca"; Tuple.Int 1L ]

let le64 n =
  String.init 8 (fun i -> Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xFFL)))

let of_le64 s =
  let n = ref 0L in
  for i = min 7 (String.length s - 1) downto 0 do
    n := Int64.logor (Int64.shift_left !n 8) (Int64.of_int (Char.code s.[i]))
  done;
  !n

let window_size start =
  if start < 255 then 64 else if start < 65535 then 1024 else 8192

let rec allocate tx =
  (* Where does the current window start? Newest counter key, snapshot
     read: allocators must not conflict with each other here. *)
  let c_from, c_until = Subspace.range hca_counters in
  let* rows =
    Client.range_all tx
      (Range_query.keys ~snapshot:true ~reverse:true ~limit:1 ~from:c_from
         ~until:c_until ())
  in
  let start =
    match rows with
    | [] -> 0
    | (k, _) :: _ -> (
        match Subspace.unpack hca_counters k with
        | [ Tuple.Int n ] -> Int64.to_int n
        | _ -> 0)
  in
  let wsz = window_size start in
  let counter_key = Subspace.pack hca_counters [ Tuple.Int (Int64.of_int start) ] in
  Client.atomic_op tx Mutation.Add counter_key (le64 1L);
  let* count = Client.get ~snapshot:true tx counter_key in
  let count = match count with Some v -> Int64.to_int (of_le64 v) | None -> 0 in
  if count * 2 > wsz then begin
    (* Window half full: advance it and retire the old window's state
       (conflict-free — everyone advancing writes the same clears). *)
    let next = start + wsz in
    Client.clear_range tx ~from:c_from
      ~until:(Subspace.pack hca_counters [ Tuple.Int (Int64.of_int next) ]);
    Client.clear_range tx
      ~from:(fst (Subspace.range hca_recent))
      ~until:(Subspace.pack hca_recent [ Tuple.Int (Int64.of_int next) ]);
    allocate tx
  end
  else begin
    let candidate = start + Engine.random_int wsz in
    let claim_key = Subspace.pack hca_recent [ Tuple.Int (Int64.of_int candidate) ] in
    (* Plain (conflict-adding) read: two claimants of the same id conflict
       at the Resolver and one of them retries. *)
    let* existing = Client.get tx claim_key in
    match existing with
    | Some _ -> allocate tx
    | None ->
        Client.set tx claim_key "";
        Future.return candidate
  end

let prefix_of_id id = content_root ^ Tuple.pack [ Tuple.Int (Int64.of_int id) ]

(* ---------- the directory tree ---------- *)

let open_ tx path =
  if path = [] then Future.return (Some (Subspace.of_raw content_root))
  else
    let* v = Client.get tx (node_key path) in
    Future.return (Option.map Subspace.of_raw v)

let exists tx path =
  let* v = open_ tx path in
  Future.return (v <> None)

let rec create_or_open tx path =
  match path with
  | [] -> Future.return (Subspace.of_raw content_root)
  | _ -> (
      let* existing = Client.get tx (node_key path) in
      match existing with
      | Some prefix -> Future.return (Subspace.of_raw prefix)
      | None ->
          let parent = List.filteri (fun i _ -> i < List.length path - 1) path in
          let* _parent = create_or_open tx parent in
          let* id = allocate tx in
          let prefix = prefix_of_id id in
          Client.set tx (node_key path) prefix;
          Future.return (Subspace.of_raw prefix))

let list tx path =
  let ss = children_space path in
  let* rows = Client.range_all tx (Subspace.query ~limit:100_000 ss ()) in
  Future.return
    (List.filter_map
       (fun (k, _) ->
         match Subspace.unpack ss k with [ Tuple.String c ] -> Some c | _ -> None)
       rows)

let rec remove tx path =
  if path = [] then invalid_arg "Directory.remove: cannot remove the root";
  let* existing = Client.get tx (node_key path) in
  match existing with
  | None -> Future.return false
  | Some prefix ->
      let* children = list tx path in
      let rec drain = function
        | [] -> Future.return ()
        | c :: rest ->
            let* (_ : bool) = remove tx (path @ [ c ]) in
            drain rest
      in
      let* () = drain children in
      let c_from, c_until = Types.range_of_prefix prefix in
      Client.clear_range tx ~from:c_from ~until:c_until;
      Client.clear tx (node_key path);
      Future.return true
