(** The directory layer: human-readable paths mapped to transactionally
    allocated short key prefixes (paper §1: the "directory" building
    block).

    A directory is a path like [\["app"; "users"\]]; opening it yields a
    {!Subspace.t} rooted at a short allocated prefix, so layer data keys
    stay small no matter how long the path is. Prefix ids come from a
    high-contention allocator: candidates are drawn randomly from a
    sliding window (utilization tracked with conflict-free atomic adds),
    and only the final claim of an id carries a conflict range — so
    concurrent allocations across many clients rarely abort, and two
    claimants of the same id are serialized by the Resolver.

    All operations take effect inside the caller's transaction: a created
    directory is visible to others only once the transaction commits, and
    the allocator's claim conflicts protect uniqueness across concurrent
    creators. *)

val create_or_open :
  Fdb_core.Client.tx -> string list -> Subspace.t Fdb_sim.Future.t
(** Open the directory at the path, creating it (and any missing parents)
    with a freshly allocated prefix if absent. The empty path is the
    content root. Reopening an existing directory returns the same
    prefix. *)

val open_ :
  Fdb_core.Client.tx -> string list -> Subspace.t option Fdb_sim.Future.t
(** [None] if the directory does not exist. *)

val exists : Fdb_core.Client.tx -> string list -> bool Fdb_sim.Future.t

val list : Fdb_core.Client.tx -> string list -> string list Fdb_sim.Future.t
(** Names of the immediate children of the path (one range scan). *)

val remove : Fdb_core.Client.tx -> string list -> bool Fdb_sim.Future.t
(** Delete the directory, its contents, and all its children recursively;
    [false] if it did not exist. Raises [Invalid_argument] on the root. *)

(**/**)

val allocate : Fdb_core.Client.tx -> int Fdb_sim.Future.t
(** The raw high-contention allocator (exposed for tests). *)

val prefix_of_id : int -> string
