type atomic_kind =
  | Add
  | Bit_and
  | Bit_or
  | Bit_xor
  | Max
  | Min
  | Byte_max
  | Byte_min
  | Append_if_fits
  | Compare_and_clear

type t =
  | Set of string * string
  | Clear of string
  | Clear_range of string * string
  | Atomic of atomic_kind * string * string

(* Little-endian arithmetic over byte strings, FDB-style: operands are
   padded with zero bytes to the longer length; results have the operand's
   length for Add (carry beyond is dropped). *)

let get_byte s i = if i < String.length s then Char.code s.[i] else 0

let le_add a b =
  let n = String.length b in
  let out = Bytes.create n in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = get_byte a i + get_byte b i + !carry in
    Bytes.set out i (Char.chr (s land 0xff));
    carry := s lsr 8
  done;
  Bytes.to_string out

let le_bitop f a b =
  let n = max (String.length a) (String.length b) in
  String.init n (fun i -> Char.chr (f (get_byte a i) (get_byte b i) land 0xff))

let le_unsigned_compare a b =
  (* compare as little-endian unsigned integers of equal (padded) width *)
  let n = max (String.length a) (String.length b) in
  let rec go i = if i < 0 then 0 else
      let ca = get_byte a i and cb = get_byte b i in
      if ca <> cb then compare ca cb else go (i - 1)
  in
  go (n - 1)

let value_size_limit = 100_000

let atomic_result kind ~old_value operand =
  let old_v = Option.value old_value ~default:"" in
  match kind with
  | Add -> Some (le_add old_v operand)
  | Bit_and ->
      (* Missing key behaves as empty => all zeros => result all zeros of
         operand length, per FDB's AND semantics on missing keys. *)
      Some (le_bitop ( land ) old_v operand)
  | Bit_or -> Some (le_bitop ( lor ) old_v operand)
  | Bit_xor -> Some (le_bitop ( lxor ) old_v operand)
  | Max -> Some (if le_unsigned_compare old_v operand >= 0 then old_v else operand)
  | Min ->
      if old_value = None then Some operand
      else Some (if le_unsigned_compare old_v operand <= 0 then old_v else operand)
  | Byte_max -> Some (if old_v >= operand then old_v else operand)
  | Byte_min ->
      if old_value = None then Some operand
      else Some (if old_v <= operand then old_v else operand)
  | Append_if_fits ->
      if String.length old_v + String.length operand <= value_size_limit then
        Some (old_v ^ operand)
      else Some old_v
  | Compare_and_clear -> if old_value = Some operand then None else old_value

let byte_size = function
  | Set (k, v) -> String.length k + String.length v
  | Clear k -> String.length k
  | Clear_range (a, b) -> String.length a + String.length b
  | Atomic (_, k, v) -> String.length k + String.length v

let next_key k = k ^ "\x00"

let key_range = function
  | Set (k, _) | Clear k | Atomic (_, k, _) -> (k, next_key k)
  | Clear_range (a, b) -> (a, b)

let pp fmt = function
  | Set (k, v) -> Format.fprintf fmt "set(%S=%S)" k v
  | Clear k -> Format.fprintf fmt "clear(%S)" k
  | Clear_range (a, b) -> Format.fprintf fmt "clear_range(%S,%S)" a b
  | Atomic (_, k, v) -> Format.fprintf fmt "atomic(%S,%S)" k v
