(** The StorageServer's in-memory multi-version window (paper §2.4.4: "an
    unversioned SQLite B-tree and in-memory multi-versioned redo log data").

    Holds the last ~5 seconds of mutations, indexed two ways: a
    chronological log (for feeding the persistent store in order, and for
    rollback on recovery) and a per-key history plus range-tombstone list
    (for serving reads at a version). Only concrete mutations are stored —
    atomic ops must be materialized by the caller before {!apply}. *)

type t

type read_result =
  | Value of string  (** key present with this value at the read version *)
  | Cleared  (** key definitely absent at the read version *)
  | Unknown  (** no window event at or before the version: consult the
                 persistent store *)

val create : ?initial_version:int64 -> unit -> t

val apply : t -> int64 -> Mutation.t -> unit
(** Record a mutation at a commit version. Versions must be non-decreasing;
    [Atomic] mutations are rejected with [Invalid_argument]. *)

val read : ?floor:int64 -> t -> int64 -> string -> read_result
(** Visible state of a key at a version, considering newer-wins ordering of
    per-key events and covering range clears. Events at versions <= [floor]
    (default: none) are treated as nonexistent — used by a move destination
    whose persistent snapshot of the range already embodies them. *)

val keys_in_range : t -> from:string -> until:string -> string list
(** Keys with any window event in [\[from, until)], ascending. *)

val last_change : ?floor:int64 -> t -> string -> int64 option
(** Newest version (> [floor]) at which any window event — per-key or a
    covering range clear — touched the key; [None] if the window holds no
    such event. Watch registration uses this for catch-up: a watcher at
    version [w] with [last_change > w] already missed its change. *)

val cleared_ranges_at : ?floor:int64 -> t -> int64 -> (string * string) list
(** Range clears visible at the version (to mask persistent-store keys),
    excluding those at versions <= [floor]. *)

val pop_through : t -> int64 -> Mutation.t list
(** Remove and return the chronological prefix of mutations with version <=
    the argument, in application order — the batch that graduates to the
    persistent store when it leaves the MVCC window. *)

val pop_through_versioned : t -> int64 -> (int64 * Mutation.t) list
(** Like {!pop_through} but keeps each mutation's commit version, so the
    caller can skip mutations already embodied in a re-fetched snapshot. *)

val rollback : t -> after:int64 -> int
(** Discard all events with version > [after] (recovery §2.4.4); returns
    how many were dropped. *)

val latest : t -> int64
(** Highest version applied ([initial_version] if none). *)

val oldest : t -> int64
(** Lowest version still in the window (reads below this must go to the
    persistent store; the caller tracks whether that is safe). *)

val event_count : t -> int
(** Events currently buffered (Ratekeeper input). *)
