module Rng = Fdb_util.Det_rng

(* Classic skiplist with a sentinel head node of maximal height. Each node
   carries its forward pointers as an array; level i links skip ~2^i nodes. *)

type 'a node = {
  key : string;
  mutable value : 'a option; (* None only for the head sentinel *)
  forward : 'a node option array;
}

type 'a t = {
  rng : Rng.t;
  max_level : int;
  head : 'a node;
  mutable level : int; (* highest level currently in use *)
  mutable length : int;
}

let create ?(max_level = 24) ~rng () =
  {
    rng;
    max_level;
    head = { key = ""; value = None; forward = Array.make max_level None };
    level = 1;
    length = 0;
  }

let length t = t.length

let random_level t =
  let lvl = ref 1 in
  while !lvl < t.max_level && Rng.bool t.rng do
    incr lvl
  done;
  !lvl

(* Walk down from the top level, returning the rightmost node < key at
   level 0, recording the predecessor at each level in [update]. *)
let find_predecessors t key update =
  let x = ref t.head in
  for i = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(i) with
      | Some next when next.key < key -> x := next
      | _ -> continue := false
    done;
    match update with Some u -> u.(i) <- !x | None -> ()
  done;
  !x

let find t key =
  let pred = find_predecessors t key None in
  match pred.forward.(0) with
  | Some n when n.key = key -> n.value
  | _ -> None

let find_less_equal t key =
  let pred = find_predecessors t key None in
  match pred.forward.(0) with
  | Some n when n.key = key -> (
      match n.value with Some v -> Some (n.key, v) | None -> None)
  | _ -> (
      (* pred is the greatest node with key < probe *)
      match pred.value with Some v -> Some (pred.key, v) | None -> None)

let insert t key value =
  let update = Array.make t.max_level t.head in
  let pred = find_predecessors t key (Some update) in
  match pred.forward.(0) with
  | Some n when n.key = key -> n.value <- Some value
  | _ ->
      let lvl = random_level t in
      if lvl > t.level then begin
        for i = t.level to lvl - 1 do
          update.(i) <- t.head
        done;
        t.level <- lvl
      end;
      let node = { key; value = Some value; forward = Array.make lvl None } in
      for i = 0 to lvl - 1 do
        node.forward.(i) <- update.(i).forward.(i);
        update.(i).forward.(i) <- Some node
      done;
      t.length <- t.length + 1

let unlink t update (node : 'a node) =
  for i = 0 to Array.length node.forward - 1 do
    (match update.(i).forward.(i) with
    | Some n when n == node -> update.(i).forward.(i) <- node.forward.(i)
    | _ -> ());
    node.forward.(i) <- None
  done;
  t.length <- t.length - 1;
  while t.level > 1 && t.head.forward.(t.level - 1) = None do
    t.level <- t.level - 1
  done

let remove t key =
  let update = Array.make t.max_level t.head in
  let pred = find_predecessors t key (Some update) in
  match pred.forward.(0) with
  | Some n when n.key = key ->
      unlink t update n;
      true
  | _ -> false

let iter_range t ?from ?until f =
  let start =
    match from with
    | None -> t.head.forward.(0)
    | Some k ->
        let pred = find_predecessors t k None in
        pred.forward.(0)
  in
  let rec walk = function
    | None -> ()
    | Some n -> (
        match until with
        | Some u when n.key >= u -> ()
        | _ ->
            (match n.value with Some v -> f n.key v | None -> ());
            walk n.forward.(0))
  in
  walk start

let fold_range t ?from ?until f init =
  let acc = ref init in
  iter_range t ?from ?until (fun k v -> acc := f !acc k v);
  !acc

let remove_range t ~from ~until =
  let doomed = fold_range t ~from ~until (fun acc k _ -> k :: acc) [] in
  List.iter (fun k -> ignore (remove t k : bool)) doomed;
  List.length doomed

let to_list t = List.rev (fold_range t (fun acc k v -> (k, v) :: acc) [])

let check_invariants t =
  (* strictly increasing keys at every level; length consistent *)
  let ok = ref true in
  for i = 0 to t.level - 1 do
    let rec walk prev = function
      | None -> ()
      | Some n ->
          if prev >= n.key && not (prev = "" && n.key = "") then
            if prev >= n.key then ok := false;
          walk n.key n.forward.(i)
    in
    match t.head.forward.(i) with
    | None -> ()
    | Some first -> walk first.key first.forward.(i)
  done;
  let count = fold_range t (fun acc _ _ -> acc + 1) 0 in
  !ok && count = t.length
