module Rng = Fdb_util.Det_rng

(* Version-augmented skiplist (paper §2.4.2: the Resolver's [lastCommit]
   history is "a version augmented probabilistic SkipList" [56]).

   Classic Pugh skiplist with a sentinel head node of maximal height; level i
   links skip ~2^i nodes. On top of the forward pointers, every tower link
   carries the max and min "measure" (an int64 the caller extracts from the
   value, e.g. a commit version) over the sublist it skips. The annotations
   buy two O(log n) operations the resolver hot path needs:

   - [max_in_range]: the largest measure in [from, until) by summing skipped-
     link maxima along a greedy tallest-link descent (Algorithm 1's conflict
     test), instead of an O(k) level-0 scan;
   - [coalesce_below]: MVCC-window expiry. A node is coalescible under a
     floor iff its own measure AND its predecessor's are both below it, i.e.
     iff its "pair measure" max(measure prev, measure self) is below the
     floor. Links carry the min pair measure of the sublist they skip, so
     sublists holding nothing coalescible — including ones full of already-
     coalesced run heads — are skipped in one hop, and each expired run is
     spliced out in one bulk unlink. Expiry cost tracks the entries actually
     expiring, not the live history size. *)

type 'a node = {
  key : string;
  mutable value : 'a option; (* None only for the head sentinel *)
  forward : 'a node option array;
  (* Annotations over the skipped sublist (this, forward.(i)] — every node
     strictly after this one up to and including the link target. Neutral
     ([max_neutral]/[pairmin_neutral]) when forward.(i) is None. *)
  link_max : int64 array;
  link_pairmin : int64 array;
}

type 'a t = {
  rng : Rng.t;
  max_level : int;
  measure : 'a -> int64;
  head : 'a node;
  mutable level : int; (* highest level currently in use *)
  mutable length : int;
  mutable work : int; (* cumulative links traversed (cost accounting) *)
}

let max_neutral = Int64.min_int
let pairmin_neutral = Int64.max_int

let mk_node ~key ~value height =
  {
    key;
    value;
    forward = Array.make height None;
    link_max = Array.make height max_neutral;
    link_pairmin = Array.make height pairmin_neutral;
  }

let create ?(max_level = 24) ?(measure = fun _ -> 0L) ~rng () =
  {
    rng;
    max_level;
    measure;
    head = mk_node ~key:"" ~value:None max_level;
    level = 1;
    length = 0;
    work = 0;
  }

let length t = t.length
let work t = t.work

let node_measure t n = match n.value with Some v -> t.measure v | None -> max_neutral

(* A node's measure as a coalescing predecessor. The head sentinel reads as
   +inf so the first real entry's pair measure is +inf: never coalescible. *)
let pred_measure t n = match n.value with Some v -> t.measure v | None -> pairmin_neutral

let random_level t =
  let lvl = ref 1 in
  while !lvl < t.max_level && Rng.bool t.rng do
    incr lvl
  done;
  !lvl

(* Walk down from the top level, returning the rightmost node < key at
   level 0, recording the predecessor at each level in [update]. *)
let find_predecessors t key update =
  let x = ref t.head in
  for i = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      t.work <- t.work + 1;
      match !x.forward.(i) with
      | Some next when next.key < key -> x := next
      | _ -> continue := false
    done;
    match update with Some u -> u.(i) <- !x | None -> ()
  done;
  !x

let find t key =
  let pred = find_predecessors t key None in
  match pred.forward.(0) with
  | Some n when n.key = key -> n.value
  | _ -> None

let find_less_equal t key =
  let pred = find_predecessors t key None in
  match pred.forward.(0) with
  | Some n when n.key = key -> (
      match n.value with Some v -> Some (n.key, v) | None -> None)
  | _ -> (
      (* pred is the greatest node with key < probe *)
      match pred.value with Some v -> Some (pred.key, v) | None -> None)

(* Rebuild the level-[i] annotation of [x]'s link from the (already fresh)
   level-(i-1) links it spans: the segment (x, y] at level i is the union of
   the level-(i-1) segments of x and of every chain node strictly before y.
   Expected O(1): a level-i link skips ~2 level-(i-1) links. *)
let recompute t x i =
  match x.forward.(i) with
  | None ->
      x.link_max.(i) <- max_neutral;
      x.link_pairmin.(i) <- pairmin_neutral
  | Some y ->
      if i = 0 then begin
        (* Level 0 skips exactly {y}, whose predecessor is x itself. *)
        let m = node_measure t y in
        let p = pred_measure t x in
        x.link_max.(0) <- m;
        x.link_pairmin.(0) <- (if p > m then p else m)
      end
      else begin
        let mx = ref max_neutral and mn = ref pairmin_neutral in
        let c = ref x in
        let continue = ref true in
        while !continue do
          t.work <- t.work + 1;
          if !c.link_max.(i - 1) > !mx then mx := !c.link_max.(i - 1);
          if !c.link_pairmin.(i - 1) < !mn then mn := !c.link_pairmin.(i - 1);
          match !c.forward.(i - 1) with
          | Some n when n != y -> c := n
          | _ -> continue := false
        done;
        x.link_max.(i) <- !mx;
        x.link_pairmin.(i) <- !mn
      end

(* Every link along the search path spans the changed sublist; rebuild the
   annotations bottom-up (level i reads level i-1). [touched] is the node
   inserted or updated in place: its own links are refreshed at each level
   too (its measure feeds its level-0 pair annotation) before any
   predecessor link that chains across them. *)
let refresh_path ?touched t update =
  for i = 0 to t.level - 1 do
    (match touched with
    | Some (n : 'a node) when i < Array.length n.forward -> recompute t n i
    | _ -> ());
    recompute t update.(i) i
  done

let insert t key value =
  let update = Array.make t.max_level t.head in
  let pred = find_predecessors t key (Some update) in
  match pred.forward.(0) with
  | Some n when n.key = key ->
      n.value <- Some value;
      (* The measure may have changed: refresh every link covering [n] and
         [n]'s own links (the successor's pair measure reads [n]). *)
      refresh_path ~touched:n t update
  | _ ->
      let lvl = random_level t in
      if lvl > t.level then begin
        for i = t.level to lvl - 1 do
          update.(i) <- t.head
        done;
        t.level <- lvl
      end;
      let node = mk_node ~key ~value:(Some value) lvl in
      for i = 0 to lvl - 1 do
        node.forward.(i) <- update.(i).forward.(i);
        update.(i).forward.(i) <- Some node
      done;
      t.length <- t.length + 1;
      refresh_path ~touched:node t update

let unlink t update (node : 'a node) =
  for i = 0 to Array.length node.forward - 1 do
    (match update.(i).forward.(i) with
    | Some n when n == node -> update.(i).forward.(i) <- node.forward.(i)
    | _ -> ());
    node.forward.(i) <- None
  done;
  t.length <- t.length - 1;
  while t.level > 1 && t.head.forward.(t.level - 1) = None do
    t.level <- t.level - 1
  done

let remove t key =
  let update = Array.make t.max_level t.head in
  let pred = find_predecessors t key (Some update) in
  match pred.forward.(0) with
  | Some n when n.key = key ->
      let lvls = t.level in
      unlink t update n;
      for i = 0 to lvls - 1 do
        recompute t update.(i) i
      done;
      true
  | _ -> false

let iter_range t ?from ?until f =
  let start =
    match from with
    | None -> t.head.forward.(0)
    | Some k ->
        let pred = find_predecessors t k None in
        pred.forward.(0)
  in
  let rec walk = function
    | None -> ()
    | Some n -> (
        match until with
        | Some u when n.key >= u -> ()
        | _ ->
            (match n.value with Some v -> f n.key v | None -> ());
            walk n.forward.(0))
  in
  walk start

let fold_range t ?from ?until f init =
  let acc = ref init in
  iter_range t ?from ?until (fun k v -> acc := f !acc k v);
  !acc

(* Bulk unlink of [from, until); [until = None] means to the end. One
   predecessor walk, one splice per level, then a bottom-up annotation
   refresh: O(log n + removed). *)
let remove_span t ~from ~until =
  let in_span k = match until with None -> true | Some u -> k < u in
  if not (in_span from) then 0
  else begin
    let update = Array.make t.max_level t.head in
    ignore (find_predecessors t from (Some update) : 'a node);
    let count = ref 0 in
    let c = ref update.(0).forward.(0) in
    let continue = ref true in
    while !continue do
      t.work <- t.work + 1;
      match !c with
      | Some n when in_span n.key ->
          incr count;
          c := n.forward.(0)
      | _ -> continue := false
    done;
    if !count = 0 then 0
    else begin
      let lvls = t.level in
      for i = 0 to lvls - 1 do
        let rec first_survivor = function
          | Some (n : 'a node) when in_span n.key ->
              t.work <- t.work + 1;
              first_survivor n.forward.(i)
          | other -> other
        in
        update.(i).forward.(i) <- first_survivor update.(i).forward.(i)
      done;
      t.length <- t.length - !count;
      while t.level > 1 && t.head.forward.(t.level - 1) = None do
        t.level <- t.level - 1
      done;
      for i = 0 to lvls - 1 do
        recompute t update.(i) i
      done;
      !count
    end
  end

let remove_range t ~from ~until = remove_span t ~from ~until:(Some until)

let max_in_range t ~from ~until =
  if from >= until then max_neutral
  else begin
    let pred = find_predecessors t from None in
    match pred.forward.(0) with
    | Some first when first.key < until ->
        (* Greedy tallest-link walk from the first in-range node: each jump
           stays < until and contributes its skipped sublist's max in O(1).
           Expected O(log n): levels escalate geometrically going right. *)
        let best = ref (node_measure t first) in
        let cur = ref first in
        let continue = ref true in
        while !continue do
          let stepped = ref false in
          let j = ref (Array.length !cur.forward - 1) in
          while (not !stepped) && !j >= 0 do
            t.work <- t.work + 1;
            (match !cur.forward.(!j) with
            | Some tgt when tgt.key < until ->
                if !cur.link_max.(!j) > !best then best := !cur.link_max.(!j);
                cur := tgt;
                stepped := true
            | _ -> ());
            decr j
          done;
          if not !stepped then continue := false
        done;
        !best
    | _ -> max_neutral
  end

(* Last node of the all-old run starting at [n]: repeatedly take the tallest
   link whose skipped sublist is entirely below the floor. *)
let run_end t floor n =
  let cur = ref n in
  let continue = ref true in
  while !continue do
    let stepped = ref false in
    let j = ref (Array.length !cur.forward - 1) in
    while (not !stepped) && !j >= 0 do
      t.work <- t.work + 1;
      (match !cur.forward.(!j) with
      | Some tgt when !cur.link_max.(!j) < floor ->
          cur := tgt;
          stepped := true
      | _ -> ());
      decr j
    done;
    if not !stepped then continue := false
  done;
  !cur

let coalesce_below t floor =
  let removed = ref 0 in
  (* A node is coalescible iff its pair measure (max of its own and its
     predecessor's) is below the floor. From the current node, hop over the
     tallest link whose skipped sublist holds nothing coalescible
     (pairmin >= floor); otherwise the level-0 successor is coalescible —
     splice out the whole all-old run it starts in one bulk unlink. The walk
     descends only toward entries actually expiring: sublists that are fully
     coalesced already (old run heads fenced by live entries) are flown over. *)
  let rec walk (n : 'a node) =
    t.work <- t.work + 1;
    let dest = ref None in
    let found = ref false in
    let j = ref (Array.length n.forward - 1) in
    while (not !found) && !j >= 0 do
      t.work <- t.work + 1;
      (match n.forward.(!j) with
      | Some tgt when n.link_pairmin.(!j) >= floor ->
          dest := Some tgt;
          found := true
      | _ -> ());
      decr j
    done;
    match !dest with
    | Some tgt -> walk tgt
    | None -> (
        (* No hop: either at the end, or forward.(0) is coalescible. *)
        match n.forward.(0) with
        | None -> ()
        | Some y ->
            (* [y .. run_end] are all below the floor, and y's predecessor
               too: the whole run goes at once. *)
            let e = run_end t floor y in
            let survivor = e.forward.(0) in
            let until = match survivor with Some s -> Some s.key | None -> None in
            removed := !removed + remove_span t ~from:y.key ~until;
            (match survivor with Some _ -> walk n | None -> ()))
  in
  walk t.head;
  !removed

let to_list t = List.rev (fold_range t (fun acc k v -> (k, v) :: acc) [])

let check_invariants t =
  let ok = ref true in
  (* strictly increasing keys at every level *)
  for i = 0 to t.level - 1 do
    let rec walk prev = function
      | None -> ()
      | Some n ->
          if prev >= n.key then ok := false;
          walk n.key n.forward.(i)
    in
    match t.head.forward.(i) with
    | None -> ()
    | Some first -> walk first.key first.forward.(i)
  done;
  (* length consistent *)
  let count = fold_range t (fun acc _ _ -> acc + 1) 0 in
  if count <> t.length then ok := false;
  (* every link annotation equals a level-0 recomputation of its sublist *)
  for i = 0 to t.level - 1 do
    let rec seg (x : 'a node) =
      match x.forward.(i) with
      | None ->
          if x.link_max.(i) <> max_neutral || x.link_pairmin.(i) <> pairmin_neutral
          then ok := false
      | Some y ->
          let mx = ref max_neutral and mn = ref pairmin_neutral in
          let c = ref x in
          (try
             while !c != y do
               match !c.forward.(0) with
               | None ->
                   ok := false;
                   raise Exit
               | Some n ->
                   let m = node_measure t n in
                   let p = pred_measure t !c in
                   let pair = if p > m then p else m in
                   if m > !mx then mx := m;
                   if pair < !mn then mn := pair;
                   c := n
             done
           with Exit -> ());
          if x.link_max.(i) <> !mx || x.link_pairmin.(i) <> !mn then ok := false;
          seg y
    in
    seg t.head
  done;
  !ok
