(** The Resolver's [lastCommit] history (paper §2.4.2, Algorithm 1): a map
    from key ranges to the commit version that last wrote them, stored as a
    version-augmented skiplist of range-start keys.

    An entry at key [k] with version [v] means: the range from [k] to the
    next entry's key was last modified at commit version [v]. The map always
    covers the whole keyspace (a root entry at [""]). *)

type t

val create : rng:Fdb_util.Det_rng.t -> unit -> t
(** Everything initially at version 0. *)

val note_write : t -> from:string -> until:string -> int64 -> unit
(** Record that [\[from, until)] was modified at the given commit version
    (expected monotonically non-decreasing across calls). *)

val max_version : t -> from:string -> until:string -> int64
(** Largest commit version recorded for any key in [\[from, until)] —
    the left-hand side of Algorithm 1's conflict test. *)

val expire : t -> before:int64 -> unit
(** Coalesce history older than [before] (the MVCC-window floor): adjacent
    ranges whose versions are all below [before] are merged, and
    {!oldest} rises to [before]. Transactions with a read version below
    {!oldest} can no longer be checked and must be aborted as too old. *)

val oldest : t -> int64
(** Lower bound below which history has been coalesced away. *)

val entry_count : t -> int
(** Number of range entries (memory accounting / Ratekeeper input). *)

val work : t -> int
(** Cumulative skiplist links traversed by all operations so far — the
    conflict-check cost meter the resolver publishes per batch. *)

val check_invariants : t -> bool
(** Underlying skiplist structural + annotation self-check (property tests). *)
