(** Probabilistic skiplist over string keys (Pugh [56], as used by the
    paper's Resolvers for the [lastCommit] history).

    Expected O(log n) search/insert/delete. The tower heights come from a
    caller-supplied deterministic RNG so simulation runs stay reproducible. *)

type 'a t

val create : ?max_level:int -> rng:Fdb_util.Det_rng.t -> unit -> 'a t
(** An empty skiplist; [max_level] defaults to 24. *)

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Exact-key lookup. *)

val find_less_equal : 'a t -> string -> (string * 'a) option
(** Greatest entry with key <= the probe (the covering range start, for
    range-version queries). *)

val insert : 'a t -> string -> 'a -> unit
(** Insert or replace. *)

val remove : 'a t -> string -> bool
(** Delete; returns whether the key was present. *)

val iter_range : 'a t -> ?from:string -> ?until:string -> (string -> 'a -> unit) -> unit
(** Visit entries with [from <= key < until] in key order ([from] defaults
    to the beginning, [until] to the end). *)

val fold_range :
  'a t -> ?from:string -> ?until:string -> ('acc -> string -> 'a -> 'acc) -> 'acc -> 'acc

val remove_range : 'a t -> from:string -> until:string -> int
(** Delete every entry with [from <= key < until]; returns the count. *)

val to_list : 'a t -> (string * 'a) list
(** All entries in key order (tests/debugging). *)

val check_invariants : 'a t -> bool
(** Structural self-check: keys strictly sorted at every level, towers
    consistent. For property tests. *)
