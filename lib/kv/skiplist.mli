(** Version-augmented probabilistic skiplist over string keys (Pugh [56], as
    the paper's Resolvers use for the [lastCommit] history, §2.4.2).

    Expected O(log n) search/insert/delete. Every tower link additionally
    carries the max and min {i measure} — an int64 the caller extracts from
    the value, e.g. a commit version — of the sublist it skips, maintained
    on every mutation. The annotations make {!max_in_range} (the resolver's
    range conflict check) and {!coalesce_below} (MVCC-window expiry) sublinear
    instead of O(k) scans. The tower heights come from a caller-supplied
    deterministic RNG so simulation runs stay reproducible. *)

type 'a t

val create :
  ?max_level:int -> ?measure:('a -> int64) -> rng:Fdb_util.Det_rng.t -> unit -> 'a t
(** An empty skiplist; [max_level] defaults to 24. [measure] extracts the
    int64 the link annotations aggregate (default: constant [0L], for uses
    that never call the augmented queries). *)

val length : 'a t -> int

val work : 'a t -> int
(** Cumulative number of links traversed by every operation so far — the
    data structure's own cost meter (published per batch by the resolver as
    the [batch_check_cost] gauge, and used by benches/tests to assert the
    O(log n) bound). *)

val find : 'a t -> string -> 'a option
(** Exact-key lookup. *)

val find_less_equal : 'a t -> string -> (string * 'a) option
(** Greatest entry with key <= the probe (the covering range start, for
    range-version queries). *)

val insert : 'a t -> string -> 'a -> unit
(** Insert or replace; link annotations along the search path are refreshed
    in the same walk. *)

val remove : 'a t -> string -> bool
(** Delete; returns whether the key was present. *)

val iter_range : 'a t -> ?from:string -> ?until:string -> (string -> 'a -> unit) -> unit
(** Visit entries with [from <= key < until] in key order ([from] defaults
    to the beginning, [until] to the end). *)

val fold_range :
  'a t -> ?from:string -> ?until:string -> ('acc -> string -> 'a -> 'acc) -> 'acc -> 'acc

val remove_range : 'a t -> from:string -> until:string -> int
(** Delete every entry with [from <= key < until]; returns the count.
    Bulk splice: O(log n + removed), not one search per removed key. *)

val max_in_range : 'a t -> from:string -> until:string -> int64
(** Largest measure among entries with [from <= key < until], in expected
    O(log n): a greedy tallest-link descent summing skipped-link maxima.
    [Int64.min_int] when the range holds no entry. *)

val coalesce_below : 'a t -> int64 -> int
(** [coalesce_below t floor] removes every entry whose measure is below
    [floor] and whose predecessor's measure is also below [floor] — i.e.
    each maximal run of consecutive below-floor entries keeps only its first
    entry (the first entry of the list is never removed). Returns the number
    removed. Incremental: tower links whose sublist is entirely at-or-above
    the floor ([link_min >= floor]) are skipped in one hop, and each all-old
    run is spliced out in one bulk unlink — cost is proportional to the
    expired runs touched, never the whole list, and nothing is materialized. *)

val to_list : 'a t -> (string * 'a) list
(** All entries in key order (tests/debugging). *)

val check_invariants : 'a t -> bool
(** Structural self-check: keys strictly sorted at every level, towers
    consistent, and every link's (max, min) annotation equal to a direct
    level-0 recomputation of the sublist it skips. For property tests. *)
