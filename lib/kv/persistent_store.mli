(** The unversioned durable store under each StorageServer — our stand-in
    for the paper's modified SQLite B-tree.

    An ordered in-memory map backed by a write-ahead log on a simulated
    {!Fdb_sim.Disk}: mutations append sequenced WAL records; {!commit}
    syncs them; a checkpoint (full snapshot record) is taken when the WAL
    grows long, after which the WAL is truncated. {!recover} rebuilds the
    map from the newest durable snapshot plus the contiguous WAL suffix —
    torn tails (buggified crashes) are detected via sequence-number gaps
    and discarded, so recovery never surfaces unsynced data as durable. *)

type t

val recover :
  disk:Fdb_sim.Disk.t -> prefix:string -> ?checkpoint_every:int -> unit -> t Fdb_sim.Future.t
(** Open (creating if absent) the store persisted under [prefix] on [disk].
    [checkpoint_every] is the WAL length that triggers a snapshot
    (default 5000 records). *)

val get : t -> string -> string option
(** Point read from the in-memory image (the B-tree cache). *)

val get_range : t -> ?limit:int -> from:string -> until:string -> unit -> (string * string) list
(** Ascending entries with [from <= key < until], at most [limit]. *)

val prev_entry : t -> before:string -> (string * string) option
(** Greatest entry with key < [before] (reverse iteration support). *)

val apply : t -> Mutation.t list -> unit Fdb_sim.Future.t
(** Apply a batch in order: updates the image and appends WAL records.
    Not durable until {!commit}. [Atomic] mutations are rejected. *)

val commit : t -> unit Fdb_sim.Future.t
(** Sync the WAL (and take a checkpoint if it is due). *)

val last_seq : t -> int
(** Sequence number of the newest applied mutation (monotonic). *)

val entry_count : t -> int
val byte_size : t -> int
(** Approximate logical size (sum of key+value lengths). *)
