type t = { sl : int64 Skiplist.t; mutable oldest : int64 }

let create ~rng () =
  let sl = Skiplist.create ~measure:Fun.id ~rng () in
  Skiplist.insert sl "" 0L;
  { sl; oldest = 0L }

let covering_version t key =
  match Skiplist.find_less_equal t.sl key with
  | Some (_, v) -> v
  | None -> 0L (* unreachable: root entry always present *)

let note_write t ~from ~until version =
  if from < until then begin
    (* Split at [until] first so the tail keeps its old version, then at
       [from], then raise everything in between. *)
    (match Skiplist.find t.sl until with
    | Some _ -> ()
    | None -> Skiplist.insert t.sl until (covering_version t until));
    (* Raising [from..until) to [version] subsumes interior splits: drop
       interior entries and write a single one at [from]. *)
    let prev = covering_version t from in
    ignore (Skiplist.remove_range t.sl ~from ~until : int);
    Skiplist.insert t.sl from (if version > prev then version else prev)
  end

let max_version t ~from ~until =
  if from >= until then 0L
  else begin
    (* Covering entry at-or-before [from], then the O(log n) augmented
       descent over the entries inside the range (Int64.min_int if none). *)
    let cover = covering_version t from in
    let inner = Skiplist.max_in_range t.sl ~from ~until in
    if inner > cover then inner else cover
  end

let expire t ~before =
  if before > t.oldest then begin
    t.oldest <- before;
    (* Runs of consecutive entries that are all below the floor are
       indistinguishable to any admissible (read_version >= floor)
       transaction: keep each run's first entry, drop the rest. The
       skiplist walks only the expired runs via its link annotations. *)
    ignore (Skiplist.coalesce_below t.sl before : int)
  end

let oldest t = t.oldest
let entry_count t = Skiplist.length t.sl
let work t = Skiplist.work t.sl
let check_invariants t = Skiplist.check_invariants t.sl
