type t = { sl : int64 Skiplist.t; mutable oldest : int64 }

let create ~rng () =
  let sl = Skiplist.create ~rng () in
  Skiplist.insert sl "" 0L;
  { sl; oldest = 0L }

let covering_version t key =
  match Skiplist.find_less_equal t.sl key with
  | Some (_, v) -> v
  | None -> 0L (* unreachable: root entry always present *)

let note_write t ~from ~until version =
  if from < until then begin
    (* Split at [until] first so the tail keeps its old version, then at
       [from], then raise everything in between. *)
    (match Skiplist.find t.sl until with
    | Some _ -> ()
    | None -> Skiplist.insert t.sl until (covering_version t until));
    (* Raising [from..until) to [version] subsumes interior splits: drop
       interior entries and write a single one at [from]. *)
    let prev = covering_version t from in
    ignore (Skiplist.remove_range t.sl ~from ~until : int);
    Skiplist.insert t.sl from (if version > prev then version else prev)
  end

let max_version t ~from ~until =
  if from >= until then 0L
  else begin
    let best = ref (covering_version t from) in
    Skiplist.iter_range t.sl ~from ~until (fun _ v -> if v > !best then best := v);
    !best
  end

let expire t ~before =
  if before > t.oldest then begin
    t.oldest <- before;
    (* Merge runs of consecutive entries that are all below the floor: they
       are indistinguishable to any admissible (read_version >= floor)
       transaction. *)
    let entries = Skiplist.to_list t.sl in
    let rec walk prev_old = function
      | [] -> ()
      | (k, v) :: rest ->
          let old = v < before in
          if old && prev_old && k <> "" then ignore (Skiplist.remove t.sl k : bool);
          walk old rest
    in
    match entries with
    | [] -> ()
    | (_, v0) :: rest -> walk (v0 < before) rest
  end

let oldest t = t.oldest
let entry_count t = Skiplist.length t.sl
