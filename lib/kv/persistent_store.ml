open Fdb_sim
open Future.Syntax
module KeyMap = Map.Make (String)

type t = {
  disk : Disk.t;
  wal_file : string;
  snap_file : string;
  checkpoint_every : int;
  mutable map : string KeyMap.t;
  mutable seq : int;
  mutable wal_len : int;
  mutable bytes : int;
}

type wal_record = { wr_seq : int; wr_mut : Mutation.t }
type snapshot = { sn_seq : int; sn_entries : (string * string) list }

let encode_wal r : string = Marshal.to_string (r : wal_record) []
let decode_wal (s : string) : wal_record option =
  match (Marshal.from_string s 0 : wal_record) with
  | r -> Some r
  | exception _ -> None

let encode_snap s : string = Marshal.to_string (s : snapshot) []
let decode_snap (s : string) : snapshot option =
  match (Marshal.from_string s 0 : snapshot) with
  | sn -> Some sn
  | exception _ -> None

let apply_mutation_to_map map (m : Mutation.t) =
  match m with
  | Mutation.Set (k, v) -> KeyMap.add k v map
  | Mutation.Clear k -> KeyMap.remove k map
  | Mutation.Clear_range (a, b) ->
      KeyMap.filter (fun k _ -> k < a || k >= b) map
  | Mutation.Atomic _ -> invalid_arg "Persistent_store: unmaterialized atomic"

let recompute_bytes map =
  KeyMap.fold (fun k v acc -> acc + String.length k + String.length v) map 0

let recover ~disk ~prefix ?(checkpoint_every = 5000) () =
  let wal_file = prefix ^ ".wal" and snap_file = prefix ^ ".snap" in
  let* snaps = Disk.read_all disk snap_file in
  let base =
    List.fold_left
      (fun acc rec_ ->
        match decode_snap rec_ with
        | Some sn -> (
            match acc with
            | Some best when best.sn_seq >= sn.sn_seq -> acc
            | _ -> Some sn)
        | None -> acc)
      None snaps
  in
  let map0, seq0 =
    match base with
    | Some sn ->
        (List.fold_left (fun m (k, v) -> KeyMap.add k v m) KeyMap.empty sn.sn_entries,
         sn.sn_seq)
    | None -> (KeyMap.empty, 0)
  in
  let* wal = Disk.read_all disk wal_file in
  (* Replay the contiguous suffix: skip records covered by the snapshot,
     stop at the first gap (torn tail after a buggified crash). *)
  let map, seq =
    List.fold_left
      (fun (map, seq) rec_ ->
        match decode_wal rec_ with
        | Some r when r.wr_seq <= seq -> (map, seq)
        | Some r when r.wr_seq = seq + 1 -> (apply_mutation_to_map map r.wr_mut, r.wr_seq)
        | Some _ | None -> (map, seq) (* gap or corruption: ignore the rest *))
      (map0, seq0) wal
  in
  Future.return
    {
      disk;
      wal_file;
      snap_file;
      checkpoint_every;
      map;
      seq;
      wal_len = seq - seq0;
      bytes = recompute_bytes map;
    }

let get t key = KeyMap.find_opt key t.map

let get_range t ?(limit = max_int) ~from ~until () =
  let out = ref [] in
  let n = ref 0 in
  (try
     KeyMap.to_seq_from from t.map
     |> Seq.iter (fun (k, v) ->
            if k >= until || !n >= limit then raise Exit;
            out := (k, v) :: !out;
            incr n)
   with Exit -> ());
  List.rev !out

let prev_entry t ~before =
  KeyMap.find_last_opt (fun k -> k < before) t.map

let apply t mutations =
  let futures =
    List.map
      (fun m ->
        t.seq <- t.seq + 1;
        t.wal_len <- t.wal_len + 1;
        (match m with
        | Mutation.Set (k, v) ->
            (match KeyMap.find_opt k t.map with
            | Some old -> t.bytes <- t.bytes - String.length k - String.length old
            | None -> ());
            t.bytes <- t.bytes + String.length k + String.length v
        | Mutation.Clear k -> (
            match KeyMap.find_opt k t.map with
            | Some old -> t.bytes <- t.bytes - String.length k - String.length old
            | None -> ())
        | Mutation.Clear_range (a, b) ->
            KeyMap.to_seq_from a t.map
            |> Seq.iter (fun (k, v) ->
                   if k < b then t.bytes <- t.bytes - String.length k - String.length v)
        | Mutation.Atomic _ -> invalid_arg "Persistent_store: unmaterialized atomic");
        t.map <- apply_mutation_to_map t.map m;
        Disk.append t.disk t.wal_file (encode_wal { wr_seq = t.seq; wr_mut = m }))
      mutations
  in
  Future.all_unit futures

let checkpoint t =
  let snapshot = { sn_seq = t.seq; sn_entries = KeyMap.bindings t.map } in
  let* () = Disk.append t.disk t.snap_file (encode_snap snapshot) in
  let* () = Disk.sync t.disk t.snap_file in
  let* () = Disk.delete t.disk t.wal_file in
  t.wal_len <- 0;
  Future.return ()

let commit t =
  let* () = Disk.sync t.disk t.wal_file in
  if t.wal_len >= t.checkpoint_every then checkpoint t else Future.return ()

let last_seq t = t.seq
let entry_count t = KeyMap.cardinal t.map
let byte_size t = t.bytes
