module KeyMap = Map.Make (String)

type key_event = {
  ev : int64;
  seq : int; (* application order within a commit version *)
  set : string option; (* None = cleared *)
}

type read_result = Value of string | Cleared | Unknown

type t = {
  mutable per_key : key_event list KeyMap.t; (* newest event first *)
  mutable seq : int;
  mutable tombstones : (int64 * int * string * string) list; (* newest first *)
  mutable log_front : (int64 * Mutation.t) list; (* oldest first *)
  mutable log_rear : (int64 * Mutation.t) list; (* newest first *)
  mutable latest : int64;
  mutable oldest : int64;
  mutable events : int;
}

let create ?(initial_version = 0L) () =
  {
    per_key = KeyMap.empty;
    seq = 0;
    tombstones = [];
    log_front = [];
    log_rear = [];
    latest = initial_version;
    oldest = initial_version;
    events = 0;
  }

let push_key_event t key event =
  t.per_key <-
    KeyMap.update key
      (function None -> Some [ event ] | Some l -> Some (event :: l))
      t.per_key

let apply t version (m : Mutation.t) =
  if version < t.latest then invalid_arg "Version_window.apply: version regression";
  t.seq <- t.seq + 1;
  (* Mutations within one commit version apply in submission order; the
     sequence number breaks version ties (a range clear after a set in the
     same transaction must win, and vice versa). *)
  (match m with
  | Mutation.Set (k, v) -> push_key_event t k { ev = version; seq = t.seq; set = Some v }
  | Mutation.Clear k -> push_key_event t k { ev = version; seq = t.seq; set = None }
  | Mutation.Clear_range (a, b) -> t.tombstones <- (version, t.seq, a, b) :: t.tombstones
  | Mutation.Atomic _ -> invalid_arg "Version_window.apply: unmaterialized atomic");
  t.log_rear <- (version, m) :: t.log_rear;
  t.latest <- version;
  t.events <- t.events + 1

let newest_key_event t ~floor version key =
  match KeyMap.find_opt key t.per_key with
  | None -> None
  | Some events -> List.find_opt (fun e -> e.ev <= version && e.ev > floor) events

let newest_tombstone t ~floor version key =
  List.fold_left
    (fun acc (v, sq, a, b) ->
      if v <= version && v > floor && a <= key && key < b then
        match acc with Some (v', sq') when (v', sq') >= (v, sq) -> acc | _ -> Some (v, sq)
      else acc)
    None t.tombstones

(* [floor]: events at versions <= floor are treated as nonexistent. A server
   that re-fetched a range as a move destination holds a pstore snapshot that
   already embodies every mutation <= the fetch version; stale window entries
   from before the fetch (earlier dual-tag traffic, or a previous era of
   owning the range) must not shadow it. *)
let read ?(floor = Int64.min_int) t version key =
  let key_ev = newest_key_event t ~floor version key in
  let tomb = newest_tombstone t ~floor version key in
  match (key_ev, tomb) with
  | None, None -> Unknown
  | Some { set; _ }, None -> ( match set with Some v -> Value v | None -> Cleared)
  | None, Some _ -> Cleared
  | Some { ev; seq; set }, Some (tv, tseq) ->
      if (tv, tseq) > (ev, seq) then Cleared
      else ( match set with Some v -> Value v | None -> Cleared)

(* Newest version at which anything in the window touched [key] — per-key
   events and covering range clears both count. Registration-time catch-up
   for watches: a watcher at version w with [last_change > w] missed a
   change and must be woken immediately. *)
let last_change ?(floor = Int64.min_int) t key =
  let key_v =
    match KeyMap.find_opt key t.per_key with
    | Some ({ ev; _ } :: _) when ev > floor -> Some ev (* newest first *)
    | _ -> None
  in
  let tomb_v =
    List.fold_left
      (fun acc (v, _, a, b) ->
        if v > floor && a <= key && key < b then
          match acc with Some v' when v' >= v -> acc | _ -> Some v
        else acc)
      None t.tombstones
  in
  match (key_v, tomb_v) with
  | None, None -> None
  | Some v, None | None, Some v -> Some v
  | Some a, Some b -> Some (if a > b then a else b)

let keys_in_range t ~from ~until =
  KeyMap.to_seq_from from t.per_key
  |> Seq.take_while (fun (k, _) -> k < until)
  |> Seq.map fst |> List.of_seq

let cleared_ranges_at ?(floor = Int64.min_int) t version =
  List.filter_map
    (fun (v, _, a, b) -> if v <= version && v > floor then Some (a, b) else None)
    t.tombstones

(* Remove index entries for a mutation that is leaving the window. Events
   with version <= bound form the oldest suffix of each newest-first list. *)
let unindex t bound (m : Mutation.t) =
  let trim key =
    t.per_key <-
      KeyMap.update key
        (function
          | None -> None
          | Some events -> (
              match List.filter (fun e -> e.ev > bound) events with
              | [] -> None
              | l -> Some l))
        t.per_key
  in
  match m with
  | Mutation.Set (k, _) | Mutation.Clear k -> trim k
  | Mutation.Clear_range _ ->
      t.tombstones <- List.filter (fun (v, _, _, _) -> v > bound) t.tombstones
  | Mutation.Atomic _ -> ()

let pop_through_versioned t bound =
  let rec take acc =
    match t.log_front with
    | ((v, m) as entry) :: rest when v <= bound ->
        t.log_front <- rest;
        t.events <- t.events - 1;
        unindex t bound m;
        take (entry :: acc)
    | [] when t.log_rear <> [] ->
        t.log_front <- List.rev t.log_rear;
        t.log_rear <- [];
        take acc
    | _ -> List.rev acc
  in
  let popped = take [] in
  if bound > t.oldest then t.oldest <- bound;
  popped

let pop_through t bound = List.map snd (pop_through_versioned t bound)

let rollback t ~after =
  let keep (v, _) = v <= after in
  let dropped =
    List.length (List.filter (fun e -> not (keep e)) t.log_rear)
    + List.length (List.filter (fun e -> not (keep e)) t.log_front)
  in
  t.log_rear <- List.filter keep t.log_rear;
  t.log_front <- List.filter keep t.log_front;
  t.per_key <-
    KeyMap.filter_map
      (fun _ events ->
        match List.filter (fun e -> e.ev <= after) events with [] -> None | l -> Some l)
      t.per_key;
  t.tombstones <- List.filter (fun (v, _, _, _) -> v <= after) t.tombstones;
  t.events <- t.events - dropped;
  if t.latest > after then t.latest <- after;
  dropped

let latest t = t.latest
let oldest t = t.oldest
let event_count t = t.events
