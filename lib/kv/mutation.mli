(** The common mutation currency understood by every storage layer.

    Atomic read-modify-write operations (paper §2.6) are carried in this
    form through the commit pipeline and materialized into [Set]s at the
    StorageServer, which is the first place the current value is known. *)

type atomic_kind =
  | Add  (** little-endian integer addition *)
  | Bit_and
  | Bit_or
  | Bit_xor
  | Max  (** little-endian unsigned max *)
  | Min
  | Byte_max  (** lexicographic max *)
  | Byte_min
  | Append_if_fits
  | Compare_and_clear  (** clear the key if its value equals the operand *)

type t =
  | Set of string * string
  | Clear of string
  | Clear_range of string * string  (** [\[from, until)] *)
  | Atomic of atomic_kind * string * string  (** kind, key, operand *)

val atomic_result : atomic_kind -> old_value:string option -> string -> string option
(** [atomic_result kind ~old_value operand] — the value the key holds after
    the operation ([None] = key cleared). Missing keys behave as the
    all-zero / empty value, matching FDB semantics. *)

val byte_size : t -> int
(** Approximate wire/storage footprint (key + value lengths), used for
    throughput accounting and transaction size limits. *)

val key_range : t -> string * string
(** The smallest key range [\[from, until)] this mutation touches. *)

val pp : Format.formatter -> t -> unit
