(* Swarm oracle over the metrics plane: after (or during) a chaos run, every
   role's published metrics must satisfy basic sanity invariants. Because the
   registry is populated on the hot paths, a violation here usually means a
   protocol bug (e.g. durability racing ahead of the received chain) rather
   than a metrics bug — which is exactly what makes it a useful oracle. *)

open Fdb_core
module Registry = Fdb_obs.Registry

let check (reg : Registry.t) : string list =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let gauge ~role p name =
    Option.value ~default:0.0 (Registry.gauge_value reg ~role ~process:p name)
  in
  (* Storage: durability can never outrun the applied version, and the
     published load signals must be physical (non-negative). *)
  List.iter
    (fun (ss, durable) ->
      let version = gauge ~role:Registry.Storage ss "version" in
      if durable > version then
        fail "metrics: storage %d durable %.0f > version %.0f" ss durable version;
      let lag = gauge ~role:Registry.Storage ss "lag" in
      if lag < 0.0 then fail "metrics: storage %d negative lag %.3f" ss lag;
      let win = gauge ~role:Registry.Storage ss "window_events" in
      if win < 0.0 then fail "metrics: storage %d negative window %.0f" ss win)
    (Registry.gauges reg ~role:Registry.Storage "durable_version");
  (* Log servers: the durable prefix is a prefix of the received chain. *)
  List.iter
    (fun (p, dv) ->
      let rcv = gauge ~role:Registry.Log p "received_version" in
      if dv > rcv then fail "metrics: log %d durable %.0f > received %.0f" p dv rcv)
    (Registry.gauges reg ~role:Registry.Log "durable_version");
  (* Proxies: every commit attempt has at most one recorded outcome. *)
  List.iter
    (fun (p, attempts) ->
      let c name = Registry.counter_value reg ~role:Registry.Proxy ~process:p name in
      let outcomes = c "commits" + c "conflicts" + c "too_old" in
      if outcomes > attempts then
        fail "metrics: proxy %d outcomes %d > attempts %d" p outcomes attempts)
    (Registry.counters reg ~role:Registry.Proxy "commit_attempts");
  (* Resolvers: aborts are a subset of the transactions checked. *)
  List.iter
    (fun (p, checked) ->
      let c name = Registry.counter_value reg ~role:Registry.Resolver ~process:p name in
      if c "conflicts" + c "too_old" > checked then
        fail "metrics: resolver %d verdicts exceed txns checked %d" p checked)
    (Registry.counters reg ~role:Registry.Resolver "txns_checked");
  (* Ratekeeper: the budget stays inside its control bounds. *)
  List.iter
    (fun (p, rate) ->
      if rate < Ratekeeper.min_rate -. 1e-6 || rate > Ratekeeper.max_rate +. 1e-6 then
        fail "metrics: ratekeeper %d rate %.0f outside [%.0f, %.0f]" p rate
          Ratekeeper.min_rate Ratekeeper.max_rate)
    (Registry.gauges reg ~role:Registry.Ratekeeper "rate");
  (* Latency histograms: simulated time only moves forward. *)
  List.iter
    (fun (role, name) ->
      List.iter
        (fun (p, h) ->
          if Fdb_util.Histogram.count h > 0 && Fdb_util.Histogram.min_value h < 0.0 then
            fail "metrics: %s %d negative %s sample" (Registry.role_name role) p name)
        (Registry.histograms reg ~role name))
    [
      (Registry.Proxy, "grv_latency");
      (Registry.Proxy, "commit_latency");
      (Registry.Log, "append_latency");
      (Registry.Storage, "read_latency");
    ];
  List.rev !failures
