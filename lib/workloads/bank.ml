open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

type stats = {
  transfers_committed : int;
  conflicts : int;
  unknown_results : int;
  errors : int;
}

let account_key i = Printf.sprintf "bank/%06d" i

let setup db ~accounts ~initial =
  let rec batch i =
    if i >= accounts then Future.return ()
    else begin
      let hi = min accounts (i + 100) in
      let* _ =
        Client.run db (fun tx ->
            for j = i to hi - 1 do
              Client.set tx (account_key j) (string_of_int initial)
            done;
            Future.return ())
      in
      batch hi
    end
  in
  batch 0

let parse_balance = function Some s -> int_of_string s | None -> 0

let transfer db ~accounts ~rng =
  let a = Rng.int rng accounts in
  let b = (a + 1 + Rng.int rng (accounts - 1)) mod accounts in
  let amount = 1 + Rng.int rng 10 in
  Client.run db ~max_attempts:8 (fun tx ->
      let* va = Client.get tx (account_key a) in
      let* vb = Client.get tx (account_key b) in
      let ba = parse_balance va and bb = parse_balance vb in
      if ba < amount then Future.return `Overdraft
      else begin
        Client.set tx (account_key a) (string_of_int (ba - amount));
        Client.set tx (account_key b) (string_of_int (bb + amount));
        Future.return `Transferred
      end)

let transfer_loop db ~accounts ~until ~rng =
  let stats = ref { transfers_committed = 0; conflicts = 0; unknown_results = 0; errors = 0 } in
  let rec loop () =
    if Engine.now () >= until then Future.return !stats
    else
      let* () = Engine.sleep (Rng.float rng 0.05) in
      let* () =
        Future.catch
          (fun () ->
            let* outcome = transfer db ~accounts ~rng in
            (match outcome with
            | `Transferred ->
                stats := { !stats with transfers_committed = !stats.transfers_committed + 1 }
            | `Overdraft -> ());
            Future.return ())
          (function
            | Error.Fdb Error.Not_committed ->
                stats := { !stats with conflicts = !stats.conflicts + 1 };
                Future.return ()
            | Error.Fdb Error.Commit_unknown_result ->
                stats := { !stats with unknown_results = !stats.unknown_results + 1 };
                Future.return ()
            | Error.Fdb _ ->
                stats := { !stats with errors = !stats.errors + 1 };
                Future.return ()
            | e -> Future.fail e)
      in
      loop ()
  in
  loop ()

let check db ~accounts ~expected_total =
  Future.catch
    (fun () ->
      let* balances =
        Client.run db (fun tx ->
            Client.get_range tx ~limit:(accounts + 10) ~from:"bank/" ~until:"bank0" ())
      in
      let total = List.fold_left (fun acc (_, v) -> acc + int_of_string v) 0 balances in
      let negative = List.exists (fun (_, v) -> int_of_string v < 0) balances in
      if List.length balances <> accounts then
        Future.return
          (Error (Printf.sprintf "expected %d accounts, found %d" accounts (List.length balances)))
      else if total <> expected_total then
        Future.return
          (Error (Printf.sprintf "total %d <> expected %d: atomicity violated" total expected_total))
      else if negative then Future.return (Error "negative balance: isolation violated")
      else Future.return (Ok ()))
    (fun e -> Future.return (Error ("check failed: " ^ Printexc.to_string e)))
