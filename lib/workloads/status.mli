(** Cluster status report, in the spirit of `fdbcli status`: control-plane
    generation and role placement, storage health (per-server version /
    durable version / lag), and data-distribution team health — gathered
    live over RPC, tolerating unreachable processes. *)

type t = {
  st_epoch : Fdb_core.Types.epoch;
  st_recovered : bool;
  st_proxies : int;
  st_logs : int;
  st_storage_total : int;
  st_storage_responsive : int;
  st_max_lag : float;  (** seconds, worst responsive storage server *)
  st_max_window_events : int;
}

val gather : Fdb_core.Cluster.t -> t Fdb_sim.Future.t
(** One status snapshot (never fails; unreachable roles count as absent). *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line report. *)
