(** Cluster status report, in the spirit of `fdbcli status` /
    [\xff\xff/status/json]: control-plane generation and role placement
    gathered over RPC, plus the data plane — storage health, transaction
    counters, latency percentiles, and the ratekeeper budget — sourced from
    the shared {!Fdb_obs} metrics registry. *)

type t = {
  st_epoch : Fdb_core.Types.epoch;
  st_recovered : bool;
  st_proxies : int;
  st_logs : int;
  st_storage_total : int;
  st_storage_responsive : int;
  st_max_lag : float;  (** seconds, worst responsive storage server *)
  st_max_window_events : int;
  st_grv_served : int;
  st_commit_attempts : int;
  st_commits : int;
  st_conflicts : int;
  st_rate : float;  (** current ratekeeper budget, tps *)
  st_grv_p50 : float;  (** seconds *)
  st_grv_p99 : float;
  st_commit_p50 : float;
  st_commit_p99 : float;
  st_dd_recruited : bool;  (** a DataDistributor is running *)
  st_unhealthy_teams : int;  (** teams below full replication (DD gauge) *)
  st_data_loss_risk : bool;  (** some team has zero responsive replicas *)
}

val gather : Fdb_core.Cluster.t -> t Fdb_sim.Future.t
(** One status snapshot (never fails; unreachable roles count as absent). *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line report. *)

val to_json : t -> Fdb_obs.Rollup.doc -> string
(** Machine-readable status document: the cluster summary plus the full
    per-role metrics roll-up. Deterministic — two runs of the same seed
    emit identical bytes. *)
