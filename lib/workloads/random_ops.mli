(** Randomized read/write soup feeding the {!Serializability_checker}.

    Each transaction reads a few random keys (recording what it observed),
    then writes unique values to a few random keys, plus a versionstamped
    marker key. On a commit-unknown-result the marker is probed afterwards:
    its stamped value reveals both whether the transaction committed and at
    which version — FDB's canonical idempotency-token pattern — so the
    recorded history is exact even across recoveries. *)

type stats = { committed : int; aborted : int; probed_unknown : int }

val run_clients :
  Fdb_core.Cluster.t ->
  clients:int ->
  keys:int ->
  until:float ->
  rng:Fdb_util.Det_rng.t ->
  checker:Serializability_checker.t ->
  stats Fdb_sim.Future.t
(** Drive [clients] concurrent clients until the simulated deadline; every
    known-committed transaction is recorded into [checker]. *)
