(** Randomized read/write soup feeding the {!Serializability_checker}.

    Each transaction reads a few random keys (recording what it observed),
    then writes unique values to a few random keys, plus a versionstamped
    marker key. On a commit-unknown-result the marker is probed afterwards:
    its stamped value reveals both whether the transaction committed and at
    which version — FDB's canonical idempotency-token pattern — so the
    recorded history is exact even across recoveries. *)

type stats = { committed : int; aborted : int; probed_unknown : int }

(** Skewed key generators for load-distribution workloads. Each generator
    draws a {e rank} in [\[0, n)]; rank 0 is the hottest key, so mapping
    ranks into a dense keyspace concentrates traffic at its low end — the
    hot-shard shape the data distributor must split and spread. *)
module Keygen : sig
  type t

  val zipfian : n:int -> theta:float -> t
  (** Zipf(theta) over [n] ranks: P(rank i) proportional to
      [1/(i+1)^theta]. O(n) setup, O(log n) per draw. *)

  val hot_key : n:int -> hot:int -> hot_prob:float -> t
  (** The first [hot] ranks absorb [hot_prob] of the draws; the remainder
      is uniform over the cold ranks. *)

  val sequential : ?start:int -> unit -> t
  (** Monotone append pattern: each draw returns the next unused rank
      (stateful; ignores the rng). *)

  val next_rank : t -> Fdb_util.Det_rng.t -> int
  val next_key : ?prefix:string -> t -> Fdb_util.Det_rng.t -> string
  (** [next_key ~prefix t rng] = [prefix ^ zero-padded rank] — zero-padding
      keeps lexicographic order equal to numeric order. *)
end

val run_clients :
  Fdb_core.Cluster.t ->
  clients:int ->
  keys:int ->
  until:float ->
  rng:Fdb_util.Det_rng.t ->
  checker:Serializability_checker.t ->
  stats Fdb_sim.Future.t
(** Drive [clients] concurrent clients until the simulated deadline; every
    known-committed transaction is recorded into [checker]. *)
