open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

type report = {
  seed : int64;
  machines : int;
  epochs : int;
  transfers : int;
  rotations : int;
  soup_committed : int;
  dd_moves : int;
  layer_ops : int;
  shard_checksum : int64;
  oracle_failures : string list;
  buggify_points : string list;
  trace_checksum : int64;
  lifecycle : Future.Lifecycle.report;
}

let random_config rng =
  let machines = 4 + Rng.int rng 5 in
  let replication = 2 + Rng.int rng 2 in
  {
    Config.machines;
    coordinators = min machines (if Rng.bool rng then 3 else 5);
    proxies = 1 + Rng.int rng 2;
    resolvers = 1 + Rng.int rng 2;
    log_servers = min machines (replication + Rng.int rng 2);
    storage_per_machine = 1 + Rng.int rng 2;
    log_replication = replication;
    storage_replication = replication;
    mvcc_window = 5.0;
    shards_per_storage = 1 + Rng.int rng 3;
    cc_candidates = min machines 3;
    racks = 1 + Rng.int rng machines;
    disks_per_machine = 4;
    shard_boundaries = [];
    regions = 1;
  }

let random_faults rng duration =
  {
    Fault_injector.duration;
    kill_mean_interval = 8.0 +. Rng.float rng 20.0;
    reboot_min = 0.5;
    reboot_max = 2.0 +. Rng.float rng 8.0;
    rack_kill_prob = Rng.float rng 0.3;
    dc_kill_prob = 0.0;
    partition_mean_interval = 10.0 +. Rng.float rng 20.0;
    partition_duration = 1.0 +. Rng.float rng 6.0;
    clog_mean_interval = 5.0 +. Rng.float rng 10.0;
    clog_duration = 0.5 +. Rng.float rng 2.0;
  }

let accounts = 40
let initial_balance = 100
let ring_nodes = 30
let soup_keys = 50

(* -------- shard movement under chaos -------------------------------- *)

(* Aggressive DD thresholds for movement-enabled runs, restored afterwards
   so other tests see the defaults. *)
let with_dd_params ~enabled f =
  if not enabled then f ()
  else begin
    let saved =
      ( !Params.dd_movement_enabled, !Params.dd_rebalance_interval,
        !Params.dd_split_bytes, !Params.dd_split_bandwidth,
        !Params.dd_merge_bytes, !Params.dd_imbalance_ratio )
    in
    Params.dd_movement_enabled := true;
    Params.dd_rebalance_interval := 0.5;
    Params.dd_split_bytes := 4_000;
    Params.dd_split_bandwidth := 50_000.0;
    Params.dd_merge_bytes := 400;
    Params.dd_imbalance_ratio := 1.5;
    Fun.protect f ~finally:(fun () ->
        let en, iv, sb, sbw, mb, ir = saved in
        Params.dd_movement_enabled := en;
        Params.dd_rebalance_interval := iv;
        Params.dd_split_bytes := sb;
        Params.dd_split_bandwidth := sbw;
        Params.dd_merge_bytes := mb;
        Params.dd_imbalance_ratio := ir)
  end

let pick_team rng n k =
  let arr = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  List.sort compare (Array.to_list (Array.sub arr 0 (min k n)))

(* Fire splits, merges and full fetch-then-cutover moves continuously while
   the workloads and the fault storm run: the move-during-everything
   swarm. Moves run one at a time (each is awaited) so the schedule is a
   deterministic function of the seed. *)
let mover_job cluster ~until ~rng =
  let ctx = Cluster.context cluster in
  let db = Cluster.client cluster ~name:"swarm-mover" in
  let machine = Process.fresh_machine ~dc:"dc1" 900_002 in
  let proc = Process.create ~name:"swarm-mover" machine in
  let n_ss = Array.length ctx.Context.storage_eps in
  let moves = ref 0 in
  let rec loop () =
    if Engine.now () >= until then Future.return !moves
    else
      let* () = Engine.sleep (0.5 +. Rng.float rng 2.0) in
      let map = ctx.Context.shard_map in
      let ranges = Shard_map.ranges map in
      let i = Rng.int rng (Array.length ranges) in
      let lo, hi = ranges.(i) in
      if lo >= Types.key_space_end then loop ()
      else
        match Rng.int rng 4 with
        | 0 ->
            (* Split somewhere strictly inside the shard. *)
            let at = lo ^ "\x80" in
            if at < min hi Types.key_space_end then
              ignore (Shard_map.split map ~at : (unit, string) result);
            loop ()
        | 1 ->
            ignore (Shard_map.merge_at map ~lo : (unit, string) result);
            loop ()
        | _ ->
            let team_size = List.length (Shard_map.team_for_key map lo) in
            let dst = pick_team rng n_ss team_size in
            let* r = Data_distributor.move_shard ctx ~proc ~db ~lo ~dst in
            (match r with Ok () -> incr moves | Error _ -> ());
            loop ()
  in
  loop ()

(* Before the oracles run, stop new movement and let in-flight moves finish
   (or force-abort stragglers): the consistency check wants a world that is
   no longer flipping teams under it, and a pending move left behind would
   dual-tag writes forever. *)
let quiesce_movement ctx =
  Params.dd_movement_enabled := false;
  let map = ctx.Context.shard_map in
  let rec wait n =
    match Shard_map.pending_moves map with
    | [] -> Future.return ()
    | pending ->
        if n = 0 then begin
          List.iter
            (fun (lo, _, _, _) ->
              ignore (Shard_map.abort_move map ~lo : (unit, string) result))
            pending;
          Future.return ()
        end
        else
          let* () = Engine.sleep 1.0 in
          wait (n - 1)
  in
  wait 40

let run_one ?(buggify = true) ?(duration = 60.0) ?(dd_movement = false)
    ?(layers = false) ~seed () =
  with_dd_params ~enabled:dd_movement @@ fun () ->
  let report =
    Engine.run ~seed ~max_time:3600.0 ~buggify (fun () ->
      let rng = Engine.fork_rng () in
      let config = random_config rng in
      let cluster = Cluster.create ~config () in
      let* () = Cluster.wait_ready ~timeout:120.0 cluster in
      let db = Cluster.client cluster ~name:"swarm-setup" in
      let* () = Bank.setup db ~accounts ~initial:initial_balance in
      let* () = Ring.setup db ~n:ring_nodes in
      let checker = Serializability_checker.create () in
      let stop_at = Engine.now () +. duration in
      (* Workloads and faults run concurrently. Coordinators are protected
         from permanent loss only by reboots (the injector reboots all). *)
      let bank_db = Cluster.client cluster ~name:"swarm-bank" in
      let ring_db = Cluster.client cluster ~name:"swarm-ring" in
      let bank_job =
        Bank.transfer_loop bank_db ~accounts ~until:stop_at ~rng:(Rng.split rng)
      in
      let ring_job = Ring.rotate_loop ring_db ~n:ring_nodes ~until:stop_at ~rng:(Rng.split rng) in
      let soup_job =
        Random_ops.run_clients cluster ~clients:3 ~keys:soup_keys ~until:stop_at
          ~rng:(Rng.split rng) ~checker
      in
      let fault_job =
        Fault_injector.run ~net:(Cluster.context cluster).Context.net
          ~machines:(Cluster.worker_machines cluster)
          (random_faults rng duration)
      in
      let mover =
        if dd_movement then mover_job cluster ~until:stop_at ~rng:(Rng.split rng)
        else Future.return 0
      in
      (* Layer soak is gated exactly like the mover: with [layers] off, no
         RNG split, no client, no trace events — the run stays
         byte-identical to the pre-layer baseline. *)
      let layer_job =
        if layers then
          let* h = Layer_soak.run cluster ~until:stop_at ~rng:(Rng.split rng) () in
          Future.return (Some h)
        else Future.return None
      in
      let* bank_stats = bank_job
      and* ring_stats = ring_job
      and* soup_stats = soup_job
      and* dd_moves = mover
      and* layer_handle = layer_job
      and* () = fault_job in
      let* () =
        if dd_movement then quiesce_movement (Cluster.context cluster)
        else Future.return ()
      in
      (* Recoverability: after healing, the cluster must serve again. *)
      let* recoverable =
        Future.catch
          (fun () -> Future.map (Cluster.wait_ready ~timeout:120.0 cluster) (fun () -> true))
          (fun _ -> Future.return false)
      in
      let* failures =
        if not recoverable then Future.return [ "recoverability: cluster did not return" ]
        else begin
          let check_db = Cluster.client cluster ~name:"swarm-check" in
          let* bank_res =
            Bank.check check_db ~accounts ~expected_total:(accounts * initial_balance)
          in
          let* ring_res = Ring.check check_db ~n:ring_nodes in
          let* cons_res = Consistency_check.check cluster in
          let ser_res = Serializability_checker.verify checker in
          let* layer_res =
            match layer_handle with
            | None -> Future.return []
            | Some h -> Layer_soak.check cluster h
          in
          let collect name = function Ok () -> [] | Error m -> [ name ^ ": " ^ m ] in
          Future.return
            (collect "bank" bank_res @ collect "ring" ring_res
            @ collect "consistency" cons_res
            @ collect "serializability" ser_res
            @ List.map (fun m -> "layers: " ^ m) layer_res)
        end
      in
      (* Metrics-plane oracle: role statistics must satisfy their sanity
         invariants regardless of how the chaos went. *)
      let metrics_failures = Metrics_oracle.check (Cluster.metrics cluster) in
      let* epochs = Cluster.current_epoch cluster in
      Future.return
        {
          seed;
          machines = config.Config.machines;
          epochs;
          transfers = bank_stats.Bank.transfers_committed;
          rotations = ring_stats.Ring.rotations;
          soup_committed = soup_stats.Random_ops.committed;
          dd_moves;
          layer_ops =
            (match layer_handle with None -> 0 | Some h -> Layer_soak.ops h);
          shard_checksum =
            Shard_map.history_checksum (Cluster.context cluster).Context.shard_map;
          oracle_failures = failures @ metrics_failures;
          buggify_points = Buggify.points_hit ();
          trace_checksum = 0L (* filled in once the run has fully drained *);
          lifecycle = Future.Lifecycle.empty (* ditto *);
        })
  in
  {
    report with
    trace_checksum = Engine.last_run_checksum ();
    lifecycle = Engine.last_run_lifecycle ();
  }

(* The paper's own nondeterminism detector: replay the seed and compare
   event-stream checksums — and, with movement on, the shard-map history
   checksum, so a diverging shard-move schedule fails even if it somehow
   produced the same event stream. Any divergence means something outside
   the seeded-RNG / virtual-time envelope leaked into the run. *)
let check_determinism ?buggify ?duration ?dd_movement ?layers ~seed () =
  let a = run_one ?buggify ?duration ?dd_movement ?layers ~seed () in
  let b = run_one ?buggify ?duration ?dd_movement ?layers ~seed () in
  if not (Int64.equal a.trace_checksum b.trace_checksum) then
    Error (a.trace_checksum, b.trace_checksum)
  else if not (Int64.equal a.shard_checksum b.shard_checksum) then
    Error (a.shard_checksum, b.shard_checksum)
  else Ok a

let pp_report fmt r =
  Format.fprintf fmt
    "seed=%Ld machines=%d epochs=%d transfers=%d rotations=%d soup=%d moves=%d \
     csum=%016Lx shards=%016Lx %s"
    r.seed r.machines r.epochs r.transfers r.rotations r.soup_committed r.dd_moves
    r.trace_checksum r.shard_checksum
    (if r.oracle_failures = [] then "PASS"
     else "FAIL [" ^ String.concat "; " r.oracle_failures ^ "]");
  if r.layer_ops > 0 then Format.fprintf fmt " layer_ops=%d" r.layer_ops;
  if r.buggify_points <> [] then
    Format.fprintf fmt " buggify={%s}" (String.concat "," r.buggify_points);
  let lc = r.lifecycle in
  if Future.Lifecycle.total_leaks lc > 0 then
    Format.fprintf fmt " leaks={%s}"
      (String.concat ","
         (List.map (fun (l, n) -> Printf.sprintf "%s:%d" l n) lc.Future.Lifecycle.lr_leaked));
  if lc.Future.Lifecycle.lr_detach_failures <> [] then
    Format.fprintf fmt " detach_failures={%s}"
      (String.concat ","
         (List.map
            (fun (l, n) -> Printf.sprintf "%s:%d" l n)
            lc.Future.Lifecycle.lr_detach_failures))
