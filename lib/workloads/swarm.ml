open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

type report = {
  seed : int64;
  machines : int;
  epochs : int;
  transfers : int;
  rotations : int;
  soup_committed : int;
  oracle_failures : string list;
  buggify_points : string list;
  trace_checksum : int64;
}

let random_config rng =
  let machines = 4 + Rng.int rng 5 in
  let replication = 2 + Rng.int rng 2 in
  {
    Config.machines;
    coordinators = min machines (if Rng.bool rng then 3 else 5);
    proxies = 1 + Rng.int rng 2;
    resolvers = 1 + Rng.int rng 2;
    log_servers = min machines (replication + Rng.int rng 2);
    storage_per_machine = 1 + Rng.int rng 2;
    log_replication = replication;
    storage_replication = replication;
    mvcc_window = 5.0;
    shards_per_storage = 1 + Rng.int rng 3;
    cc_candidates = min machines 3;
    racks = 1 + Rng.int rng machines;
    disks_per_machine = 4;
    shard_boundaries = [];
    regions = 1;
  }

let random_faults rng duration =
  {
    Fault_injector.duration;
    kill_mean_interval = 8.0 +. Rng.float rng 20.0;
    reboot_min = 0.5;
    reboot_max = 2.0 +. Rng.float rng 8.0;
    rack_kill_prob = Rng.float rng 0.3;
    dc_kill_prob = 0.0;
    partition_mean_interval = 10.0 +. Rng.float rng 20.0;
    partition_duration = 1.0 +. Rng.float rng 6.0;
    clog_mean_interval = 5.0 +. Rng.float rng 10.0;
    clog_duration = 0.5 +. Rng.float rng 2.0;
  }

let accounts = 40
let initial_balance = 100
let ring_nodes = 30
let soup_keys = 50

let run_one ?(buggify = true) ?(duration = 60.0) ~seed () =
  let report =
    Engine.run ~seed ~max_time:3600.0 ~buggify (fun () ->
      let rng = Engine.fork_rng () in
      let config = random_config rng in
      let cluster = Cluster.create ~config () in
      let* () = Cluster.wait_ready ~timeout:120.0 cluster in
      let db = Cluster.client cluster ~name:"swarm-setup" in
      let* () = Bank.setup db ~accounts ~initial:initial_balance in
      let* () = Ring.setup db ~n:ring_nodes in
      let checker = Serializability_checker.create () in
      let stop_at = Engine.now () +. duration in
      (* Workloads and faults run concurrently. Coordinators are protected
         from permanent loss only by reboots (the injector reboots all). *)
      let bank_db = Cluster.client cluster ~name:"swarm-bank" in
      let ring_db = Cluster.client cluster ~name:"swarm-ring" in
      let bank_job =
        Bank.transfer_loop bank_db ~accounts ~until:stop_at ~rng:(Rng.split rng)
      in
      let ring_job = Ring.rotate_loop ring_db ~n:ring_nodes ~until:stop_at ~rng:(Rng.split rng) in
      let soup_job =
        Random_ops.run_clients cluster ~clients:3 ~keys:soup_keys ~until:stop_at
          ~rng:(Rng.split rng) ~checker
      in
      let fault_job =
        Fault_injector.run ~net:(Cluster.context cluster).Context.net
          ~machines:(Cluster.worker_machines cluster)
          (random_faults rng duration)
      in
      let* bank_stats = bank_job
      and* ring_stats = ring_job
      and* soup_stats = soup_job
      and* () = fault_job in
      (* Recoverability: after healing, the cluster must serve again. *)
      let* recoverable =
        Future.catch
          (fun () -> Future.map (Cluster.wait_ready ~timeout:120.0 cluster) (fun () -> true))
          (fun _ -> Future.return false)
      in
      let* failures =
        if not recoverable then Future.return [ "recoverability: cluster did not return" ]
        else begin
          let check_db = Cluster.client cluster ~name:"swarm-check" in
          let* bank_res =
            Bank.check check_db ~accounts ~expected_total:(accounts * initial_balance)
          in
          let* ring_res = Ring.check check_db ~n:ring_nodes in
          let* cons_res = Consistency_check.check cluster in
          let ser_res = Serializability_checker.verify checker in
          let collect name = function Ok () -> [] | Error m -> [ name ^ ": " ^ m ] in
          Future.return
            (collect "bank" bank_res @ collect "ring" ring_res
            @ collect "consistency" cons_res
            @ collect "serializability" ser_res)
        end
      in
      (* Metrics-plane oracle: role statistics must satisfy their sanity
         invariants regardless of how the chaos went. *)
      let metrics_failures = Metrics_oracle.check (Cluster.metrics cluster) in
      let* epochs = Cluster.current_epoch cluster in
      Future.return
        {
          seed;
          machines = config.Config.machines;
          epochs;
          transfers = bank_stats.Bank.transfers_committed;
          rotations = ring_stats.Ring.rotations;
          soup_committed = soup_stats.Random_ops.committed;
          oracle_failures = failures @ metrics_failures;
          buggify_points = Buggify.points_hit ();
          trace_checksum = 0L (* filled in once the run has fully drained *);
        })
  in
  { report with trace_checksum = Engine.last_run_checksum () }

(* The paper's own nondeterminism detector: replay the seed and compare
   event-stream checksums. Any divergence means something outside the
   seeded-RNG / virtual-time envelope leaked into the run. *)
let check_determinism ?buggify ?duration ~seed () =
  let a = run_one ?buggify ?duration ~seed () in
  let b = run_one ?buggify ?duration ~seed () in
  if Int64.equal a.trace_checksum b.trace_checksum then Ok a
  else Error (a.trace_checksum, b.trace_checksum)

let pp_report fmt r =
  Format.fprintf fmt
    "seed=%Ld machines=%d epochs=%d transfers=%d rotations=%d soup=%d csum=%016Lx %s"
    r.seed r.machines r.epochs r.transfers r.rotations r.soup_committed r.trace_checksum
    (if r.oracle_failures = [] then "PASS"
     else "FAIL [" ^ String.concat "; " r.oracle_failures ^ "]");
  if r.buggify_points <> [] then
    Format.fprintf fmt " buggify={%s}" (String.concat "," r.buggify_points)
