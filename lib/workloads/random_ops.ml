open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

type stats = { committed : int; aborted : int; probed_unknown : int }

(* Skewed key generators for load-distribution workloads. Each draws a
   *rank* in [0, n): rank 0 is the hottest key, so mapping ranks straight
   into a dense keyspace concentrates traffic at its low end — exactly the
   hot-shard shape the data distributor has to split and spread. *)
module Keygen = struct
  type t =
    | Zipfian of { n : int; cdf : float array }
    | Hot of { n : int; hot_n : int; hot_prob : float }
    | Sequential of { mutable seq_next : int }

  (* Zipf(theta): P(rank i) proportional to 1/(i+1)^theta. The CDF is
     precomputed once; each draw is a binary search, so even n in the
     millions costs O(log n) per key. *)
  let zipfian ~n ~theta =
    if n <= 0 then invalid_arg "Keygen.zipfian: n must be positive";
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) theta);
      cdf.(i) <- !total
    done;
    let t = !total in
    Array.iteri (fun i x -> cdf.(i) <- x /. t) cdf;
    Zipfian { n; cdf }

  (* A fraction of the keyspace ([hot] ranks) absorbs [hot_prob] of the
     draws; the rest is uniform over the cold remainder. *)
  let hot_key ~n ~hot ~hot_prob =
    if n <= 0 then invalid_arg "Keygen.hot_key: n must be positive";
    let hot_n = max 1 (min hot n) in
    Hot { n; hot_n; hot_prob }

  (* Monotone append pattern (log-structured inserts): every draw is the
     next unused rank, so fresh writes always land on the tail shard. *)
  let sequential ?(start = 0) () = Sequential { seq_next = start }

  let next_rank t rng =
    match t with
    | Zipfian { n; cdf } ->
        let u = Rng.float rng 1.0 in
        (* smallest i with cdf.(i) >= u *)
        let lo = ref 0 and hi = ref (n - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cdf.(mid) >= u then hi := mid else lo := mid + 1
        done;
        !lo
    | Hot { n; hot_n; hot_prob } ->
        if hot_n >= n || Rng.float rng 1.0 < hot_prob then Rng.int rng hot_n
        else hot_n + Rng.int rng (n - hot_n)
    | Sequential s ->
        let r = s.seq_next in
        s.seq_next <- r + 1;
        r

  let next_key ?(prefix = "key/") t rng =
    Printf.sprintf "%s%09d" prefix (next_rank t rng)
end

let data_key i = Printf.sprintf "soup/%04d" i
let marker_key client n = Printf.sprintf "soup-mark/%d/%06d" client n

(* Build one transaction: reads first (so read-your-writes never masks a
   storage observation), then writes with unique values, then the
   versionstamped marker. Returns everything needed to record it. *)
let prepare db ~keys ~rng ~marker ~unique =
  let tx = Client.begin_tx db in
  let n_reads = 1 + Rng.int rng 3 in
  let n_writes = 1 + Rng.int rng 3 in
  let read_keys =
    List.sort_uniq compare (List.init n_reads (fun _ -> data_key (Rng.int rng keys)))
  in
  let* rv = Client.get_read_version tx in
  let rec do_reads acc = function
    | [] -> Future.return (List.rev acc)
    | k :: rest ->
        let* v = Client.get tx k in
        do_reads ((k, v) :: acc) rest
  in
  let* reads = do_reads [] read_keys in
  let writes =
    List.init n_writes (fun i ->
        (data_key (Rng.int rng keys), Printf.sprintf "%s.%d" unique i))
  in
  List.iter (fun (k, v) -> Client.set tx k v) writes;
  Client.set_versionstamped_value tx ~key:marker
    ~template:Client.versionstamp_placeholder ~offset:0;
  Future.return (tx, rv, reads, writes)

(* After an unknown result, decide the transaction's fate from its marker:
   present => committed at the stamped version. A failed READ is not an
   answer — keep retrying until a read definitively succeeds (clusters in
   these simulations always heal), and require two successful absent reads
   spaced out, because an unknown-result commit can still land while its
   pushes drain through a clogged network. *)
let probe_marker db marker =
  let rec definitive_read tries =
    let* r =
      Future.catch
        (fun () ->
          let* v = Client.run db ~max_attempts:16 (fun tx -> Client.get tx marker) in
          Future.return (`Read v))
        (fun e -> Future.return (`Unreadable e))
    in
    match r with
    | `Read v -> Future.return v
    | `Unreadable e ->
        if tries mod 20 = 0 then
          Fdb_sim.Trace.emit "probe_unreadable"
            [ ("marker", marker); ("exn", Printexc.to_string e);
              ("tries", string_of_int tries) ];
        let* () = Engine.sleep 1.0 in
        definitive_read (tries + 1)
  in
  let definitive_read () = definitive_read 0 in
  let* () = Engine.sleep 2.0 in
  let* v1 = definitive_read () in
  match v1 with
  | Some stamp when String.length stamp >= 8 ->
      Future.return (Some (Types.version_of_bytes stamp))
  | Some _ -> Future.return None
  | None ->
      let* () = Engine.sleep 8.0 in
      let* v2 = definitive_read () in
      (match v2 with
      | Some stamp when String.length stamp >= 8 ->
          Future.return (Some (Types.version_of_bytes stamp))
      | _ -> Future.return None)

let client_loop db ~client_id ~keys ~until ~rng ~checker ~stats =
  let counter = ref 0 in
  let record rv cv reads writes =
    Serializability_checker.record checker
      {
        rc_read_version = rv;
        rc_commit_version = cv;
        rc_reads = reads;
        rc_writes = List.map (fun (k, v) -> (k, Some v)) writes;
      }
  in
  let rec loop () =
    if Engine.now () >= until then Future.return ()
    else begin
      incr counter;
      let marker = marker_key client_id !counter in
      let unique = Printf.sprintf "c%d.t%d" client_id !counter in
      let* () = Engine.sleep (Rng.float rng 0.05) in
      let* () =
        Future.catch
          (fun () ->
            let* tx, rv, reads, writes = prepare db ~keys ~rng ~marker ~unique in
            Future.catch
              (fun () ->
                let* cv = Client.commit tx in
                record rv cv reads writes;
                stats := { !stats with committed = !stats.committed + 1 };
                Future.return ())
              (function
                | Error.Fdb Error.Not_committed ->
                    stats := { !stats with aborted = !stats.aborted + 1 };
                    Future.return ()
                | Error.Fdb Error.Commit_unknown_result | Error.Fdb Error.Timed_out ->
                    stats := { !stats with probed_unknown = !stats.probed_unknown + 1 };
                    let* fate = probe_marker db marker in
                    (match fate with
                    | Some cv ->
                        record rv cv reads writes;
                        stats := { !stats with committed = !stats.committed + 1 }
                    | None -> stats := { !stats with aborted = !stats.aborted + 1 });
                    Future.return ()
                | Error.Fdb _ -> Future.return ()
                | e -> Future.fail e))
          (function
            | Error.Fdb _ -> Future.return () (* reads failed; nothing committed *)
            | e -> Future.fail e)
      in
      loop ()
    end
  in
  loop ()

let run_clients cluster ~clients ~keys ~until ~rng ~checker =
  let stats = ref { committed = 0; aborted = 0; probed_unknown = 0 } in
  let jobs =
    List.init clients (fun i ->
        let db = Cluster.client cluster ~name:(Printf.sprintf "soup-%d" i) in
        client_loop db ~client_id:i ~keys ~until ~rng:(Rng.split rng) ~checker ~stats)
  in
  let* () = Future.all_unit jobs in
  Future.return !stats
