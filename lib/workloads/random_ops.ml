open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

type stats = { committed : int; aborted : int; probed_unknown : int }

let data_key i = Printf.sprintf "soup/%04d" i
let marker_key client n = Printf.sprintf "soup-mark/%d/%06d" client n

(* Build one transaction: reads first (so read-your-writes never masks a
   storage observation), then writes with unique values, then the
   versionstamped marker. Returns everything needed to record it. *)
let prepare db ~keys ~rng ~marker ~unique =
  let tx = Client.begin_tx db in
  let n_reads = 1 + Rng.int rng 3 in
  let n_writes = 1 + Rng.int rng 3 in
  let read_keys =
    List.sort_uniq compare (List.init n_reads (fun _ -> data_key (Rng.int rng keys)))
  in
  let* rv = Client.get_read_version tx in
  let rec do_reads acc = function
    | [] -> Future.return (List.rev acc)
    | k :: rest ->
        let* v = Client.get tx k in
        do_reads ((k, v) :: acc) rest
  in
  let* reads = do_reads [] read_keys in
  let writes =
    List.init n_writes (fun i ->
        (data_key (Rng.int rng keys), Printf.sprintf "%s.%d" unique i))
  in
  List.iter (fun (k, v) -> Client.set tx k v) writes;
  Client.set_versionstamped_value tx ~key:marker
    ~template:Client.versionstamp_placeholder ~offset:0;
  Future.return (tx, rv, reads, writes)

(* After an unknown result, decide the transaction's fate from its marker:
   present => committed at the stamped version. A failed READ is not an
   answer — keep retrying until a read definitively succeeds (clusters in
   these simulations always heal), and require two successful absent reads
   spaced out, because an unknown-result commit can still land while its
   pushes drain through a clogged network. *)
let probe_marker db marker =
  let rec definitive_read tries =
    let* r =
      Future.catch
        (fun () ->
          let* v = Client.run db ~max_attempts:16 (fun tx -> Client.get tx marker) in
          Future.return (`Read v))
        (fun e -> Future.return (`Unreadable e))
    in
    match r with
    | `Read v -> Future.return v
    | `Unreadable e ->
        if tries mod 20 = 0 then
          Fdb_sim.Trace.emit "probe_unreadable"
            [ ("marker", marker); ("exn", Printexc.to_string e);
              ("tries", string_of_int tries) ];
        let* () = Engine.sleep 1.0 in
        definitive_read (tries + 1)
  in
  let definitive_read () = definitive_read 0 in
  let* () = Engine.sleep 2.0 in
  let* v1 = definitive_read () in
  match v1 with
  | Some stamp when String.length stamp >= 8 ->
      Future.return (Some (Types.version_of_bytes stamp))
  | Some _ -> Future.return None
  | None ->
      let* () = Engine.sleep 8.0 in
      let* v2 = definitive_read () in
      (match v2 with
      | Some stamp when String.length stamp >= 8 ->
          Future.return (Some (Types.version_of_bytes stamp))
      | _ -> Future.return None)

let client_loop db ~client_id ~keys ~until ~rng ~checker ~stats =
  let counter = ref 0 in
  let record rv cv reads writes =
    Serializability_checker.record checker
      {
        rc_read_version = rv;
        rc_commit_version = cv;
        rc_reads = reads;
        rc_writes = List.map (fun (k, v) -> (k, Some v)) writes;
      }
  in
  let rec loop () =
    if Engine.now () >= until then Future.return ()
    else begin
      incr counter;
      let marker = marker_key client_id !counter in
      let unique = Printf.sprintf "c%d.t%d" client_id !counter in
      let* () = Engine.sleep (Rng.float rng 0.05) in
      let* () =
        Future.catch
          (fun () ->
            let* tx, rv, reads, writes = prepare db ~keys ~rng ~marker ~unique in
            Future.catch
              (fun () ->
                let* cv = Client.commit tx in
                record rv cv reads writes;
                stats := { !stats with committed = !stats.committed + 1 };
                Future.return ())
              (function
                | Error.Fdb Error.Not_committed ->
                    stats := { !stats with aborted = !stats.aborted + 1 };
                    Future.return ()
                | Error.Fdb Error.Commit_unknown_result | Error.Fdb Error.Timed_out ->
                    stats := { !stats with probed_unknown = !stats.probed_unknown + 1 };
                    let* fate = probe_marker db marker in
                    (match fate with
                    | Some cv ->
                        record rv cv reads writes;
                        stats := { !stats with committed = !stats.committed + 1 }
                    | None -> stats := { !stats with aborted = !stats.aborted + 1 });
                    Future.return ()
                | Error.Fdb _ -> Future.return ()
                | e -> Future.fail e))
          (function
            | Error.Fdb _ -> Future.return () (* reads failed; nothing committed *)
            | e -> Future.fail e)
      in
      loop ()
    end
  in
  loop ()

let run_clients cluster ~clients ~keys ~until ~rng ~checker =
  let stats = ref { committed = 0; aborted = 0; probed_unknown = 0 } in
  let jobs =
    List.init clients (fun i ->
        let db = Cluster.client cluster ~name:(Printf.sprintf "soup-%d" i) in
        client_loop db ~client_id:i ~keys ~until ~rng:(Rng.split rng) ~checker ~stats)
  in
  let* () = Future.all_unit jobs in
  Future.return !stats
