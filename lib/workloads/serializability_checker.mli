(** History recorder + strict-serializability verifier.

    Committed transactions are recorded with their read version, commit
    version, observed reads and performed writes. Verification replays the
    history in commit-version order and checks that every recorded read
    observed exactly the newest write at or below its read version — i.e.
    the execution matches the serial order the Sequencer defined (§2.4.2).
    Real-time order is inherited from version order: a read version is
    guaranteed to dominate every previously acknowledged commit. *)

type t

type recorded = {
  rc_read_version : int64;
  rc_commit_version : int64;
  rc_reads : (string * string option) list;  (** key, observed value *)
  rc_writes : (string * string option) list;  (** key, new value (None = clear) *)
}

val create : unit -> t
val record : t -> recorded -> unit
val size : t -> int

val verify : t -> (unit, string) result
(** Check every read in the history; [Error] carries a description of the
    first violation. *)

val history : t -> recorded list
(** All recorded transactions (debugging tools). *)
