(** Swarm testing (paper §4): one fully randomized simulation run.

    Each run draws a random cluster size and configuration, random workload
    mix, random fault-injection parameters, and a random subset of
    buggification points (via the engine's buggify mode), runs the
    workloads under the fault storm, heals the world, and then evaluates
    every oracle: bank invariant, ring invariant, serializable history,
    replica consistency, and recoverability (the cluster accepts
    transactions again). Deterministic in the seed — a failing seed replays
    bit-identically. *)

type report = {
  seed : int64;
  machines : int;
  epochs : int;  (** generations consumed (>= 1; > 1 means recoveries ran) *)
  transfers : int;
  rotations : int;
  soup_committed : int;
  dd_moves : int;  (** shard moves committed by the swarm's mover job *)
  layer_ops : int;
      (** committed layer operations (record upserts/deletes, queue
          enqueues/claims) by the {!Layer_soak} job; 0 when layers are off *)
  shard_checksum : int64;
      (** {!Fdb_core.Shard_map.history_checksum} at run end: fingerprint of
          the full split/merge/move schedule *)
  oracle_failures : string list;  (** empty = the run passed *)
  buggify_points : string list;  (** fault-injection points that fired *)
  trace_checksum : int64;
      (** {!Fdb_sim.Engine.last_run_checksum} of the run: FNV-1a over every
          executed event. Equal seeds must yield equal checksums. *)
  lifecycle : Fdb_sim.Future.Lifecycle.report;
      (** {!Fdb_sim.Engine.last_run_lifecycle} of the run: the promise
          sanitizer's leak / double-resolve / detach-failure tallies.
          [fdb_sim swarm --check-leaks] fails the run on a nonzero
          {!Fdb_sim.Future.Lifecycle.total_leaks}. *)
}

val run_one :
  ?buggify:bool ->
  ?duration:float ->
  ?dd_movement:bool ->
  ?layers:bool ->
  seed:int64 ->
  unit ->
  report
(** Run one randomized simulation (NOT inside an existing engine run).
    [dd_movement] (default false) enables the DataDistributor's rebalancer
    with aggressive thresholds {e and} a mover job that fires random
    splits, merges and fetch-then-cutover moves throughout the run, then
    quiesces movement before the oracles. [layers] (default false) adds
    the {!Layer_soak} job — directory-housed record stores with
    transactional indexes plus a watch-driven queue — and its
    index-consistency and exactly-once oracles. With [layers] off the run
    is byte-identical to a build without the layer ecosystem. *)

val check_determinism :
  ?buggify:bool ->
  ?duration:float ->
  ?dd_movement:bool ->
  ?layers:bool ->
  seed:int64 ->
  unit ->
  (report, int64 * int64) result
(** Run the seed twice and compare trace checksums — and, with movement
    enabled, shard-map history checksums, so a diverging shard-move
    schedule is caught even when the event streams happen to agree:
    [Ok report] if the runs match, [Error (first, second)] otherwise — the
    paper's double-run nondeterminism detector. *)

val pp_report : Format.formatter -> report -> unit
