type recorded = {
  rc_read_version : int64;
  rc_commit_version : int64;
  rc_reads : (string * string option) list;
  rc_writes : (string * string option) list;
}

type t = { mutable history : recorded list }

let create () = { history = [] }
let record t r = t.history <- r :: t.history
let size t = List.length t.history

(* Per-key write history: (commit version, value) newest first, built in
   commit order; a read at version v must observe the newest write <= v. *)
let verify t =
  let txns =
    List.sort (fun a b -> compare a.rc_commit_version b.rc_commit_version) t.history
  in
  (* Commit versions must be unique per write (batched transactions share a
     version only when they do not overlap in keys — resolvers guarantee
     non-conflicting, but two blind writes to the same key could share a
     version; writes within one version apply in batch order, which we
     conservatively allow by letting later records override). *)
  let writes : (string, (int64 * string option) list ref) Hashtbl.t = Hashtbl.create 256 in
  let push k v cv =
    match Hashtbl.find_opt writes k with
    | Some l -> l := (cv, v) :: !l
    | None -> Hashtbl.add writes k (ref [ (cv, v) ])
  in
  (* All values written at the newest commit version <= v. Transactions
     batched by a proxy share one commit version (§2.6); when several wrote
     the same key, the observable winner is their batch order, which the
     client cannot know — any of the tied values is a legal observation. *)
  let candidates_at k v =
    match Hashtbl.find_opt writes k with
    | None -> [ None ]
    | Some l -> (
        match List.find_opt (fun (cv, _) -> cv <= v) !l with
        | None -> [ None ]
        | Some (newest, _) ->
            List.filter_map (fun (cv, value) -> if cv = newest then Some value else None) !l)
  in
  let check_txn txn =
    List.fold_left
      (fun acc (k, observed) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            let expected = candidates_at k txn.rc_read_version in
            if List.mem observed expected then Ok ()
            else
              Error
                (Printf.sprintf
                   "read of %S at version %Ld observed %s but the serial history says %s \
                    (txn committed at %Ld)"
                   k txn.rc_read_version
                   (match observed with Some s -> Printf.sprintf "%S" s | None -> "<absent>")
                   (String.concat " | "
                      (List.map
                         (function Some s -> Printf.sprintf "%S" s | None -> "<absent>")
                         expected))
                   txn.rc_commit_version))
      (Ok ()) txn.rc_reads
  in
  let rec walk = function
    | [] -> Ok ()
    | txn :: rest -> (
        match check_txn txn with
        | Error _ as e -> e
        | Ok () ->
            List.iter (fun (k, v) -> push k v txn.rc_commit_version) txn.rc_writes;
            walk rest)
  in
  walk txns

let history t = t.history
