open Fdb_sim
open Fdb_core
open Future.Syntax

let read_replica ctx proc ~ep ~from ~until ~version ~epoch =
  (* Drain the whole shard with continuation round-trips: replies are
     bounded by the byte budget and flag [rr_more] when cut short. *)
  let rec drain cursor acc =
    let* reply =
      Context.rpc ctx ~timeout:2.0 ~from:proc ep
        (Message.Storage_get_range
           {
             gr_from = cursor;
             gr_until = until;
             gr_version = version;
             gr_limit = max_int;
             gr_byte_limit = Params.range_bytes_want_all;
             gr_reverse = false;
             gr_epoch = epoch;
           })
    in
    match reply with
    | Message.Storage_get_range_reply { rr_rows = []; _ } ->
        Future.return (Some (List.concat (List.rev acc)))
    | Message.Storage_get_range_reply { rr_rows; rr_more } ->
        if rr_more then
          let last = fst (List.hd (List.rev rr_rows)) in
          drain (Types.next_key last) (rr_rows :: acc)
        else Future.return (Some (List.concat (List.rev (rr_rows :: acc))))
    | _ -> Future.return None
  in
  let rec attempt n =
    if n = 0 then Future.return None
    else
      Future.catch
        (fun () -> drain from [])
        (fun _ ->
          let* () = Engine.sleep 0.5 in
          attempt (n - 1))
  in
  attempt 10

let check cluster =
  let ctx = Cluster.context cluster in
  let db = Cluster.client cluster ~name:"consistency-check" in
  let machine = Process.fresh_machine ~dc:"dc1" 900_001 in
  let proc = Process.create ~name:"consistency-check" machine in
  Future.catch
    (fun () ->
      (* Walk the keyspace by cursor, re-resolving shard range and team
         against the live map at every step: a split, merge or move landing
         mid-walk changes shard indices, so a snapshot of the boundary
         arrays would go stale. Each shard gets a fresh read snapshot too —
         a destination that just finished a fetch rejects reads below its
         snapshot floor, and an old version would stall the walk. *)
      let rec walk cursor =
        if cursor >= Types.key_space_end then Future.return (Ok ())
        else begin
          let rec try_shard attempts =
            let _, until = Shard_map.shard_range_for_key ctx.Context.shard_map cursor in
            (* Stay inside the user key space: system shards hold SS-local
               metadata that is not replicated content. *)
            let until = min until Types.key_space_end in
            let team = Shard_map.team_for_key ctx.Context.shard_map cursor in
            let* version, epoch = Client.run db (fun tx -> Client.read_snapshot tx) in
            let* replicas =
              Future.all
                (List.map
                   (fun ss ->
                     let* rows =
                       read_replica ctx proc ~ep:ctx.Context.storage_eps.(ss)
                         ~from:cursor ~until ~version ~epoch
                     in
                     Future.return (ss, rows))
                   team)
            in
            let readable = List.filter_map (fun (ss, r) -> Option.map (fun x -> (ss, x)) r) replicas in
            match readable with
            | [] ->
                (* The team may have just changed under us (cutover between
                   resolving it and reading): re-resolve and retry. *)
                if attempts <= 1 then
                  Future.return
                    (Error (Printf.sprintf "shard [%S,%S): no readable replica" cursor until))
                else
                  let* () = Engine.sleep 1.0 in
                  try_shard (attempts - 1)
            | (ss0, rows0) :: rest ->
                let mismatch =
                  List.find_opt (fun (_, rows) -> rows <> rows0) rest
                in
                (match mismatch with
                | Some (ss1, rows1) ->
                    (* Describe the first few differing keys for debugging. *)
                    let diffs = ref [] in
                    List.iter
                      (fun (k, v) ->
                        match List.assoc_opt k rows0 with
                        | Some v0 when v0 = v -> ()
                        | Some v0 ->
                            diffs := Printf.sprintf "%S: %d=%S %d=%S" k ss1 v ss0 v0 :: !diffs
                        | None -> diffs := Printf.sprintf "%S: only on %d (=%S)" k ss1 v :: !diffs)
                      rows1;
                    List.iter
                      (fun (k, v) ->
                        if not (List.mem_assoc k rows1) then
                          diffs := Printf.sprintf "%S: only on %d (=%S)" k ss0 v :: !diffs)
                      rows0;
                    let head =
                      match !diffs with
                      | a :: b :: c :: _ -> String.concat "; " [ a; b; c ]
                      | l -> String.concat "; " l
                    in
                    Future.return
                      (Error
                         (Printf.sprintf
                            "shard [%S,%S): replica %d disagrees with replica %d [%s]"
                            cursor until ss1 ss0 head))
                | None -> Future.return (Ok until))
          in
          let* r = try_shard 8 in
          match r with
          | Ok next -> walk next
          | Error e -> Future.return (Error e)
        end
      in
      walk "")
    (fun e -> Future.return (Error ("consistency check failed: " ^ Printexc.to_string e)))
