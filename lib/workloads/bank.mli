(** Bank workload: the classic atomicity/isolation oracle (paper §4 "test
    oracles": invariants "that can only be maintained through transaction
    atomicity and isolation").

    A fixed set of accounts holds integer balances; transactions move random
    amounts between random pairs. The total balance is invariant under any
    serializable execution — even with duplicated retries after
    commit-unknown-result, since both sides of a transfer move together. *)

type stats = {
  transfers_committed : int;
  conflicts : int;
  unknown_results : int;
  errors : int;
}

val account_key : int -> string

val setup : Fdb_core.Client.db -> accounts:int -> initial:int -> unit Fdb_sim.Future.t
(** Create [accounts] accounts with [initial] balance each. *)

val transfer_loop :
  Fdb_core.Client.db ->
  accounts:int ->
  until:float ->
  rng:Fdb_util.Det_rng.t ->
  stats Fdb_sim.Future.t
(** Keep making random transfers until the simulated time passes [until].
    Every transfer reads both balances, aborts application-side overdrafts,
    and writes both back. *)

val check :
  Fdb_core.Client.db -> accounts:int -> expected_total:int -> (unit, string) result Fdb_sim.Future.t
(** Read all balances in one transaction and verify the invariant: total
    preserved and no balance negative. *)
