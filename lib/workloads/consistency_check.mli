(** Replica consistency oracle (paper §6.2: "we constantly perform data
    consistency checks by comparing replicas of data records").

    For every shard, reads the full shard contents from each team member at
    one common read version and compares them byte for byte. Run it on a
    quiesced, healed cluster (after fault injection ends). *)

val check : Fdb_core.Cluster.t -> (unit, string) result Fdb_sim.Future.t
