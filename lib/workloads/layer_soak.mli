(** Layer-ecosystem soak workload for the swarm (paper §4): multi-tenant
    record stores with value / counter / versionstamp indexes, plus a
    watch-driven job queue, all running under the fault storm.

    Both end-of-run oracles are computed from durable state only:

    - {!Fdb_layers.Index.verify} recomputes every tenant's indexes from
      the base records and diffs them against storage.
    - Queue exactly-once: enqueues write a ledger entry (making retries
      after unknown commit results idempotent) and claims {e move} jobs
      into a claimed subspace, so [ledger = claimed ∪ pending] must hold
      exactly and the duplicate-claim subspace must stay empty. *)

type stats = {
  upserts : int;
  deletes : int;
  enqueued : int;
  claimed : int;
  watch_waits : int;  (** times a consumer parked on a signal-key watch *)
  op_failures : int;  (** operations abandoned after retry exhaustion *)
}

type t
(** Handle to a finished soak: store/queue locations plus client-side
    tallies. The oracles never trust the tallies. *)

val run :
  Fdb_core.Cluster.t -> until:float -> rng:Fdb_util.Det_rng.t -> unit -> t Fdb_sim.Future.t
(** Open the directories, run writers / producer / watch-parked consumers
    until [until], broadcast the stop marker, and join the consumers.
    Must run inside an engine with the cluster ready. *)

val stats : t -> stats
val ops : t -> int
(** Total committed layer operations — a liveness signal for reports. *)

val check : Fdb_core.Cluster.t -> t -> string list Fdb_sim.Future.t
(** Run both oracles after the cluster has healed; [[]] means every
    layer invariant held. *)
