(* Layer soak (paper §1, §4): run the layer ecosystem — directories,
   subspaces, transactional secondary indexes, and watch-driven queues —
   under the full fault storm, then recheck every layer invariant from
   durable state.

   Two oracles, both computed entirely from the database so no client-side
   bookkeeping has to survive Commit_unknown_result:

   - Index consistency: every tenant's record store carries a value index,
     a counter aggregate and a versionstamp changelog; [Index.verify]
     recomputes all three from the base records and diffs them against
     what is actually stored.

   - Queue exactly-once: every enqueue writes a ledger entry, the job
     item, and a signal bump in ONE transaction (the ledger makes retried
     enqueues after unknown commit results idempotent); every claim MOVES
     the job from the items subspace to a claimed subspace in ONE
     transaction, flagging a dup key if the claim slot was already taken.
     At the end, ledger = claimed ∪ pending must hold exactly, and the
     dup subspace must be empty. Idle consumers park on a watch of the
     signal key — armed inside the very transaction that observed the
     queue empty, so no wakeup can be lost. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng
module Subspace = Fdb_layers.Subspace
module Directory = Fdb_layers.Directory
module Index = Fdb_layers.Index

type stats = {
  upserts : int;
  deletes : int;
  enqueued : int;
  claimed : int;
  watch_waits : int;
  op_failures : int;
}

let empty_stats =
  { upserts = 0; deletes = 0; enqueued = 0; claimed = 0; watch_waits = 0; op_failures = 0 }

type t = {
  stores : Index.store array;
  items : Subspace.t;
  claimed_ss : Subspace.t;
  ledger : Subspace.t;
  dups : Subspace.t;
  signal_key : string;
  stop_key : string;
  mutable stats : stats;
}

let bump t f = t.stats <- f t.stats
let stats t = t.stats

let ops t =
  t.stats.upserts + t.stats.deletes + t.stats.enqueued + t.stats.claimed

let cities = [| "ams"; "ber"; "cdg"; "del"; "ewr" |]

let city_of value =
  match String.index_opt value ',' with
  | Some i -> String.sub value 0 i
  | None -> value

let defs =
  [
    Index.Value
      {
        name = "city";
        extract = (fun ~pkey:_ ~value -> [ [ Tuple.String (city_of value) ] ]);
      };
    Index.Counter
      { name = "city"; group = (fun ~pkey:_ ~value -> [ Tuple.String (city_of value) ]) };
    Index.Versionstamp { name = "log" };
  ]

(* Setup races the fault injector, so directory creation retries
   indefinitely on transaction errors: the cluster was ready moments ago
   and recoveries heal it again. *)
let rec robust f =
  Future.catch f (function
    | Error.Fdb _ ->
        let* () = Engine.sleep 0.5 in
        robust f
    | e -> Future.fail e)

let setup db ~tenants =
  let open_dir path =
    robust (fun () ->
        Client.run db ~max_attempts:8 (fun tx -> Directory.create_or_open tx path))
  in
  let rec go i acc =
    if i >= tenants then Future.return (Array.of_list (List.rev acc))
    else
      let* dir = open_dir [ "soak"; Printf.sprintf "tenant-%d" i ] in
      go (i + 1) (Index.create dir defs :: acc)
  in
  let* stores = go 0 [] in
  let* qdir = open_dir [ "soak"; "queue" ] in
  Future.return
    {
      stores;
      items = Subspace.sub qdir [ Tuple.String "items" ];
      claimed_ss = Subspace.sub qdir [ Tuple.String "claimed" ];
      ledger = Subspace.sub qdir [ Tuple.String "ledger" ];
      dups = Subspace.sub qdir [ Tuple.String "dups" ];
      signal_key = Subspace.pack qdir [ Tuple.String "signal" ];
      stop_key = Subspace.pack qdir [ Tuple.String "stop" ];
      stats = empty_stats;
    }

(* -------- record-store writers: one per tenant ---------------------- *)

let writer_loop db t tenant ~until ~rng =
  let store = t.stores.(tenant) in
  let rec loop () =
    if Engine.now () >= until then Future.return ()
    else
      let* () = Engine.sleep (0.02 +. Rng.float rng 0.15) in
      let pkey = Printf.sprintf "u%02d" (Rng.int rng 12) in
      let del = Rng.int rng 5 = 0 in
      let value =
        cities.(Rng.int rng (Array.length cities))
        ^ ",p"
        ^ string_of_int (Rng.int rng 1000)
      in
      let* () =
        Future.catch
          (fun () ->
            let* () =
              Client.run db ~max_attempts:8 (fun tx ->
                  if del then Index.clear store tx pkey
                  else Index.set store tx pkey value)
            in
            bump t (fun s ->
                if del then { s with deletes = s.deletes + 1 }
                else { s with upserts = s.upserts + 1 });
            Future.return ())
          (function
            | Error.Fdb _ ->
                bump t (fun s -> { s with op_failures = s.op_failures + 1 });
                Future.return ()
            | e -> Future.fail e)
      in
      loop ()
  in
  loop ()

(* -------- the watch-driven queue ------------------------------------ *)

let id_key ss id = Subspace.pack ss [ Tuple.Int (Int64.of_int id) ]

let producer_loop db t ~until ~rng =
  let next = ref 0 in
  let rec loop () =
    if Engine.now () >= until then Future.return ()
    else
      let* () = Engine.sleep (0.05 +. Rng.float rng 0.25) in
      let id = !next in
      incr next;
      let* () =
        Future.catch
          (fun () ->
            let* () =
              Client.run db ~max_attempts:8 (fun tx ->
                  let* seen = Client.get tx (id_key t.ledger id) in
                  match seen with
                  | Some _ ->
                      (* A previous attempt with an unknown commit result
                         actually committed: the ledger makes the retry a
                         no-op instead of a double enqueue. *)
                      Future.return ()
                  | None ->
                      Client.set tx (id_key t.ledger id) "";
                      Client.set tx (id_key t.items id)
                        (Printf.sprintf "job-%d" id);
                      Client.atomic_op tx Fdb_kv.Mutation.Add t.signal_key
                        (Index.le64 1L);
                      Future.return ())
            in
            bump t (fun s -> { s with enqueued = s.enqueued + 1 });
            Future.return ())
          (function
            | Error.Fdb _ ->
                bump t (fun s -> { s with op_failures = s.op_failures + 1 });
                Future.return ()
            | e -> Future.fail e)
      in
      loop ()
  in
  loop ()

(* One claim attempt: move the head job to the claimed subspace, or park
   a watch armed in the same transaction that observed emptiness. *)
let try_claim db t =
  Client.run db ~max_attempts:8 (fun tx ->
      let* head =
        Client.range tx (Subspace.query ~limit:1 ~mode:(`Exact 1) t.items ())
      in
      match head.Client.batch_rows with
      | (k, payload) :: _ ->
          let id =
            match Subspace.unpack t.items k with
            | [ Tuple.Int id ] -> Int64.to_int id
            | _ -> -1
          in
          let* prev = Client.get tx (id_key t.claimed_ss id) in
          (match prev with
          | Some _ -> Client.set tx (id_key t.dups id) ""
          | None -> ());
          Client.clear tx k;
          Client.set tx (id_key t.claimed_ss id) payload;
          Future.return `Job
      | [] -> (
          let* stopped = Client.get tx t.stop_key in
          match stopped with
          | Some _ -> Future.return `Stop
          | None -> Future.return (`Wait (Client.watch tx t.signal_key))))

let consumer_loop db t ~deadline ~rng =
  let rec loop () =
    if Engine.now () >= deadline then Future.return ()
    else
      let* r =
        Future.catch
          (fun () -> try_claim db t)
          (function Error.Fdb _ -> Future.return `Retry | e -> Future.fail e)
      in
      match r with
      | `Job ->
          bump t (fun s -> { s with claimed = s.claimed + 1 });
          loop ()
      | `Stop -> Future.return ()
      | `Retry ->
          let* () = Engine.sleep (0.1 +. Rng.float rng 0.4) in
          loop ()
      | `Wait w ->
          bump t (fun s -> { s with watch_waits = s.watch_waits + 1 });
          let left = deadline -. Engine.now () in
          if left <= 0.0 then begin
            Client.cancel_watch w;
            Future.return ()
          end
          else
            let* () =
              Future.catch
                (fun () -> Engine.timeout (min 30.0 left) (Client.watch_future w))
                (fun _ ->
                  (* Timeout, cancellation, or a poll failure: cancel so
                     the long-poll fiber winds down, then re-examine the
                     queue — a spurious wakeup is always safe. *)
                  Client.cancel_watch w;
                  Future.return ())
            in
            loop ()
  in
  loop ()

(* The stop marker and a signal bump ride one transaction, so every
   parked consumer wakes, observes the marker, and exits. *)
let rec broadcast_stop db t ~deadline =
  Future.catch
    (fun () ->
      Client.run db ~max_attempts:8 (fun tx ->
          Client.set tx t.stop_key "stop";
          Client.atomic_op tx Fdb_kv.Mutation.Add t.signal_key (Index.le64 1L);
          Future.return ()))
    (function
      | Error.Fdb _ when Engine.now () < deadline ->
          let* () = Engine.sleep 1.0 in
          broadcast_stop db t ~deadline
      | Error.Fdb _ -> Future.return ()
      | e -> Future.fail e)

let run cluster ~until ~rng () =
  let* t = setup (Cluster.client cluster ~name:"layer-setup") ~tenants:2 in
  let writers =
    List.init (Array.length t.stores) (fun i ->
        writer_loop
          (Cluster.client cluster ~name:(Printf.sprintf "layer-writer-%d" i))
          t i ~until ~rng:(Rng.split rng))
  in
  let producer =
    producer_loop (Cluster.client cluster ~name:"layer-producer") t ~until
      ~rng:(Rng.split rng)
  in
  (* Consumers exit via the stop marker; the deadline is only a backstop
     so a wedged cluster cannot hang the whole run. *)
  let deadline = until +. 240.0 in
  let consumers =
    List.init 2 (fun i ->
        consumer_loop
          (Cluster.client cluster ~name:(Printf.sprintf "layer-consumer-%d" i))
          t ~deadline ~rng:(Rng.split rng))
  in
  let* () = producer in
  let rec join = function
    | [] -> Future.return ()
    | j :: rest ->
        let* () = j in
        join rest
  in
  let* () = join writers in
  let* () = broadcast_stop (Cluster.client cluster ~name:"layer-stop") t ~deadline in
  let* () = join consumers in
  Future.return t

(* -------- the oracles (run after the world has healed) -------------- *)

let ids_of ss rows =
  List.filter_map
    (fun (k, _) ->
      match Subspace.unpack ss k with
      | [ Tuple.Int id ] -> Some id
      | _ -> None
      | exception _ -> None)
    rows

let check cluster t =
  let db = Cluster.client cluster ~name:"layer-check" in
  Future.catch
    (fun () ->
      let* queue_issues =
        Client.run db (fun tx ->
            let grab ss =
              Client.range_all tx
                (Subspace.query ~snapshot:true ~limit:1_000_000 ss ())
            in
            let* items = grab t.items in
            let* claimed = grab t.claimed_ss in
            let* ledger = grab t.ledger in
            let* dups = grab t.dups in
            let item_ids = ids_of t.items items in
            let claimed_ids = ids_of t.claimed_ss claimed in
            let ledger_ids = List.sort compare (ids_of t.ledger ledger) in
            let issues = ref [] in
            if dups <> [] then
              issues :=
                Printf.sprintf "queue: %d duplicate claim(s)" (List.length dups)
                :: !issues;
            let delivered = List.sort_uniq compare (claimed_ids @ item_ids) in
            if
              List.length delivered
              <> List.length claimed_ids + List.length item_ids
            then issues := "queue: job both claimed and still pending" :: !issues;
            if delivered <> ledger_ids then
              issues :=
                Printf.sprintf
                  "queue: ledger %d <> claimed %d + pending %d (lost or \
                   phantom jobs)"
                  (List.length ledger_ids) (List.length claimed_ids)
                  (List.length item_ids)
                :: !issues;
            Future.return (List.rev !issues))
      in
      let rec tenants i acc =
        if i >= Array.length t.stores then Future.return (List.rev acc)
        else
          let* issues = Client.run db (fun tx -> Index.verify t.stores.(i) tx) in
          tenants (i + 1)
            (List.rev_append
               (List.map (fun s -> Printf.sprintf "tenant %d %s" i s) issues)
               acc)
      in
      let* tenant_issues = tenants 0 [] in
      Future.return (queue_issues @ tenant_issues))
    (fun e -> Future.return [ "layer check crashed: " ^ Printexc.to_string e ])
