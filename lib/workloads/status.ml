(* Cluster status report in the spirit of `fdbcli status` / `\xff\xff/status/json`.

   The control plane (generation, recruitment, availability) still comes from
   the ClusterController via the coordinators, but the data plane is sourced
   from the shared `Fdb_obs` metrics plane: storage liveness/lag from the
   heartbeat gauges the servers publish, transaction statistics from the proxy
   counters and latency histograms. This replaces the stats RPC scatter the
   old report duplicated with the Ratekeeper. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Registry = Fdb_obs.Registry
module Histogram = Fdb_util.Histogram

type t = {
  st_epoch : Types.epoch;
  st_recovered : bool;
  st_proxies : int;
  st_logs : int;
  st_storage_total : int;
  st_storage_responsive : int;
  st_max_lag : float;
  st_max_window_events : int;
  (* transaction plane, from the metrics registry *)
  st_grv_served : int;
  st_commit_attempts : int;
  st_commits : int;
  st_conflicts : int;
  st_rate : float; (* current ratekeeper budget, tps *)
  st_grv_p50 : float;
  st_grv_p99 : float;
  st_commit_p50 : float;
  st_commit_p99 : float;
  (* data-distribution plane, from the DD's registry gauges *)
  st_dd_recruited : bool;
  st_unhealthy_teams : int;
  st_data_loss_risk : bool;
}

(* A storage server whose heartbeat gauge is older than this is counted as
   unresponsive (mirrors the old 1 s stats-RPC timeout). *)
let responsive_within = 1.0

let merged_hist reg ~role name =
  let dst = Histogram.create () in
  List.iter
    (fun (_, src) -> Histogram.merge_into ~dst src)
    (Registry.histograms reg ~role name);
  dst

let gather cluster =
  let ctx = Cluster.context cluster in
  let machine = Process.fresh_machine ~dc:"dc1" 960_000 in
  let probe = Process.create ~name:"status-probe" machine in
  (* Control plane: find the ClusterController through the coordinators. *)
  let* cc_state =
    Future.catch
      (fun () ->
        let transport = Context.paxos_transport ctx ~from:probe in
        let* leader =
          Fdb_paxos.Election.leader_via transport ~reg:"cc-leader"
            ~proposer:(Context.proposer_id probe)
        in
        match Option.bind leader int_of_string_opt with
        | Some m when m < Array.length ctx.Context.worker_eps ->
            let* reply =
              Context.rpc ctx ~timeout:1.0 ~from:probe ctx.Context.worker_eps.(m)
                Message.Cc_get_state
            in
            (match reply with
            | Message.Cc_state { st_epoch; st_proxies; st_logs; st_recovered; st_dd; _ } ->
                Future.return
                  (Some
                     ( st_epoch, List.length st_proxies, List.length st_logs, st_recovered,
                       st_dd <> None ))
            | _ -> Future.return None)
        | _ -> Future.return None)
      (fun _ -> Future.return None)
  in
  (* Storage plane: the heartbeat gauges every server publishes. *)
  let reg = ctx.Context.metrics in
  let now = Engine.now () in
  let responsive =
    Registry.gauges reg ~role:Registry.Storage "heartbeat"
    |> List.filter_map (fun (ss, hb) ->
           if now -. hb > responsive_within then None
           else
             let g name =
               Option.value ~default:0.0
                 (Registry.gauge_value reg ~role:Registry.Storage ~process:ss name)
             in
             Some (g "lag", int_of_float (g "window_events")))
  in
  (* Transaction plane: proxy counters and latency histograms, all epochs. *)
  let grv_h = merged_hist reg ~role:Registry.Proxy "grv_latency" in
  let commit_h = merged_hist reg ~role:Registry.Proxy "commit_latency" in
  let rate =
    List.fold_left (fun a (_, r) -> Float.max a r)
      0.0 (Registry.gauges reg ~role:Registry.Ratekeeper "rate")
  in
  let epoch, proxies, logs, recovered, dd_recruited =
    match cc_state with Some s -> s | None -> (0, 0, 0, false, false)
  in
  (* Data-distribution plane: the DD publishes team health as gauges. *)
  let dd_gauge name =
    Option.value ~default:0.0
      (Registry.gauge_value reg ~role:Registry.Data_distributor ~process:0 name)
  in
  Future.return
    {
      st_epoch = epoch;
      st_recovered = recovered;
      st_proxies = proxies;
      st_logs = logs;
      st_storage_total = Array.length ctx.Context.storage_eps;
      st_storage_responsive = List.length responsive;
      st_max_lag = List.fold_left (fun a (l, _) -> Float.max a l) 0.0 responsive;
      st_max_window_events = List.fold_left (fun a (_, w) -> max a w) 0 responsive;
      st_grv_served = Registry.sum_counter reg ~role:Registry.Proxy "grv_served";
      st_commit_attempts = Registry.sum_counter reg ~role:Registry.Proxy "commit_attempts";
      st_commits = Registry.sum_counter reg ~role:Registry.Proxy "commits";
      st_conflicts = Registry.sum_counter reg ~role:Registry.Proxy "conflicts";
      st_rate = rate;
      st_grv_p50 = Histogram.percentile grv_h 50.0;
      st_grv_p99 = Histogram.percentile grv_h 99.0;
      st_commit_p50 = Histogram.percentile commit_h 50.0;
      st_commit_p99 = Histogram.percentile commit_h 99.0;
      st_dd_recruited = dd_recruited;
      st_unhealthy_teams = int_of_float (dd_gauge "unhealthy_teams");
      st_data_loss_risk = dd_gauge "data_loss_risk" > 0.0;
    }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cluster generation : %d (%s)@,\
     transaction system  : %d proxies, %d log servers@,\
     storage servers     : %d/%d responsive@,\
     worst storage lag   : %.1f ms@,\
     mvcc window events  : %d (max per server)@,\
     workload            : %d grv, %d/%d commits (%d conflicts)@,\
     rate budget         : %.0f tps@,\
     grv latency         : p50 %.2f ms, p99 %.2f ms@,\
     commit latency      : p50 %.2f ms, p99 %.2f ms@,\
     data distribution   : %s, %d unhealthy teams%s@]"
    t.st_epoch
    (if t.st_recovered then "available" else "recovering")
    t.st_proxies t.st_logs t.st_storage_responsive t.st_storage_total
    (t.st_max_lag *. 1e3) t.st_max_window_events
    t.st_grv_served t.st_commits t.st_commit_attempts t.st_conflicts
    t.st_rate
    (t.st_grv_p50 *. 1e3) (t.st_grv_p99 *. 1e3)
    (t.st_commit_p50 *. 1e3) (t.st_commit_p99 *. 1e3)
    (if t.st_dd_recruited then "recruited" else "not recruited")
    t.st_unhealthy_teams
    (if t.st_data_loss_risk then " (DATA LOSS RISK)" else "")

(* Machine-readable status document: the cluster summary plus the full
   per-role rollup. Deterministic: sorted keys, canonical float rendering —
   two runs of the same seed emit identical bytes. *)
let to_json t (doc : Fdb_obs.Rollup.doc) =
  let f = Fdb_obs.Rollup.json_float in
  Printf.sprintf
    "{\"cluster\":{\"generation\":%d,\"available\":%b,\"proxies\":%d,\"logs\":%d,\
     \"storage_responsive\":%d,\"storage_total\":%d,\"max_lag_ms\":%s,\
     \"max_window_events\":%d,\"grv_served\":%d,\"commit_attempts\":%d,\
     \"commits\":%d,\"conflicts\":%d,\"rate_tps\":%s,\
     \"grv_p50_ms\":%s,\"grv_p99_ms\":%s,\"commit_p50_ms\":%s,\"commit_p99_ms\":%s,\
     \"dd_recruited\":%b,\"unhealthy_teams\":%d,\"data_loss_risk\":%b},\
     \"metrics\":%s}"
    t.st_epoch t.st_recovered t.st_proxies t.st_logs t.st_storage_responsive
    t.st_storage_total
    (f (t.st_max_lag *. 1e3))
    t.st_max_window_events t.st_grv_served t.st_commit_attempts t.st_commits
    t.st_conflicts (f t.st_rate)
    (f (t.st_grv_p50 *. 1e3))
    (f (t.st_grv_p99 *. 1e3))
    (f (t.st_commit_p50 *. 1e3))
    (f (t.st_commit_p99 *. 1e3))
    t.st_dd_recruited t.st_unhealthy_teams t.st_data_loss_risk
    (Fdb_obs.Rollup.json_of_doc doc)
