open Fdb_sim
open Fdb_core
open Future.Syntax

type t = {
  st_epoch : Types.epoch;
  st_recovered : bool;
  st_proxies : int;
  st_logs : int;
  st_storage_total : int;
  st_storage_responsive : int;
  st_max_lag : float;
  st_max_window_events : int;
}

let gather cluster =
  let ctx = Cluster.context cluster in
  let machine = Process.fresh_machine ~dc:"dc1" 960_000 in
  let probe = Process.create ~name:"status-probe" machine in
  (* Control plane: find the ClusterController through the coordinators. *)
  let* cc_state =
    Future.catch
      (fun () ->
        let transport = Context.paxos_transport ctx ~from:probe in
        let* leader =
          Fdb_paxos.Election.leader_via transport ~reg:"cc-leader"
            ~proposer:(Context.proposer_id probe)
        in
        match Option.bind leader int_of_string_opt with
        | Some m when m < Array.length ctx.Context.worker_eps ->
            let* reply =
              Context.rpc ctx ~timeout:1.0 ~from:probe ctx.Context.worker_eps.(m)
                Message.Cc_get_state
            in
            (match reply with
            | Message.Cc_state { st_epoch; st_proxies; st_logs; st_recovered; _ } ->
                Future.return (Some (st_epoch, List.length st_proxies, List.length st_logs, st_recovered))
            | _ -> Future.return None)
        | _ -> Future.return None)
      (fun _ -> Future.return None)
  in
  (* Storage plane. *)
  let* stats =
    Future.all
      (Array.to_list
         (Array.map
            (fun ep ->
              Future.catch
                (fun () ->
                  let* reply =
                    Context.rpc ctx ~timeout:1.0 ~from:probe ep Message.Ss_stats_req
                  in
                  match reply with
                  | Message.Ss_stats { ss_lag; ss_window_events; _ } ->
                      Future.return (Some (ss_lag, ss_window_events))
                  | _ -> Future.return None)
                (fun _ -> Future.return None))
            ctx.Context.storage_eps))
  in
  let responsive = List.filter_map Fun.id stats in
  let epoch, proxies, logs, recovered =
    match cc_state with Some s -> s | None -> (0, 0, 0, false)
  in
  Future.return
    {
      st_epoch = epoch;
      st_recovered = recovered;
      st_proxies = proxies;
      st_logs = logs;
      st_storage_total = Array.length ctx.Context.storage_eps;
      st_storage_responsive = List.length responsive;
      st_max_lag = List.fold_left (fun a (l, _) -> Float.max a l) 0.0 responsive;
      st_max_window_events = List.fold_left (fun a (_, w) -> max a w) 0 responsive;
    }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cluster generation : %d (%s)@,\
     transaction system  : %d proxies, %d log servers@,\
     storage servers     : %d/%d responsive@,\
     worst storage lag   : %.1f ms@,\
     mvcc window events  : %d (max per server)@]"
    t.st_epoch
    (if t.st_recovered then "available" else "recovering")
    t.st_proxies t.st_logs t.st_storage_responsive t.st_storage_total
    (t.st_max_lag *. 1e3) t.st_max_window_events
