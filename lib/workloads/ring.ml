open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

type stats = { rotations : int; conflicts : int; failures : int }

let node_key i = Printf.sprintf "ring/%06d" i

let setup db ~n =
  let rec batch i =
    if i >= n then Future.return ()
    else begin
      let hi = min n (i + 100) in
      let* _ =
        Client.run db (fun tx ->
            for j = i to hi - 1 do
              Client.set tx (node_key j) (string_of_int ((j + 1) mod n))
            done;
            Future.return ())
      in
      batch hi
    end
  in
  batch 0

(* Rotate three consecutive nodes x -> y -> z -> w into x -> z -> y -> w. *)
let rotate db ~n ~rng =
  let x = Rng.int rng n in
  Client.run db ~max_attempts:8 (fun tx ->
      let* sy = Client.get tx (node_key x) in
      let y = int_of_string (Option.get sy) in
      let* sz = Client.get tx (node_key y) in
      let z = int_of_string (Option.get sz) in
      let* sw = Client.get tx (node_key z) in
      let w = int_of_string (Option.get sw) in
      if y = x || z = x || z = y then Future.return ()
      else begin
        Client.set tx (node_key x) (string_of_int z);
        Client.set tx (node_key z) (string_of_int y);
        Client.set tx (node_key y) (string_of_int w);
        Future.return ()
      end)

let rotate_loop db ~n ~until ~rng =
  let stats = ref { rotations = 0; conflicts = 0; failures = 0 } in
  let rec loop () =
    if Engine.now () >= until then Future.return !stats
    else
      let* () = Engine.sleep (Rng.float rng 0.05) in
      let* () =
        Future.catch
          (fun () ->
            let* () = rotate db ~n ~rng in
            stats := { !stats with rotations = !stats.rotations + 1 };
            Future.return ())
          (function
            | Error.Fdb Error.Not_committed ->
                stats := { !stats with conflicts = !stats.conflicts + 1 };
                Future.return ()
            | Error.Fdb _ ->
                stats := { !stats with failures = !stats.failures + 1 };
                Future.return ()
            | e -> Future.fail e)
      in
      loop ()
  in
  loop ()

let check db ~n =
  Future.catch
    (fun () ->
      let* entries =
        Client.run db (fun tx ->
            (* Stream the whole ring in bounded batches, stitching the
               explicit continuations — the check never holds more than a
               batch of wire data in flight at once. *)
            let rec scan ?continuation acc seen =
              if seen > n + 10 then Future.return (List.rev acc)
              else
                let* b =
                  Client.get_range_stream ?continuation tx ~from:"ring/"
                    ~until:"ring0" ()
                in
                let acc = List.rev_append b.Client.batch_rows acc in
                match b.Client.batch_continuation with
                | Some c -> scan ~continuation:c acc (seen + List.length b.Client.batch_rows)
                | None -> Future.return (List.rev acc)
            in
            scan [] 0)
      in
      if List.length entries <> n then
        Future.return (Error (Printf.sprintf "expected %d nodes, found %d" n (List.length entries)))
      else begin
        let succ = Array.make n (-1) in
        List.iter
          (fun (k, v) ->
            let i = int_of_string (String.sub k 5 6) in
            succ.(i) <- int_of_string v)
          entries;
        let visited = Array.make n false in
        let rec walk node steps =
          if steps = n then
            if node = 0 then Ok () else Error "cycle does not close after n steps"
          else if node < 0 || node >= n then Error "pointer out of range"
          else if visited.(node) then Error "cycle shorter than n: ring split"
          else begin
            visited.(node) <- true;
            walk succ.(node) (steps + 1)
          end
        in
        Future.return (walk 0 0)
      end)
    (fun e -> Future.return (Error ("check failed: " ^ Printexc.to_string e)))
