(** Cycle workload, after FDB's CycleWorkload: [n] keys hold successor
    pointers forming a single cycle; each transaction rotates three
    consecutive nodes, which preserves the single-cycle invariant iff the
    transaction is atomic and isolated. A torn rotation (some pointers
    updated, others not) or one based on a non-serializable read snapshot
    breaks the ring into multiple cycles, which the checker detects. *)

type stats = { rotations : int; conflicts : int; failures : int }

val setup : Fdb_core.Client.db -> n:int -> unit Fdb_sim.Future.t
val rotate_loop :
  Fdb_core.Client.db ->
  n:int ->
  until:float ->
  rng:Fdb_util.Det_rng.t ->
  stats Fdb_sim.Future.t

val check : Fdb_core.Client.db -> n:int -> (unit, string) result Fdb_sim.Future.t
(** Follow the pointers: exactly one cycle visiting all [n] nodes. *)
