(** Deterministic hash table: a [Hashtbl] whose iteration order is defined.

    Raw [Hashtbl.iter]/[fold]/[to_seq] enumerate buckets in an order that
    depends on the table's insertion and resize history — two logically
    identical tables built along different paths iterate differently, which
    silently breaks seed reproducibility (determinism rule R2, see
    DESIGN.md "The determinism contract"). [Det_tbl] keeps point operations
    O(1) on a backing [Hashtbl] but every enumeration is key-sorted
    (polymorphic [compare]), so iteration order is a pure function of the
    table's *contents*, never of its history.

    Bindings are unique per key ([add] is [replace]); iteration snapshots
    the table first, so removing the binding under the current key during
    [iter]/[fold] is safe. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t
(** [size] is the initial bucket-array hint (default 16). *)

val length : ('k, 'v) t -> int
val mem : ('k, 'v) t -> 'k -> bool
val find_opt : ('k, 'v) t -> 'k -> 'v option

val replace : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite. Unlike [Hashtbl.add], a key never has more than
    one binding — the sorted enumeration order stays well-defined. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Alias of {!replace} (kept for drop-in migration from [Hashtbl]). *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit
val reset : ('k, 'v) t -> unit

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k make] returns the existing binding of [k], or inserts
    and returns [make ()]. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Key-sorted iteration over a snapshot of the bindings. *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Key-sorted (ascending) fold over a snapshot of the bindings. *)

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** All bindings in ascending key order. *)

val keys : ('k, 'v) t -> 'k list
(** All keys in ascending order. *)
