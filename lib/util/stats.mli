(** Small numeric helpers shared by benches and workloads. *)

type series = float list

val mean : series -> float
(** Arithmetic mean; 0 for the empty series. *)

val stddev : series -> float
(** Population standard deviation; 0 for series shorter than 2. *)

val median : series -> float
(** Median (lower of the two middle elements for even lengths). *)

val percentile : series -> float -> float
(** [percentile xs p] is the nearest-rank p-th percentile, [p] in [\[0,100\]]. *)

val minimum : series -> float
val maximum : series -> float

val moving_average : int -> series -> series
(** [moving_average w xs] smooths with a trailing window of [w] samples. *)

type counter = { mutable n : int; mutable sum : float }
(** A running total, for throughput accounting. *)

val counter : unit -> counter
val tick : counter -> float -> unit
val rate : counter -> duration:float -> float
(** [rate c ~duration] is [c.sum / duration] (0 when duration <= 0). *)
