type series = float list

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (List.length xs)
      in
      sqrt var

let sorted xs = List.sort compare xs

let percentile xs p =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let n = List.length s in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      List.nth s (rank - 1)

let median xs = percentile xs 50.0
let minimum = function [] -> 0.0 | xs -> List.fold_left Float.min infinity xs
let maximum = function [] -> 0.0 | xs -> List.fold_left Float.max neg_infinity xs

let moving_average w xs =
  if w <= 1 then xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    List.init n (fun i ->
        let lo = max 0 (i - w + 1) in
        let sum = ref 0.0 in
        for j = lo to i do
          sum := !sum +. arr.(j)
        done;
        !sum /. float_of_int (i - lo + 1))
  end

type counter = { mutable n : int; mutable sum : float }

let counter () = { n = 0; sum = 0.0 }

let tick c v =
  c.n <- c.n + 1;
  c.sum <- c.sum +. v

let rate c ~duration = if duration <= 0.0 then 0.0 else c.sum /. duration
