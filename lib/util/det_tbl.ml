(* Point operations delegate to a backing Hashtbl; enumerations sort a
   snapshot of the bindings by key, making iteration order a function of
   the contents only. This module is the single place in the tree where
   raw Hashtbl enumeration is allowed (lint rule R2). *)

type ('k, 'v) t = ('k, 'v) Hashtbl.t

let create ?(size = 16) () = Hashtbl.create size
let length = Hashtbl.length
let mem = Hashtbl.mem
let find_opt = Hashtbl.find_opt
let replace = Hashtbl.replace
let add = Hashtbl.replace
let remove = Hashtbl.remove
let clear = Hashtbl.reset
let reset = Hashtbl.reset

let find_or_add t k make =
  match Hashtbl.find_opt t k with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace t k v;
      v

let to_sorted_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let iter f t = List.iter (fun (k, v) -> f k v) (to_sorted_list t)
let fold f t init = List.fold_left (fun acc (k, v) -> f k v acc) init (to_sorted_list t)
let keys t = List.map fst (to_sorted_list t)
