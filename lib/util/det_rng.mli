(** Deterministic pseudo-random number generator.

    A splitmix64 generator with explicit state. All randomness in the
    simulator and the database flows from instances of this module, so a
    whole simulation run is a pure function of its root seed. The standard
    library's [Random] is never used inside [lib/]. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent child generator, advancing [t]. Used to
    give each process/actor its own stream so that adding draws in one actor
    does not perturb others. *)

val copy : t -> t
(** Duplicate the current state (both copies then produce the same stream). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)]. [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean; used for inter-arrival times and latency jitter. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> string
(** [bytes t n] is a string of [n] uniform random bytes. *)

val alphanum : t -> int -> string
(** [alphanum t n] is a string of [n] random characters in [\[a-z0-9\]]. *)
