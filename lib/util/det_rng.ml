type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value always fits in a non-negative native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits scaled into [0, bound). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Det_rng.pick_list: empty"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n = String.init n (fun _ -> Char.chr (int t 256))

let alphanum_chars = "abcdefghijklmnopqrstuvwxyz0123456789"

let alphanum t n =
  String.init n (fun _ -> alphanum_chars.[int t (String.length alphanum_chars)])
