(* Geometric buckets: bucket i covers (base^i, base^(i+1)] relative to
   [smallest]. With base = 1.02, relative error is ~2%, and ~2300 buckets
   cover 1e-9 .. 1e11, so we just allocate lazily in a Det_tbl keyed by
   bucket index (key-sorted iteration makes merge/percentile order-stable
   without a post-sort). *)

let base = 1.02
let log_base = log base
let smallest = 1e-9

type t = {
  buckets : (int, int ref) Det_tbl.t;
  mutable count : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { buckets = Det_tbl.create ~size:64 (); count = 0; total = 0.0; min_v = infinity; max_v = 0.0 }

let index_of v =
  let v = if v <= smallest then smallest else v in
  int_of_float (Float.round (log (v /. smallest) /. log_base))

let upper_of i = smallest *. exp (float_of_int i *. log_base)

(* Non-positive samples are clamped to [smallest] before recording, so every
   statistic (count, total, min, percentiles) agrees with the bucket data. *)
let add t v =
  let v = if v < smallest then smallest else v in
  let i = index_of v in
  (match Det_tbl.find_opt t.buckets i with
  | Some r -> incr r
  | None -> Det_tbl.add t.buckets i (ref 1));
  t.count <- t.count + 1;
  t.total <- t.total +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let merge_into ~dst src =
  Det_tbl.iter
    (fun i r ->
      match Det_tbl.find_opt dst.buckets i with
      | Some r' -> r' := !r' + !r
      | None -> Det_tbl.add dst.buckets i (ref !r))
    src.buckets;
  dst.count <- dst.count + src.count;
  dst.total <- dst.total +. src.total;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count
let max_value t = if t.count = 0 then 0.0 else t.max_v
let min_value t = if t.count = 0 then 0.0 else t.min_v

(* Det_tbl enumerates in ascending key order already. *)
let sorted_buckets t = List.map (fun (i, r) -> (i, !r)) (Det_tbl.to_sorted_list t.buckets)

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let target = p /. 100.0 *. float_of_int t.count in
    let rec walk acc = function
      | [] -> t.max_v
      | (i, n) :: rest ->
          let acc = acc + n in
          if float_of_int acc >= target then Float.min (upper_of i) t.max_v
          else walk acc rest
    in
    walk 0 (sorted_buckets t)
  end

let cdf_points t =
  let n = float_of_int t.count in
  if t.count = 0 then []
  else begin
    let acc = ref 0 in
    List.map
      (fun (i, c) ->
        acc := !acc + c;
        (upper_of i, float_of_int !acc /. n))
      (sorted_buckets t)
  end

let clear t =
  Det_tbl.reset t.buckets;
  t.count <- 0;
  t.total <- 0.0;
  t.min_v <- infinity;
  t.max_v <- 0.0
