(** Log-bucketed latency/size histogram with percentile queries.

    Buckets grow geometrically so the histogram covers nanoseconds to minutes
    with bounded memory and ~1% relative error, which is what the evaluation
    figures need (averages, p99.9, CDFs). *)

type t

val create : unit -> t
(** Empty histogram covering (0, +inf); values <= 0 are clamped to the
    smallest bucket. *)

val add : t -> float -> unit
(** Record one sample. *)

val merge_into : dst:t -> t -> unit
(** Accumulate the samples of the second histogram into [dst]. *)

val count : t -> int
(** Number of recorded samples. *)

val total : t -> float
(** Sum of recorded samples. *)

val mean : t -> float
(** Arithmetic mean; 0 when empty. *)

val max_value : t -> float
(** Largest recorded sample; 0 when empty. *)

val min_value : t -> float
(** Smallest recorded sample; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]: approximate p-th percentile
    (upper bound of the containing bucket). 0 when empty. *)

val cdf_points : t -> (float * float) list
(** Non-empty buckets as [(upper_bound, cumulative_fraction)] pairs, for
    CDF plots like the paper's Figure 10. *)

val clear : t -> unit
(** Forget all samples. *)
