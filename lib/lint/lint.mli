(** [fdb_lint]: the determinism lint (DESIGN.md, "The determinism contract").

    A compiler-libs based static-analysis pass (Parse + [Ast_iterator], no
    type information needed) that enforces the simulation-safety ruleset
    over every [.ml] file under [lib/], [bin/], and [bench/]:

    - {b R1} no wall-clock or ambient randomness: [Unix.*], [Sys.time],
      [Stdlib.Random] are forbidden outside [Fdb_util.Det_rng] and the
      whitelist.
    - {b R2} no raw [Hashtbl.iter]/[fold]/[to_seq] outside [lib/util]:
      iteration order must come from [Fdb_util.Det_tbl]'s key-sorted
      enumeration.
    - {b R3} every [ignore e] must carry a type annotation
      ([ignore (e : bool)]) so dropped [Future.t]s and booleans are visible
      in review.
    - {b R4} no [print_*]/[Printf.printf]/[exit] in library code
      ([lib/] only) — use [Trace]/[logs].
    - {b R5} cross-yield atomicity ([lib/] only): no write to a mutable
      location whose last read predates a yield point
      ([let*]/[let+]/[Future.bind]/[Future.map]), and no use of a local
      that captured such a location's value across a yield — other actors
      may have run in between (the historical commit_flush-race shape).
      Re-read after the yield, or suppress with the protecting invariant.
    - {b R6} future lifecycle ([lib/] only): no discarded [Future.t]s —
      [ignore (e : _ Future.t)], bare [Future.ignore_result], and
      statement-/[let _]-position discards of known future-returning calls
      are flagged. Fire-and-forget goes through [Future.detach ~name];
      the runtime sanitizer ([fdb_sim swarm --check-leaks]) catches the
      residue.

    Per-line suppressions: [(* fdb-lint: allow R2 -- reason *)] on the
    violating line, or alone on the line above. The reason is mandatory;
    a suppression without one is itself a diagnostic — and so is a stale
    one that no longer suppresses anything (the stale-suppression audit). *)

type rule = R1 | R2 | R3 | R4 | R5 | R6

val rule_name : rule -> string
val rule_of_string : string -> rule option

val explain : rule -> string
(** Long-form rationale shown by [fdb_lint --explain RULE]. *)

val all_rules : rule list

type diagnostic = {
  d_file : string;  (** repo-relative path *)
  d_line : int;  (** 1-based *)
  d_col : int;  (** 0-based, matching compiler convention *)
  d_rule : rule option;  (** [None] for tooling errors (parse failure, malformed or stale suppression) *)
  d_msg : string;
}

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** Renders [file:line:col: [RULE] message]. *)

val diagnostics_to_json : diagnostic list -> string
(** Machine-readable rendering ([fdb_lint --json]): a JSON array of
    [{"file":…,"line":…,"col":…,"rule":…,"msg":…}] objects, in the same
    order as the input. Tooling diagnostics render with ["rule":"lint"]. *)

type whitelist = (rule * string) list
(** Exempt (rule, repo-relative file) pairs. *)

val parse_whitelist : string -> whitelist
(** Parse the checked-in whitelist file contents: one [RULE path] pair per
    line, [#] comments and blank lines ignored. Unknown rules raise
    [Failure]. *)

val lint_source :
  ?whitelist:whitelist ->
  ?whitelist_used:(rule * string -> unit) ->
  path:string ->
  string ->
  diagnostic list
(** [lint_source ~path src] lints source text [src] as if it lived at
    repo-relative [path] (which decides rule applicability: R2 is waived
    under [lib/util/], R4/R5/R6 apply only under [lib/]). Diagnostics come
    back in (line, col) order. [whitelist_used] is invoked once per
    diagnostic a whitelist entry absorbs — the driver uses it for the
    stale-whitelist audit (an entry that absorbs nothing is an error). *)

val lint_file :
  ?whitelist:whitelist ->
  ?whitelist_used:(rule * string -> unit) ->
  ?as_path:string ->
  string ->
  diagnostic list
(** Read and lint one file. [as_path] overrides the repo-relative path used
    for rule applicability and reporting (tests lint fixture files as if
    they sat under [lib/]). *)
