(* The determinism lint. See lint.mli and DESIGN.md ("The determinism
   contract") for the ruleset. Implementation: parse each file with the
   compiler's own frontend (Parse + Ast_iterator from compiler-libs) — no
   typing, no ppx, no new dependencies — and pattern-match forbidden
   identifier paths syntactically. That keeps the pass fast (<5s over the
   whole tree) and robust to partial builds, at the cost of not seeing
   through aliases; the module_expr check below closes the obvious
   laundering hole ([module U = Unix], [open Random]).

   R5 is the one non-local rule: a small abstract interpretation over each
   function body that tracks, per syntactic mutable location, whether the
   code's knowledge of it predates a yield point. See "the R5 pass"
   below. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6

let all_rules = [ R1; R2; R3; R4; R5; R6 ]

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let rule_of_string = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | _ -> None

let explain = function
  | R1 ->
      "R1: no wall-clock or ambient randomness.\n\
       Unix.*, Sys.time and Stdlib.Random read state the simulator does not\n\
       control, so two runs of the same seed diverge and a failing seed no\n\
       longer reproduces. Use Engine.now for time and a seeded\n\
       Fdb_util.Det_rng stream (Engine.fork_rng) for randomness. The only\n\
       exemptions are lib/util/det_rng.ml itself and files listed in the\n\
       checked-in whitelist."
  | R2 ->
      "R2: no raw Hashtbl enumeration outside lib/util.\n\
       Hashtbl.iter/fold/to_seq order depends on the hash of the keys and\n\
       the table's internal resize history — it is stable within one binary\n\
       but it is not part of any contract, and any simulation decision made\n\
       in that order is a latent nondeterminism bug. Go through\n\
       Fdb_util.Det_tbl, whose enumeration is key-sorted. Point lookups\n\
       (find_opt/replace/mem) on plain Hashtbl remain fine."
  | R3 ->
      "R3: every ignore must carry a type annotation.\n\
       ignore (f x) silently discards whatever f returns — including a\n\
       bool from Future.try_fulfill, where a dropped false is a lost\n\
       wakeup, or a Future.t whose error side-channel vanishes. Write\n\
       ignore (f x : bool) so the dropped type is visible in review and\n\
       breaks loudly when a signature changes."
  | R4 ->
      "R4: no print_*/Printf.printf/Format.printf/exit in library code.\n\
       Library output must flow through Trace (simulation-visible, part of\n\
       the trace checksum) or a formatter handed in by the caller; stdout\n\
       writes and process exit belong to bin/ drivers only."
  | R5 ->
      "R5: no stale state across a yield (cross-yield atomicity).\n\
       Every let*/let+/Future.bind/Future.map suspends the actor; any other\n\
       actor may run and mutate shared state before the continuation\n\
       resumes. Writing a mutable location whose last read happened before\n\
       the yield acts on a stale snapshot — the shape of the historical\n\
       commit_flush re-entrancy race — and so does using a local that\n\
       captured a mutable location's value across the yield. Re-read the\n\
       location after the yield (the re-read idiom), restructure so the\n\
       decision and the write sit on the same side of the yield, or\n\
       suppress with a reason stating the invariant that makes the stale\n\
       value safe (e.g. a single-writer guard held across the yield)."
  | R6 ->
      "R6: no lost futures (future lifecycle).\n\
       A discarded Future.t is an actor whose failures vanish and whose\n\
       pending waiters can leak: ignore (e : _ Future.t), bare\n\
       Future.ignore_result, and statement- or let-_-position discards of\n\
       known future-returning calls are all flagged. Await the future, or\n\
       fire-and-forget it with the approved idiom Future.detach ~name\n\
       (failures become future_detached_error trace events and are tallied\n\
       by the runtime sanitizer) or Engine.spawn for whole actors. The\n\
       residue the static rule cannot see is caught at runtime:\n\
       fdb_sim swarm --check-leaks fails on promises still pending at\n\
       simulation end."

type diagnostic = {
  d_file : string;
  d_line : int;
  d_col : int;
  d_rule : rule option;
  d_msg : string;
}

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" d.d_file d.d_line d.d_col
    (match d.d_rule with Some r -> rule_name r | None -> "lint")
    d.d_msg

(* Machine-readable rendering (fdb_lint --json): one object per
   diagnostic, keys file/line/col/rule/msg, emitted as a JSON array. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diagnostic_to_json d =
  Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"msg\":\"%s\"}"
    (json_escape d.d_file) d.d_line d.d_col
    (match d.d_rule with Some r -> rule_name r | None -> "lint")
    (json_escape d.d_msg)

let diagnostics_to_json diags =
  match diags with
  | [] -> "[]"
  | _ ->
      "[\n  " ^ String.concat ",\n  " (List.map diagnostic_to_json diags) ^ "\n]"

type whitelist = (rule * string) list

(* ---- paths and rule applicability ---- *)

let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let applies rule path =
  match rule with
  | R1 -> path <> "lib/util/det_rng.ml"
  | R2 -> not (String.starts_with ~prefix:"lib/util/" path)
  | R3 -> true
  | R4 -> String.starts_with ~prefix:"lib/" path
  (* The actor model lives under lib/; drivers and benches run Engine.run
     at top level and own their futures explicitly. *)
  | R5 | R6 -> String.starts_with ~prefix:"lib/" path

let parse_whitelist src =
  String.split_on_char '\n' src
  |> List.concat_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then []
         else
           match String.index_opt line ' ' with
           | None ->
               failwith
                 ("lint whitelist: malformed line (want \"RULE path\"): " ^ line)
           | Some i -> (
               let r = String.sub line 0 i in
               let p =
                 String.trim (String.sub line i (String.length line - i))
               in
               match rule_of_string r with
               | Some rule -> [ (rule, normalize p) ]
               | None -> failwith ("lint whitelist: unknown rule " ^ r)))

(* ---- suppression comments ----
   A comment of the form "fdb-lint" ":" "allow RULE -- reason" (spelled out
   here so the scanner does not match its own source) suppresses RULE on
   its own line; when the comment stands alone on a line it also covers
   the next line. The
   reason is mandatory: a suppression that cannot justify itself is a
   diagnostic, not an exemption. A suppression that no longer suppresses
   anything is also a diagnostic (the stale-suppression audit): dead
   exemptions rot into blanket ones as code moves underneath them. *)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Built by concatenation so the scanner does not match its own source. *)
let marker = "fdb-lint" ^ ":"

type suppression = {
  s_comment_line : int;  (* where the allow comment sits *)
  s_rule : rule;
  s_lines : int list;  (* source lines it covers *)
  mutable s_used : bool;
}

let scan_suppressions ~path src =
  let supp = ref [] and errs = ref [] in
  let err line msg =
    errs :=
      { d_file = path; d_line = line; d_col = 0; d_rule = None; d_msg = msg }
      :: !errs
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_sub line marker with
      | None -> ()
      | Some idx -> (
          let rest =
            String.sub line
              (idx + String.length marker)
              (String.length line - idx - String.length marker)
          in
          (* strip the comment closer, if on the same line *)
          let rest =
            match find_sub rest "*)" with
            | Some j -> String.sub rest 0 j
            | None -> rest
          in
          let words =
            String.split_on_char ' ' rest |> List.filter (fun w -> w <> "")
          in
          match words with
          | "allow" :: rule_word :: reason -> (
              match rule_of_string rule_word with
              | None ->
                  err lineno
                    ("fdb-lint suppression names unknown rule \"" ^ rule_word
                   ^ "\"")
              | Some rule ->
                  (* drop a leading "--" separator, then require substance *)
                  let reason =
                    match reason with "--" :: r -> r | r -> r
                  in
                  if reason = [] then
                    err lineno
                      ("fdb-lint suppression for " ^ rule_name rule
                     ^ " has no reason; write (* " ^ marker ^ " allow "
                     ^ rule_name rule ^ " -- why *)")
                  else begin
                    let standalone =
                      match find_sub line "(*" with
                      | Some j when j < idx ->
                          String.trim (String.sub line 0 j) = ""
                      | _ -> false
                    in
                    let covered =
                      if standalone then [ lineno; lineno + 1 ] else [ lineno ]
                    in
                    supp :=
                      {
                        s_comment_line = lineno;
                        s_rule = rule;
                        s_lines = covered;
                        s_used = false;
                      }
                      :: !supp
                  end)
          | _ ->
              err lineno
                ("malformed fdb-lint comment; write (* " ^ marker
               ^ " allow RULE -- reason *)")))
    lines;
  (!supp, !errs)

(* ---- the R1-R4 AST pass ---- *)

let strip_stdlib p =
  if String.starts_with ~prefix:"Stdlib." p then
    String.sub p 7 (String.length p - 7)
  else p

let strip_sim p =
  if String.starts_with ~prefix:"Fdb_sim." p then
    String.sub p 8 (String.length p - 8)
  else p

let r4_prints =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
  ]

let check_ident violation loc lid =
  let p = String.concat "." (Longident.flatten lid) in
  let bare = strip_stdlib p in
  (* R1 *)
  if String.starts_with ~prefix:"Unix." bare then
    violation R1 loc
      (p ^ " reads OS state; use Engine.now / Engine.sleep / Fdb_sim.Disk")
  else if bare = "Sys.time" then
    violation R1 loc "Sys.time is wall-clock; use Engine.now"
  else if String.starts_with ~prefix:"Random." bare then
    violation R1 loc
      (p ^ " is unseeded ambient randomness; use a Fdb_util.Det_rng stream \
         (Engine.fork_rng)");
  (* R2 *)
  (match bare with
  | "Hashtbl.iter" | "Hashtbl.fold" | "Hashtbl.to_seq" | "Hashtbl.to_seq_keys"
  | "Hashtbl.to_seq_values" ->
      violation R2 loc
        (p ^ " enumerates in hash order; use Fdb_util.Det_tbl (key-sorted)")
  | _ -> ());
  (* R6: the unapproved detach — swallows the error side-channel. *)
  (match strip_sim bare with
  | "Future.ignore_result" ->
      violation R6 loc
        (p ^ " swallows failures; use Future.detach ~name (traces \
         future_detached_error) or await the future")
  | _ -> ());
  (* R4 *)
  if List.mem bare r4_prints then
    violation R4 loc (p ^ " writes to stdout from library code; use Trace")
  else
    match bare with
    | "Printf.printf" | "Format.printf" ->
        violation R4 loc (p ^ " writes to stdout from library code; use Trace \
           or take a formatter")
    | "exit" ->
        violation R4 loc
          "exit from library code; return an error and let bin/ decide"
    | _ -> ()

let is_ignore_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident "ignore"; _ }
  | Pexp_ident { txt = Ldot (Lident "Stdlib", "ignore"); _ } ->
      true
  | _ -> false

(* Paths whose application is known to produce a Future.t — the set R6 can
   convict syntactically when the result is discarded. (A discarded future
   in statement position is usually already a compile error via warning 10;
   these catch the laundered forms: ignore, let _ = .) *)
let future_returning =
  [
    "Future.bind";
    "Future.map";
    "Future.all";
    "Future.all_unit";
    "Future.join2";
    "Future.race";
    "Future.catch";
    "Future.protect";
    "Engine.sleep";
    "Engine.sleep_until";
    "Engine.yield";
    "Engine.timeout";
    "Engine.cpu";
    "Context.rpc";
    "Network.call";
  ]

let head_is_future_call (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let p = strip_sim (String.concat "." (Longident.flatten txt)) in
      if List.mem p future_returning then Some p else None
  | _ -> None

(* Does this type annotation name a future? ('a Future.t, both qualified
   and through Fdb_sim.) *)
let rec is_future_type (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> (
      match List.rev (Longident.flatten txt) with
      | "t" :: "Future" :: _ -> true
      | _ -> false)
  | Ptyp_alias (t, _) -> is_future_type t
  | _ -> false

let discard_msg p =
  p
  ^ " returns a future that is discarded here; await it or detach with \
     Future.detach ~name (failures trace as future_detached_error)"

let walk violation (ast : Parsetree.structure) =
  let open Ast_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident violation loc txt
    | Pexp_apply (fn, [ (Nolabel, arg) ]) when is_ignore_ident fn -> (
        match arg.pexp_desc with
        | Pexp_constraint (_, ty) ->
            if is_future_type ty then
              violation R6 e.pexp_loc
                "ignore of a Future.t: the error side-channel vanishes and \
                 pending waiters can leak; use Future.detach ~name or await it"
        | _ ->
            violation R3 e.pexp_loc
              "ignore without a type annotation; write ignore (e : ty) so the \
               dropped value is visible";
            (match head_is_future_call arg with
            | Some p -> violation R6 e.pexp_loc (discard_msg p)
            | None -> ()))
    | Pexp_sequence (e1, _) -> (
        match head_is_future_call e1 with
        | Some p -> violation R6 e1.pexp_loc (discard_msg p)
        | None -> ())
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_any -> (
                match head_is_future_call vb.pvb_expr with
                | Some p -> violation R6 vb.pvb_loc (discard_msg p)
                | None -> ())
            | _ -> ())
          vbs
    | _ -> ());
    default_iterator.expr self e
  in
  let module_expr self (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> (
        match Longident.flatten txt with
        | "Unix" :: _ ->
            violation R1 loc "aliasing/opening Unix smuggles OS state in"
        | "Random" :: _ ->
            violation R1 loc
              "aliasing/opening Stdlib.Random smuggles ambient randomness in"
        | _ -> ())
    | _ -> ());
    default_iterator.module_expr self m
  in
  let it = { default_iterator with expr; module_expr } in
  it.structure it ast

(* ---- the R5 pass: cross-yield atomicity ----

   A per-function-body abstract interpretation. Yield points are let*/let+
   (and their and*s) and literal Future.bind/Future.map continuations —
   everywhere the actor suspends and other actors may run. Mutable
   locations are tracked syntactically: a ref deref/assignment whose ref is
   a named path ([!r], [r := e], module-level refs included), and a record
   field get/set rooted at a named path ([t.kcv], [t.kcv <- v]).

   Per location the state is one of
     Lclean - no knowledge (never read, or last event was our own write)
     Lread  - read since the last yield: knowledge is current
     Lstale - read at some point, but a yield has happened since
   and the two convictions are
     (a) writing a location whose state is Lstale: the write acts on a
         pre-yield snapshot (the commit_flush-race shape), and
     (b) using a local [let v = t.q in] that captured a location's value
         before a yield, after the yield, when the location has not been
         re-read — the captured-snapshot shape.
   Reads are never flagged: a post-yield read IS the re-read idiom.

   Control flow: branches are analyzed from the same incoming state and
   merged pointwise toward the stalest answer; Future.catch/protect bodies
   are inlined sequentially (the handler runs after whatever prefix of the
   protected body executed); other lambdas are separate function bodies —
   except bind/map continuations, which continue the suspended actor and
   are analyzed inline after the yield. *)

module SMap = Map.Make (String)

type lstatus = Lclean | Lread | Lstale

type capture = { cap_loc : string; cap_line : int; cap_stale : bool; cap_reported : bool }

type r5_state = { locs : lstatus SMap.t; caps : capture SMap.t }

let r5_empty = { locs = SMap.empty; caps = SMap.empty }

let lrank = function Lclean -> 0 | Lread -> 1 | Lstale -> 2

let lmax a b = if lrank a >= lrank b then a else b

let r5_merge a b =
  {
    locs =
      SMap.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y -> Some (lmax x y)
          | Some x, None | None, Some x -> Some x
          | None, None -> None)
        a.locs b.locs;
    caps =
      SMap.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y when x.cap_loc = y.cap_loc ->
              Some
                {
                  x with
                  cap_stale = x.cap_stale || y.cap_stale;
                  cap_reported = x.cap_reported || y.cap_reported;
                }
          | Some x, None | None, Some x -> Some x
          | _ -> None)
        a.caps b.caps;
  }

let r5_yield st =
  {
    locs = SMap.map (function Lread -> Lstale | s -> s) st.locs;
    caps = SMap.map (fun c -> { c with cap_stale = true }) st.caps;
  }

(* The named path of an expression, if it is one: x, M.x, t.field,
   t.a.field (field labels may be module-qualified). *)
let rec named_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | Pexp_field (b, { txt; _ }) -> (
      match named_path b with
      | Some p -> Some (p ^ "." ^ Longident.last txt)
      | None -> None)
  | Pexp_constraint (e, _) -> named_path e
  | _ -> None

(* The location captured by a let-binding RHS, if the RHS is a bare read
   of a mutable location: a field get or a ref deref. *)
let rec capture_key (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_field (_, _) -> named_path e
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "!"; _ }; _ },
        [ (Asttypes.Nolabel, arg) ] ) ->
      named_path arg
  | Pexp_constraint (e, _) -> capture_key e
  | _ -> None

let rec pattern_vars acc (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pattern_vars (txt :: acc) p
  | Ppat_tuple ps -> List.fold_left pattern_vars acc ps
  | Ppat_construct (_, Some (_, p)) -> pattern_vars acc p
  | Ppat_variant (_, Some p) -> pattern_vars acc p
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pattern_vars acc p) acc fields
  | Ppat_array ps -> List.fold_left pattern_vars acc ps
  | Ppat_or (a, b) -> pattern_vars (pattern_vars acc a) b
  | Ppat_constraint (p, _) -> pattern_vars acc p
  | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p -> pattern_vars acc p
  | _ -> acc

(* Binding a name starts a fresh location: captures under that name die,
   and so does tracked state for locations rooted at it (a rebound ref or
   record is a different object — [let candidate = ref None in …] twice in
   one body must not connect the two). *)
let shadow st pat =
  let vars = pattern_vars [] pat in
  let rooted_at v key =
    key = v || String.starts_with ~prefix:(v ^ ".") key
  in
  {
    locs =
      SMap.filter (fun key _ -> not (List.exists (fun v -> rooted_at v key) vars)) st.locs;
    caps = List.fold_left (fun caps v -> SMap.remove v caps) st.caps vars;
  }

let fun_key (e : Parsetree.expression) =
  let l = e.pexp_loc in
  (l.loc_start.Lexing.pos_cnum, l.loc_end.Lexing.pos_cnum)

let r5_pass violation (ast : Parsetree.structure) =
  (* bind/map continuations analyzed inline, so the unit scan must not
     start a fresh analysis for them. Point lookups only (R2-clean). *)
  let consumed : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let read st key = { st with locs = SMap.add key Lread st.locs } in
  let write st key (loc : Location.t) =
    (match SMap.find_opt key st.locs with
    | Some Lstale ->
        violation R5 loc
          ("cross-yield write: " ^ key
         ^ " was last read before a yield; other actors may have changed it \
            while this one was suspended — re-read it after the yield or \
            restructure (commit_flush-race shape)")
    | _ -> ());
    { st with locs = SMap.add key Lclean st.locs }
  in
  let use_var st v (loc : Location.t) =
    match SMap.find_opt v st.caps with
    | Some c
      when c.cap_stale && (not c.cap_reported)
           && SMap.find_opt c.cap_loc st.locs <> Some Lread ->
        violation R5 loc
          ("stale capture: " ^ v ^ " holds the value of " ^ c.cap_loc
         ^ " read before a yield (line "
          ^ string_of_int c.cap_line
          ^ "); re-read " ^ c.cap_loc ^ " after the yield instead");
        { st with caps = SMap.add v { c with cap_reported = true } st.caps }
    | _ -> st
  in
  let is_yield_op op = op = "let*" || op = "let+" in
  let rec unit_body (body : Parsetree.expression) =
    ignore (go r5_empty body : r5_state)
  (* A let-binding RHS that is itself a letop ([let f = let* x = a in … in])
     only CONSTRUCTS a future — the enclosing function does not suspend.
     Analyze the continuation in the post-yield state (its own accesses are
     still checked) but flow the pre-yield state onward, exactly as for a
     literal Future.bind. *)
  and go_rhs st (e : Parsetree.expression) : r5_state =
    match e.pexp_desc with
    | Pexp_letop { let_; ands; body } when is_yield_op let_.pbop_op.txt ->
        let st1 = go st let_.pbop_exp in
        let st1 =
          List.fold_left
            (fun st (a : Parsetree.binding_op) -> go st a.pbop_exp)
            st1 ands
        in
        let stc = shadow (r5_yield st1) let_.pbop_pat in
        let stc =
          List.fold_left
            (fun st (a : Parsetree.binding_op) -> shadow st a.pbop_pat)
            stc ands
        in
        ignore (go stc body : r5_state);
        st1
    | _ -> go st e
  and go st (e : Parsetree.expression) : r5_state =
    match e.pexp_desc with
    (* -- lambdas: separate units unless consumed as continuations -- *)
    | Pexp_fun (_, default, pat, body) ->
        Hashtbl.replace consumed (fun_key e) ();
        (match default with Some d -> ignore (go st d : r5_state) | None -> ());
        ignore (pat : Parsetree.pattern);
        unit_body body;
        st
    | Pexp_function cases ->
        Hashtbl.replace consumed (fun_key e) ();
        List.iter (fun (c : Parsetree.case) -> unit_body c.pc_rhs) cases;
        st
    (* -- yields -- *)
    | Pexp_letop { let_; ands; body } ->
        let st = go st let_.pbop_exp in
        let st =
          List.fold_left (fun st (a : Parsetree.binding_op) -> go st a.pbop_exp) st ands
        in
        let st = if is_yield_op let_.pbop_op.txt then r5_yield st else st in
        let st = shadow st let_.pbop_pat in
        let st =
          List.fold_left (fun st (a : Parsetree.binding_op) -> shadow st a.pbop_pat) st ands
        in
        go st body
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when (let p = strip_sim (String.concat "." (Longident.flatten txt)) in
            p = "Future.bind" || p = "Future.map")
           && List.length args = 2 -> (
        match args with
        | [ (Asttypes.Nolabel, fut); (Asttypes.Nolabel, cont) ] -> (
            let st1 = go st fut in
            (* The continuation resumes after a suspension: analyze it in
               the post-yield state. Code after the whole bind/map runs
               before the continuation does, so the onward state is the
               pre-yield one. *)
            match cont.pexp_desc with
            | Pexp_fun (_, _, pat, body) ->
                Hashtbl.replace consumed (fun_key cont) ();
                let stc = shadow (r5_yield st1) pat in
                ignore (go stc body : r5_state);
                st1
            | _ -> ignore (go st1 cont : r5_state); st1)
        | _ -> List.fold_left (fun st (_, a) -> go st a) st args)
    (* -- catch/protect: bodies inlined sequentially -- *)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when (let p = strip_sim (String.concat "." (Longident.flatten txt)) in
            p = "Future.catch" || p = "Future.protect") ->
        let inline st (arg : Parsetree.expression) =
          match arg.pexp_desc with
          | Pexp_fun (_, _, pat, body) ->
              Hashtbl.replace consumed (fun_key arg) ();
              go (shadow st pat) body
          | _ -> go st arg
        in
        List.fold_left (fun st (_, a) -> inline st a) st args
    (* -- mutable-location events -- *)
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident ":="; _ }; _ },
          [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] ) -> (
        let st = go st rhs in
        match named_path lhs with
        | Some key -> write st key e.pexp_loc
        | None -> go st lhs)
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident "!"; _ }; _ },
          [ (Asttypes.Nolabel, arg) ] ) -> (
        match named_path arg with
        | Some key -> read st key
        | None -> go st arg)
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident ("incr" | "decr"); _ }; _ },
          [ (Asttypes.Nolabel, arg) ] ) -> (
        (* read-modify-write at one point in time: the read refreshes. *)
        match named_path arg with
        | Some key -> write (read st key) key e.pexp_loc
        | None -> go st arg)
    | Pexp_field (b, _) -> (
        match named_path e with
        | Some key -> read (go st b) key
        | None -> go st b)
    | Pexp_setfield (b, { txt; _ }, rhs) -> (
        let st = go st rhs in
        let st = go st b in
        match named_path b with
        | Some p -> write st (p ^ "." ^ Longident.last txt) e.pexp_loc
        | None -> st)
    | Pexp_ident { txt = Lident v; _ } -> use_var st v e.pexp_loc
    | Pexp_ident _ -> st
    (* -- bindings: captures and shadowing -- *)
    | Pexp_let (rf, vbs, body) ->
        let st =
          List.fold_left
            (fun st (vb : Parsetree.value_binding) ->
              let st = go_rhs st vb.pvb_expr in
              let st = shadow st vb.pvb_pat in
              match (rf, vb.pvb_pat.ppat_desc, capture_key vb.pvb_expr) with
              | Asttypes.Nonrecursive, Ppat_var { txt = v; _ }, Some key ->
                  {
                    st with
                    caps =
                      SMap.add v
                        {
                          cap_loc = key;
                          cap_line = vb.pvb_loc.loc_start.Lexing.pos_lnum;
                          cap_stale = false;
                          cap_reported = false;
                        }
                        st.caps;
                  }
              | _ -> st)
            st vbs
        in
        go st body
    (* -- control flow -- *)
    | Pexp_ifthenelse (c, t_, e_) ->
        let st0 = go st c in
        let st1 = go st0 t_ in
        let st2 = match e_ with Some e_ -> go st0 e_ | None -> st0 in
        r5_merge st1 st2
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        let st0 = go st scrut in
        let branches =
          List.map
            (fun (c : Parsetree.case) ->
              let stc = shadow st0 c.pc_lhs in
              let stc =
                match c.pc_guard with Some g -> go stc g | None -> stc
              in
              go stc c.pc_rhs)
            cases
        in
        List.fold_left r5_merge st0 branches
    | Pexp_sequence (a, b) -> go (go st a) b
    | Pexp_while (c, body) ->
        let st = go st c in
        go st body
    | Pexp_for (pat, lo, hi, _, body) ->
        let st = go (go st lo) hi in
        go (shadow st pat) body
    (* -- plain traversal -- *)
    | Pexp_apply (fn, args) ->
        let st = go st fn in
        List.fold_left (fun st (_, a) -> go st a) st args
    | Pexp_tuple es | Pexp_array es ->
        List.fold_left go st es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> go st e
    | Pexp_construct (_, None) | Pexp_variant (_, None) -> st
    | Pexp_record (fields, base) ->
        let st = match base with Some b -> go st b | None -> st in
        List.fold_left (fun st (_, v) -> go st v) st fields
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> go st e
    | Pexp_assert e | Pexp_lazy e -> go st e
    | Pexp_open (_, e) | Pexp_newtype (_, e) -> go st e
    | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) -> go st e
    | _ -> st
  in
  (* Every lambda body not consumed as a continuation is one analysis
     unit; the iterator finds them all (including inside modules). *)
  let open Ast_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_fun (_, _, _, body) ->
        if not (Hashtbl.mem consumed (fun_key e)) then begin
          Hashtbl.replace consumed (fun_key e) ();
          unit_body body
        end
    | Pexp_function cases ->
        if not (Hashtbl.mem consumed (fun_key e)) then begin
          Hashtbl.replace consumed (fun_key e) ();
          List.iter (fun (c : Parsetree.case) -> unit_body c.pc_rhs) cases
        end
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.structure it ast

let parse ~path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error e ->
            (Syntaxerr.location_of_error e).loc_start.Lexing.pos_lnum
        | _ -> 1
      in
      Error
        {
          d_file = path;
          d_line = line;
          d_col = 0;
          d_rule = None;
          d_msg = "parse error: " ^ Printexc.to_string exn;
        }

let lint_source ?(whitelist = []) ?whitelist_used ~path src =
  let path = normalize path in
  let diags = ref [] in
  let supp, supp_errs = scan_suppressions ~path src in
  List.iter (fun d -> diags := d :: !diags) supp_errs;
  let violation rule (loc : Location.t) msg =
    if applies rule path then begin
      if List.mem (rule, path) whitelist then (
        match whitelist_used with Some f -> f (rule, path) | None -> ())
      else begin
        let line = loc.loc_start.Lexing.pos_lnum in
        let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
        match
          List.find_opt
            (fun s -> s.s_rule = rule && List.mem line s.s_lines)
            supp
        with
        | Some s -> s.s_used <- true
        | None ->
            diags :=
              { d_file = path; d_line = line; d_col = col; d_rule = Some rule; d_msg = msg }
              :: !diags
      end
    end
  in
  (match parse ~path src with
  | Error d -> diags := d :: !diags
  | Ok ast ->
      walk violation ast;
      r5_pass violation ast);
  (* The stale-suppression audit: an allow comment that suppressed nothing
     is dead — and will silently cover whatever lands on that line next. *)
  List.iter
    (fun s ->
      if not s.s_used then
        diags :=
          {
            d_file = path;
            d_line = s.s_comment_line;
            d_col = 0;
            d_rule = None;
            d_msg =
              "stale suppression: allow " ^ rule_name s.s_rule
              ^ " no longer suppresses any diagnostic; remove it";
          }
          :: !diags)
    supp;
  List.sort
    (fun a b -> compare (a.d_line, a.d_col, a.d_msg) (b.d_line, b.d_col, b.d_msg))
    !diags

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?whitelist ?whitelist_used ?as_path path =
  let logical = match as_path with Some p -> p | None -> path in
  lint_source ?whitelist ?whitelist_used ~path:logical (read_file path)
