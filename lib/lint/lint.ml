(* The determinism lint. See lint.mli and DESIGN.md ("The determinism
   contract") for the ruleset. Implementation: parse each file with the
   compiler's own frontend (Parse + Ast_iterator from compiler-libs) — no
   typing, no ppx, no new dependencies — and pattern-match forbidden
   identifier paths syntactically. That keeps the pass fast (<5s over the
   whole tree) and robust to partial builds, at the cost of not seeing
   through aliases; the module_expr check below closes the obvious
   laundering hole ([module U = Unix], [open Random]). *)

type rule = R1 | R2 | R3 | R4

let all_rules = [ R1; R2; R3; R4 ]
let rule_name = function R1 -> "R1" | R2 -> "R2" | R3 -> "R3" | R4 -> "R4"

let rule_of_string = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | _ -> None

let explain = function
  | R1 ->
      "R1: no wall-clock or ambient randomness.\n\
       Unix.*, Sys.time and Stdlib.Random read state the simulator does not\n\
       control, so two runs of the same seed diverge and a failing seed no\n\
       longer reproduces. Use Engine.now for time and a seeded\n\
       Fdb_util.Det_rng stream (Engine.fork_rng) for randomness. The only\n\
       exemptions are lib/util/det_rng.ml itself and files listed in the\n\
       checked-in whitelist."
  | R2 ->
      "R2: no raw Hashtbl enumeration outside lib/util.\n\
       Hashtbl.iter/fold/to_seq order depends on the hash of the keys and\n\
       the table's internal resize history — it is stable within one binary\n\
       but it is not part of any contract, and any simulation decision made\n\
       in that order is a latent nondeterminism bug. Go through\n\
       Fdb_util.Det_tbl, whose enumeration is key-sorted. Point lookups\n\
       (find_opt/replace/mem) on plain Hashtbl remain fine."
  | R3 ->
      "R3: every ignore must carry a type annotation.\n\
       ignore (f x) silently discards whatever f returns — including a\n\
       bool from Future.try_fulfill, where a dropped false is a lost\n\
       wakeup, or a Future.t whose error side-channel vanishes. Write\n\
       ignore (f x : bool) so the dropped type is visible in review and\n\
       breaks loudly when a signature changes."
  | R4 ->
      "R4: no print_*/Printf.printf/Format.printf/exit in library code.\n\
       Library output must flow through Trace (simulation-visible, part of\n\
       the trace checksum) or a formatter handed in by the caller; stdout\n\
       writes and process exit belong to bin/ drivers only."

type diagnostic = {
  d_file : string;
  d_line : int;
  d_col : int;
  d_rule : rule option;
  d_msg : string;
}

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" d.d_file d.d_line d.d_col
    (match d.d_rule with Some r -> rule_name r | None -> "lint")
    d.d_msg

type whitelist = (rule * string) list

(* ---- paths and rule applicability ---- *)

let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let applies rule path =
  match rule with
  | R1 -> path <> "lib/util/det_rng.ml"
  | R2 -> not (String.starts_with ~prefix:"lib/util/" path)
  | R3 -> true
  | R4 -> String.starts_with ~prefix:"lib/" path

let parse_whitelist src =
  String.split_on_char '\n' src
  |> List.concat_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then []
         else
           match String.index_opt line ' ' with
           | None ->
               failwith
                 ("lint whitelist: malformed line (want \"RULE path\"): " ^ line)
           | Some i -> (
               let r = String.sub line 0 i in
               let p =
                 String.trim (String.sub line i (String.length line - i))
               in
               match rule_of_string r with
               | Some rule -> [ (rule, normalize p) ]
               | None -> failwith ("lint whitelist: unknown rule " ^ r)))

(* ---- suppression comments ----
   (* fdb-lint: allow R2 -- reason *) suppresses RULE on its own line; when
   the comment stands alone on a line it also covers the next line. The
   reason is mandatory: a suppression that cannot justify itself is a
   diagnostic, not an exemption. *)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Built by concatenation so the scanner does not match its own source. *)
let marker = "fdb-lint" ^ ":"

let scan_suppressions ~path src =
  let supp = ref [] and errs = ref [] in
  let err line msg =
    errs :=
      { d_file = path; d_line = line; d_col = 0; d_rule = None; d_msg = msg }
      :: !errs
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_sub line marker with
      | None -> ()
      | Some idx -> (
          let rest =
            String.sub line
              (idx + String.length marker)
              (String.length line - idx - String.length marker)
          in
          (* strip the comment closer, if on the same line *)
          let rest =
            match find_sub rest "*)" with
            | Some j -> String.sub rest 0 j
            | None -> rest
          in
          let words =
            String.split_on_char ' ' rest |> List.filter (fun w -> w <> "")
          in
          match words with
          | "allow" :: rule_word :: reason -> (
              match rule_of_string rule_word with
              | None ->
                  err lineno
                    ("fdb-lint suppression names unknown rule \"" ^ rule_word
                   ^ "\"")
              | Some rule ->
                  (* drop a leading "--" separator, then require substance *)
                  let reason =
                    match reason with "--" :: r -> r | r -> r
                  in
                  if reason = [] then
                    err lineno
                      ("fdb-lint suppression for " ^ rule_name rule
                     ^ " has no reason; write (* " ^ marker ^ " allow "
                     ^ rule_name rule ^ " -- why *)")
                  else begin
                    let standalone =
                      match find_sub line "(*" with
                      | Some j when j < idx ->
                          String.trim (String.sub line 0 j) = ""
                      | _ -> false
                    in
                    supp := (lineno, rule) :: !supp;
                    if standalone then supp := (lineno + 1, rule) :: !supp
                  end)
          | _ ->
              err lineno
                ("malformed fdb-lint comment; write (* " ^ marker
               ^ " allow RULE -- reason *)")))
    lines;
  (!supp, !errs)

(* ---- the AST pass ---- *)

let strip_stdlib p =
  if String.starts_with ~prefix:"Stdlib." p then
    String.sub p 7 (String.length p - 7)
  else p

let r4_prints =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
  ]

let check_ident violation loc lid =
  let p = String.concat "." (Longident.flatten lid) in
  let bare = strip_stdlib p in
  (* R1 *)
  if String.starts_with ~prefix:"Unix." bare then
    violation R1 loc
      (p ^ " reads OS state; use Engine.now / Engine.sleep / Fdb_sim.Disk")
  else if bare = "Sys.time" then
    violation R1 loc "Sys.time is wall-clock; use Engine.now"
  else if String.starts_with ~prefix:"Random." bare then
    violation R1 loc
      (p ^ " is unseeded ambient randomness; use a Fdb_util.Det_rng stream \
         (Engine.fork_rng)");
  (* R2 *)
  (match bare with
  | "Hashtbl.iter" | "Hashtbl.fold" | "Hashtbl.to_seq" | "Hashtbl.to_seq_keys"
  | "Hashtbl.to_seq_values" ->
      violation R2 loc
        (p ^ " enumerates in hash order; use Fdb_util.Det_tbl (key-sorted)")
  | _ -> ());
  (* R4 *)
  if List.mem bare r4_prints then
    violation R4 loc (p ^ " writes to stdout from library code; use Trace")
  else
    match bare with
    | "Printf.printf" | "Format.printf" ->
        violation R4 loc (p ^ " writes to stdout from library code; use Trace \
           or take a formatter")
    | "exit" ->
        violation R4 loc
          "exit from library code; return an error and let bin/ decide"
    | _ -> ()

let is_ignore_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident "ignore"; _ }
  | Pexp_ident { txt = Ldot (Lident "Stdlib", "ignore"); _ } ->
      true
  | _ -> false

let walk violation (ast : Parsetree.structure) =
  let open Ast_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident violation loc txt
    | Pexp_apply (fn, [ (Nolabel, arg) ]) when is_ignore_ident fn -> (
        match arg.pexp_desc with
        | Pexp_constraint _ -> ()
        | _ ->
            violation R3 e.pexp_loc
              "ignore without a type annotation; write ignore (e : ty) so the \
               dropped value is visible")
    | _ -> ());
    default_iterator.expr self e
  in
  let module_expr self (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> (
        match Longident.flatten txt with
        | "Unix" :: _ ->
            violation R1 loc "aliasing/opening Unix smuggles OS state in"
        | "Random" :: _ ->
            violation R1 loc
              "aliasing/opening Stdlib.Random smuggles ambient randomness in"
        | _ -> ())
    | _ -> ());
    default_iterator.module_expr self m
  in
  let it = { default_iterator with expr; module_expr } in
  it.structure it ast

let parse ~path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error e ->
            (Syntaxerr.location_of_error e).loc_start.Lexing.pos_lnum
        | _ -> 1
      in
      Error
        {
          d_file = path;
          d_line = line;
          d_col = 0;
          d_rule = None;
          d_msg = "parse error: " ^ Printexc.to_string exn;
        }

let lint_source ?(whitelist = []) ~path src =
  let path = normalize path in
  let diags = ref [] in
  let supp, supp_errs = scan_suppressions ~path src in
  List.iter (fun d -> diags := d :: !diags) supp_errs;
  let violation rule (loc : Location.t) msg =
    if applies rule path && not (List.mem (rule, path) whitelist) then begin
      let line = loc.loc_start.Lexing.pos_lnum in
      let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
      if not (List.exists (fun (l, r) -> l = line && r = rule) supp) then
        diags :=
          { d_file = path; d_line = line; d_col = col; d_rule = Some rule; d_msg = msg }
          :: !diags
    end
  in
  (match parse ~path src with
  | Error d -> diags := d :: !diags
  | Ok ast -> walk violation ast);
  List.sort
    (fun a b -> compare (a.d_line, a.d_col, a.d_msg) (b.d_line, b.d_col, b.d_msg))
    !diags

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?whitelist ?as_path path =
  let logical = match as_path with Some p -> p | None -> path in
  lint_source ?whitelist ~path:logical (read_file path)
