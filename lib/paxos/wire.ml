type ballot = { round : int; proposer : int }

let ballot_compare a b =
  match compare a.round b.round with 0 -> compare a.proposer b.proposer | c -> c

let ballot_zero = { round = 0; proposer = 0 }

type request =
  | Prepare of { reg : string; ballot : ballot }
  | Accept of { reg : string; ballot : ballot; value : string }
  | Read of { reg : string }

type response =
  | Promised of { accepted : (ballot * string) option }
  | Accepted
  | Nacked of { higher : ballot }
  | Read_result of { accepted : (ballot * string) option }

type transport = {
  endpoints : int list;
  call : int -> request -> response Fdb_sim.Future.t;
}
