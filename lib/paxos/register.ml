open Fdb_sim
open Future.Syntax

type t = {
  transport : Wire.transport;
  reg : string;
  proposer : int;
  mutable round : int;
  mutable ballot : Wire.ballot;
}

exception Lock_lost

let create transport ~reg ~proposer =
  { transport; reg; proposer; round = 0; ballot = Wire.ballot_zero }

let majority t = (List.length t.transport.endpoints / 2) + 1

(* Send [req] to every coordinator and collect the responses that arrive;
   failures (timeouts) count as silence. *)
let broadcast t req : Wire.response list Future.t =
  let calls =
    List.map
      (fun ep ->
        Future.catch
          (fun () -> Future.map (t.transport.call ep req) (fun r -> Some r))
          (fun _ -> Future.return None))
      t.transport.endpoints
  in
  Future.map (Future.all calls) (List.filter_map Fun.id)

let backoff () = Engine.sleep (0.05 +. Engine.random_float 0.2)

let rec lock_and_read t =
  t.round <- t.round + 1;
  t.ballot <- { Wire.round = t.round; proposer = t.proposer };
  let* responses = broadcast t (Wire.Prepare { reg = t.reg; ballot = t.ballot }) in
  let promises, best, highest_round =
    List.fold_left
      (fun (n, best, hr) resp ->
        match resp with
        | Wire.Promised { accepted } ->
            let best =
              match (accepted, best) with
              | Some (b, v), Some (b', _) when Wire.ballot_compare b b' > 0 -> Some (b, v)
              | Some (b, v), None -> Some (b, v)
              | _ -> best
            in
            (n + 1, best, hr)
        | Wire.Nacked { higher } -> (n, best, max hr higher.Wire.round)
        | Wire.Accepted | Wire.Read_result _ -> (n, best, hr))
      (0, None, t.round) responses
  in
  if promises >= majority t then Future.return (Option.map snd best)
  else begin
    t.round <- highest_round;
    let* () = backoff () in
    lock_and_read t
  end

let rec write t value =
  let* responses =
    broadcast t (Wire.Accept { reg = t.reg; ballot = t.ballot; value })
  in
  let accepts, nacked =
    List.fold_left
      (fun (n, nack) resp ->
        match resp with
        | Wire.Accepted -> (n + 1, nack)
        | Wire.Nacked _ -> (n, true)
        | Wire.Promised _ | Wire.Read_result _ -> (n, nack))
      (0, false) responses
  in
  if accepts >= majority t then Future.return ()
  else if nacked then Future.fail Lock_lost
  else
    let* () = backoff () in
    write t value

let read t =
  let* v = lock_and_read t in
  match v with
  | None -> Future.return None
  | Some value ->
      let* () = write t value in
      Future.return (Some value)

let rec read_any t =
  let* responses = broadcast t (Wire.Read { reg = t.reg }) in
  if List.length responses >= majority t then
    Future.return
      (List.fold_left
         (fun best resp ->
           match resp with
           | Wire.Read_result { accepted = Some (b, v) } -> (
               match best with
               | Some (b', _) when Wire.ballot_compare b' b >= 0 -> best
               | _ -> Some (b, v))
           | _ -> best)
         None responses
      |> Option.map snd)
  else
    let* () = backoff () in
    read_any t
