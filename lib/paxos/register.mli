(** Client side of the coordinated-state register (paper §2.3.1, §2.4.4).

    A {!lock_and_read} installs a new ballot on a majority of coordinators:
    it returns the most recent majority-written value and — crucially —
    invalidates the write ability of every earlier locker, which is exactly
    how a recovering Sequencer "locks the coordinated states to prevent
    another Sequencer process from recovering at the same time". *)

type t

exception Lock_lost
(** A {!write} was rejected because some later client locked the register. *)

val create : Wire.transport -> reg:string -> proposer:int -> t
(** A client identity for register [reg]; [proposer] must be unique among
    concurrent clients (e.g. the process id). *)

val lock_and_read : t -> string option Fdb_sim.Future.t
(** Acquire a fresh ballot on a majority (retrying with backoff through
    failures and ballot races) and return the current value, if any. *)

val write : t -> string -> unit Fdb_sim.Future.t
(** Write under the ballot of the last {!lock_and_read}. Retries through
    silence; fails with {!Lock_lost} if outballoted. Must be preceded by a
    successful {!lock_and_read}. *)

val read : t -> string option Fdb_sim.Future.t
(** Linearizable read: lock, read, and write the value back so it can no
    longer be lost. *)

val read_any : t -> string option Fdb_sim.Future.t
(** Weak read: highest accepted value on any majority, without locking
    (used for leader polling; may return stale or unstable values). *)
