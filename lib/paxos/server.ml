open Fdb_sim
open Future.Syntax
module Det_tbl = Fdb_util.Det_tbl

type reg_state = {
  mutable promised : Wire.ballot;
  mutable accepted : (Wire.ballot * string) option;
}

type t = {
  disk : Disk.t;
  file : string;
  regs : (string, reg_state) Det_tbl.t;
}

type persisted = (string * (Wire.ballot * (Wire.ballot * string) option)) list

let recover ~disk ~file () =
  let* contents = Disk.read_file disk file in
  let regs = Det_tbl.create ~size:8 () in
  (match contents with
  | None -> ()
  | Some s -> (
      match (Marshal.from_string s 0 : persisted) with
      | entries ->
          List.iter
            (fun (name, (promised, accepted)) ->
              Det_tbl.replace regs name { promised; accepted })
            entries
      | exception _ -> ()));
  Future.return { disk; file; regs }

(* Det_tbl.fold is name-sorted, so the persisted image of the register
   file is canonical: two runs of a seed write identical bytes. *)
let persist t =
  let entries =
    Det_tbl.fold (fun name st acc -> (name, (st.promised, st.accepted)) :: acc) t.regs []
  in
  let* () = Disk.write_file t.disk t.file (Marshal.to_string (entries : persisted) []) in
  Disk.sync t.disk t.file

let get_reg t name =
  match Det_tbl.find_opt t.regs name with
  | Some st -> st
  | None ->
      let st = { promised = Wire.ballot_zero; accepted = None } in
      Det_tbl.add t.regs name st;
      st

let handle t (req : Wire.request) : Wire.response Future.t =
  match req with
  | Wire.Read { reg } ->
      let st = get_reg t reg in
      Future.return (Wire.Read_result { accepted = st.accepted })
  | Wire.Prepare { reg; ballot } ->
      let st = get_reg t reg in
      if Wire.ballot_compare ballot st.promised > 0 then begin
        st.promised <- ballot;
        let* () = persist t in
        Future.return (Wire.Promised { accepted = st.accepted })
      end
      else Future.return (Wire.Nacked { higher = st.promised })
  | Wire.Accept { reg; ballot; value } ->
      let st = get_reg t reg in
      if Wire.ballot_compare ballot st.promised >= 0 then begin
        st.promised <- ballot;
        st.accepted <- Some (ballot, value);
        let* () = persist t in
        Future.return Wire.Accepted
      end
      else Future.return (Wire.Nacked { higher = st.promised })

let dump t = Det_tbl.fold (fun name st acc -> (name, st.accepted) :: acc) t.regs []
