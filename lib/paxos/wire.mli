(** Wire protocol of the coordinator (Active Disk Paxos [27]) registers.

    The database embeds these messages in its own RPC variant and hands the
    library a {!transport}; the Paxos code never touches the network
    directly, which keeps it reusable and unit-testable. *)

type ballot = { round : int; proposer : int }
(** Totally ordered by (round, proposer). *)

val ballot_compare : ballot -> ballot -> int
val ballot_zero : ballot

type request =
  | Prepare of { reg : string; ballot : ballot }
      (** Phase 1: promise not to accept lower ballots for register [reg]. *)
  | Accept of { reg : string; ballot : ballot; value : string }
      (** Phase 2: store [value] unless a higher ballot was promised. *)
  | Read of { reg : string }
      (** Unlocked read of the local accepted value (leader polling). *)

type response =
  | Promised of { accepted : (ballot * string) option }
  | Accepted
  | Nacked of { higher : ballot }
  | Read_result of { accepted : (ballot * string) option }

type transport = {
  endpoints : int list;  (** coordinator addresses *)
  call : int -> request -> response Fdb_sim.Future.t;
      (** may fail (timeout / partition); the client treats failures as
          silence and needs only a majority *)
}
