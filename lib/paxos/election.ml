open Fdb_sim
open Future.Syntax

type claim = { who : string; expiry : float }

let encode (c : claim) = Marshal.to_string c []
let decode s = match (Marshal.from_string s 0 : claim) with c -> Some c | exception _ -> None

type t = {
  reg : Register.t;
  self : string;
  lease : float;
  on_elected : unit -> unit;
  on_deposed : unit -> unit;
  mutable observed : claim option;
  mutable am_leader : bool;
  mutable stopped : bool;
}

let jitter () = Engine.random_float 0.2

let depose t =
  if t.am_leader then begin
    t.am_leader <- false;
    t.on_deposed ()
  end

let rec campaign t =
  if t.stopped then Future.return ()
  else
    let* () =
      Future.catch
        (fun () ->
          (* Followers poll with a ballot-free read so they never disturb
             the holder's renewals; only an expired lease escalates to the
             locking path (ballot contention at WAN latencies otherwise
             livelocks the election). *)
          let* peek = if t.am_leader then Future.return None else Register.read_any t.reg in
          match Option.bind peek decode with
          | Some c when (not t.am_leader) && c.who <> t.self && c.expiry > Engine.now () ->
              t.observed <- Some c;
              Engine.sleep (c.expiry -. Engine.now () +. (t.lease /. 2.0) +. jitter ())
          | _ ->
              let* v = Register.lock_and_read t.reg in
              let current = Option.bind v decode in
              t.observed <- current;
              (match current with
              | Some c when c.who <> t.self && c.expiry > Engine.now () ->
                  (* Someone else holds a live lease: wait it out. *)
                  depose t;
                  Engine.sleep (c.expiry -. Engine.now () +. (t.lease /. 2.0) +. jitter ())
              | _ ->
                  (* Free, expired, or ours: (re)claim. *)
                  let claim = { who = t.self; expiry = Engine.now () +. t.lease } in
                  let* () = Register.write t.reg (encode claim) in
                  t.observed <- Some claim;
                  if not t.am_leader then begin
                    t.am_leader <- true;
                    t.on_elected ()
                  end;
                  Engine.sleep (t.lease /. 3.0 +. jitter ())))
        (fun _ ->
          (* Lock lost or coordinators unreachable: if our lease has lapsed,
             stop believing we lead, then retry. *)
          (match t.observed with
          | Some c when c.who = t.self && c.expiry <= Engine.now () -> depose t
          | Some c when c.who <> t.self -> depose t
          | _ -> ());
          Engine.sleep (0.2 +. jitter ()))
    in
    campaign t

let start reg ~self ?(lease = 4.0) ~on_elected ~on_deposed () =
  let t =
    {
      reg;
      self;
      lease;
      on_elected;
      on_deposed;
      observed = None;
      am_leader = false;
      stopped = false;
    }
  in
  Engine.spawn ("election:" ^ self) (fun () -> campaign t);
  t

let stop t =
  t.stopped <- true;
  depose t

let is_leader t = t.am_leader
let leader t = Option.map (fun c -> c.who) t.observed

let leader_via transport ~reg ~proposer =
  let client = Register.create transport ~reg ~proposer in
  let* v = Register.read_any client in
  match Option.bind v decode with
  | Some c when c.expiry > Engine.now () -> Future.return (Some c.who)
  | _ -> Future.return None
