(** Coordinator-side Paxos acceptor state, durable on a simulated disk.

    Each coordinator hosts a set of named registers; promises and accepted
    values are persisted (and synced) {e before} replying, as Disk Paxos
    requires — a coordinator that reboots honours promises it made in a
    previous incarnation. *)

type t

val recover : disk:Fdb_sim.Disk.t -> file:string -> unit -> t Fdb_sim.Future.t
(** Load acceptor state from disk (empty on first boot / after data loss). *)

val handle : t -> Wire.request -> Wire.response Fdb_sim.Future.t
(** Process one request, persisting state changes before the reply. *)

val dump : t -> (string * (Wire.ballot * string) option) list
(** Accepted value per register (tests/introspection). *)
