(** Lease-based singleton election over a Paxos register (paper §2.3.1:
    coordinators "select a singleton ClusterController").

    Liveness-oriented: the winner holds a time-based lease it keeps
    renewing; challengers wait the lease out. Like in FDB, brief windows
    with two self-believed leaders are tolerable — real mutual exclusion
    for recovery comes from {!Register.lock_and_read} ballots, not from
    the election. *)

type t

val start :
  Register.t ->
  self:string ->
  ?lease:float ->
  on_elected:(unit -> unit) ->
  on_deposed:(unit -> unit) ->
  unit ->
  t
(** Join the election as candidate [self] (an opaque payload, typically an
    encoded endpoint, that other nodes can read via {!leader}). The
    callbacks fire on each win / loss of leadership. The candidate loop
    runs until {!stop}. Lease defaults to 4 s. *)

val stop : t -> unit
(** Leave the election (e.g. the process is shutting down). *)

val is_leader : t -> bool
(** Current local belief. *)

val leader : t -> string option
(** Last observed leader payload (possibly [self]); [None] before any
    observation. *)

val leader_via : Wire.transport -> reg:string -> proposer:int -> string option Fdb_sim.Future.t
(** One-shot query: who does a majority currently consider leader? Returns
    the payload if the lease is still current. For non-candidates needing
    to find the ClusterController. *)
