type mode = [ `Want_all | `Iterator | `Exact of int ]

type t = {
  rq_begin : Message.key_selector;
  rq_end : Message.key_selector;
  rq_limit : int;
  rq_mode : mode;
  rq_reverse : bool;
  rq_snapshot : bool;
  rq_continuation : string option;
}

let first_greater_or_equal key =
  { Message.sel_key = key; sel_or_equal = false; sel_offset = 1 }

let create ?(limit = 1000) ?(mode = `Want_all) ?(reverse = false)
    ?(snapshot = false) ?continuation ~begin_ ~end_ () =
  {
    rq_begin = begin_;
    rq_end = end_;
    rq_limit = limit;
    rq_mode = mode;
    rq_reverse = reverse;
    rq_snapshot = snapshot;
    rq_continuation = continuation;
  }

let keys ?limit ?mode ?reverse ?snapshot ?continuation ~from ~until () =
  create ?limit ?mode ?reverse ?snapshot ?continuation
    ~begin_:(first_greater_or_equal from) ~end_:(first_greater_or_equal until) ()

let prefix ?limit ?mode ?reverse ?snapshot ?continuation p () =
  let from, until = Types.range_of_prefix p in
  keys ?limit ?mode ?reverse ?snapshot ?continuation ~from ~until ()

(* A firstGreaterOrEqual selector with no offset IS its key as a range
   bound: both bounds trivial means the query needs no selector-resolution
   round-trips at all (the fast path every plain-key read takes). *)
let trivial (sel : Message.key_selector) =
  (not sel.Message.sel_or_equal) && sel.Message.sel_offset = 1

let trivial_bounds q =
  if trivial q.rq_begin && trivial q.rq_end then
    Some (q.rq_begin.Message.sel_key, q.rq_end.Message.sel_key)
  else None

let with_continuation q c = { q with rq_continuation = Some c }
let with_limit q limit = { q with rq_limit = limit }
let with_snapshot q snapshot = { q with rq_snapshot = snapshot }
