open Fdb_sim
open Future.Syntax
module Mutation = Fdb_kv.Mutation
module KeyMap = Map.Make (String)
module Rng = Fdb_util.Det_rng

type db = {
  ctx : Context.t;
  proc : Process.t;
  rng : Rng.t;
  mutable proxies : int array;
  mutable refreshing : bool;
}

let versionstamp_placeholder = String.make 10 '\x00'

let create_db ctx proc =
  { ctx; proc; rng = Engine.fork_rng (); proxies = [||]; refreshing = false }

(* Find the ClusterController through the coordinators, then ask it for the
   current proxies — the client's bootstrap path. *)
let refresh db =
  if db.refreshing then Engine.sleep 0.1
  else begin
    db.refreshing <- true;
    Future.protect
      ~finally:(fun () -> db.refreshing <- false)
      (fun () ->
        let transport = Context.paxos_transport db.ctx ~from:db.proc in
        let* leader =
          Future.catch
            (fun () ->
              Fdb_paxos.Election.leader_via transport ~reg:"cc-leader"
                ~proposer:(Context.proposer_id db.proc))
            (fun _ -> Future.return None)
        in
        match Option.bind leader int_of_string_opt with
        | None -> Engine.sleep 0.1
        | Some machine when machine >= Array.length db.ctx.Context.worker_eps ->
            Engine.sleep 0.1
        | Some machine ->
            Future.catch
              (fun () ->
                let* reply =
                  Context.rpc db.ctx ~timeout:1.0 ~from:db.proc
                    db.ctx.Context.worker_eps.(machine) Message.Cc_get_state
                in
                (match reply with
                | Message.Cc_state { st_proxies; st_recovered = true; _ } ->
                    db.proxies <- Array.of_list st_proxies
                | _ -> ());
                Future.return ())
              (fun _ -> Future.return ()))
  end

let pick_proxy db =
  if Array.length db.proxies = 0 then None
  else Some db.proxies.(Rng.int db.rng (Array.length db.proxies))

(* Call some proxy, refreshing the proxy list and retrying a couple of
   times on communication failures before giving up with a retryable
   error for the [run] loop to handle. *)
let proxy_call db msg =
  let rec attempt n =
    if n = 0 then Error.fail Error.Timed_out
    else
      match pick_proxy db with
      | None ->
          let* () = refresh db in
          attempt (n - 1)
      | Some ep ->
          Future.catch
            (fun () -> Context.rpc db.ctx ~timeout:5.0 ~from:db.proc ep msg)
            (function
              | Error.Fdb Error.Wrong_epoch | Error.Fdb Error.Database_locked
              | Engine.Timed_out ->
                  let* () = refresh db in
                  attempt (n - 1)
              | e -> Future.fail e)
  in
  attempt 4

(* ---------- transactions ---------- *)

type buffered =
  | B_set of string
  | B_clear
  | B_atomic of (Mutation.atomic_kind * string) list (* application order *)

type tx = {
  db : db;
  mutable read_version : (Types.version * Types.epoch) Future.t option;
  mutable writes : buffered KeyMap.t;
  mutable cleared : (string * string) list;
  mutable mutations : Message.client_mutation list; (* reversed *)
  mutable read_conflicts : (string * string) list;
  mutable write_conflicts : (string * string) list;
  mutable bytes : int;
  mutable commit_result : Types.version Future.t option;
}

let begin_tx db =
  {
    db;
    read_version = None;
    writes = KeyMap.empty;
    cleared = [];
    mutations = [];
    read_conflicts = [];
    write_conflicts = [];
    bytes = 0;
    commit_result = None;
  }

let check_not_committed t =
  if t.commit_result <> None then raise (Error.Fdb Error.Used_during_commit)

let check_key k =
  if String.length k > Types.key_size_limit then raise (Error.Fdb Error.Key_too_large);
  if k >= Types.key_space_end then raise (Error.Fdb Error.Key_outside_legal_range)

let check_value v =
  if String.length v > Types.value_size_limit then raise (Error.Fdb Error.Value_too_large)

(* The snapshot is (version, epoch): the epoch rides along on storage reads
   so a StorageServer that has not yet heard about a recovery refuses to
   serve newer-generation read versions (it might hold rolled-back data). *)
let snapshot_info t =
  match t.read_version with
  | Some f -> f
  | None ->
      let f =
        let* reply = proxy_call t.db Message.Grv_req in
        match reply with
        | Message.Grv_reply { gv_version; gv_epoch } ->
            Future.return (gv_version, gv_epoch)
        | _ -> Error.fail Error.Timed_out
      in
      t.read_version <- Some f;
      f

let get_read_version t = Future.map (snapshot_info t) fst
let read_snapshot t = snapshot_info t
let set_read_version t v = t.read_version <- Some (Future.return (v, 0))

let add_read_conflict_range t ~from ~until =
  if from < until then t.read_conflicts <- (from, until) :: t.read_conflicts

let add_write_conflict_range t ~from ~until =
  if from < until then t.write_conflicts <- (from, until) :: t.write_conflicts

let in_cleared t k = List.exists (fun (f, u) -> f <= k && k < u) t.cleared

(* ---------- raw storage reads ---------- *)

let storage_get t key (version, rv_epoch) =
  let team = Shard_map.team_for_key t.db.ctx.Context.shard_map key in
  let replicas = Array.of_list team in
  Rng.shuffle t.db.rng replicas;
  let rec attempt i last_err =
    if i >= Array.length replicas then Future.fail last_err
    else
      let ep = t.db.ctx.Context.storage_eps.(replicas.(i)) in
      Future.catch
        (fun () ->
          let* reply =
            Context.rpc t.db.ctx ~timeout:Params.client_read_timeout ~from:t.db.proc ep
              (Message.Storage_get { key; version; rv_epoch })
          in
          match reply with
          | Message.Storage_get_reply v -> Future.return v
          | _ -> Future.fail (Error.Fdb Error.Timed_out))
        (function
          | Error.Fdb Error.Transaction_too_old as e -> Future.fail e
          | Engine.Timed_out -> attempt (i + 1) (Error.Fdb Error.Timed_out)
          | Error.Fdb _ as e -> attempt (i + 1) e
          | e -> Future.fail e)
  in
  attempt 0 (Error.Fdb Error.Timed_out)

let storage_get_range t ~from ~until ~version:(version, rv_epoch) ~limit ~reverse =
  (* Walk shard fragments in scan order, querying each fragment's team. *)
  let fragments =
    let fs = Shard_map.shards_for_range t.db.ctx.Context.shard_map ~from ~until in
    if reverse then List.rev fs else fs
  in
  let rec walk fragments acc remaining =
    match fragments with
    | [] -> Future.return (List.concat (List.rev acc))
    | _ when remaining <= 0 -> Future.return (List.concat (List.rev acc))
    | (f, u, team) :: rest ->
        let replicas = Array.of_list team in
        Rng.shuffle t.db.rng replicas;
        let rec attempt i last_err =
          if i >= Array.length replicas then Future.fail last_err
          else
            let ep = t.db.ctx.Context.storage_eps.(replicas.(i)) in
            Future.catch
              (fun () ->
                let* reply =
                  Context.rpc t.db.ctx ~timeout:Params.client_read_timeout
                    ~from:t.db.proc ep
                    (Message.Storage_get_range
                       {
                         gr_from = f;
                         gr_until = u;
                         gr_version = version;
                         gr_limit = remaining;
                         gr_reverse = reverse;
                         gr_epoch = rv_epoch;
                       })
                in
                match reply with
                | Message.Storage_get_range_reply rows -> Future.return rows
                | _ -> Future.fail (Error.Fdb Error.Timed_out))
              (function
                | Error.Fdb Error.Transaction_too_old as e -> Future.fail e
                | Engine.Timed_out -> attempt (i + 1) (Error.Fdb Error.Timed_out)
                | Error.Fdb _ as e -> attempt (i + 1) e
                | e -> Future.fail e)
        in
        let* rows = attempt 0 (Error.Fdb Error.Timed_out) in
        walk rest (rows :: acc) (remaining - List.length rows)
  in
  walk fragments [] limit

(* ---------- reads with read-your-writes ---------- *)

let apply_ops_to_base base ops =
  List.fold_left
    (fun acc (kind, operand) -> Mutation.atomic_result kind ~old_value:acc operand)
    base ops

let get ?(snapshot = false) t key =
  check_not_committed t;
  check_key key;
  match KeyMap.find_opt key t.writes with
  | Some (B_set v) -> Future.return (Some v)
  | Some B_clear -> Future.return None
  | Some (B_atomic ops) ->
      (* Needs the pre-transaction base value. *)
      let* version = snapshot_info t in
      if not snapshot then
        add_read_conflict_range t ~from:key ~until:(Types.next_key key);
      let* base = if in_cleared t key then Future.return None else storage_get t key version in
      Future.return (apply_ops_to_base base ops)
  | None ->
      if in_cleared t key then Future.return None
      else begin
        let* version = snapshot_info t in
        if not snapshot then
          add_read_conflict_range t ~from:key ~until:(Types.next_key key);
        storage_get t key version
      end

let get_range ?(snapshot = false) ?(limit = 1000) ?(reverse = false) t ~from ~until () =
  check_not_committed t;
  if from >= until then Future.return []
  else begin
    if until > Types.key_space_end then raise (Error.Fdb Error.Key_outside_legal_range);
    let* version = snapshot_info t in
    if not snapshot then add_read_conflict_range t ~from ~until;
    let buffered_in_range =
      KeyMap.to_seq t.writes
      |> Seq.filter (fun (k, _) -> from <= k && k < until)
      |> List.of_seq
    in
    (* Fetch from storage, overlay the write buffer, and keep fetching if
       masking dropped us below the limit while more data may exist. *)
    let rec fetch cursor acc =
      let remaining = limit - List.length acc in
      let exhausted_range = if reverse then cursor <= from else cursor >= until in
      if remaining <= 0 || exhausted_range then Future.return acc
      else
        let f, u = if reverse then (from, cursor) else (cursor, until) in
        let* rows = storage_get_range t ~from:f ~until:u ~version ~limit:remaining ~reverse in
        let exhausted = List.length rows < remaining in
        let visible =
          List.filter
            (fun (k, _) ->
              (not (in_cleared t k)) && not (KeyMap.mem k t.writes))
            rows
        in
        let acc = acc @ visible in
        if exhausted then Future.return acc
        else
          match List.rev rows with
          | [] -> Future.return acc
          | (last, _) :: _ ->
              let cursor = if reverse then last else Types.next_key last in
              fetch cursor acc
    in
    let* base = fetch (if reverse then until else from) [] in
    (* Overlay buffered writes (sets and atomics; atomics over unseen base
       are computed against an absent base, which is exact because a key
       absent from [base] either does not exist or was cleared). *)
    let base_map =
      List.fold_left (fun m (k, v) -> KeyMap.add k v m) KeyMap.empty base
    in
    let* overlaid =
      let rec go acc = function
        | [] -> Future.return acc
        | (k, B_set v) :: rest -> go (KeyMap.add k v acc) rest
        | (_, B_clear) :: rest -> go acc rest
        | (k, B_atomic ops) :: rest ->
            let* base_v =
              match KeyMap.find_opt k base_map with
              | Some v -> Future.return (Some v)
              | None ->
                  if in_cleared t k then Future.return None
                  else storage_get t k version
            in
            let acc =
              match apply_ops_to_base base_v ops with
              | Some v -> KeyMap.add k v acc
              | None -> acc
            in
            go acc rest
      in
      go base_map buffered_in_range
    in
    let all = KeyMap.bindings overlaid in
    let all = if reverse then List.rev all else all in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    Future.return (take limit all)
  end

(* ---------- writes ---------- *)

let record_mutation t (m : Message.client_mutation) size =
  t.mutations <- m :: t.mutations;
  t.bytes <- t.bytes + size

let set t key value =
  check_not_committed t;
  check_key key;
  check_value value;
  t.writes <- KeyMap.add key (B_set value) t.writes;
  record_mutation t (Message.Plain (Mutation.Set (key, value)))
    (String.length key + String.length value);
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

let clear t key =
  check_not_committed t;
  check_key key;
  t.writes <- KeyMap.add key B_clear t.writes;
  record_mutation t (Message.Plain (Mutation.Clear key)) (String.length key);
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

let clear_range t ~from ~until =
  check_not_committed t;
  check_key from;
  if until > Types.key_space_end then raise (Error.Fdb Error.Key_outside_legal_range);
  if from < until then begin
    t.cleared <- (from, until) :: t.cleared;
    t.writes <- KeyMap.filter (fun k _ -> k < from || k >= until) t.writes;
    record_mutation t
      (Message.Plain (Mutation.Clear_range (from, until)))
      (String.length from + String.length until);
    add_write_conflict_range t ~from ~until
  end

let atomic_op t kind key operand =
  check_not_committed t;
  check_key key;
  check_value operand;
  (let next =
     match KeyMap.find_opt key t.writes with
     | Some (B_set v) -> (
         match Mutation.atomic_result kind ~old_value:(Some v) operand with
         | Some v' -> B_set v'
         | None -> B_clear)
     | Some B_clear -> (
         match Mutation.atomic_result kind ~old_value:None operand with
         | Some v' -> B_set v'
         | None -> B_clear)
     | Some (B_atomic ops) -> B_atomic (ops @ [ (kind, operand) ])
     | None ->
         if in_cleared t key then
           match Mutation.atomic_result kind ~old_value:None operand with
           | Some v' -> B_set v'
           | None -> B_clear
         else B_atomic [ (kind, operand) ]
   in
   t.writes <- KeyMap.add key next t.writes);
  record_mutation t
    (Message.Plain (Mutation.Atomic (kind, key, operand)))
    (String.length key + String.length operand);
  (* Atomic ops conflict as writes only (§2.6). *)
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

let set_versionstamped_key t ~template ~offset ~value =
  check_not_committed t;
  check_value value;
  if
    offset < 0
    || offset + 10 > String.length template
    || String.length template > Types.key_size_limit
  then raise (Error.Fdb Error.Key_too_large);
  record_mutation t
    (Message.Versionstamped_key { template; offset; value })
    (String.length template + String.length value);
  (* The final key is unknown until commit: conflict on the template range. *)
  add_write_conflict_range t ~from:template ~until:(Types.next_key template)

let set_versionstamped_value t ~key ~template ~offset =
  check_not_committed t;
  check_key key;
  if offset < 0 || offset + 10 > String.length template then
    raise (Error.Fdb Error.Value_too_large);
  record_mutation t
    (Message.Versionstamped_value { key; template; offset })
    (String.length key + String.length template);
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

(* ---------- commit ---------- *)

let do_commit t =
  if t.mutations = [] && t.write_conflicts = [] then
    (* Read-only transactions commit client-side (§2.4.1). *)
    Future.return 0L
  else if t.bytes > Types.transaction_size_limit then
    Error.fail Error.Transaction_too_large
  else begin
    let* read_version, _epoch =
      match t.read_version with
      | Some f -> f
      | None -> Future.return (0L, 0) (* blind writes carry no read snapshot *)
    in
    let req =
      {
        Message.tr_read_version = read_version;
        tr_reads = t.read_conflicts;
        tr_writes = t.write_conflicts;
        tr_mutations = List.rev t.mutations;
      }
    in
    (* A commit goes to exactly one proxy, exactly once: resending could
       apply the transaction twice at two different versions. When the
       request may have reached the cluster and its fate is unprovable, the
       answer is Commit_unknown_result, exactly as in FDB. *)
    let* proxy =
      match pick_proxy t.db with
      | Some ep -> Future.return (Some ep)
      | None ->
          let* () = refresh t.db in
          Future.return (pick_proxy t.db)
    in
    match proxy with
    | None -> Error.fail Error.Timed_out (* never sent: definitely not committed *)
    | Some ep -> (
        let* reply =
          Future.catch
            (fun () ->
              Context.rpc t.db.ctx ~timeout:8.0 ~from:t.db.proc ep
                (Message.Commit_req req))
            (function
              | Engine.Timed_out | Error.Fdb Error.Wrong_epoch ->
                  Error.fail Error.Commit_unknown_result
              | Error.Fdb Error.Database_locked ->
                  (* Definite no-commit from a proxy of a dead generation:
                     refresh so the retry loop reaches the new proxies
                     (blind writes have no GRV step to do it for them). *)
                  let* () = refresh t.db in
                  Error.fail Error.Database_locked
              | e -> Future.fail e)
        in
        match reply with
        | Message.Commit_reply version -> Future.return version
        | _ -> Error.fail Error.Commit_unknown_result)
  end

let commit t =
  match t.commit_result with
  | Some f -> f
  | None ->
      let f = do_commit t in
      t.commit_result <- Some f;
      f

(* ---------- retry loop ---------- *)

let run db ?(max_attempts = 64) f =
  let rec attempt n backoff =
    let t = begin_tx db in
    Future.catch
      (fun () ->
        let* result = f t in
        let* _version = commit t in
        Future.return result)
      (function
        | Error.Fdb e when Error.is_retryable e && n < max_attempts ->
            let delay = Float.min backoff 1.0 +. Engine.random_float 0.05 in
            let* () = Engine.sleep delay in
            attempt (n + 1) (backoff *. 2.0)
        | e -> Future.fail e)
  in
  attempt 1 0.01
