open Fdb_sim
open Future.Syntax
module Mutation = Fdb_kv.Mutation
module KeyMap = Map.Make (String)
module Rng = Fdb_util.Det_rng

(* ---------- key selectors ---------- *)

module Key_selector = struct
  type t = Message.key_selector = {
    sel_key : string;
    sel_or_equal : bool;
    sel_offset : int;
  }

  (* The four canonical constructors, with the standard FDB encodings. *)
  let first_greater_or_equal ?(offset = 0) key =
    { sel_key = key; sel_or_equal = false; sel_offset = 1 + offset }

  let first_greater_than ?(offset = 0) key =
    { sel_key = key; sel_or_equal = true; sel_offset = 1 + offset }

  let last_less_or_equal ?(offset = 0) key =
    { sel_key = key; sel_or_equal = true; sel_offset = offset }

  let last_less_than ?(offset = 0) key =
    { sel_key = key; sel_or_equal = false; sel_offset = offset }
end

type streaming_mode = [ `Want_all | `Iterator | `Exact of int ]

type tx_options = {
  opt_timeout : float option;
  opt_retry_limit : int option;
  opt_max_read_bytes : int option;
}

let default_options =
  { opt_timeout = None; opt_retry_limit = None; opt_max_read_bytes = None }

type db = {
  ctx : Context.t;
  proc : Process.t;
  rng : Rng.t;
  mutable proxies : int array;
  mutable refreshing : bool;
  obs_fanout : Fdb_obs.Registry.gauge;
  obs_range_bytes : Fdb_obs.Registry.gauge;
  obs_failovers : Fdb_obs.Registry.counter;
}

let versionstamp_placeholder = String.make 10 '\x00'

let create_db ctx proc =
  let metrics = ctx.Context.metrics in
  let pid = proc.Process.pid in
  let role = Fdb_obs.Registry.Client in
  {
    ctx;
    proc;
    rng = Engine.fork_rng ();
    proxies = [||];
    refreshing = false;
    obs_fanout = Fdb_obs.Registry.gauge metrics ~role ~process:pid "read_fanout";
    obs_range_bytes =
      Fdb_obs.Registry.gauge metrics ~role ~process:pid "range_bytes_per_req";
    obs_failovers =
      Fdb_obs.Registry.counter metrics ~role ~process:pid "read_failovers";
  }

(* Find the ClusterController through the coordinators, then ask it for the
   current proxies — the client's bootstrap path. *)
let refresh db =
  if db.refreshing then Engine.sleep 0.1
  else begin
    db.refreshing <- true;
    Future.protect
      ~finally:(fun () -> db.refreshing <- false)
      (fun () ->
        let transport = Context.paxos_transport db.ctx ~from:db.proc in
        let* leader =
          Future.catch
            (fun () ->
              Fdb_paxos.Election.leader_via transport ~reg:"cc-leader"
                ~proposer:(Context.proposer_id db.proc))
            (fun _ -> Future.return None)
        in
        match Option.bind leader int_of_string_opt with
        | None -> Engine.sleep 0.1
        | Some machine when machine >= Array.length db.ctx.Context.worker_eps ->
            Engine.sleep 0.1
        | Some machine ->
            Future.catch
              (fun () ->
                let* reply =
                  Context.rpc db.ctx ~timeout:1.0 ~from:db.proc
                    db.ctx.Context.worker_eps.(machine) Message.Cc_get_state
                in
                (match reply with
                | Message.Cc_state { st_proxies; st_recovered = true; _ } ->
                    db.proxies <- Array.of_list st_proxies
                | _ -> ());
                Future.return ())
              (fun _ -> Future.return ()))
  end

let pick_proxy db =
  if Array.length db.proxies = 0 then None
  else Some db.proxies.(Rng.int db.rng (Array.length db.proxies))

(* Call some proxy, refreshing the proxy list and retrying a couple of
   times on communication failures before giving up with a retryable
   error for the [run] loop to handle. *)
let proxy_call db msg =
  let rec attempt n =
    if n = 0 then Error.fail Error.Timed_out
    else
      match pick_proxy db with
      | None ->
          let* () = refresh db in
          attempt (n - 1)
      | Some ep ->
          Future.catch
            (fun () -> Context.rpc db.ctx ~timeout:5.0 ~from:db.proc ep msg)
            (function
              | Error.Fdb Error.Wrong_epoch | Error.Fdb Error.Database_locked
              | Engine.Timed_out ->
                  let* () = refresh db in
                  attempt (n - 1)
              | e -> Future.fail e)
  in
  attempt 4

(* ---------- transactions ---------- *)

type buffered =
  | B_set of string
  | B_clear
  | B_atomic of (Mutation.atomic_kind * string) list (* application order *)

type watch = {
  wt_key : string;
  wt_future : unit Future.t;
  wt_promise : unit Future.promise;
}

type tx = {
  db : db;
  mutable options : tx_options;
  mutable read_version : (Types.version * Types.epoch) Future.t option;
  mutable writes : buffered KeyMap.t;
  mutable cleared : (string * string) list;
  mutable mutations : Message.client_mutation list; (* reversed *)
  mutable read_conflicts : (string * string) list;
  mutable write_conflicts : (string * string) list;
  mutable bytes : int;
  mutable read_bytes : int;
  mutable commit_result : Types.version Future.t option;
  mutable tx_watches : watch list; (* reversed; armed at successful commit *)
}

let begin_tx ?(options = default_options) db =
  {
    db;
    options;
    read_version = None;
    writes = KeyMap.empty;
    cleared = [];
    mutations = [];
    read_conflicts = [];
    write_conflicts = [];
    bytes = 0;
    read_bytes = 0;
    commit_result = None;
    tx_watches = [];
  }

let set_option t options = t.options <- options

let check_not_committed t =
  if t.commit_result <> None then raise (Error.Fdb Error.Used_during_commit)

let check_key k =
  if String.length k > Types.key_size_limit then raise (Error.Fdb Error.Key_too_large);
  if k >= Types.key_space_end then raise (Error.Fdb Error.Key_outside_legal_range)

let check_value v =
  if String.length v > Types.value_size_limit then raise (Error.Fdb Error.Value_too_large)

(* The snapshot is (version, epoch): the epoch rides along on storage reads
   so a StorageServer that has not yet heard about a recovery refuses to
   serve newer-generation read versions (it might hold rolled-back data). *)
let snapshot_info t =
  match t.read_version with
  | Some f -> f
  | None ->
      let f =
        let* reply = proxy_call t.db Message.Grv_req in
        match reply with
        | Message.Grv_reply { gv_version; gv_epoch } ->
            Future.return (gv_version, gv_epoch)
        | _ -> Error.fail Error.Timed_out
      in
      t.read_version <- Some f;
      f

let get_read_version t = Future.map (snapshot_info t) fst
let read_snapshot t = snapshot_info t
let set_read_version t v = t.read_version <- Some (Future.return (v, 0))

let add_read_conflict_range t ~from ~until =
  if from < until then t.read_conflicts <- (from, until) :: t.read_conflicts

let add_write_conflict_range t ~from ~until =
  if from < until then t.write_conflicts <- (from, until) :: t.write_conflicts

let in_cleared t k = List.exists (fun (f, u) -> f <= k && k < u) t.cleared

(* Enforce the per-transaction read-byte cap (a [tx_options] knob); returns
   the byte budget a single storage round may still use. *)
let remaining_read_budget t ~want =
  match t.options.opt_max_read_bytes with
  | None -> want
  | Some cap ->
      let left = cap - t.read_bytes in
      if left <= 0 then raise (Error.Fdb Error.Transaction_too_large)
      else min want left

(* ---------- raw storage reads ---------- *)

let bytes_of_rows rows =
  List.fold_left (fun n (k, v) -> n + String.length k + String.length v) 0 rows

(* Keep rows while both budgets last; [cut = true] when anything was
   dropped. [keep_one] mirrors the storage-side guarantee that the very
   first row of a read is delivered even if it alone busts the byte
   budget, so bounded reads always make progress. *)
let take_budget ?(keep_one = false) rows ~rows_left ~bytes_left =
  let rec go acc nrows nbytes = function
    | [] -> (List.rev acc, false)
    | (k, v) :: tl ->
        if (nrows >= rows_left || nbytes >= bytes_left) && not (keep_one && acc = [])
        then (List.rev acc, true)
        else
          go ((k, v) :: acc) (nrows + 1)
            (nbytes + String.length k + String.length v)
            tl
  in
  go [] 0 0 rows

let take_count n l =
  let rec go acc n = function
    | [] -> (List.rev acc, false)
    | _ when n <= 0 -> (List.rev acc, true)
    | x :: tl -> go (x :: acc) (n - 1) tl
  in
  go [] n l

(* Try each replica of [team] in a Det_rng-shuffled order, failing over on
   communication errors and per-replica timeouts. Semantic rejections
   ([Transaction_too_old], [Wrong_shard]) propagate immediately: every
   replica of the team would answer the same. *)
let with_failover db ~team call =
  let replicas = Array.of_list team in
  Rng.shuffle db.rng replicas;
  let rec attempt i last_err =
    if i >= Array.length replicas then Future.fail last_err
    else
      let ss = replicas.(i) in
      let failover err =
        if i + 1 < Array.length replicas then begin
          Trace.emit "client_read_failover"
            [
              ("from_ss", string_of_int ss);
              ("to_ss", string_of_int replicas.(i + 1));
            ];
          Fdb_obs.Registry.incr db.obs_failovers
        end;
        attempt (i + 1) err
      in
      Future.catch
        (fun () -> call ss)
        (function
          | Error.Fdb Error.Transaction_too_old as e -> Future.fail e
          | Error.Fdb Error.Wrong_shard as e -> Future.fail e
          | Engine.Timed_out -> failover (Error.Fdb Error.Timed_out)
          | Error.Fdb _ as e -> failover e
          | e -> Future.fail e)
  in
  attempt 0 (Error.Fdb Error.Timed_out)

let storage_get t key (version, rv_epoch) =
  let db = t.db in
  let rec with_resolution retries =
    let team = Shard_map.team_for_key db.ctx.Context.shard_map key in
    Future.catch
      (fun () ->
        with_failover db ~team (fun ss ->
            let ep = db.ctx.Context.storage_eps.(ss) in
            let* reply =
              Context.rpc db.ctx ~timeout:Params.client_read_timeout ~from:db.proc
                ep
                (Message.Storage_get { key; version; rv_epoch })
            in
            match reply with
            | Message.Storage_get_reply v -> Future.return v
            | _ -> Future.fail (Error.Fdb Error.Timed_out)))
      (function
        | Error.Fdb Error.Wrong_shard when retries > 0 ->
            (* The shard map changed under us; [team_for_key] reads the
               live map, so simply retrying re-resolves. *)
            with_resolution (retries - 1)
        | e -> Future.fail e)
  in
  with_resolution 3

(* ---------- the range-read pipeline ---------- *)

(* One fragment task: drain [from, until) of a single shard fragment up to
   the given budgets, following [rr_more] continuations against the same
   replica team. Returns (rows, drained); [drained = false] means a budget
   ran out first. A [Wrong_shard] mid-walk means the shard map changed
   under the read: re-resolve the remainder against the live map and keep
   going (bounded by [re_resolves]) so continuations never silently
   truncate. *)
let rec fragment_fetch t ~version ~rv_epoch ~reverse ~row_limit ~byte_limit
    ~re_resolves ~team ~from ~until =
  let db = t.db in
  let rec go cursor acc nrows nbytes =
    let f, u = if reverse then (from, cursor) else (cursor, until) in
    if nrows >= row_limit || nbytes >= byte_limit then
      Future.return (List.concat (List.rev acc), false)
    else if f >= u then Future.return (List.concat (List.rev acc), true)
    else
      let* outcome =
        Future.catch
          (fun () ->
            let* batch =
              with_failover db ~team (fun ss ->
                  let ep = db.ctx.Context.storage_eps.(ss) in
                  let* reply =
                    Context.rpc db.ctx ~timeout:Params.client_read_timeout
                      ~from:db.proc ep
                      (Message.Storage_get_range
                         {
                           gr_from = f;
                           gr_until = u;
                           gr_version = version;
                           gr_limit = row_limit - nrows;
                           gr_byte_limit = byte_limit - nbytes;
                           gr_reverse = reverse;
                           gr_epoch = rv_epoch;
                         })
                  in
                  match reply with
                  | Message.Storage_get_range_reply { rr_rows; rr_more } ->
                      Future.return (rr_rows, rr_more)
                  | _ -> Future.fail (Error.Fdb Error.Timed_out))
            in
            Future.return (`Batch batch))
          (function
            | Error.Fdb Error.Wrong_shard when re_resolves > 0 ->
                Future.return `Re_resolve
            | e -> Future.fail e)
      in
      match outcome with
      | `Re_resolve ->
          Trace.emit "client_range_re_resolve" [ ("from", f); ("until", u) ];
          let* rows, drained =
            seq_fragments t ~version ~rv_epoch ~reverse
              ~row_limit:(row_limit - nrows) ~byte_limit:(byte_limit - nbytes)
              ~re_resolves:(re_resolves - 1) ~from:f ~until:u
          in
          Future.return (List.concat (List.rev acc) @ rows, drained)
      | `Batch ([], _) ->
          (* An empty reply cannot carry a continuation cursor: treat the
             fragment as drained rather than loop forever. *)
          Future.return (List.concat (List.rev acc), true)
      | `Batch (rows, more) ->
          let nrows = nrows + List.length rows in
          let nbytes = nbytes + bytes_of_rows rows in
          let acc = rows :: acc in
          if not more then Future.return (List.concat (List.rev acc), true)
          else
            (* Rows arrive in scan order, so the last row is the far edge
               of what the reply covered. *)
            let last = fst (List.hd (List.rev rows)) in
            let cursor = if reverse then last else Types.next_key last in
            go cursor acc nrows nbytes
  in
  go (if reverse then until else from) [] 0 0

(* Sequential walk over the (freshly resolved) fragments of a range — the
   re-resolution path after a [Wrong_shard]. *)
and seq_fragments t ~version ~rv_epoch ~reverse ~row_limit ~byte_limit
    ~re_resolves ~from ~until =
  let frags =
    let fs = Shard_map.shards_for_range t.db.ctx.Context.shard_map ~from ~until in
    if reverse then List.rev fs else fs
  in
  let rec walk frags acc nrows nbytes =
    match frags with
    | [] -> Future.return (List.concat (List.rev acc), true)
    | _ when nrows >= row_limit || nbytes >= byte_limit ->
        Future.return (List.concat (List.rev acc), false)
    | (f, u, team) :: rest ->
        let* rows, drained =
          fragment_fetch t ~version ~rv_epoch ~reverse
            ~row_limit:(row_limit - nrows) ~byte_limit:(byte_limit - nbytes)
            ~re_resolves ~team ~from:f ~until:u
        in
        if not drained then
          Future.return (List.concat (List.rev (rows :: acc)), false)
        else
          walk rest (rows :: acc) (nrows + List.length rows)
            (nbytes + bytes_of_rows rows)
  in
  walk frags [] 0 0

(* The parallel pipeline: per-shard sub-reads issued concurrently with a
   bounded fan-out window (§2.4.1: clients talk to StorageServers
   directly, one team per shard). Fragments are consumed strictly in scan
   order; completing one launches the next, so at most [client_range_fanout]
   sub-reads are in flight. In-flight fragments each carry the full
   remaining budget — they may over-fetch (bounded by fanout × budget) but
   never under-fetch, so trimming happens client-side. *)
let ranged_fetch t ~version ~rv_epoch ~from ~until ~reverse ~row_limit
    ~byte_limit =
  let db = t.db in
  let fragments =
    let fs = Shard_map.shards_for_range db.ctx.Context.shard_map ~from ~until in
    if reverse then List.rev fs else fs
  in
  let frags = Array.of_list fragments in
  let n = Array.length frags in
  let fanout = max 1 !Params.client_range_fanout in
  Fdb_obs.Registry.set_gauge db.obs_fanout (float_of_int (min fanout (max n 1)));
  if n = 0 then Future.return ([], true)
  else begin
    let tasks = Array.make n None in
    let launch i =
      if i < n && tasks.(i) = None then
        let f, u, team = frags.(i) in
        tasks.(i) <-
          Some
            (fragment_fetch t ~version ~rv_epoch ~reverse ~row_limit ~byte_limit
               ~re_resolves:3 ~team ~from:f ~until:u)
    in
    for i = 0 to min fanout n - 1 do
      launch i
    done;
    let rec consume i acc nrows nbytes =
      if i >= n then Future.return (List.concat (List.rev acc), true)
      else if nrows >= row_limit || nbytes >= byte_limit then
        Future.return (List.concat (List.rev acc), false)
      else begin
        launch i;
        let task = Option.get tasks.(i) in
        let* rows, drained = task in
        launch (i + fanout);
        let rows, cut =
          take_budget rows ~keep_one:(nrows = 0) ~rows_left:(row_limit - nrows)
            ~bytes_left:(byte_limit - nbytes)
        in
        let acc = rows :: acc in
        if cut || not drained then
          Future.return (List.concat (List.rev acc), false)
        else
          consume (i + 1) acc (nrows + List.length rows)
            (nbytes + bytes_of_rows rows)
      end
    in
    consume 0 [] 0 0
  end

(* ---------- reads with read-your-writes ---------- *)

let apply_ops_to_base base ops =
  List.fold_left
    (fun acc (kind, operand) -> Mutation.atomic_result kind ~old_value:acc operand)
    base ops

let get ?(snapshot = false) t key =
  check_not_committed t;
  check_key key;
  match KeyMap.find_opt key t.writes with
  | Some (B_set v) -> Future.return (Some v)
  | Some B_clear -> Future.return None
  | Some (B_atomic ops) ->
      (* Needs the pre-transaction base value. *)
      let* version = snapshot_info t in
      if not snapshot then
        add_read_conflict_range t ~from:key ~until:(Types.next_key key);
      let* base =
        if in_cleared t key then Future.return None else storage_get t key version
      in
      Future.return (apply_ops_to_base base ops)
  | None ->
      if in_cleared t key then Future.return None
      else begin
        let* version = snapshot_info t in
        if not snapshot then
          add_read_conflict_range t ~from:key ~until:(Types.next_key key);
        let _budget = remaining_read_budget t ~want:1 in
        let* v = storage_get t key version in
        (match v with
        | Some v -> t.read_bytes <- t.read_bytes + String.length key + String.length v
        | None -> ());
        Future.return v
      end

(* One bounded, RYW-merged read of [\[from, until)]: fetch from storage
   through the pipeline, overlay buffered writes over exactly the span the
   storage result covers, and report a continuation cursor when either
   budget cut the read short. Because the storage rows are span-complete,
   atomic-op base values come straight from the fetched map — no extra
   point reads. *)
let read_merged t ~snap:(version, rv_epoch) ~from ~until ~reverse ~row_limit
    ~byte_limit ~conflict =
  let byte_limit = remaining_read_budget t ~want:byte_limit in
  let* storage_rows, drained =
    ranged_fetch t ~version ~rv_epoch ~from ~until ~reverse ~row_limit ~byte_limit
  in
  let got_bytes = bytes_of_rows storage_rows in
  t.read_bytes <- t.read_bytes + got_bytes;
  Fdb_obs.Registry.set_gauge t.db.obs_range_bytes (float_of_int got_bytes);
  (* The observed span: what the storage result is authoritative for. *)
  let span_lo, span_hi =
    if drained then (from, until)
    else
      match List.rev storage_rows with
      | [] -> (from, until)
      | (last, _) :: _ ->
          if reverse then (last, until) else (from, Types.next_key last)
  in
  if conflict then add_read_conflict_range t ~from:span_lo ~until:span_hi;
  let base_map =
    List.fold_left
      (fun m (k, v) -> if in_cleared t k then m else KeyMap.add k v m)
      KeyMap.empty storage_rows
  in
  let merged =
    KeyMap.fold
      (fun k b m ->
        if k < span_lo || k >= span_hi then m
        else
          match b with
          | B_set v -> KeyMap.add k v m
          | B_clear -> KeyMap.remove k m
          | B_atomic ops -> (
              match apply_ops_to_base (KeyMap.find_opt k m) ops with
              | Some v -> KeyMap.add k v m
              | None -> KeyMap.remove k m))
      t.writes base_map
  in
  let bindings = KeyMap.bindings merged in
  let bindings = if reverse then List.rev bindings else bindings in
  let kept, trimmed = take_count row_limit bindings in
  let continuation =
    if trimmed then
      match List.rev kept with
      | (last, _) :: _ -> Some (if reverse then last else Types.next_key last)
      | [] -> None
    else if not drained then Some (if reverse then span_lo else span_hi)
    else None
  in
  Future.return (kept, continuation)

let budgets_of_mode mode ~remaining =
  match mode with
  | `Want_all -> (remaining, Params.range_bytes_want_all)
  | `Iterator ->
      (min remaining Params.range_rows_per_batch, !Params.range_bytes_per_req)
  | `Exact n -> (min remaining (max 1 n), Params.range_bytes_want_all)

(* Full range read over already-resolved endpoints: loop [read_merged]
   batches, stitching continuations, until the range is drained or [limit]
   rows are in hand. *)
let get_range_resolved ?(snapshot = false) ?(limit = 1000) ?(reverse = false)
    ?(mode = `Want_all) t ~from ~until () =
  check_not_committed t;
  if from >= until then Future.return []
  else begin
    if until > Types.key_space_end then
      raise (Error.Fdb Error.Key_outside_legal_range);
    let* snap = snapshot_info t in
    (* Conflict on the whole requested range up front (pre-pipeline
       behavior): the result logically depends on all of it. *)
    if not snapshot then add_read_conflict_range t ~from ~until;
    let rec loop ~from ~until acc collected =
      let remaining = limit - collected in
      if remaining <= 0 then Future.return (List.concat (List.rev acc))
      else begin
        let row_limit, byte_limit = budgets_of_mode mode ~remaining in
        let* rows, continuation =
          read_merged t ~snap ~from ~until ~reverse ~row_limit ~byte_limit
            ~conflict:false
        in
        let acc = rows :: acc in
        match continuation with
        | None -> Future.return (List.concat (List.rev acc))
        | Some c ->
            let from, until = if reverse then (from, c) else (c, until) in
            if from >= until then Future.return (List.concat (List.rev acc))
            else loop ~from ~until acc (collected + List.length rows)
      end
    in
    loop ~from ~until [] 0
  end

(* ---------- key-selector resolution ---------- *)

(* Normalize a selector into a walk: [`Forward] finds the [need]-th key
   [>= start]; [`Reverse] finds the [need]-th key [< start]. *)
let selector_walk (sel : Key_selector.t) =
  let start = if sel.sel_or_equal then Types.next_key sel.sel_key else sel.sel_key in
  let start = if start > Types.key_space_end then Types.key_space_end else start in
  if sel.sel_offset >= 1 then (`Forward, start, sel.sel_offset)
  else (`Reverse, start, 1 - sel.sel_offset)

(* Resolution against storage alone: walk shard fragments in scan order,
   asking each team to advance the walk ([Storage_get_key]); a fragment
   that exhausts without resolving reports how many keys it consumed and
   the walk continues in the next shard. The MVCC window on the server
   makes this exact at the transaction's read version. *)
let storage_resolve t (version, rv_epoch) ~start ~reverse ~need =
  let db = t.db in
  let rec whole retries =
    let from, until = if reverse then ("", start) else (start, Types.key_space_end) in
    let frags =
      let fs = Shard_map.shards_for_range db.ctx.Context.shard_map ~from ~until in
      if reverse then List.rev fs else fs
    in
    let rec walk frags need =
      match frags with
      | [] -> Future.return None
      | (f, u, team) :: rest ->
          let* reply =
            with_failover db ~team (fun ss ->
                let ep = db.ctx.Context.storage_eps.(ss) in
                let* r =
                  Context.rpc db.ctx ~timeout:Params.client_read_timeout
                    ~from:db.proc ep
                    (Message.Storage_get_key
                       {
                         gk_from = f;
                         gk_until = u;
                         gk_reverse = reverse;
                         gk_start = start;
                         gk_need = need;
                         gk_version = version;
                         gk_epoch = rv_epoch;
                       })
                in
                match r with
                | Message.Storage_get_key_reply { kr_key; kr_seen } ->
                    Future.return (kr_key, kr_seen)
                | _ -> Future.fail (Error.Fdb Error.Timed_out))
          in
          (match reply with
          | Some k, _ -> Future.return (Some k)
          | None, seen -> walk rest (need - seen))
    in
    Future.catch
      (fun () -> walk frags need)
      (function
        | Error.Fdb Error.Wrong_shard when retries > 0 -> whole (retries - 1)
        | e -> Future.fail e)
  in
  whole 3

(* Resolution through the RYW merge: when the transaction has buffered
   writes or clears the storage answer alone is wrong, so walk merged
   batches instead. *)
let merged_nth t snap ~start ~reverse ~need =
  let rec loop ~from ~until need =
    if from >= until then Future.return None
    else
      let* rows, continuation =
        read_merged t ~snap ~from ~until ~reverse ~row_limit:need
          ~byte_limit:Params.range_bytes_want_all ~conflict:false
      in
      let n = List.length rows in
      if n >= need then Future.return (Some (fst (List.nth rows (need - 1))))
      else
        match continuation with
        | None -> Future.return None
        | Some c ->
            let from, until = if reverse then (from, c) else (c, until) in
            loop ~from ~until (need - n)
  in
  if reverse then loop ~from:"" ~until:start need
  else loop ~from:start ~until:Types.key_space_end need

(* Resolve a selector to a concrete key, clamped to [""] /
   [Types.key_space_end] when the walk runs off the edge of the key space
   (the standard FDB clamp). *)
let resolve_key t snap sel =
  let dir, start, need = selector_walk sel in
  let reverse = dir = `Reverse in
  let* resolved =
    if KeyMap.is_empty t.writes && t.cleared = [] then
      storage_resolve t snap ~start ~reverse ~need
    else merged_nth t snap ~start ~reverse ~need
  in
  Future.return
    (match resolved with
    | Some k -> k
    | None -> if reverse then "" else Types.key_space_end)

let get_key ?(snapshot = false) t sel =
  check_not_committed t;
  let* snap = snapshot_info t in
  let* k = resolve_key t snap sel in
  (if not snapshot then
     (* Conflict on everything the resolution observed. *)
     let dir, start, _ = selector_walk sel in
     match dir with
     | `Forward -> add_read_conflict_range t ~from:start ~until:(Types.next_key k)
     | `Reverse -> add_read_conflict_range t ~from:k ~until:start);
  Future.return k

(* Range endpoints resolve with a fast path: firstGreaterOrEqual with no
   offset IS its key as a range bound — no round-trip needed. *)
let resolve_endpoint t snap (sel : Key_selector.t) =
  if (not sel.sel_or_equal) && sel.sel_offset = 1 then Future.return sel.sel_key
  else resolve_key t snap sel

let clamp_key k = if k > Types.key_space_end then Types.key_space_end else k

(* ---------- the unified range API ---------- *)

type batch = {
  batch_rows : (string * string) list;
  batch_continuation : string option;
}

(* Clamp already-concrete bounds to a continuation cursor. *)
let apply_continuation ~reverse ~continuation (from, until) =
  match continuation with
  | None -> (from, until)
  | Some c -> if reverse then (from, min c until) else (max c from, until)

(* Budgets of one streaming batch; the row budget is additionally capped by
   the query's overall row limit. *)
let stream_budgets (q : Range_query.t) =
  match q.rq_mode with
  | `Want_all -> (min 1_000_000 q.rq_limit, Params.range_bytes_want_all)
  | `Iterator ->
      (min Params.range_rows_per_batch q.rq_limit, !Params.range_bytes_per_req)
  | `Exact n -> (min (max 1 n) q.rq_limit, Params.range_bytes_want_all)

(* One bounded batch of the query — the streaming building block. Concrete
   (plain-key) bounds skip endpoint resolution entirely; selector bounds
   resolve both endpoints at the snapshot first. Each batch adds a read
   conflict only over the span it actually observed. *)
let range t (q : Range_query.t) =
  check_not_committed t;
  let batch_of ~from ~until =
    if from >= until then
      Future.return { batch_rows = []; batch_continuation = None }
    else
      let* snap = snapshot_info t in
      let row_limit, byte_limit = stream_budgets q in
      let* rows, continuation =
        read_merged t ~snap ~from ~until ~reverse:q.rq_reverse ~row_limit
          ~byte_limit ~conflict:(not q.rq_snapshot)
      in
      Future.return { batch_rows = rows; batch_continuation = continuation }
  in
  match Range_query.trivial_bounds q with
  | Some (from, until) ->
      if until > Types.key_space_end then
        raise (Error.Fdb Error.Key_outside_legal_range);
      let from, until =
        apply_continuation ~reverse:q.rq_reverse
          ~continuation:q.rq_continuation (from, until)
      in
      batch_of ~from ~until
  | None ->
      let* snap = snapshot_info t in
      let* lo = resolve_endpoint t snap q.rq_begin in
      let* hi = resolve_endpoint t snap q.rq_end in
      let lo = clamp_key lo and hi = clamp_key hi in
      let lo, hi =
        apply_continuation ~reverse:q.rq_reverse ~continuation:q.rq_continuation
          (lo, hi)
      in
      batch_of ~from:lo ~until:hi

(* Drain the query to a list: loop batches, stitching continuations, until
   the range is exhausted or [rq_limit] rows are in hand. Concrete bounds
   reduce to exactly the pre-unification [get_range] path; selector bounds
   resolve once and conflict on the whole resolved span, as the selector
   form always did. *)
let range_all t (q : Range_query.t) =
  check_not_committed t;
  match Range_query.trivial_bounds q with
  | Some (from, until) ->
      let from, until =
        apply_continuation ~reverse:q.rq_reverse
          ~continuation:q.rq_continuation (from, until)
      in
      get_range_resolved ~snapshot:q.rq_snapshot ~limit:q.rq_limit
        ~reverse:q.rq_reverse ~mode:q.rq_mode t ~from ~until ()
  | None ->
      let* snap = snapshot_info t in
      let* lo = resolve_endpoint t snap q.rq_begin in
      let* hi = resolve_endpoint t snap q.rq_end in
      let lo = clamp_key lo and hi = clamp_key hi in
      let lo, hi =
        apply_continuation ~reverse:q.rq_reverse ~continuation:q.rq_continuation
          (lo, hi)
      in
      if lo >= hi then Future.return []
      else begin
        if not q.rq_snapshot then add_read_conflict_range t ~from:lo ~until:hi;
        get_range_resolved ~snapshot:true ~limit:q.rq_limit
          ~reverse:q.rq_reverse ~mode:q.rq_mode t ~from:lo ~until:hi ()
      end

(* ---------- legacy range entry points (thin wrappers) ---------- *)

let get_range ?snapshot ?limit ?reverse ?mode t ~from ~until () =
  range_all t (Range_query.keys ?limit ?mode ?reverse ?snapshot ~from ~until ())

(* The selector form historically clamped concrete (no-offset) endpoint
   keys into the legal key space instead of raising. *)
let clamp_trivial (s : Key_selector.t) =
  if (not s.sel_or_equal) && s.sel_offset = 1 && s.sel_key > Types.key_space_end
  then { s with Message.sel_key = Types.key_space_end }
  else s

let get_range_sel ?snapshot ?limit ?reverse ?mode t ~from ~until () =
  range_all t
    (Range_query.create ?limit ?mode ?reverse ?snapshot
       ~begin_:(clamp_trivial from) ~end_:(clamp_trivial until) ())

let get_range_stream ?(snapshot = false) ?(reverse = false) ?(mode = `Iterator)
    ?continuation t ~from ~until () =
  range t
    (Range_query.keys ~limit:max_int ~mode ~reverse ~snapshot ?continuation
       ~from ~until ())

(* ---------- writes ---------- *)

let record_mutation t (m : Message.client_mutation) size =
  t.mutations <- m :: t.mutations;
  t.bytes <- t.bytes + size

let set t key value =
  check_not_committed t;
  check_key key;
  check_value value;
  t.writes <- KeyMap.add key (B_set value) t.writes;
  record_mutation t (Message.Plain (Mutation.Set (key, value)))
    (String.length key + String.length value);
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

let clear t key =
  check_not_committed t;
  check_key key;
  t.writes <- KeyMap.add key B_clear t.writes;
  record_mutation t (Message.Plain (Mutation.Clear key)) (String.length key);
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

let clear_range t ~from ~until =
  check_not_committed t;
  check_key from;
  if until > Types.key_space_end then raise (Error.Fdb Error.Key_outside_legal_range);
  if from < until then begin
    t.cleared <- (from, until) :: t.cleared;
    t.writes <- KeyMap.filter (fun k _ -> k < from || k >= until) t.writes;
    record_mutation t
      (Message.Plain (Mutation.Clear_range (from, until)))
      (String.length from + String.length until);
    add_write_conflict_range t ~from ~until
  end

let atomic_op t kind key operand =
  check_not_committed t;
  check_key key;
  check_value operand;
  (let next =
     match KeyMap.find_opt key t.writes with
     | Some (B_set v) -> (
         match Mutation.atomic_result kind ~old_value:(Some v) operand with
         | Some v' -> B_set v'
         | None -> B_clear)
     | Some B_clear -> (
         match Mutation.atomic_result kind ~old_value:None operand with
         | Some v' -> B_set v'
         | None -> B_clear)
     | Some (B_atomic ops) -> B_atomic (ops @ [ (kind, operand) ])
     | None ->
         if in_cleared t key then
           match Mutation.atomic_result kind ~old_value:None operand with
           | Some v' -> B_set v'
           | None -> B_clear
         else B_atomic [ (kind, operand) ]
   in
   t.writes <- KeyMap.add key next t.writes);
  record_mutation t
    (Message.Plain (Mutation.Atomic (kind, key, operand)))
    (String.length key + String.length operand);
  (* Atomic ops conflict as writes only (§2.6). *)
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

let set_versionstamped_key t ~template ~offset ~value =
  check_not_committed t;
  check_value value;
  if
    offset < 0
    || offset + 10 > String.length template
    || String.length template > Types.key_size_limit
  then raise (Error.Fdb Error.Key_too_large);
  record_mutation t
    (Message.Versionstamped_key { template; offset; value })
    (String.length template + String.length value);
  (* The final key is unknown until commit: conflict on the template range. *)
  add_write_conflict_range t ~from:template ~until:(Types.next_key template)

let set_versionstamped_value t ~key ~template ~offset =
  check_not_committed t;
  check_key key;
  if offset < 0 || offset + 10 > String.length template then
    raise (Error.Fdb Error.Value_too_large);
  record_mutation t
    (Message.Versionstamped_value { key; template; offset })
    (String.length key + String.length template);
  add_write_conflict_range t ~from:key ~until:(Types.next_key key)

(* ---------- commit ---------- *)

let do_commit t =
  if t.mutations = [] && t.write_conflicts = [] then
    (* Read-only transactions commit client-side (§2.4.1). *)
    Future.return 0L
  else if t.bytes > Types.transaction_size_limit then
    Error.fail Error.Transaction_too_large
  else begin
    let* read_version, _epoch =
      match t.read_version with
      | Some f -> f
      | None -> Future.return (0L, 0) (* blind writes carry no read snapshot *)
    in
    let req =
      {
        Message.tr_read_version = read_version;
        tr_reads = t.read_conflicts;
        tr_writes = t.write_conflicts;
        tr_mutations = List.rev t.mutations;
      }
    in
    (* A commit goes to exactly one proxy, exactly once: resending could
       apply the transaction twice at two different versions. When the
       request may have reached the cluster and its fate is unprovable, the
       answer is Commit_unknown_result, exactly as in FDB. *)
    let* proxy =
      match pick_proxy t.db with
      | Some ep -> Future.return (Some ep)
      | None ->
          let* () = refresh t.db in
          Future.return (pick_proxy t.db)
    in
    match proxy with
    | None -> Error.fail Error.Timed_out (* never sent: definitely not committed *)
    | Some ep -> (
        let* reply =
          Future.catch
            (fun () ->
              Context.rpc t.db.ctx ~timeout:8.0 ~from:t.db.proc ep
                (Message.Commit_req req))
            (function
              | Engine.Timed_out | Error.Fdb Error.Wrong_epoch ->
                  Error.fail Error.Commit_unknown_result
              | Error.Fdb Error.Database_locked ->
                  (* Definite no-commit from a proxy of a dead generation:
                     refresh so the retry loop reaches the new proxies
                     (blind writes have no GRV step to do it for them). *)
                  let* () = refresh t.db in
                  Error.fail Error.Database_locked
              | e -> Future.fail e)
        in
        match reply with
        | Message.Commit_reply version -> Future.return version
        | _ -> Error.fail Error.Commit_unknown_result)
  end

(* ---------- watches ---------- *)

(* A watch is created inside a transaction and armed only if that
   transaction commits: the semantics are "wake me when [key] changes
   after the state this transaction observed/produced". Spurious wakes are
   allowed (the waiter re-reads and re-arms); lost wakes are not. *)

let watch t key =
  check_not_committed t;
  check_key key;
  let wt_future, wt_promise = Future.make ~label:"client.watch" () in
  let w = { wt_key = key; wt_future; wt_promise } in
  t.tx_watches <- w :: t.tx_watches;
  w

let watch_future w = w.wt_future
let watch_key w = w.wt_key

let cancel_watch w =
  ignore (Future.try_break w.wt_promise (Future.Cancelled "client.watch") : bool)

(* Long-poll one watch until it fires or is cancelled. Each round
   re-registers from the version the previous server reply vouched for, so
   the registration never goes stale on a healthy server (the server's
   poll window sits well inside the MVCC window). [Wrong_shard] re-resolves
   against the live shard map and re-registers on the new owner, whose
   registration-time catch-up covers changes that landed during the move.
   [Transaction_too_old] means no server can prove the key unchanged since
   [version]: fire conservatively. *)
let rec watch_poll db w ~version ~epoch =
  if Future.is_resolved w.wt_future then Future.return ()
  else
    let team = Shard_map.team_for_key db.ctx.Context.shard_map w.wt_key in
    let* next =
      Future.catch
        (fun () ->
          let* reply =
            with_failover db ~team (fun ss ->
                let ep = db.ctx.Context.storage_eps.(ss) in
                let* r =
                  Context.rpc db.ctx
                    ~timeout:(!Params.watch_poll_timeout +. 1.0)
                    ~from:db.proc ep
                    (Message.Ss_watch
                       { w_key = w.wt_key; w_version = version; w_epoch = epoch })
                in
                match r with
                | Message.Ss_watch_reply { wr_fired; wr_version } ->
                    Future.return (wr_fired, wr_version)
                | _ -> Future.fail (Error.Fdb Error.Timed_out))
          in
          match reply with
          | true, v ->
              Trace.emit "client_watch_fire"
                [ ("key", String.escaped w.wt_key); ("v", Int64.to_string v) ];
              ignore (Future.try_fulfill w.wt_promise () : bool);
              Future.return None
          | false, v -> Future.return (Some v))
        (function
          | Error.Fdb Error.Wrong_shard ->
              Trace.emit "client_watch_re_resolve"
                [ ("key", String.escaped w.wt_key) ];
              let* () = Engine.sleep 0.05 in
              Future.return (Some version)
          | Error.Fdb Error.Transaction_too_old ->
              Trace.emit "client_watch_conservative_fire"
                [ ("key", String.escaped w.wt_key) ];
              ignore (Future.try_fulfill w.wt_promise () : bool);
              Future.return None
          | Error.Fdb _ ->
              (* Transient storage trouble (lagging replica, recovery,
                 timeouts): back off and re-register from the same version. *)
              let* () = Engine.sleep (0.1 +. Engine.random_float 0.2) in
              Future.return (Some version)
          | e -> Future.fail e)
    in
    match next with
    | None -> Future.return ()
    | Some version -> watch_poll db w ~version ~epoch

(* Arm the transaction's watches off the commit outcome. Runs only when
   the transaction actually created watches, so transactions that don't
   use the layer keep byte-identical schedules. The watch version is
   max(read version, commit version): the transaction's own write to the
   watched key must not wake it, and neither may anything it already
   observed. *)
let arm_watches t commit_future =
  Future.on_resolve commit_future (function
    | Ok commit_version ->
        let read_version, epoch =
          match t.read_version with
          | Some rvf -> (
              match Future.peek rvf with Some (v, e) -> (v, e) | None -> (0L, 0))
          | None -> (0L, 0)
        in
        let version =
          if commit_version > read_version then commit_version else read_version
        in
        List.iter
          (fun w ->
            if not (Future.is_resolved w.wt_future) then
              Engine.spawn ~process:t.db.proc "client-watch" (fun () ->
                  watch_poll t.db w ~version ~epoch))
          (List.rev t.tx_watches)
    | Error _ ->
        List.iter
          (fun w ->
            ignore
              (Future.try_break w.wt_promise (Future.Cancelled "client.watch")
                : bool))
          (List.rev t.tx_watches))

let commit t =
  match t.commit_result with
  | Some f -> f
  | None ->
      let f = do_commit t in
      t.commit_result <- Some f;
      if t.tx_watches <> [] then arm_watches t f;
      f

(* ---------- unified error reporting ---------- *)

(* Every failure the client surfaces is an [Error.Fdb] carrying a typed
   [Error.t]; anything else (engine-internal exceptions, programming
   errors) is not a transaction outcome and must not be retried. *)
let classify_exn : exn -> Error.t option = function
  | Error.Fdb e -> Some e
  | _ -> None

(* ---------- retry loop ---------- *)

let run db ?max_attempts ?options f =
  let options = Option.value options ~default:default_options in
  let retry_limit =
    match (options.opt_retry_limit, max_attempts) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> 64
  in
  let deadline = Option.map (fun s -> Engine.now () +. s) options.opt_timeout in
  let rec attempt n backoff =
    let t = begin_tx ~options db in
    let body () =
      let* result = f t in
      let* _version = commit t in
      Future.return result
    in
    let guarded () =
      match deadline with
      | None -> body ()
      | Some d ->
          let left = d -. Engine.now () in
          if left <= 0.0 then Error.fail Error.Timed_out
          else
            Future.catch
              (fun () -> Engine.timeout left (body ()))
              (function
                | Engine.Timed_out -> Error.fail Error.Timed_out
                | e -> Future.fail e)
    in
    Future.catch guarded
      (fun exn ->
        match classify_exn exn with
        | Some e
          when Error.is_retryable e && n < retry_limit
               && (match deadline with
                  | None -> true
                  | Some d -> Engine.now () < d) ->
            let delay = Float.min backoff 1.0 +. Engine.random_float 0.05 in
            let* () = Engine.sleep delay in
            attempt (n + 1) (backoff *. 2.0)
        | _ -> Future.fail exn)
  in
  attempt 1 0.01

(* Re-export of the typed error surface under the client's own name, so
   layer code (and applications) can classify outcomes without reaching
   into the core error module: [Client.Error.classify] turns any exception
   a transaction raised into [Some err], and [Client.Error.retryable] is
   the single authority [run] keys its retry decision off. *)
module Error = struct
  type t = Error.t =
    | Not_committed
    | Commit_unknown_result
    | Transaction_too_old
    | Future_version
    | Process_behind
    | Wrong_shard
    | Timed_out
    | Database_locked
    | Key_too_large
    | Value_too_large
    | Transaction_too_large
    | Key_outside_legal_range
    | Used_during_commit
    | Wrong_epoch
    | Internal of string

  let retryable = Error.is_retryable
  let classify = classify_exn
  let to_string = Error.to_string
  let pp = Error.pp
  let fail = Error.fail
end
