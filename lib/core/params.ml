(* CPU service times (seconds). Calibration anchors, from the paper:
   - one Resolver ~ 280K TPS            -> resolver_per_txn ~ 3.5e-6
   - 22 LogServers CPU-saturate at ~1.4 GB/s raw (467 MB/s x3 replication)
                                        -> log_per_byte ~ 1.5e-8 (66 MB/s/core)
   - 336 StorageServers serve ~22 GB/s of range reads (T500)
                                        -> storage_per_range_key dominated
   - mean read latency floor ~0.35 ms, GRV ~1 ms, commit ~2 ms at low load *)

(* cpu_scale multiplies only per-transaction / per-byte / per-key costs;
   fixed per-batch overheads (sequencer request, proxy batch, log push) stay
   unscaled so that batching amortization and the "singletons are not
   bottlenecks" property (§2.3.3) survive scaling. *)
let cpu_scale = ref 1.0
let cpu base = base *. !cpu_scale

let sequencer_per_request = 2e-6
let proxy_per_batch = 2.0e-5
let proxy_per_txn = 4e-6
let proxy_per_byte = 2e-9
let resolver_per_txn = 2.5e-6
let resolver_per_range = 0.5e-6
let log_per_push = 1.0e-5
let log_per_byte = 1.5e-8
let storage_per_point_read = 4.0e-5
let storage_per_range_key = 1.2e-6
let storage_per_apply = 2e-6
let storage_per_apply_byte = 4e-9

let grv_batch_interval = 5e-4
let commit_batch_interval = ref 1e-3
let max_commit_batch = ref 512
let proxy_commit_pipeline_depth = ref 4
let storage_peek_interval = 5e-3
let storage_durable_interval = 0.25
let heartbeat_interval = 0.25
let heartbeat_timeout = 1.0
let ratekeeper_interval = 0.5
let lease_duration = 3.0
let storage_read_wait = 0.3
let client_read_timeout = 0.6

(* Range-read pipeline (client -> storage). A wide range read fans out
   per-shard sub-reads concurrently; each round-trip carries a row AND a
   byte budget so no single reply is unbounded, and oversized shards are
   drained by continuation round-trips. *)
(* Watches (layer ecosystem). One registration long-polls on the server for
   at most [watch_poll_timeout] simulated seconds before replying not-fired
   with the server's current version; the client immediately re-registers
   from that version. The poll window must sit comfortably inside the MVCC
   window (default 5 s) so a re-registration version never falls below
   [Version_window.oldest] on a healthy server. *)
let watch_poll_timeout = ref 2.0

let client_range_fanout = ref 4
let range_rows_per_batch = 256
let range_bytes_per_req = ref 65_536
let range_bytes_want_all = 10_000_000

(* Data distribution (paper §2.3.1, §2.5). Movement is off by default so
   existing deterministic-run checksums are unchanged unless a run opts in;
   the swarm and the rebalance bench flip it (and tighten the thresholds)
   explicitly. Thresholds are bytes / bytes-per-second per shard. *)
let dd_movement_enabled = ref false
let dd_rebalance_interval = ref 1.0
let dd_split_bytes = ref 250_000
let dd_split_bandwidth = ref 1_000_000.0
let dd_merge_bytes = ref 10_000
let dd_imbalance_ratio = ref 3.0
let dd_move_timeout = 30.0 (* abort moves pending longer than this *)
