(** The LogServer: a replicated, sharded, persistent queue of the redo log
    (paper §2.4.3, Figure 2).

    Pushes from Proxies carry (LSN, previous LSN, KCV) plus the payload for
    the tags this server replicates (possibly empty). Records are persisted
    strictly in LSN-chain order and acknowledged only once durable, so the
    Durable Version (DV) is always chain-contiguous — the property the
    recovery's [RV = min DV] rule depends on. StorageServers peek their
    tag's stream (including not-yet-durable entries, §2.4.3 "aggressively
    fetch") and pop what they have persisted.

    After a crash the server is resurrected from disk in {e stopped} mode:
    it can serve [Log_lock] for recovery and peeks for stragglers, but
    accepts no new pushes — its epoch is over. *)

type t

val create :
  Context.t ->
  Fdb_sim.Process.t ->
  disk:Fdb_sim.Disk.t ->
  epoch:Types.epoch ->
  id:int ->
  start_lsn:Types.version ->
  t * int
(** Fresh LogServer for a new generation; registers and returns its
    endpoint, and installs a boot thunk that resurrects it from disk in
    stopped mode after a crash. *)

val durable_version : t -> Types.version
val known_committed : t -> Types.version
val is_stopped : t -> bool
val unpopped_bytes : t -> int
(** Backlog size (Ratekeeper / diagnostics). *)
