open Fdb_sim
open Future.Syntax
module Mutation = Fdb_kv.Mutation
module Det_tbl = Fdb_util.Det_tbl

type pending_commit = Message.txn_request * Message.t Future.promise

(* Fate of one batch in the pipeline's in-order completion chain. A batch
   may resolve and push concurrently with its predecessors, but it learns
   whether it is allowed to report/reply only from its predecessor's
   outcome: once any batch fails, every later in-flight batch must fail
   too (its push may or may not survive the coming recovery). *)
type batch_outcome = Batch_ok | Batch_failed

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  epoch : Types.epoch;
  sequencer : int;
  resolvers : (Message.key_range * int) list;
  logs : (int * int) list;
  ratekeeper : int option;
  mutable kcv : Types.version;
  mutable dead : bool;
  (* GRV batching + rate limiting. [Queue] gives O(1) enqueue/dequeue and
     an O(1) length, replacing the former list + List.rev/split shuffles. *)
  grv_queue : Message.t Future.promise Queue.t;
  mutable grv_flush_scheduled : bool;
  mutable rate : float; (* transactions/second budget from the Ratekeeper *)
  mutable tokens : float;
  mutable last_refill : float;
  (* commit batching + pipelining *)
  commit_queue : pending_commit Queue.t;
  mutable commit_flush_scheduled : bool;
  mutable commit_inflight : int;
  (* The pipeline's two ordering chains, each pointing at the most recently
     launched batch. [chain_version] resolves once that batch holds its
     (lsn, prev) pair — the next batch asks the Sequencer only then, so
     LSNs are assigned in launch order. [chain_done] resolves once that
     batch has reported and replied (or failed) — the next batch enters
     its completion stage only then, so Seq_reports reach the Sequencer in
     LSN order and t.kcv advances monotonically. *)
  mutable chain_version : unit Future.t;
  mutable chain_done : batch_outcome Future.t;
  (* metrics plane handles (no-ops when the registry is disabled) *)
  obs_grv_lat : Fdb_obs.Registry.timer;
  obs_commit_lat : Fdb_obs.Registry.timer;
  obs_resolve_lat : Fdb_obs.Registry.timer;
  obs_logpush_lat : Fdb_obs.Registry.timer;
  obs_grv_served : Fdb_obs.Registry.counter;
  obs_attempts : Fdb_obs.Registry.counter;
  obs_commits : Fdb_obs.Registry.counter;
  obs_conflicts : Fdb_obs.Registry.counter;
  obs_too_old : Fdb_obs.Registry.counter;
  obs_inflight : Fdb_obs.Registry.gauge;
  obs_queue_depth : Fdb_obs.Registry.gauge;
}

let known_committed t = t.kcv
let is_dead t = t.dead

let die t reason =
  if not t.dead then begin
    t.dead <- true;
    Trace.emit "proxy_die" [ ("epoch", string_of_int t.epoch); ("reason", reason) ]
  end

(* ---------- GRV path ---------- *)

let refill_tokens t =
  let now = Engine.now () in
  let dt = now -. t.last_refill in
  t.last_refill <- now;
  let cap = max 2000.0 (t.rate *. 0.2) in
  t.tokens <- Float.min cap (t.tokens +. (dt *. t.rate))

(* Pop up to [n] waiters, oldest first. *)
let dequeue_up_to q n =
  let rec go n acc =
    if n = 0 || Queue.is_empty q then List.rev acc
    else go (n - 1) (Queue.pop q :: acc)
  in
  go n []

let rec grv_flush t =
  t.grv_flush_scheduled <- false;
  if Queue.is_empty t.grv_queue then Future.return ()
  else begin
    refill_tokens t;
    let available = int_of_float t.tokens in
    if available <= 0 then begin
      (* Ratekeeper throttling: try again shortly; requests queue up. *)
      let* () = Engine.sleep 0.01 in
      grv_flush t
    end
    else begin
      let batch = dequeue_up_to t.grv_queue available in
      t.tokens <- t.tokens -. float_of_int (List.length batch);
      let* () = Engine.cpu t.proc Params.proxy_per_batch in
      let* reply =
        Future.catch
          (fun () ->
            Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer Message.Seq_grv)
          (fun _ ->
            (* Our sequencer is unreachable: this generation is over. *)
            die t "sequencer unreachable (grv)";
            Future.return (Message.Reject Error.Database_locked))
      in
      (match reply with
      | Message.Seq_grv_reply { read_version; grv_epoch } ->
          List.iter
            (fun p ->
              ignore
                (Future.try_fulfill p
                   (Message.Grv_reply { gv_version = read_version; gv_epoch = grv_epoch })
                 : bool))
            batch
      | _ ->
          List.iter
            (fun p ->
              ignore (Future.try_fulfill p (Message.Reject Error.Database_locked) : bool))
            batch);
      if not (Queue.is_empty t.grv_queue) then grv_flush t else Future.return ()
    end
  end

let schedule_grv_flush t =
  if not t.grv_flush_scheduled then begin
    t.grv_flush_scheduled <- true;
    Engine.schedule ~after:Params.grv_batch_interval ~process:t.proc (fun () ->
        Engine.spawn ~process:t.proc "proxy-grv-flush" (fun () -> grv_flush t))
  end

(* ---------- commit path ---------- *)

let stamp_bytes version index =
  Types.version_to_bytes version
  ^ String.init 2 (fun i -> Char.chr ((index lsr (8 * (1 - i))) land 0xff))

let splice template offset stamp =
  let b = Bytes.of_string template in
  Bytes.blit_string stamp 0 b offset (String.length stamp);
  Bytes.to_string b

let materialize_mutations version index (txn : Message.txn_request) =
  List.map
    (fun (m : Message.client_mutation) ->
      match m with
      | Message.Plain p -> p
      | Message.Versionstamped_key { template; offset; value } ->
          Mutation.Set (splice template offset (stamp_bytes version index), value)
      | Message.Versionstamped_value { key; template; offset } ->
          Mutation.Set (key, splice template offset (stamp_bytes version index)))
    txn.Message.tr_mutations

let clip_ranges (lo, hi) ranges =
  List.filter_map
    (fun (f, u) ->
      let f' = if f > lo then f else lo in
      let u' = if u < hi then u else hi in
      if f' < u' then Some (f', u') else None)
    ranges

let txn_bytes (txn : Message.txn_request) =
  List.fold_left
    (fun acc (m : Message.client_mutation) ->
      acc
      +
      match m with
      | Message.Plain p -> Mutation.byte_size p
      | Message.Versionstamped_key { template; value; _ } ->
          String.length template + String.length value
      | Message.Versionstamped_value { key; template; _ } ->
          String.length key + String.length template)
    0 txn.Message.tr_mutations

(* Resolve the batch on every resolver; a resolver that cannot answer
   yields all-conflict (safe: nothing was logged for those transactions). *)
let resolve_batch t lsn prev txns =
  let n = Array.length txns in
  let per_resolver =
    List.map
      (fun (range, ep) ->
        let clipped =
          Array.map
            (fun (txn : Message.txn_request) ->
              ( txn.Message.tr_read_version,
                clip_ranges range txn.Message.tr_reads,
                clip_ranges range txn.Message.tr_writes ))
            txns
        in
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc t.ctx ~timeout:2.0 ~from:t.proc ep
                (Message.Resolve_req
                   { rs_epoch = t.epoch; rs_lsn = lsn; rs_prev = prev; rs_txns = clipped })
            in
            match reply with
            | Message.Resolve_reply verdicts -> Future.return verdicts
            | _ -> Future.return (Array.make n Message.V_conflict))
          (fun _ -> Future.return (Array.make n Message.V_conflict)))
      t.resolvers
  in
  let* all = Future.all per_resolver in
  let combined =
    Array.init n (fun i ->
        List.fold_left
          (fun acc verdicts ->
            match (acc, verdicts.(i)) with
            | Message.V_commit, v -> v
            | acc, Message.V_commit -> acc
            | Message.V_too_old, _ | _, Message.V_too_old -> Message.V_too_old
            | Message.V_conflict, Message.V_conflict -> Message.V_conflict)
          Message.V_commit all)
  in
  Future.return combined

(* Figure 2: route each mutation to the LogServers replicating its tags;
   every LogServer receives the entry (possibly with an empty payload).
   Accumulation is a per-log tag table of reversed lists — O(1) per
   (mutation, tag, replica) instead of the former assoc-list rebuild — and
   the payload's tag order is the deterministic ascending-tag order.
   [kcv] is the caller's snapshot of the proxy KCV at entry-build time:
   with overlapping batches it must not be re-read from shared state after
   later batches complete. *)
let build_log_entries t lsn prev ~kcv committed_mutations =
  let n_logs = List.length t.logs in
  let replication = t.ctx.Context.config.Config.log_replication in
  let per_log : (Types.tag, Mutation.t list ref) Det_tbl.t array =
    Array.init n_logs (fun _ -> Det_tbl.create ~size:8 ())
  in
  List.iter
    (fun (m : Mutation.t) ->
      let tags = Shard_map.tags_for_mutation t.ctx.Context.shard_map m in
      List.iter
        (fun tag ->
          List.iter
            (fun li ->
              let cell = Det_tbl.find_or_add per_log.(li) tag (fun () -> ref []) in
              cell := m :: !cell)
            (List.init (min replication n_logs) (fun i -> (tag + i) mod n_logs)))
        tags)
    committed_mutations;
  Array.map
    (fun tbl ->
      let payload =
        List.map (fun (tag, muts) -> (tag, List.rev !muts)) (Det_tbl.to_sorted_list tbl)
      in
      { Message.le_lsn = lsn; le_prev = prev; le_kcv = kcv; le_payload = payload })
    per_log

let push_to_logs t entries =
  let pushes =
    List.mapi
      (fun i (_, ep) ->
        let entry = entries.(i) in
        let bytes =
          List.fold_left
            (fun acc (_, muts) ->
              List.fold_left (fun a m -> a + Mutation.byte_size m) acc muts)
            0 entry.Message.le_payload
        in
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc t.ctx ~timeout:3.0 ~bytes ~from:t.proc ep
                (Message.Log_push { lp_epoch = t.epoch; lp_entry = entry })
            in
            match reply with
            | Message.Log_push_ack _ -> Future.return true
            | _ -> Future.return false)
          (fun _ -> Future.return false))
      t.logs
  in
  let* acks = Future.all pushes in
  Future.return (List.for_all Fun.id acks)

(* Materialize the winners' mutations in batch order (reverse-accumulate,
   one final reverse — the former [acc @ ...] was quadratic in batch
   size). *)
let committed_payload lsn txns verdicts promises =
  let rev = ref [] in
  Array.iteri
    (fun i verdict ->
      match verdict with
      | Message.V_commit ->
          rev := List.rev_append (materialize_mutations lsn i txns.(i)) !rev
      | Message.V_conflict ->
          ignore
            (Future.try_fulfill promises.(i) (Message.Reject Error.Not_committed) : bool)
      | Message.V_too_old ->
          ignore
            (Future.try_fulfill promises.(i) (Message.Reject Error.Transaction_too_old)
             : bool))
    verdicts;
  List.rev !rev

let reply_committed promises verdicts reply =
  Array.iteri
    (fun i verdict ->
      if verdict = Message.V_commit then
        ignore (Future.try_fulfill promises.(i) reply : bool))
    verdicts

(* ---------- the serial commit path (pipeline depth 1) ----------

   The pre-pipeline implementation, kept verbatim as the baseline the
   commit-pipeline benchmark and the serial-vs-pipelined equivalence tests
   run against: one batch at a time, each awaited end-to-end (version RPC,
   resolve, log push, report) before the next starts. *)

let commit_batch t (batch : pending_commit list) =
  let txns = Array.of_list (List.map fst batch) in
  let promises = Array.of_list (List.map snd batch) in
  let n = Array.length txns in
  let bytes = Array.fold_left (fun acc txn -> acc + txn_bytes txn) 0 txns in
  let* () =
    Engine.cpu t.proc
      (Params.proxy_per_batch
      +. Params.cpu
           ((Params.proxy_per_txn *. float_of_int n)
           +. (Params.proxy_per_byte *. float_of_int bytes)))
  in
  (* Buggify: an unusually slow proxy exercises pipelining and timeouts. *)
  let* () = Engine.sleep (Buggify.delay ~p:0.05 "proxy_slow_commit" /. 20.0) in
  (* One commit version for the whole batch (§2.6 Transaction batching). *)
  let* version_reply =
    Future.catch
      (fun () -> Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer Message.Seq_version)
      (fun _ ->
        die t "sequencer unreachable (commit)";
        Future.return (Message.Reject Error.Database_locked))
  in
  match version_reply with
  | Message.Seq_version_reply { version = lsn; prev } ->
      let* verdicts = resolve_batch t lsn prev txns in
      (* Abort losers immediately; build the committed payload. *)
      let committed_mutations = committed_payload lsn txns verdicts promises in
      let entries = build_log_entries t lsn prev ~kcv:t.kcv committed_mutations in
      let* all_acked = push_to_logs t entries in
      if not all_acked then begin
        (* Durability unknown: recovery will decide. Fail the epoch. *)
        reply_committed promises verdicts (Message.Reject Error.Commit_unknown_result);
        die t "log push failed";
        Future.return ()
      end
      else begin
        if lsn > t.kcv then t.kcv <- lsn;
        (* Report the committed version to the Sequencer and wait for the
           acknowledgment BEFORE replying to clients (§2.4.1): a client
           holding our reply may immediately obtain a read version from any
           proxy, and that version must cover this commit. A fire-and-forget
           report races that GRV and yields stale snapshots (found by the
           read-your-writes property test). *)
        let* reported =
          Future.catch
            (fun () ->
              let* _ =
                Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer
                  (Message.Seq_report { committed = lsn })
              in
              Future.return true)
            (fun _ -> Future.return false)
        in
        if not reported then begin
          (* Durable but unannounced: only a new generation restores the
             GRV guarantee; clients must treat the outcome as unknown. *)
          reply_committed promises verdicts (Message.Reject Error.Commit_unknown_result);
          die t "sequencer unreachable (report)";
          Future.return ()
        end
        else begin
          Trace.emit "proxy_commit_done"
            [ ("lsn", Int64.to_string lsn); ("kcv", Int64.to_string t.kcv) ];
          reply_committed promises verdicts (Message.Commit_reply lsn);
          Future.return ()
        end
      end
  | _ ->
      (* No version, nothing logged: definitely not committed. *)
      Array.iter
        (fun p -> ignore (Future.try_fulfill p (Message.Reject Error.Database_locked) : bool))
        promises;
      Future.return ()

let rec commit_flush_serial t =
  t.commit_flush_scheduled <- false;
  if Queue.is_empty t.commit_queue then Future.return ()
  else if t.commit_inflight >= 1 then
    (* A racing flush (scheduled while the running one awaited its batch)
       must not start a second concurrent batch: depth 1 means one batch in
       flight, full stop. The running loop drains the queue. *)
    Future.return ()
  else begin
    let batch = dequeue_up_to t.commit_queue !Params.max_commit_batch in
    Fdb_obs.Registry.set_gauge t.obs_queue_depth
      (float_of_int (Queue.length t.commit_queue));
    t.commit_inflight <- 1;
    Fdb_obs.Registry.set_gauge t.obs_inflight 1.0;
    let* () = commit_batch t batch in
    t.commit_inflight <- 0;
    Fdb_obs.Registry.set_gauge t.obs_inflight 0.0;
    if not (Queue.is_empty t.commit_queue) then commit_flush_serial t
    else Future.return ()
  end

(* ---------- the pipelined commit path (§2.4.1 LSN chaining) ----------

   Up to [Params.proxy_commit_pipeline_depth] batches run concurrently.
   Each fetches its own (lsn, prev) pair — gated on the previous batch's
   fetch, so LSNs follow launch order — then resolves and pushes without
   waiting for its predecessor; the Resolver's and LogServer's parked-batch
   machinery re-orders out-of-order arrivals along the prev chain. The
   completion stage is serialized: a batch reports to the Sequencer and
   replies to its clients only after its predecessor resolved its fate, so
   reports reach the Sequencer in LSN order, the KCV advances monotonically
   and a failed batch fails every later in-flight batch. *)

let commit_batch_pipelined t ~version_gate ~version_ready ~prev_done ~done_p
    (batch : pending_commit list) =
  let txns = Array.of_list (List.map fst batch) in
  let promises = Array.of_list (List.map snd batch) in
  let n = Array.length txns in
  let bytes = Array.fold_left (fun acc txn -> acc + txn_bytes txn) 0 txns in
  let release_version () = ignore (Future.try_fulfill version_ready () : bool) in
  let finish outcome =
    ignore (Future.try_fulfill done_p outcome : bool);
    Future.return ()
  in
  let reject_all err =
    Array.iter
      (fun p -> ignore (Future.try_fulfill p (Message.Reject err) : bool))
      promises
  in
  let* () =
    Engine.cpu t.proc
      (Params.proxy_per_batch
      +. Params.cpu
           ((Params.proxy_per_txn *. float_of_int n)
           +. (Params.proxy_per_byte *. float_of_int bytes)))
  in
  (* Version gate: ask the Sequencer only after the previous batch holds
     its version, so this proxy's LSNs are assigned in launch order. The
     fetch is the only serialized stage before completion — resolution and
     pushes below overlap freely across batches. *)
  let* () = version_gate in
  if t.dead then begin
    release_version ();
    (* Never assigned a version, nothing logged: definitely not committed. *)
    reject_all Error.Database_locked;
    finish Batch_failed
  end
  else
    let* version_reply =
      Future.catch
        (fun () ->
          Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer Message.Seq_version)
        (fun _ ->
          die t "sequencer unreachable (commit)";
          Future.return (Message.Reject Error.Database_locked))
    in
    release_version ();
    match version_reply with
    | Message.Seq_version_reply { version = lsn; prev } ->
        (* Buggify: stall THIS batch after it already holds its LSN — later
           batches fetch theirs and race ahead, so their resolves and
           pushes arrive out of chain order and exercise the parking lots
           at the Resolver and the LogServers. *)
        let* () = Engine.sleep (Buggify.delay ~p:0.05 "proxy_slow_commit" /. 20.0) in
        let t_resolve = Engine.now () in
        let* verdicts = resolve_batch t lsn prev txns in
        Fdb_obs.Registry.observe t.obs_resolve_lat (Engine.now () -. t_resolve);
        (* Losers are definite regardless of how the rest of the pipeline
           fares: nothing of theirs is ever logged. *)
        let committed_mutations = committed_payload lsn txns verdicts promises in
        (* Capture the KCV once, here: stamping [t.kcv] read any later
           would let a concurrently-running batch observe a KCV its own
           chain position has not reached. *)
        let entries = build_log_entries t lsn prev ~kcv:t.kcv committed_mutations in
        let t_push = Engine.now () in
        let* all_acked = push_to_logs t entries in
        Fdb_obs.Registry.observe t.obs_logpush_lat (Engine.now () -. t_push);
        (* In-order completion stage: wait for the predecessor's fate. *)
        let* prev_outcome = prev_done in
        if prev_outcome = Batch_failed || t.dead then begin
          (* An earlier LSN failed the epoch. Our push may or may not
             survive the coming recovery: never report or reply success
             past a failed LSN. *)
          reply_committed promises verdicts (Message.Reject Error.Commit_unknown_result);
          finish Batch_failed
        end
        else if not all_acked then begin
          (* Durability unknown: recovery will decide. Fail the epoch. *)
          reply_committed promises verdicts (Message.Reject Error.Commit_unknown_result);
          die t "log push failed";
          finish Batch_failed
        end
        else begin
          if lsn > t.kcv then t.kcv <- lsn;
          (* Report and await the acknowledgment BEFORE replying (§2.4.1):
             a client holding our reply may immediately obtain a read
             version from any proxy, and that version must cover this
             commit. The chain guarantees reports arrive in LSN order, so
             Sequencer.committed only ever exposes durable prefixes. *)
          let* reported =
            Future.catch
              (fun () ->
                let* _ =
                  Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer
                    (Message.Seq_report { committed = lsn })
                in
                Future.return true)
              (fun _ -> Future.return false)
          in
          if not reported then begin
            (* Durable but unannounced: only a new generation restores the
               GRV guarantee; clients must treat the outcome as unknown. *)
            reply_committed promises verdicts (Message.Reject Error.Commit_unknown_result);
            die t "sequencer unreachable (report)";
            finish Batch_failed
          end
          else begin
            Trace.emit "proxy_commit_done"
              [ ("lsn", Int64.to_string lsn); ("kcv", Int64.to_string t.kcv) ];
            reply_committed promises verdicts (Message.Commit_reply lsn);
            finish Batch_ok
          end
        end
    | _ ->
        (* No version, nothing logged: definitely not committed. This batch
           is a no-op in the chain — its fate is its predecessor's. *)
        reject_all Error.Database_locked;
        if t.dead then finish Batch_failed
        else
          let* prev_outcome = prev_done in
          finish prev_outcome

let rec commit_flush_pipelined t =
  t.commit_flush_scheduled <- false;
  if Queue.is_empty t.commit_queue then Future.return ()
  else if t.dead then begin
    (* Queued requests were never assigned a version: definitely not
       committed, so a retryable reject is safe. *)
    Queue.iter
      (fun (_, p) ->
        ignore (Future.try_fulfill p (Message.Reject Error.Database_locked) : bool))
      t.commit_queue;
    Queue.clear t.commit_queue;
    Fdb_obs.Registry.set_gauge t.obs_queue_depth 0.0;
    Future.return ()
  end
  else if t.commit_inflight >= max 1 !Params.proxy_commit_pipeline_depth then
    (* Pipeline full: a completing batch re-runs the flush. *)
    Future.return ()
  else begin
    let batch = dequeue_up_to t.commit_queue !Params.max_commit_batch in
    Fdb_obs.Registry.set_gauge t.obs_queue_depth
      (float_of_int (Queue.length t.commit_queue));
    let version_gate = t.chain_version and prev_done = t.chain_done in
    let version_fut, version_ready = Future.make ~label:"proxy.chain_version" () in
    let done_fut, done_p = Future.make ~label:"proxy.chain_done" () in
    t.chain_version <- version_fut;
    t.chain_done <- done_fut;
    t.commit_inflight <- t.commit_inflight + 1;
    Fdb_obs.Registry.set_gauge t.obs_inflight (float_of_int t.commit_inflight);
    Engine.spawn ~process:t.proc "proxy-commit-batch" (fun () ->
        let* () =
          commit_batch_pipelined t ~version_gate ~version_ready ~prev_done ~done_p
            batch
        in
        t.commit_inflight <- t.commit_inflight - 1;
        Fdb_obs.Registry.set_gauge t.obs_inflight (float_of_int t.commit_inflight);
        if Queue.is_empty t.commit_queue then Future.return ()
        else commit_flush_pipelined t);
    (* Keep launching while the depth and the queue allow. *)
    if Queue.is_empty t.commit_queue then Future.return ()
    else commit_flush_pipelined t
  end

let commit_flush t =
  if !Params.proxy_commit_pipeline_depth <= 1 then commit_flush_serial t
  else commit_flush_pipelined t

let schedule_commit_flush t ~now =
  if not t.commit_flush_scheduled then begin
    t.commit_flush_scheduled <- true;
    let delay = if now then 0.0 else !Params.commit_batch_interval in
    Engine.schedule ~after:delay ~process:t.proc (fun () ->
        Engine.spawn ~process:t.proc "proxy-commit-flush" (fun () -> commit_flush t))
  end

(* ---------- rate polling ---------- *)

let rate_loop t =
  match t.ratekeeper with
  | None -> Future.return ()
  | Some rk ->
      let rec loop () =
        if t.dead then Future.return ()
        else
          let* () = Engine.sleep Params.ratekeeper_interval in
          let* () =
            Future.catch
              (fun () ->
                let* reply =
                  Context.rpc t.ctx ~timeout:1.0 ~from:t.proc rk Message.Rk_get_rate
                in
                (match reply with
                | Message.Rk_rate { tps } ->
                    (* The budget is cluster-wide; each proxy admits its
                       share (FDB hands out per-proxy budgets the same way). *)
                    t.rate <- tps /. float_of_int (max 1 t.ctx.Context.config.Config.proxies)
                | _ -> ());
                Future.return ())
              (fun _ -> Future.return ())
          in
          loop ()
      in
      loop ()

(* ---------- RPC surface ---------- *)

let handle t (msg : Message.t) : Message.t Future.t =
  if t.dead then Future.return (Message.Reject Error.Wrong_epoch)
  else
    match msg with
    | Message.Seq_ping -> Future.return Message.Ok_reply
    | Message.Grv_req ->
        let fut, promise = Future.make ~label:"proxy.grv_reply" () in
        Queue.push promise t.grv_queue;
        schedule_grv_flush t;
        let t0 = Engine.now () in
        Future.map fut (fun reply ->
            (match reply with
            | Message.Grv_reply _ ->
                Fdb_obs.Registry.incr t.obs_grv_served;
                Fdb_obs.Registry.observe t.obs_grv_lat (Engine.now () -. t0)
            | _ -> ());
            reply)
    | Message.Commit_req txn ->
        Fdb_obs.Registry.incr t.obs_attempts;
        let fut, promise = Future.make ~label:"proxy.commit_reply" () in
        Queue.push (txn, promise) t.commit_queue;
        Fdb_obs.Registry.set_gauge t.obs_queue_depth
          (float_of_int (Queue.length t.commit_queue));
        schedule_commit_flush t
          ~now:(Queue.length t.commit_queue >= !Params.max_commit_batch);
        let t0 = Engine.now () in
        Future.map fut (fun reply ->
            (match reply with
            | Message.Commit_reply _ ->
                Fdb_obs.Registry.incr t.obs_commits;
                Fdb_obs.Registry.observe t.obs_commit_lat (Engine.now () -. t0)
            | Message.Reject Error.Not_committed -> Fdb_obs.Registry.incr t.obs_conflicts
            | Message.Reject Error.Transaction_too_old -> Fdb_obs.Registry.incr t.obs_too_old
            | _ -> ());
            reply)
    | _ -> Future.return (Message.Reject (Error.Internal "proxy: unexpected message"))

let create ctx proc ~epoch ~sequencer ~resolvers ~logs ~ratekeeper ~recovery_version =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let reg = ctx.Context.metrics in
  let pid = proc.Process.pid in
  let t =
    {
      ctx;
      proc;
      ep;
      epoch;
      sequencer;
      resolvers;
      logs;
      ratekeeper;
      kcv = recovery_version;
      dead = false;
      grv_queue = Queue.create ();
      grv_flush_scheduled = false;
      rate = 1e5;
      tokens = 2000.0;
      last_refill = Engine.now ();
      commit_queue = Queue.create ();
      commit_flush_scheduled = false;
      commit_inflight = 0;
      chain_version = Future.return ();
      chain_done = Future.return Batch_ok;
      obs_grv_lat = Fdb_obs.Registry.histogram reg ~role:Fdb_obs.Registry.Proxy ~process:pid "grv_latency";
      obs_commit_lat = Fdb_obs.Registry.histogram reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_latency";
      obs_resolve_lat = Fdb_obs.Registry.histogram reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_resolve_latency";
      obs_logpush_lat = Fdb_obs.Registry.histogram reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_logpush_latency";
      obs_grv_served = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "grv_served";
      obs_attempts = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_attempts";
      obs_commits = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commits";
      obs_conflicts = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "conflicts";
      obs_too_old = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "too_old";
      obs_inflight = Fdb_obs.Registry.gauge reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_inflight_batches";
      obs_queue_depth = Fdb_obs.Registry.gauge reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_queue_depth";
    }
  in
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "proxy-rate" (fun () -> rate_loop t);
  (t, ep)
