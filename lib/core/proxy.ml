open Fdb_sim
open Future.Syntax
module Mutation = Fdb_kv.Mutation

type pending_commit = Message.txn_request * Message.t Future.promise

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  epoch : Types.epoch;
  sequencer : int;
  resolvers : (Message.key_range * int) list;
  logs : (int * int) list;
  ratekeeper : int option;
  mutable kcv : Types.version;
  mutable dead : bool;
  (* GRV batching + rate limiting *)
  mutable grv_queue : Message.t Future.promise list;
  mutable grv_flush_scheduled : bool;
  mutable rate : float; (* transactions/second budget from the Ratekeeper *)
  mutable tokens : float;
  mutable last_refill : float;
  (* commit batching *)
  mutable commit_queue : pending_commit list;
  mutable commit_flush_scheduled : bool;
  (* metrics plane handles (no-ops when the registry is disabled) *)
  obs_grv_lat : Fdb_obs.Registry.timer;
  obs_commit_lat : Fdb_obs.Registry.timer;
  obs_grv_served : Fdb_obs.Registry.counter;
  obs_attempts : Fdb_obs.Registry.counter;
  obs_commits : Fdb_obs.Registry.counter;
  obs_conflicts : Fdb_obs.Registry.counter;
  obs_too_old : Fdb_obs.Registry.counter;
}

let known_committed t = t.kcv
let is_dead t = t.dead

let die t reason =
  if not t.dead then begin
    t.dead <- true;
    Trace.emit "proxy_die" [ ("epoch", string_of_int t.epoch); ("reason", reason) ]
  end

(* ---------- GRV path ---------- *)

let refill_tokens t =
  let now = Engine.now () in
  let dt = now -. t.last_refill in
  t.last_refill <- now;
  let cap = max 2000.0 (t.rate *. 0.2) in
  t.tokens <- Float.min cap (t.tokens +. (dt *. t.rate))

let rec grv_flush t =
  t.grv_flush_scheduled <- false;
  match t.grv_queue with
  | [] -> Future.return ()
  | _ ->
      refill_tokens t;
      let available = int_of_float t.tokens in
      if available <= 0 then begin
        (* Ratekeeper throttling: try again shortly; requests queue up. *)
        let* () = Engine.sleep 0.01 in
        grv_flush t
      end
      else begin
        let batch, rest =
          let rec split n acc = function
            | [] -> (List.rev acc, [])
            | l when n = 0 -> (List.rev acc, l)
            | x :: tl -> split (n - 1) (x :: acc) tl
          in
          split available [] (List.rev t.grv_queue)
        in
        t.grv_queue <- List.rev rest;
        t.tokens <- t.tokens -. float_of_int (List.length batch);
        let* () = Engine.cpu t.proc Params.proxy_per_batch in
        let* reply =
          Future.catch
            (fun () ->
              Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer Message.Seq_grv)
            (fun _ ->
              (* Our sequencer is unreachable: this generation is over. *)
              die t "sequencer unreachable (grv)";
              Future.return (Message.Reject Error.Database_locked))
        in
        (match reply with
        | Message.Seq_grv_reply { read_version; grv_epoch } ->
            List.iter
              (fun p ->
                ignore
                  (Future.try_fulfill p
                     (Message.Grv_reply { gv_version = read_version; gv_epoch = grv_epoch })
                   : bool))
              batch
        | _ ->
            List.iter
              (fun p ->
                ignore (Future.try_fulfill p (Message.Reject Error.Database_locked) : bool))
              batch);
        if t.grv_queue <> [] then grv_flush t else Future.return ()
      end

let schedule_grv_flush t =
  if not t.grv_flush_scheduled then begin
    t.grv_flush_scheduled <- true;
    Engine.schedule ~after:Params.grv_batch_interval ~process:t.proc (fun () ->
        Engine.spawn ~process:t.proc "proxy-grv-flush" (fun () -> grv_flush t))
  end

(* ---------- commit path ---------- *)

let stamp_bytes version index =
  Types.version_to_bytes version
  ^ String.init 2 (fun i -> Char.chr ((index lsr (8 * (1 - i))) land 0xff))

let splice template offset stamp =
  let b = Bytes.of_string template in
  Bytes.blit_string stamp 0 b offset (String.length stamp);
  Bytes.to_string b

let materialize_mutations version index (txn : Message.txn_request) =
  List.map
    (fun (m : Message.client_mutation) ->
      match m with
      | Message.Plain p -> p
      | Message.Versionstamped_key { template; offset; value } ->
          Mutation.Set (splice template offset (stamp_bytes version index), value)
      | Message.Versionstamped_value { key; template; offset } ->
          Mutation.Set (key, splice template offset (stamp_bytes version index)))
    txn.Message.tr_mutations

let clip_ranges (lo, hi) ranges =
  List.filter_map
    (fun (f, u) ->
      let f' = if f > lo then f else lo in
      let u' = if u < hi then u else hi in
      if f' < u' then Some (f', u') else None)
    ranges

let txn_bytes (txn : Message.txn_request) =
  List.fold_left
    (fun acc (m : Message.client_mutation) ->
      acc
      +
      match m with
      | Message.Plain p -> Mutation.byte_size p
      | Message.Versionstamped_key { template; value; _ } ->
          String.length template + String.length value
      | Message.Versionstamped_value { key; template; _ } ->
          String.length key + String.length template)
    0 txn.Message.tr_mutations

(* Resolve the batch on every resolver; a resolver that cannot answer
   yields all-conflict (safe: nothing was logged for those transactions). *)
let resolve_batch t lsn prev txns =
  let n = Array.length txns in
  let per_resolver =
    List.map
      (fun (range, ep) ->
        let clipped =
          Array.map
            (fun (txn : Message.txn_request) ->
              ( txn.Message.tr_read_version,
                clip_ranges range txn.Message.tr_reads,
                clip_ranges range txn.Message.tr_writes ))
            txns
        in
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc t.ctx ~timeout:2.0 ~from:t.proc ep
                (Message.Resolve_req
                   { rs_epoch = t.epoch; rs_lsn = lsn; rs_prev = prev; rs_txns = clipped })
            in
            match reply with
            | Message.Resolve_reply verdicts -> Future.return verdicts
            | _ -> Future.return (Array.make n Message.V_conflict))
          (fun _ -> Future.return (Array.make n Message.V_conflict)))
      t.resolvers
  in
  let* all = Future.all per_resolver in
  let combined =
    Array.init n (fun i ->
        List.fold_left
          (fun acc verdicts ->
            match (acc, verdicts.(i)) with
            | Message.V_commit, v -> v
            | acc, Message.V_commit -> acc
            | Message.V_too_old, _ | _, Message.V_too_old -> Message.V_too_old
            | Message.V_conflict, Message.V_conflict -> Message.V_conflict)
          Message.V_commit all)
  in
  Future.return combined

(* Figure 2: route each mutation to the LogServers replicating its tags;
   every LogServer receives the entry (possibly with an empty payload). *)
let build_log_entries t lsn prev committed_mutations =
  let n_logs = List.length t.logs in
  let replication = t.ctx.Context.config.Config.log_replication in
  let per_log : (Types.tag * Mutation.t list) list array = Array.make n_logs [] in
  List.iter
    (fun (m : Mutation.t) ->
      let tags = Shard_map.tags_for_mutation t.ctx.Context.shard_map m in
      List.iter
        (fun tag ->
          List.iter
            (fun li ->
              let existing = per_log.(li) in
              per_log.(li) <-
                (match List.assoc_opt tag existing with
                | Some muts ->
                    (tag, muts @ [ m ]) :: List.remove_assoc tag existing
                | None -> (tag, [ m ]) :: existing))
            (List.init (min replication n_logs) (fun i -> (tag + i) mod n_logs)))
        tags)
    committed_mutations;
  Array.map
    (fun payload ->
      { Message.le_lsn = lsn; le_prev = prev; le_kcv = t.kcv; le_payload = payload })
    per_log

let push_to_logs t entries =
  let pushes =
    List.mapi
      (fun i (_, ep) ->
        let entry = entries.(i) in
        let bytes =
          List.fold_left
            (fun acc (_, muts) ->
              List.fold_left (fun a m -> a + Mutation.byte_size m) acc muts)
            0 entry.Message.le_payload
        in
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc t.ctx ~timeout:3.0 ~bytes ~from:t.proc ep
                (Message.Log_push { lp_epoch = t.epoch; lp_entry = entry })
            in
            match reply with
            | Message.Log_push_ack _ -> Future.return true
            | _ -> Future.return false)
          (fun _ -> Future.return false))
      t.logs
  in
  let* acks = Future.all pushes in
  Future.return (List.for_all Fun.id acks)

let commit_batch t (batch : pending_commit list) =
  let txns = Array.of_list (List.map fst batch) in
  let promises = Array.of_list (List.map snd batch) in
  let n = Array.length txns in
  let bytes = Array.fold_left (fun acc txn -> acc + txn_bytes txn) 0 txns in
  let* () =
    Engine.cpu t.proc
      (Params.proxy_per_batch
      +. Params.cpu
           ((Params.proxy_per_txn *. float_of_int n)
           +. (Params.proxy_per_byte *. float_of_int bytes)))
  in
  (* Buggify: an unusually slow proxy exercises pipelining and timeouts. *)
  let* () = Engine.sleep (Buggify.delay ~p:0.05 "proxy_slow_commit" /. 20.0) in
  (* One commit version for the whole batch (§2.6 Transaction batching). *)
  let* version_reply =
    Future.catch
      (fun () -> Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer Message.Seq_version)
      (fun _ ->
        die t "sequencer unreachable (commit)";
        Future.return (Message.Reject Error.Database_locked))
  in
  match version_reply with
  | Message.Seq_version_reply { version = lsn; prev } ->
      let* verdicts = resolve_batch t lsn prev txns in
      (* Abort losers immediately; build the committed payload. *)
      let committed_mutations = ref [] in
      Array.iteri
        (fun i verdict ->
          match verdict with
          | Message.V_commit ->
              committed_mutations := !committed_mutations @ materialize_mutations lsn i txns.(i)
          | Message.V_conflict ->
              ignore
                (Future.try_fulfill promises.(i) (Message.Reject Error.Not_committed) : bool)
          | Message.V_too_old ->
              ignore
                (Future.try_fulfill promises.(i) (Message.Reject Error.Transaction_too_old)
                 : bool))
        verdicts;
      let entries = build_log_entries t lsn prev !committed_mutations in
      let* all_acked = push_to_logs t entries in
      if not all_acked then begin
        (* Durability unknown: recovery will decide. Fail the epoch. *)
        Array.iteri
          (fun i verdict ->
            if verdict = Message.V_commit then
              ignore
                (Future.try_fulfill promises.(i) (Message.Reject Error.Commit_unknown_result)
                 : bool))
          verdicts;
        die t "log push failed";
        Future.return ()
      end
      else begin
        if lsn > t.kcv then t.kcv <- lsn;
        (* Report the committed version to the Sequencer and wait for the
           acknowledgment BEFORE replying to clients (§2.4.1): a client
           holding our reply may immediately obtain a read version from any
           proxy, and that version must cover this commit. A fire-and-forget
           report races that GRV and yields stale snapshots (found by the
           read-your-writes property test). *)
        let* reported =
          Future.catch
            (fun () ->
              let* _ =
                Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.sequencer
                  (Message.Seq_report { committed = lsn })
              in
              Future.return true)
            (fun _ -> Future.return false)
        in
        if not reported then begin
          (* Durable but unannounced: only a new generation restores the
             GRV guarantee; clients must treat the outcome as unknown. *)
          Array.iteri
            (fun i verdict ->
              if verdict = Message.V_commit then
                ignore
                  (Future.try_fulfill promises.(i)
                     (Message.Reject Error.Commit_unknown_result)
                   : bool))
            verdicts;
          die t "sequencer unreachable (report)";
          Future.return ()
        end
        else begin
          Array.iteri
            (fun i verdict ->
              if verdict = Message.V_commit then
                ignore (Future.try_fulfill promises.(i) (Message.Commit_reply lsn) : bool))
            verdicts;
          Future.return ()
        end
      end
  | _ ->
      (* No version, nothing logged: definitely not committed. *)
      Array.iter
        (fun p -> ignore (Future.try_fulfill p (Message.Reject Error.Database_locked) : bool))
        promises;
      Future.return ()

let rec commit_flush t =
  t.commit_flush_scheduled <- false;
  match t.commit_queue with
  | [] -> Future.return ()
  | queue ->
      let all = List.rev queue in
      let rec split n acc = function
        | [] -> (List.rev acc, [])
        | l when n = 0 -> (List.rev acc, l)
        | x :: tl -> split (n - 1) (x :: acc) tl
      in
      let batch, rest = split !Params.max_commit_batch [] all in
      t.commit_queue <- List.rev rest;
      let* () = commit_batch t batch in
      if t.commit_queue <> [] then commit_flush t else Future.return ()

let schedule_commit_flush t ~now =
  if not t.commit_flush_scheduled then begin
    t.commit_flush_scheduled <- true;
    let delay = if now then 0.0 else !Params.commit_batch_interval in
    Engine.schedule ~after:delay ~process:t.proc (fun () ->
        Engine.spawn ~process:t.proc "proxy-commit-flush" (fun () -> commit_flush t))
  end

(* ---------- rate polling ---------- *)

let rate_loop t =
  match t.ratekeeper with
  | None -> Future.return ()
  | Some rk ->
      let rec loop () =
        if t.dead then Future.return ()
        else
          let* () = Engine.sleep Params.ratekeeper_interval in
          let* () =
            Future.catch
              (fun () ->
                let* reply =
                  Context.rpc t.ctx ~timeout:1.0 ~from:t.proc rk Message.Rk_get_rate
                in
                (match reply with
                | Message.Rk_rate { tps } ->
                    (* The budget is cluster-wide; each proxy admits its
                       share (FDB hands out per-proxy budgets the same way). *)
                    t.rate <- tps /. float_of_int (max 1 t.ctx.Context.config.Config.proxies)
                | _ -> ());
                Future.return ())
              (fun _ -> Future.return ())
          in
          loop ()
      in
      loop ()

(* ---------- RPC surface ---------- *)

let handle t (msg : Message.t) : Message.t Future.t =
  if t.dead then Future.return (Message.Reject Error.Wrong_epoch)
  else
    match msg with
    | Message.Seq_ping -> Future.return Message.Ok_reply
    | Message.Grv_req ->
        let fut, promise = Future.make () in
        t.grv_queue <- promise :: t.grv_queue;
        schedule_grv_flush t;
        let t0 = Engine.now () in
        Future.map fut (fun reply ->
            (match reply with
            | Message.Grv_reply _ ->
                Fdb_obs.Registry.incr t.obs_grv_served;
                Fdb_obs.Registry.observe t.obs_grv_lat (Engine.now () -. t0)
            | _ -> ());
            reply)
    | Message.Commit_req txn ->
        Fdb_obs.Registry.incr t.obs_attempts;
        let fut, promise = Future.make () in
        t.commit_queue <- (txn, promise) :: t.commit_queue;
        schedule_commit_flush t
          ~now:(List.length t.commit_queue >= !Params.max_commit_batch);
        let t0 = Engine.now () in
        Future.map fut (fun reply ->
            (match reply with
            | Message.Commit_reply _ ->
                Fdb_obs.Registry.incr t.obs_commits;
                Fdb_obs.Registry.observe t.obs_commit_lat (Engine.now () -. t0)
            | Message.Reject Error.Not_committed -> Fdb_obs.Registry.incr t.obs_conflicts
            | Message.Reject Error.Transaction_too_old -> Fdb_obs.Registry.incr t.obs_too_old
            | _ -> ());
            reply)
    | _ -> Future.return (Message.Reject (Error.Internal "proxy: unexpected message"))

let create ctx proc ~epoch ~sequencer ~resolvers ~logs ~ratekeeper ~recovery_version =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let reg = ctx.Context.metrics in
  let pid = proc.Process.pid in
  let t =
    {
      ctx;
      proc;
      ep;
      epoch;
      sequencer;
      resolvers;
      logs;
      ratekeeper;
      kcv = recovery_version;
      dead = false;
      grv_queue = [];
      grv_flush_scheduled = false;
      rate = 1e5;
      tokens = 2000.0;
      last_refill = Engine.now ();
      commit_queue = [];
      commit_flush_scheduled = false;
      obs_grv_lat = Fdb_obs.Registry.histogram reg ~role:Fdb_obs.Registry.Proxy ~process:pid "grv_latency";
      obs_commit_lat = Fdb_obs.Registry.histogram reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_latency";
      obs_grv_served = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "grv_served";
      obs_attempts = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commit_attempts";
      obs_commits = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "commits";
      obs_conflicts = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "conflicts";
      obs_too_old = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Proxy ~process:pid "too_old";
    }
  in
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "proxy-rate" (fun () -> rate_loop t);
  (t, ep)
