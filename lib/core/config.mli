(** Cluster deployment configuration (counts, placement, replication). *)

type t = {
  machines : int;  (** worker machines (clients live on extra machines) *)
  coordinators : int;  (** coordinator processes, on the first N machines *)
  proxies : int;
  resolvers : int;
  log_servers : int;
  storage_per_machine : int;
  log_replication : int;  (** k = f+1 synchronous log replicas (§2.5) *)
  storage_replication : int;  (** team size (§2.5) *)
  mvcc_window : float;  (** seconds of multi-version history (§6.4) *)
  shards_per_storage : int;  (** shard granularity: shards ≈ this × servers *)
  cc_candidates : int;  (** how many workers campaign for ClusterController *)
  racks : int;  (** fault domains: machine i is in rack [i mod racks] *)
  disks_per_machine : int;
  shard_boundaries : string list;
      (** explicit shard split points (ascending). Empty = even two-byte
          prefix split. Real FDB splits shards by observed data
          distribution; workloads with a common key prefix should supply
          boundaries matching their key population. *)
  regions : int;
      (** datacenters; machine [m] lives in region [m mod regions]
          (interleaved so replica teams and log recruitment naturally span
          regions). [regions = 2] gives the paper's §3 two-region layout in
          its synchronous-replication mode: commits wait for cross-region
          log replicas, and the §2.4.4 recovery performs automatic failover
          when a whole region dies. *)
}

val region_of_machine : t -> int -> string
(** Datacenter name ("dc1", "dc2", ...) of a machine index. *)

val default : t
(** A small functional cluster: 5 machines, 3 coordinators, 2 proxies,
    1 resolver, 3 log servers, 2 storage servers per machine, triple
    replication of logs and storage, 5 s MVCC window. *)

val test_small : t
(** Minimal cluster for fast unit tests (3 machines, double replication). *)

val scaled : machines:int -> t
(** The paper's Figure 8 scaling shape: on [machines] hosts, run
    [machines - 2] proxies and log servers, storage on every machine,
    triple replication — mirroring "we use the same number of Proxies and
    LogServers" with 2 to 22 of each on 4 to 24 machines. *)

val storage_count : t -> int
(** Total StorageServers in the deployment. *)

val validate : t -> (unit, string) result
(** Sanity checks (enough machines for coordinators/replication etc.). *)
