(** The client library: database handles and transactions (paper §2.2).

    A transaction observes a snapshot at its read version (lazily acquired
    from a Proxy, §2.4.1), buffers writes locally with read-your-writes
    semantics, and ships read/write conflict ranges and mutations to a
    Proxy at commit. Read-only transactions commit locally without
    contacting the cluster. {!run} is the standard retry loop.

    Range reads run through a parallel pipeline: the client resolves the
    range into per-shard fragments against its shard map and keeps up to
    {!Params.client_range_fanout} fragment sub-reads in flight, each
    bounded by row and byte budgets, with replica choice load-balanced by
    the deterministic RNG and transparent failover to another team member
    on per-replica errors. *)

type db
type tx

(** All failures surface as the [Error.Fdb] exception carrying a typed
    {!Error.t}. *)

val create_db : Context.t -> Fdb_sim.Process.t -> db
(** A database handle for a client living on the given process (the
    context plays the role of the cluster file). *)

val refresh : db -> unit Fdb_sim.Future.t
(** Re-discover the current proxies via the coordinators/ClusterController.
    Called automatically when requests keep failing. *)

(** {2 Key selectors} *)

module Key_selector : sig
  type t = Message.key_selector = {
    sel_key : string;
    sel_or_equal : bool;
    sel_offset : int;
  }
  (** Resolution: find the last key [<= sel_key] ([< sel_key] when
      [sel_or_equal] is false), then move [sel_offset] keys forward.
      Resolution happens at the storage servers against the MVCC window at
      the transaction's read version; walks that run off the edge of the
      key space clamp to [""] / {!Types.key_space_end}. *)

  val first_greater_or_equal : ?offset:int -> string -> t
  val first_greater_than : ?offset:int -> string -> t
  val last_less_or_equal : ?offset:int -> string -> t
  val last_less_than : ?offset:int -> string -> t
  (** The four canonical selectors; [offset] shifts the resolved key that
      many keys forward (may be negative). *)
end

type streaming_mode = [ `Want_all | `Iterator | `Exact of int ]
(** How a range read budgets its storage round-trips: [`Want_all] drains
    the range with large batches, [`Iterator] uses modest row/byte budgets
    per batch (the streaming default), [`Exact n] sizes batches for
    exactly [n] rows. *)

(** {2 Transaction options} *)

type tx_options = {
  opt_timeout : float option;  (** overall [run] deadline, seconds *)
  opt_retry_limit : int option;  (** max [run] attempts *)
  opt_max_read_bytes : int option;
      (** per-transaction cap on bytes fetched from storage; exceeding it
          fails the read with [Transaction_too_large] *)
}

val default_options : tx_options
(** All [None]: no deadline, default retry limit, unbounded reads. *)

(** {2 Transactions} *)

val begin_tx : ?options:tx_options -> db -> tx

val set_option : tx -> tx_options -> unit
(** Replace the transaction's options (FDB's transaction option plumbing). *)

val get_read_version : tx -> Types.version Fdb_sim.Future.t
(** The transaction's snapshot version (first call contacts a Proxy). *)

val read_snapshot : tx -> (Types.version * Types.epoch) Fdb_sim.Future.t
(** The snapshot version together with the generation that minted it —
    what storage servers need to gate reads correctly (tools issuing raw
    storage requests must carry both). *)

val set_read_version : tx -> Types.version -> unit
(** Pin the snapshot version (e.g. for read-at-version tooling). *)

val get : ?snapshot:bool -> tx -> string -> string option Fdb_sim.Future.t
(** Point read with read-your-writes. [snapshot:true] skips the read
    conflict range (§2.4.1 snapshot reads). *)

val get_key : ?snapshot:bool -> tx -> Key_selector.t -> string Fdb_sim.Future.t
(** Resolve a key selector at the transaction's snapshot, merged with
    buffered writes. Clamps to [""] / {!Types.key_space_end} off the ends. *)

val get_range :
  ?snapshot:bool ->
  ?limit:int ->
  ?reverse:bool ->
  ?mode:streaming_mode ->
  tx ->
  from:string ->
  until:string ->
  unit ->
  (string * string) list Fdb_sim.Future.t
(** Ordered range read of [\[from, until)], merged with buffered writes.
    Sugar over the selector form with [first_greater_or_equal] bounds. *)

val get_range_sel :
  ?snapshot:bool ->
  ?limit:int ->
  ?reverse:bool ->
  ?mode:streaming_mode ->
  tx ->
  from:Key_selector.t ->
  until:Key_selector.t ->
  unit ->
  (string * string) list Fdb_sim.Future.t
(** Range read between two key selectors, resolved at the storage servers
    against the MVCC window at the transaction's read version. *)

(** {2 Streaming} *)

type batch = {
  batch_rows : (string * string) list;
  batch_continuation : string option;
      (** pass back as [?continuation] to fetch the next batch; [None]
          when the range is exhausted *)
}

val get_range_stream :
  ?snapshot:bool ->
  ?reverse:bool ->
  ?mode:streaming_mode ->
  ?continuation:string ->
  tx ->
  from:string ->
  until:string ->
  unit ->
  batch Fdb_sim.Future.t
(** One bounded batch of [\[from, until)] with an explicit continuation
    cursor, so callers can stream arbitrarily large ranges at bounded
    memory. Each batch merges buffered writes and adds a read conflict
    only over the span it actually observed. *)

val set : tx -> string -> string -> unit
val clear : tx -> string -> unit
val clear_range : tx -> from:string -> until:string -> unit

val atomic_op : tx -> Fdb_kv.Mutation.atomic_kind -> string -> string -> unit
(** [atomic_op tx kind key operand] — conflict-free read-modify-write
    (§2.6); adds a write conflict range but no read range. *)

val set_versionstamped_key : tx -> template:string -> offset:int -> value:string -> unit
(** [template] must contain 10 bytes at [offset] that the Proxy overwrites
    with the commit versionstamp (§2.6). *)

val set_versionstamped_value : tx -> key:string -> template:string -> offset:int -> unit

val add_read_conflict_range : tx -> from:string -> until:string -> unit
val add_write_conflict_range : tx -> from:string -> until:string -> unit
(** Manual conflict ranges: the fine-grained control the paper describes
    for relaxing or strengthening isolation. *)

val commit : tx -> Types.version Fdb_sim.Future.t
(** Commit; the version is the transaction's commit version (0 for
    read-only transactions). Fails with a typed {!Error.t}. Idempotent:
    repeated calls return the first outcome. *)

val run :
  db ->
  ?max_attempts:int ->
  ?options:tx_options ->
  (tx -> 'a Fdb_sim.Future.t) ->
  'a Fdb_sim.Future.t
(** Standard retry loop: run the body, commit, and retry (with capped
    exponential backoff) on retryable errors. The body must be idempotent
    under retry, as in FDB. [options] is threaded into every attempt's
    transaction; [opt_retry_limit] overrides [max_attempts] and
    [opt_timeout] bounds the whole loop, failing with [Timed_out]. *)

val versionstamp_placeholder : string
(** Ten zero bytes to embed where the stamp should land. *)
