(** The client library: database handles and transactions (paper §2.2).

    A transaction observes a snapshot at its read version (lazily acquired
    from a Proxy, §2.4.1), buffers writes locally with read-your-writes
    semantics, and ships read/write conflict ranges and mutations to a
    Proxy at commit. Read-only transactions commit locally without
    contacting the cluster. {!run} is the standard retry loop. *)

type db
type tx

(** All failures surface as the [Error.Fdb] exception carrying a typed
    {!Error.t}. *)

val create_db : Context.t -> Fdb_sim.Process.t -> db
(** A database handle for a client living on the given process (the
    context plays the role of the cluster file). *)

val refresh : db -> unit Fdb_sim.Future.t
(** Re-discover the current proxies via the coordinators/ClusterController.
    Called automatically when requests keep failing. *)

(** {2 Transactions} *)

val begin_tx : db -> tx

val get_read_version : tx -> Types.version Fdb_sim.Future.t
(** The transaction's snapshot version (first call contacts a Proxy). *)

val read_snapshot : tx -> (Types.version * Types.epoch) Fdb_sim.Future.t
(** The snapshot version together with the generation that minted it —
    what storage servers need to gate reads correctly (tools issuing raw
    storage requests must carry both). *)

val set_read_version : tx -> Types.version -> unit
(** Pin the snapshot version (e.g. for read-at-version tooling). *)

val get : ?snapshot:bool -> tx -> string -> string option Fdb_sim.Future.t
(** Point read with read-your-writes. [snapshot:true] skips the read
    conflict range (§2.4.1 snapshot reads). *)

val get_range :
  ?snapshot:bool ->
  ?limit:int ->
  ?reverse:bool ->
  tx ->
  from:string ->
  until:string ->
  unit ->
  (string * string) list Fdb_sim.Future.t
(** Ordered range read of [\[from, until)], merged with buffered writes. *)

val set : tx -> string -> string -> unit
val clear : tx -> string -> unit
val clear_range : tx -> from:string -> until:string -> unit

val atomic_op : tx -> Fdb_kv.Mutation.atomic_kind -> string -> string -> unit
(** [atomic_op tx kind key operand] — conflict-free read-modify-write
    (§2.6); adds a write conflict range but no read range. *)

val set_versionstamped_key : tx -> template:string -> offset:int -> value:string -> unit
(** [template] must contain 10 bytes at [offset] that the Proxy overwrites
    with the commit versionstamp (§2.6). *)

val set_versionstamped_value : tx -> key:string -> template:string -> offset:int -> unit

val add_read_conflict_range : tx -> from:string -> until:string -> unit
val add_write_conflict_range : tx -> from:string -> until:string -> unit
(** Manual conflict ranges: the fine-grained control the paper describes
    for relaxing or strengthening isolation. *)

val commit : tx -> Types.version Fdb_sim.Future.t
(** Commit; the version is the transaction's commit version (0 for
    read-only transactions). Fails with a typed {!Error.t}. Idempotent:
    repeated calls return the first outcome. *)

val run : db -> ?max_attempts:int -> (tx -> 'a Fdb_sim.Future.t) -> 'a Fdb_sim.Future.t
(** Standard retry loop: run the body, commit, and retry (with capped
    exponential backoff) on retryable errors. The body must be idempotent
    under retry, as in FDB. *)

val versionstamp_placeholder : string
(** Ten zero bytes to embed where the stamp should land. *)
