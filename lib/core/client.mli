(** The client library: database handles and transactions (paper §2.2).

    A transaction observes a snapshot at its read version (lazily acquired
    from a Proxy, §2.4.1), buffers writes locally with read-your-writes
    semantics, and ships read/write conflict ranges and mutations to a
    Proxy at commit. Read-only transactions commit locally without
    contacting the cluster. {!run} is the standard retry loop.

    Range reads run through a parallel pipeline: the client resolves the
    range into per-shard fragments against its shard map and keeps up to
    {!Params.client_range_fanout} fragment sub-reads in flight, each
    bounded by row and byte budgets, with replica choice load-balanced by
    the deterministic RNG and transparent failover to another team member
    on per-replica errors. *)

type db
type tx

(** All failures surface as the [Error.Fdb] exception carrying a typed
    {!Error.t}; {!Error.classify} recovers the typed error from any
    exception a transaction raised. *)

module Error : sig
  type t = Error.t =
    | Not_committed
    | Commit_unknown_result
    | Transaction_too_old
    | Future_version
    | Process_behind
    | Wrong_shard
    | Timed_out
    | Database_locked
    | Key_too_large
    | Value_too_large
    | Transaction_too_large
    | Key_outside_legal_range
    | Used_during_commit
    | Wrong_epoch
    | Internal of string
  (** The one transaction-error variant, re-exported so applications and
      layers can program against [Client.Error] alone. *)

  val retryable : t -> bool
  (** May {!run} retry the transaction from the top? The single authority
      the retry loop keys off. *)

  val classify : exn -> t option
  (** [Some err] when the exception is a typed transaction outcome;
      [None] for anything else (engine internals, programming errors),
      which {!run} never retries. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val fail : t -> 'a Fdb_sim.Future.t
end

val create_db : Context.t -> Fdb_sim.Process.t -> db
(** A database handle for a client living on the given process (the
    context plays the role of the cluster file). *)

val refresh : db -> unit Fdb_sim.Future.t
(** Re-discover the current proxies via the coordinators/ClusterController.
    Called automatically when requests keep failing. *)

(** {2 Key selectors} *)

module Key_selector : sig
  type t = Message.key_selector = {
    sel_key : string;
    sel_or_equal : bool;
    sel_offset : int;
  }
  (** Resolution: find the last key [<= sel_key] ([< sel_key] when
      [sel_or_equal] is false), then move [sel_offset] keys forward.
      Resolution happens at the storage servers against the MVCC window at
      the transaction's read version; walks that run off the edge of the
      key space clamp to [""] / {!Types.key_space_end}. *)

  val first_greater_or_equal : ?offset:int -> string -> t
  val first_greater_than : ?offset:int -> string -> t
  val last_less_or_equal : ?offset:int -> string -> t
  val last_less_than : ?offset:int -> string -> t
  (** The four canonical selectors; [offset] shifts the resolved key that
      many keys forward (may be negative). *)
end

type streaming_mode = [ `Want_all | `Iterator | `Exact of int ]
(** How a range read budgets its storage round-trips: [`Want_all] drains
    the range with large batches, [`Iterator] uses modest row/byte budgets
    per batch (the streaming default), [`Exact n] sizes batches for
    exactly [n] rows. *)

(** {2 Transaction options} *)

type tx_options = {
  opt_timeout : float option;  (** overall [run] deadline, seconds *)
  opt_retry_limit : int option;  (** max [run] attempts *)
  opt_max_read_bytes : int option;
      (** per-transaction cap on bytes fetched from storage; exceeding it
          fails the read with [Transaction_too_large] *)
}

val default_options : tx_options
(** All [None]: no deadline, default retry limit, unbounded reads. *)

(** {2 Transactions} *)

val begin_tx : ?options:tx_options -> db -> tx

val set_option : tx -> tx_options -> unit
(** Replace the transaction's options (FDB's transaction option plumbing). *)

val get_read_version : tx -> Types.version Fdb_sim.Future.t
(** The transaction's snapshot version (first call contacts a Proxy). *)

val read_snapshot : tx -> (Types.version * Types.epoch) Fdb_sim.Future.t
(** The snapshot version together with the generation that minted it —
    what storage servers need to gate reads correctly (tools issuing raw
    storage requests must carry both). *)

val set_read_version : tx -> Types.version -> unit
(** Pin the snapshot version (e.g. for read-at-version tooling). *)

val get : ?snapshot:bool -> tx -> string -> string option Fdb_sim.Future.t
(** Point read with read-your-writes. [snapshot:true] skips the read
    conflict range (§2.4.1 snapshot reads). *)

val get_key : ?snapshot:bool -> tx -> Key_selector.t -> string Fdb_sim.Future.t
(** Resolve a key selector at the transaction's snapshot, merged with
    buffered writes. Clamps to [""] / {!Types.key_space_end} off the ends. *)

(** {2 The unified range API}

    Every range read is a {!Range_query.t}: two key-selector endpoints, a
    row limit, a streaming mode, direction, snapshot-ness, and an optional
    continuation cursor. {!range} evaluates one bounded batch (streaming);
    {!range_all} drains the query to a list. The legacy entry points below
    are thin wrappers over these two. *)

type batch = {
  batch_rows : (string * string) list;
  batch_continuation : string option;
      (** resume cursor — re-issue the query with
          {!Range_query.with_continuation} (or pass [?continuation] to the
          legacy stream call) to fetch the next batch; [None] when the
          range is exhausted *)
}

val range : tx -> Range_query.t -> batch Fdb_sim.Future.t
(** One bounded batch of the query, merged with buffered writes, with a
    continuation cursor for the next batch ([None] when exhausted). Adds a
    read conflict only over the span the batch actually observed (unless
    [rq_snapshot]). *)

val range_all : tx -> Range_query.t -> (string * string) list Fdb_sim.Future.t
(** Drain the query: loop batches, stitching continuations, until the
    range is exhausted or [rq_limit] rows are in hand. Non-snapshot
    queries conflict on the whole requested range up front. *)

val get_range :
  ?snapshot:bool ->
  ?limit:int ->
  ?reverse:bool ->
  ?mode:streaming_mode ->
  tx ->
  from:string ->
  until:string ->
  unit ->
  (string * string) list Fdb_sim.Future.t
(** Ordered range read of [\[from, until)], merged with buffered writes.
    Deprecated sugar for [range_all] over {!Range_query.keys}; prefer the
    unified API in new code. *)

val get_range_sel :
  ?snapshot:bool ->
  ?limit:int ->
  ?reverse:bool ->
  ?mode:streaming_mode ->
  tx ->
  from:Key_selector.t ->
  until:Key_selector.t ->
  unit ->
  (string * string) list Fdb_sim.Future.t
(** Range read between two key selectors, resolved at the storage servers
    against the MVCC window at the transaction's read version. Deprecated
    sugar for [range_all] over {!Range_query.create}. *)

(** {2 Streaming} *)

val get_range_stream :
  ?snapshot:bool ->
  ?reverse:bool ->
  ?mode:streaming_mode ->
  ?continuation:string ->
  tx ->
  from:string ->
  until:string ->
  unit ->
  batch Fdb_sim.Future.t
(** One bounded batch of [\[from, until)] with an explicit continuation
    cursor, so callers can stream arbitrarily large ranges at bounded
    memory. Each batch merges buffered writes and adds a read conflict
    only over the span it actually observed. Deprecated sugar for {!range}
    over {!Range_query.keys}. *)

val set : tx -> string -> string -> unit
val clear : tx -> string -> unit
val clear_range : tx -> from:string -> until:string -> unit

val atomic_op : tx -> Fdb_kv.Mutation.atomic_kind -> string -> string -> unit
(** [atomic_op tx kind key operand] — conflict-free read-modify-write
    (§2.6); adds a write conflict range but no read range. *)

val set_versionstamped_key : tx -> template:string -> offset:int -> value:string -> unit
(** [template] must contain 10 bytes at [offset] that the Proxy overwrites
    with the commit versionstamp (§2.6). *)

val set_versionstamped_value : tx -> key:string -> template:string -> offset:int -> unit

val add_read_conflict_range : tx -> from:string -> until:string -> unit
val add_write_conflict_range : tx -> from:string -> until:string -> unit
(** Manual conflict ranges: the fine-grained control the paper describes
    for relaxing or strengthening isolation. *)

val commit : tx -> Types.version Fdb_sim.Future.t
(** Commit; the version is the transaction's commit version (0 for
    read-only transactions). Fails with a typed {!Error.t}. Idempotent:
    repeated calls return the first outcome. A successful commit arms any
    {!watch}es the transaction created. *)

(** {2 Watches}

    A watch wakes a client when a key changes (paper §2.2: FDB watches).
    Created inside a transaction and armed only if that transaction
    commits, with watch version max(read version, commit version): the
    transaction's own write to the key does not wake it, and neither does
    anything it already observed. The client long-polls the key's storage
    team ({!Params.watch_poll_timeout} per round), re-registering across
    shard moves and failovers; the storage side checks its MVCC window at
    registration so changes landing between rounds are never lost. Wakes
    may be spurious (e.g. when no server can prove the key unchanged
    across a recovery) — waiters re-read and re-arm; wakes are never
    lost. *)

type watch

val watch : tx -> string -> watch
(** Create a watch on a key. Buffers until {!commit}: armed on success,
    cancelled (future fails with [Future.Cancelled]) on failure. *)

val watch_future : watch -> unit Fdb_sim.Future.t
(** Resolves when the watched key changes after the creating
    transaction's snapshot/commit (or conservatively, see above); fails
    with [Future.Cancelled] if the watch is cancelled. *)

val watch_key : watch -> string

val cancel_watch : watch -> unit
(** Resolve the watch future with [Future.Cancelled] (idempotent; no-op
    after the watch fired). The background poll loop winds down on its
    next round. Always cancel watches you stop waiting on. *)

val run :
  db ->
  ?max_attempts:int ->
  ?options:tx_options ->
  (tx -> 'a Fdb_sim.Future.t) ->
  'a Fdb_sim.Future.t
(** Standard retry loop: run the body, commit, and retry (with capped
    exponential backoff) on retryable errors. The body must be idempotent
    under retry, as in FDB. [options] is threaded into every attempt's
    transaction; [opt_retry_limit] overrides [max_attempts] and
    [opt_timeout] bounds the whole loop, failing with [Timed_out]. *)

val versionstamp_placeholder : string
(** Ten zero bytes to embed where the stamp should land. *)
