(* The DataDistributor (paper §2.3.1, §2.5): storage health monitoring plus
   active data distribution — splitting hot/large shards, merging cold
   adjacent ones, and moving shards between teams with fetch-then-cutover.

   The movement protocol:
   1. [Shard_map.begin_move] marks the shard: every mutation committed from
      now on is dual-tagged to the source AND destination teams, so the
      newcomers' own tLog tag streams carry the catch-up suffix.
   2. A write-only no-op *marker transaction* is committed; its commit
      version L* strictly exceeds every LSN assigned before the move began
      (proxies tag mutations after LSN assignment, so anything tagged
      source-only has a smaller LSN). We then poll GRVs until one reports
      >= L*: that version Vf is committed, recovery-stable, and covers the
      whole single-tagged prefix — a snapshot at Vf plus the dual-tagged
      stream above Vf reconstructs the shard exactly.
   3. Each newcomer fetches [lo, hi) at Vf from the current team
      ([Ss_fetch_shard]) and installs it under a movein floor.
   4. [Shard_map.commit_move] flips the serving team in one synchronous map
      mutation: no read ever observes a half-moved shard. Stale clients
      learn via Wrong_shard; readers below Vf get Transaction_too_old
      (retryable).
   Failure at any step aborts the move ([Shard_map.abort_move]); a
   reconciliation pass also aborts moves pending longer than
   [Params.dd_move_timeout] (the mover died mid-fetch). *)

open Fdb_sim
open Future.Syntax
module Det_tbl = Fdb_util.Det_tbl
module Registry = Fdb_obs.Registry

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  db : Client.db;
  alive_ss : bool array;
  mutable unhealthy : int;
  mutable zero_replica : bool;
  mutable running : bool;
  min_shards : int; (* never merge below the initial shard count *)
  prev_traffic : (string, int) Det_tbl.t; (* last counter sample, per ss/shard *)
  obs_unhealthy : Registry.gauge;
  obs_loss_risk : Registry.gauge;
  obs_splits : Registry.counter;
  obs_merges : Registry.counter;
  obs_moves : Registry.counter;
  obs_aborts : Registry.counter;
}

let unhealthy_teams t = t.unhealthy
let data_loss_risk t = t.zero_replica

(* ---------- health monitoring ---------- *)

let probe t =
  let checks =
    Array.to_list
      (Array.mapi
         (fun i ep ->
           Future.catch
             (fun () ->
               let* reply =
                 Context.rpc t.ctx ~timeout:1.0 ~from:t.proc ep Message.Ss_stats_req
               in
               match reply with
               | Message.Ss_stats _ -> Future.return (i, true)
               | _ -> Future.return (i, false))
             (fun _ -> Future.return (i, false)))
         t.ctx.Context.storage_eps)
  in
  let* results = Future.all checks in
  List.iter (fun (i, ok) -> t.alive_ss.(i) <- ok) results;
  let teams = Shard_map.tag_teams t.ctx.Context.shard_map in
  let unhealthy = ref 0 and zero = ref false in
  Array.iter
    (fun team ->
      let live = List.length (List.filter (fun ss -> t.alive_ss.(ss)) team) in
      if live < List.length team then incr unhealthy;
      if live = 0 then zero := true)
    teams;
  if !unhealthy <> t.unhealthy || !zero <> t.zero_replica then
    Trace.emit "dd_team_health"
      [ ("unhealthy", string_of_int !unhealthy); ("zero_replica", string_of_bool !zero) ];
  t.unhealthy <- !unhealthy;
  t.zero_replica <- !zero;
  Registry.set_gauge t.obs_unhealthy (float_of_int !unhealthy);
  Registry.set_gauge t.obs_loss_risk (if !zero then 1.0 else 0.0);
  Future.return ()

let monitor_loop t =
  let rec loop () =
    if not t.running then Future.return ()
    else
      let* () = Engine.sleep 1.0 in
      let* () = probe t in
      loop ()
  in
  loop ()

(* ---------- shard movement ---------- *)

(* User-space key the marker transaction writes. Write-only, so it can
   never conflict; idempotent, so unknown-result retries are safe. *)
let move_marker_key = "\xfe/dd/move-marker"

let rec marker_commit db attempts =
  if attempts = 0 then Future.return None
  else begin
    let tx = Client.begin_tx db in
    Client.set tx move_marker_key "";
    Future.catch
      (fun () ->
        let* cv = Client.commit tx in
        Future.return (Some cv))
      (fun _ ->
        let* () = Engine.sleep 0.1 in
        marker_commit db (attempts - 1))
  end

(* Poll read versions until one at or above [cv]: that GRV is committed and
   survives recovery, so a snapshot fetched at it is phantom-free. *)
let rec readable_version db cv attempts =
  if attempts = 0 then Future.return None
  else
    Future.catch
      (fun () ->
        let tx = Client.begin_tx db in
        let* v, epoch = Client.read_snapshot tx in
        if v >= cv then Future.return (Some (v, epoch))
        else
          let* () = Engine.sleep 0.05 in
          readable_version db cv (attempts - 1))
      (fun _ ->
        let* () = Engine.sleep 0.2 in
        readable_version db cv (attempts - 1))

(* Standalone so the swarm's mover job can fire moves without a DD handle.
   Sequencing: begin_move (dual-tagging on) -> marker txn -> readable
   snapshot version -> parallel newcomer fetches -> commit_move (or abort on
   any failure). *)
let move_shard ctx ~proc ~db ~lo ~dst =
  let map = ctx.Context.shard_map in
  match Shard_map.begin_move map ~lo ~dst with
  | Error e -> Future.return (Error e)
  | Ok (lo, hi, src_team) ->
      let newcomers = List.filter (fun ss -> not (List.mem ss src_team)) dst in
      let abort reason =
        (match Shard_map.abort_move map ~lo with
        | Ok () -> Trace.emit "dd_move_aborted" [ ("lo", String.escaped lo); ("reason", reason) ]
        | Error _ -> () (* a reconciliation pass beat us to it *));
        Future.return (Error reason)
      in
      let commit () =
        match Shard_map.commit_move map ~lo ~dst with
        | Ok () ->
            Trace.emit "dd_move_committed"
              [ ("lo", String.escaped lo); ("hi", String.escaped hi);
                ("dst", String.concat "," (List.map string_of_int dst)) ];
            Future.return (Ok ())
        | Error e -> Future.return (Error e)
      in
      if newcomers = [] then commit () (* pure shrink/permute: data already placed *)
      else
        let* cv = marker_commit db 5 in
        (match cv with
        | None -> abort "marker transaction failed"
        | Some cv -> (
            let* snap = readable_version db cv 100 in
            match snap with
            | None -> abort "snapshot version never became readable"
            | Some (version, epoch) ->
                let* acks =
                  Future.all
                    (List.map
                       (fun ss ->
                         Future.catch
                           (fun () ->
                             let* reply =
                               Context.rpc ctx ~timeout:20.0 ~from:proc
                                 ctx.Context.storage_eps.(ss)
                                 (Message.Ss_fetch_shard
                                    {
                                      fs_from = lo;
                                      fs_until = hi;
                                      fs_version = version;
                                      fs_epoch = epoch;
                                      fs_sources = src_team;
                                    })
                             in
                             match reply with
                             | Message.Ss_fetch_ack _ -> Future.return true
                             | _ -> Future.return false)
                           (fun _ -> Future.return false))
                       newcomers)
                in
                if List.for_all (fun ok -> ok) acks then commit ()
                else abort "newcomer fetch failed"))

(* ---------- rebalancing (splits, merges, moves under skew) ---------- *)

let hex_of_key k =
  String.concat "" (List.init (String.length k) (fun i -> Printf.sprintf "%02x" (Char.code k.[i])))

(* Read+write byte delta for [ss]'s copy of the shard at [lo] since the
   last sample (per-shard counters are published by the storage servers). *)
let traffic_delta t ss lo =
  let hex = hex_of_key lo in
  let cur =
    Registry.counter_value t.ctx.Context.metrics ~role:Registry.Storage ~process:ss
      (Printf.sprintf "shard_read_bytes:%s" hex)
    + Registry.counter_value t.ctx.Context.metrics ~role:Registry.Storage ~process:ss
        (Printf.sprintf "shard_write_bytes:%s" hex)
  in
  let key = Printf.sprintf "%d/%s" ss hex in
  let prev = Option.value ~default:0 (Det_tbl.find_opt t.prev_traffic key) in
  Det_tbl.replace t.prev_traffic key cur;
  max 0 (cur - prev)

let shard_size t team lo =
  List.fold_left
    (fun acc ss ->
      match
        Registry.gauge_value t.ctx.Context.metrics ~role:Registry.Storage ~process:ss
          (Printf.sprintf "shard_size_bytes:%s" (hex_of_key lo))
      with
      | Some v -> max acc (int_of_float v)
      | None -> acc)
    0 team

let split_point t team ~from ~until =
  let rec ask = function
    | [] -> Future.return None
    | ss :: rest ->
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc t.ctx ~timeout:2.0 ~from:t.proc t.ctx.Context.storage_eps.(ss)
                (Message.Ss_split_point { spl_from = from; spl_until = until })
            in
            match reply with
            | Message.Ss_split_point_reply { spl_key = Some k } -> Future.return (Some k)
            | _ -> ask rest)
          (fun _ -> ask rest)
  in
  ask team

let machine_of t ss = ss / t.ctx.Context.config.Config.storage_per_machine

(* One rebalance pass. Deterministic: all scans are in array-index or
   key-sorted order, ties resolve to the lowest index. At most one split,
   one merge, and one move per pass keeps the schedule easy to reason about
   (and keeps the double-run checksum oracle meaningful). *)
let rebalance_tick t =
  let map = t.ctx.Context.shard_map in
  let interval = !Params.dd_rebalance_interval in
  (* Reconcile: abort moves whose mover evidently died. *)
  List.iter
    (fun (lo, _, _, started) ->
      if Engine.now () -. started > Params.dd_move_timeout then
        match Shard_map.abort_move map ~lo with
        | Ok () ->
            Registry.incr t.obs_aborts;
            Trace.emit "dd_move_reconciled" [ ("lo", String.escaped lo) ]
        | Error _ -> ())
    (Shard_map.pending_moves map);
  let ranges = Shard_map.ranges map in
  let teams = Shard_map.tag_teams map in
  let n = Array.length ranges in
  let moving lo =
    List.exists (fun (mlo, _, _, _) -> mlo = lo) (Shard_map.pending_moves map)
  in
  (* Sample per-shard traffic once per tick (the delta consumes the sample,
     so every decision below reuses these numbers). *)
  let traffic = Array.make n 0 in
  let sizes = Array.make n 0 in
  for i = 0 to n - 1 do
    let lo, _ = ranges.(i) in
    traffic.(i) <-
      List.fold_left (fun acc ss -> acc + traffic_delta t ss lo) 0 teams.(i);
    sizes.(i) <- shard_size t teams.(i) lo
  done;
  let bandwidth i = float_of_int traffic.(i) /. interval in
  let user_space i = fst ranges.(i) < Types.key_space_end in
  (* Split: the first user-space shard over a threshold. *)
  let* () =
    let candidate = ref None in
    for i = n - 1 downto 0 do
      if
        user_space i && (not (moving (fst ranges.(i))))
        && (sizes.(i) > !Params.dd_split_bytes || bandwidth i > !Params.dd_split_bandwidth)
      then candidate := Some i
    done;
    match !candidate with
    | None -> Future.return ()
    | Some i ->
        let lo, hi = ranges.(i) in
        let until = if hi < Types.key_space_end then hi else Types.key_space_end in
        let* at = split_point t teams.(i) ~from:lo ~until in
        (match at with
        | Some at -> (
            (* fdb-lint: allow R5 -- Context.t is immutable: map is a stable handle; every Shard_map operation re-reads its contents *)
            match Shard_map.split map ~at with
            | Ok () ->
                Registry.incr t.obs_splits;
                Trace.emit "dd_shard_split"
                  [ ("at", String.escaped at);
                    ("size", string_of_int sizes.(i));
                    ("bw", Printf.sprintf "%.0f" (bandwidth i)) ]
            | Error _ -> ())
        | None -> ());
        Future.return ()
  in
  (* Merge: the first cold adjacent same-team pair, while staying at or
     above the deployment's initial shard count. *)
  if Shard_map.shard_count map > t.min_shards then begin
    let candidate = ref None in
    for i = n - 2 downto 0 do
      if
        user_space i && user_space (i + 1)
        && List.sort compare teams.(i) = List.sort compare teams.(i + 1)
        && (not (moving (fst ranges.(i))))
        && (not (moving (fst ranges.(i + 1))))
        && sizes.(i) < !Params.dd_merge_bytes
        && sizes.(i + 1) < !Params.dd_merge_bytes
        && traffic.(i) + traffic.(i + 1) = 0
      then candidate := Some i
    done;
    match !candidate with
    | None -> ()
    | Some i -> (
        match Shard_map.merge_at map ~lo:(fst ranges.(i)) with
        | Ok () ->
            Registry.incr t.obs_merges;
            Trace.emit "dd_shard_merged" [ ("lo", String.escaped (fst ranges.(i))) ]
        | Error _ -> ())
  end;
  (* Move: when the hottest server carries dd_imbalance_ratio x the coldest
     server's load, swap it out of its hottest shard's team for the coldest
     server (single-replica swap: only the newcomer fetches). *)
  let n_ss = Array.length t.ctx.Context.storage_eps in
  let load = Array.make n_ss 0 in
  for i = 0 to n - 1 do
    List.iter (fun ss -> load.(ss) <- load.(ss) + traffic.(i)) teams.(i)
  done;
  let hot = ref 0 and cold = ref 0 in
  for ss = 1 to n_ss - 1 do
    if load.(ss) > load.(!hot) then hot := ss;
    if load.(ss) < load.(!cold) then cold := ss
  done;
  if
    Shard_map.pending_moves map = []
    && float_of_int load.(!hot)
       > !Params.dd_imbalance_ratio *. float_of_int (max load.(!cold) 1)
    && load.(!hot) > 0
  then begin
    (* Hottest user-space shard served by the hot server whose team lacks
       the cold server and whose machine-disjointness survives the swap. *)
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if
        user_space i
        && List.mem !hot teams.(i)
        && (not (List.mem !cold teams.(i)))
        && (not (moving (fst ranges.(i))))
        && (!best < 0 || traffic.(i) >= traffic.(!best))
      then best := i
    done;
    if !best >= 0 then begin
      let i = !best in
      let rest = List.filter (fun ss -> ss <> !hot) teams.(i) in
      let dst = List.sort compare (!cold :: rest) in
      let machines = List.map (machine_of t) dst in
      if List.length (List.sort_uniq compare machines) = List.length machines then begin
        Trace.emit "dd_move_started"
          [ ("lo", String.escaped (fst ranges.(i)));
            ("hot", string_of_int !hot); ("cold", string_of_int !cold) ];
        let* r = move_shard t.ctx ~proc:t.proc ~db:t.db ~lo:(fst ranges.(i)) ~dst in
        (match r with
        | Ok () -> Registry.incr t.obs_moves
        | Error _ -> Registry.incr t.obs_aborts);
        Future.return ()
      end
      else Future.return ()
    end
    else Future.return ()
  end
  else Future.return ()

let rebalance_loop t =
  let rec loop () =
    if not t.running then Future.return ()
    else
      let* () = Engine.sleep !Params.dd_rebalance_interval in
      let* () =
        if !Params.dd_movement_enabled then
          Future.catch
            (fun () -> rebalance_tick t)
            (fun exn ->
              Trace.emit "dd_rebalance_error" [ ("exn", Printexc.to_string exn) ];
              Future.return ())
        else Future.return ()
      in
      loop ()
  in
  loop ()

let handle _t (msg : Message.t) : Message.t Future.t =
  match msg with
  | Message.Seq_ping -> Future.return Message.Ok_reply
  | _ -> Future.return (Message.Reject (Error.Internal "dd: unexpected message"))

let create ctx proc =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let metrics = ctx.Context.metrics in
  let role = Registry.Data_distributor in
  let t =
    {
      ctx;
      proc;
      ep;
      db = Client.create_db ctx proc;
      alive_ss = Array.make (Array.length ctx.Context.storage_eps) true;
      unhealthy = 0;
      zero_replica = false;
      running = true;
      min_shards = Shard_map.shard_count ctx.Context.shard_map;
      prev_traffic = Det_tbl.create ~size:64 ();
      obs_unhealthy = Registry.gauge metrics ~role ~process:0 "unhealthy_teams";
      obs_loss_risk = Registry.gauge metrics ~role ~process:0 "data_loss_risk";
      obs_splits = Registry.counter metrics ~role ~process:0 "shards_split";
      obs_merges = Registry.counter metrics ~role ~process:0 "shards_merged";
      obs_moves = Registry.counter metrics ~role ~process:0 "moves_committed";
      obs_aborts = Registry.counter metrics ~role ~process:0 "moves_aborted";
    }
  in
  Registry.set_gauge t.obs_unhealthy 0.0;
  Registry.set_gauge t.obs_loss_risk 0.0;
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "data-distributor" (fun () -> monitor_loop t);
  Engine.spawn ~process:proc "dd-rebalance" (fun () -> rebalance_loop t);
  (t, ep)
