open Fdb_sim
open Future.Syntax

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  alive_ss : bool array;
  mutable unhealthy : int;
  mutable zero_replica : bool;
  mutable running : bool;
}

let unhealthy_teams t = t.unhealthy
let data_loss_risk t = t.zero_replica

let probe t =
  let checks =
    Array.to_list
      (Array.mapi
         (fun i ep ->
           Future.catch
             (fun () ->
               let* reply =
                 Context.rpc t.ctx ~timeout:1.0 ~from:t.proc ep Message.Ss_stats_req
               in
               match reply with
               | Message.Ss_stats _ -> Future.return (i, true)
               | _ -> Future.return (i, false))
             (fun _ -> Future.return (i, false)))
         t.ctx.Context.storage_eps)
  in
  let* results = Future.all checks in
  List.iter (fun (i, ok) -> t.alive_ss.(i) <- ok) results;
  let teams = Shard_map.tag_teams t.ctx.Context.shard_map in
  let unhealthy = ref 0 and zero = ref false in
  Array.iter
    (fun team ->
      let live = List.length (List.filter (fun ss -> t.alive_ss.(ss)) team) in
      if live < List.length team then incr unhealthy;
      if live = 0 then zero := true)
    teams;
  if !unhealthy <> t.unhealthy || !zero <> t.zero_replica then
    Trace.emit "dd_team_health"
      [ ("unhealthy", string_of_int !unhealthy); ("zero_replica", string_of_bool !zero) ];
  t.unhealthy <- !unhealthy;
  t.zero_replica <- !zero;
  Future.return ()

let monitor_loop t =
  let rec loop () =
    if not t.running then Future.return ()
    else
      let* () = Engine.sleep 1.0 in
      let* () = probe t in
      loop ()
  in
  loop ()

let handle _t (msg : Message.t) : Message.t Future.t =
  match msg with
  | Message.Seq_ping -> Future.return Message.Ok_reply
  | _ -> Future.return (Message.Reject (Error.Internal "dd: unexpected message"))

let create ctx proc =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let t =
    {
      ctx;
      proc;
      ep;
      alive_ss = Array.make (Array.length ctx.Context.storage_eps) true;
      unhealthy = 0;
      zero_replica = false;
      running = true;
    }
  in
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "data-distributor" (fun () -> monitor_loop t);
  (t, ep)
