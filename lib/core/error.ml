type t =
  | Not_committed
  | Commit_unknown_result
  | Transaction_too_old
  | Future_version
  | Process_behind
  | Wrong_shard
  | Timed_out
  | Database_locked
  | Key_too_large
  | Value_too_large
  | Transaction_too_large
  | Key_outside_legal_range
  | Used_during_commit
  | Wrong_epoch
  | Internal of string

exception Fdb of t

let fail e = Fdb_sim.Future.fail (Fdb e)

let is_retryable = function
  | Not_committed | Commit_unknown_result | Transaction_too_old | Future_version
  | Process_behind | Wrong_shard | Timed_out | Database_locked ->
      true
  | Key_too_large | Value_too_large | Transaction_too_large | Key_outside_legal_range
  | Used_during_commit | Wrong_epoch | Internal _ ->
      false

let to_string = function
  | Not_committed -> "not_committed"
  | Commit_unknown_result -> "commit_unknown_result"
  | Transaction_too_old -> "transaction_too_old"
  | Future_version -> "future_version"
  | Process_behind -> "process_behind"
  | Wrong_shard -> "wrong_shard"
  | Timed_out -> "timed_out"
  | Database_locked -> "database_locked"
  | Key_too_large -> "key_too_large"
  | Value_too_large -> "value_too_large"
  | Transaction_too_large -> "transaction_too_large"
  | Key_outside_legal_range -> "key_outside_legal_range"
  | Used_during_commit -> "used_during_commit"
  | Wrong_epoch -> "wrong_epoch"
  | Internal s -> "internal: " ^ s

let pp fmt e = Format.pp_print_string fmt (to_string e)
