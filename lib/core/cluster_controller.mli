(** The ClusterController: elected singleton that recruits and supervises
    the other singletons (paper §2.3.1).

    Runs inside the worker that won the coordinator election. Recruits a
    Ratekeeper, a DataDistributor and a Sequencer; monitors the Sequencer
    with heartbeats and recruits a replacement (triggering a §2.4.4
    recovery) when it dies. Also answers [Cc_get_state] so clients can find
    the current proxies. *)

type t

val start : Context.t -> Fdb_sim.Process.t -> t
(** Begin supervising (call on winning the election). *)

val stop : t -> unit
(** Step down (lease lost). *)

val state_reply : t -> Message.t
(** Current [Cc_state] snapshot for clients. *)

val is_recovered : t -> bool
