open Fdb_sim
open Future.Syntax

type t = {
  ctx : Context.t;
  proc : Process.t;
  mutable active : bool;
  mutable rk : int option;
  mutable dd : int option;
  mutable seq : int option;
  mutable pick : int; (* rotating worker choice *)
  (* last state learned from the sequencer *)
  mutable epoch : Types.epoch;
  mutable proxies : int list;
  mutable logs : (int * int) list;
  mutable rv : Types.version;
  mutable recovered : bool;
}

let is_recovered t = t.recovered

let state_reply t =
  Message.Cc_state
    {
      st_epoch = t.epoch;
      st_proxies = t.proxies;
      st_logs = t.logs;
      st_recovery_version = t.rv;
      st_recovered = t.recovered;
      st_dd = t.dd;
    }

(* Ask workers round-robin until one hosts the role. *)
let recruit t msg =
  let machines = Array.length t.ctx.Context.worker_eps in
  let rec attempt tries =
    if tries >= machines then Future.return None
    else begin
      t.pick <- (t.pick + 1) mod machines;
      Future.catch
        (fun () ->
          let* reply =
            Context.rpc t.ctx ~timeout:1.0 ~from:t.proc
              t.ctx.Context.worker_eps.(t.pick) msg
          in
          match reply with
          | Message.Recruited { endpoint } -> Future.return (Some endpoint)
          | _ -> attempt (tries + 1))
        (fun _ -> attempt (tries + 1))
    end
  in
  attempt 0

let ping t ep =
  Future.catch
    (fun () ->
      let* reply =
        Context.rpc t.ctx ~timeout:Params.heartbeat_timeout ~from:t.proc ep
          Message.Seq_ping
      in
      match reply with
      | Message.Ok_reply -> Future.return `Alive
      | Message.Seq_pong { sp_epoch; sp_recovered; sp_proxies; sp_logs; sp_rv } ->
          t.epoch <- sp_epoch;
          t.recovered <- sp_recovered;
          t.proxies <- sp_proxies;
          t.logs <- sp_logs;
          t.rv <- sp_rv;
          Future.return `Alive
      | _ -> Future.return `Dead)
    (fun _ -> Future.return `Dead)

let ensure_singleton t current msg set =
  match current with
  | Some ep ->
      let* status = ping t ep in
      (match status with
      | `Alive -> Future.return ()
      | `Dead ->
          set None;
          Future.return ())
  | None ->
      let* ep = recruit t msg in
      set ep;
      Future.return ()

let supervise t =
  let rec loop () =
    if not t.active then Future.return ()
    else
      let* () = Engine.sleep Params.heartbeat_interval in
      let* () =
        ensure_singleton t t.rk Message.Recruit_ratekeeper (fun e -> t.rk <- e)
      in
      let* () =
        ensure_singleton t t.dd Message.Recruit_data_distributor (fun e -> t.dd <- e)
      in
      let* () =
        match t.seq with
        | Some ep ->
            let* status = ping t ep in
            (match status with
            | `Alive -> Future.return ()
            | `Dead ->
                Trace.emit "cc_sequencer_failed" [ ("epoch", string_of_int t.epoch) ];
                (* fdb-lint: allow R5 -- single-writer: only this monitor loop mutates t.seq *)
                t.seq <- None;
                t.recovered <- false;
                Future.return ())
        | None ->
            if t.rk = None then Future.return ()
            else
              let* ep =
                recruit t (Message.Recruit_sequencer { rs_ratekeeper = t.rk })
              in
              (match ep with
              | Some _ -> Trace.emit "cc_sequencer_recruited" []
              | None -> ());
              (* fdb-lint: allow R5 -- single-writer: only this monitor loop mutates t.seq *)
              t.seq <- ep;
              Future.return ()
      in
      loop ()
  in
  loop ()

let start ctx proc =
  let t =
    {
      ctx;
      proc;
      active = true;
      rk = None;
      dd = None;
      seq = None;
      pick = proc.Process.machine.Process.machine_id;
      epoch = 0;
      proxies = [];
      logs = [];
      rv = 0L;
      recovered = false;
    }
  in
  Trace.emit "cc_elected"
    [ ("machine", string_of_int proc.Process.machine.Process.machine_id) ];
  Engine.spawn ~process:proc "cluster-controller" (fun () -> supervise t);
  t

let stop t =
  t.active <- false;
  Trace.emit "cc_deposed"
    [ ("machine", string_of_int t.proc.Process.machine.Process.machine_id) ]
