open Fdb_sim
open Future.Syntax
module Det_tbl = Fdb_util.Det_tbl

type meta = {
  m_epoch : Types.epoch;
  m_id : int;
  m_start_lsn : Types.version;
  m_endpoint : int;
}

type t = {
  ctx : Context.t;
  mutable proc : Process.t;
  ep : int;
  epoch : Types.epoch;
  id : int;
  disk : Disk.t;
  wal : string;
  floor_file : string;
  start_lsn : Types.version;
  mutable floor : Types.version; (* highest pruned LSN; chain resumes here *)
  mutable stopped : bool;
  mutable dv : Types.version; (* durable, chain-contiguous *)
  mutable rcv : Types.version; (* received, chain-contiguous *)
  mutable kcv : Types.version;
  (* All entries by LSN (seeds + pushes); enumerated during prune and
     recovery hand-off, so iteration order must be LSN-defined. *)
  entries : (Types.version, Message.log_entry) Det_tbl.t;
  (* Chain index: prev LSN -> entry LSN (point lookups only). *)
  next : (Types.version, Types.version) Hashtbl.t;
  (* Pushes that arrived before their predecessor, keyed by the missing
     prev LSN, with the reply promise their push RPC is blocked on. With a
     pipelined proxy this is a hot path: batch N+1's push routinely lands
     while batch N is still on the wire. *)
  pending : (Types.version, Message.log_entry * Message.t Future.promise) Det_tbl.t;
  (* Per-tag unpopped payload, oldest first (reversed storage). *)
  per_tag : (Types.tag, (Types.version * Fdb_kv.Mutation.t list) list ref) Hashtbl.t;
  pop_floor : (Types.tag, Types.version) Det_tbl.t;
  (* Records appended to disk but not yet synced, with their promises. *)
  mutable waiting_sync : (Types.version * unit Future.promise) list;
  mutable sync_scheduled : bool;
  mutable unpopped_bytes : int;
  (* metrics plane *)
  obs_append_lat : Fdb_obs.Registry.timer;
  obs_pushes : Fdb_obs.Registry.counter;
  obs_dv : Fdb_obs.Registry.gauge;
  obs_rcv : Fdb_obs.Registry.gauge;
  obs_unpopped : Fdb_obs.Registry.gauge;
}

let durable_version t = t.dv
let known_committed t = t.kcv
let is_stopped t = t.stopped
let unpopped_bytes t = t.unpopped_bytes

(* Per-generation file name: one machine's log disk may host LogServers
   of several epochs (old stopped ones await recovery hand-off). *)
let wal_file ~epoch ~id = Printf.sprintf "tlog-%d-%d.wal" epoch id
let floor_file_name ~epoch ~id = Printf.sprintf "tlog-%d-%d.floor" epoch id

let entry_bytes (e : Message.log_entry) =
  List.fold_left
    (fun acc (_, muts) ->
      List.fold_left (fun a m -> a + Fdb_kv.Mutation.byte_size m) acc muts)
    0 e.Message.le_payload

let index_payload t (e : Message.log_entry) =
  List.iter
    (fun (tag, muts) ->
      if muts <> [] then begin
        let l =
          match Hashtbl.find_opt t.per_tag tag with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add t.per_tag tag l;
              l
        in
        l := (e.Message.le_lsn, muts) :: !l
      end)
    e.Message.le_payload;
  t.unpopped_bytes <- t.unpopped_bytes + entry_bytes e

(* Group-commit: one sync covers every record appended before it. *)
let rec schedule_sync t =
  if not t.sync_scheduled then begin
    t.sync_scheduled <- true;
    let extra = Buggify.delay ~p:0.03 "tlog_slow_sync" /. 10.0 in
    Engine.schedule ~after:(5e-4 +. extra) ~process:t.proc (fun () ->
        t.sync_scheduled <- false;
        let batch = List.rev t.waiting_sync in
        t.waiting_sync <- [];
        if batch <> [] then
          Engine.spawn ~process:t.proc "tlog-sync" (fun () ->
              let* () = Disk.sync t.disk t.wal in
              List.iter
                (fun (lsn, promise) ->
                  if lsn > t.dv then t.dv <- lsn;
                  (* A false fulfil would lose a durability ack: trace it. *)
                  if not (Future.try_fulfill promise ()) then
                    Trace.emit "tlog_sync_ack_lost"
                      [ ("lsn", Int64.to_string lsn) ])
                batch;
              if t.waiting_sync <> [] then schedule_sync t;
              Future.return ()))
  end

let persist_entry t (e : Message.log_entry) =
  let t0 = Engine.now () in
  let record = Marshal.to_string (e : Message.log_entry) [] in
  let* () = Disk.append t.disk t.wal record in
  let fut, promise = Future.make ~label:"tlog.sync_wait" () in
  t.waiting_sync <- (e.Message.le_lsn, promise) :: t.waiting_sync;
  schedule_sync t;
  Future.map fut (fun () ->
      Fdb_obs.Registry.observe t.obs_append_lat (Engine.now () -. t0);
      Fdb_obs.Registry.set_gauge t.obs_dv (Int64.to_float t.dv))

(* Accept an in-chain-order record: index it, persist it, and return the
   durability future. Then drain any pending successors. *)
let rec accept t (e : Message.log_entry) =
  Det_tbl.replace t.entries e.Message.le_lsn e;
  Hashtbl.replace t.next e.Message.le_prev e.Message.le_lsn;
  t.rcv <- e.Message.le_lsn;
  if e.Message.le_kcv > t.kcv then t.kcv <- e.Message.le_kcv;
  index_payload t e;
  Fdb_obs.Registry.incr t.obs_pushes;
  Fdb_obs.Registry.set_gauge t.obs_rcv (Int64.to_float t.rcv);
  Fdb_obs.Registry.set_gauge t.obs_unpopped (float_of_int t.unpopped_bytes);
  let durable = persist_entry t e in
  (match Det_tbl.find_opt t.pending e.Message.le_lsn with
  | Some (successor, promise) ->
      Det_tbl.remove t.pending e.Message.le_lsn;
      (* Unpark the successor: its push RPC replies once its own record is
         durable (the group-commit sync covers both appends). *)
      let succ_durable = accept t successor in
      Future.on_resolve succ_durable (fun _ ->
          if
            not
              (Future.try_fulfill promise
                 (Message.Log_push_ack { durable_version = t.dv }))
          then
            Trace.emit "tlog_parked_ack_lost"
              [ ("lsn", Int64.to_string successor.Message.le_lsn) ])
  | None -> ());
  durable

let tag_entries t tag ~from_version =
  let floor = Option.value (Det_tbl.find_opt t.pop_floor tag) ~default:Int64.min_int in
  match Hashtbl.find_opt t.per_tag tag with
  | None -> []
  | Some l ->
      List.filter (fun (v, _) -> v >= from_version && v > floor) !l
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let do_pop t tag up_to =
  let old_floor = Option.value (Det_tbl.find_opt t.pop_floor tag) ~default:Int64.min_int in
  if up_to > old_floor then begin
    Det_tbl.replace t.pop_floor tag up_to;
    match Hashtbl.find_opt t.per_tag tag with
    | None -> ()
    | Some l ->
        let kept, dropped = List.partition (fun (v, _) -> v > up_to) !l in
        l := kept;
        List.iter
          (fun (_, muts) ->
            List.iter
              (fun m -> t.unpopped_bytes <- t.unpopped_bytes - Fdb_kv.Mutation.byte_size m)
              muts)
          dropped
  end

(* Discard fully-popped entries (the paper's log GC): an entry is dead once
   every tag this server has seen traffic for has popped past it. The new
   chain floor is made durable BEFORE records are dropped — otherwise a
   rebooted server would understate its durable version and drag the next
   recovery's RV below acknowledged commits. *)
let prune t =
  if Det_tbl.length t.pop_floor > 0 then begin
    let global_floor =
      Det_tbl.fold (fun _ v acc -> min v acc) t.pop_floor Int64.max_int
    in
    let doomed =
      Det_tbl.fold
        (fun lsn (e : Message.log_entry) acc ->
          let unpopped =
            List.exists
              (fun (tag, muts) ->
                muts <> []
                && lsn > Option.value (Det_tbl.find_opt t.pop_floor tag) ~default:Int64.min_int)
              e.Message.le_payload
          in
          if lsn <= global_floor && not unpopped then lsn :: acc else acc)
        t.entries []
    in
    if doomed = [] then Future.return ()
    else begin
      let new_floor = List.fold_left max t.floor doomed in
      let* () =
        Disk.write_file t.disk t.floor_file (Types.version_to_bytes new_floor)
      in
      let* () = Disk.sync t.disk t.floor_file in
      (* Monotone re-read after the disk yields (rule R5): never let a
         slow cleanup regress a floor a faster one already advanced. *)
      if new_floor > t.floor then t.floor <- new_floor;
      List.iter
        (fun lsn ->
          (match Det_tbl.find_opt t.entries lsn with
          | Some e -> Hashtbl.remove t.next e.Message.le_prev
          | None -> ());
          Det_tbl.remove t.entries lsn)
        doomed;
      (* Dead entries are a prefix of the WAL (appends are chain-ordered),
         so rotate them out of the simulated disk as well. *)
      Disk.drop_prefix t.disk t.wal (List.length doomed);
      Future.return ()
    end
  end
  else Future.return ()

let prune_loop t =
  let rec loop () =
    let* () = Engine.sleep 2.0 in
    if t.stopped then Future.return ()
    else
      let* () = prune t in
      loop ()
  in
  loop ()

(* Everything not yet popped and already durable, for recovery hand-off. *)
(* Det_tbl.fold ascending + cons yields a descending-LSN list, as before
   (recovery re-sorts after merging across servers). *)
let unpopped_durable_entries t =
  Det_tbl.fold
    (fun lsn (e : Message.log_entry) acc ->
      if lsn > t.dv then acc
      else begin
        let payload =
          List.filter
            (fun (tag, muts) ->
              muts <> []
              && lsn > Option.value (Det_tbl.find_opt t.pop_floor tag) ~default:Int64.min_int)
            e.Message.le_payload
        in
        if payload = [] then acc else { e with Message.le_payload = payload } :: acc
      end)
    t.entries []

let handle t (msg : Message.t) : Message.t Future.t =
  match msg with
  | Message.Seq_ping ->
      if t.stopped then Future.return (Message.Reject Error.Wrong_epoch)
      else Future.return Message.Ok_reply
  | Message.Log_push { lp_epoch; lp_entry } ->
      if t.stopped || lp_epoch <> t.epoch then
        Future.return (Message.Reject Error.Wrong_epoch)
      else if Det_tbl.mem t.entries lp_entry.Message.le_lsn then
        (* Duplicate push: wait for durability of what we already have. *)
        if t.dv >= lp_entry.Message.le_lsn then
          Future.return (Message.Log_push_ack { durable_version = t.dv })
        else
          let fut, promise = Future.make ~label:"tlog.sync_wait" () in
          t.waiting_sync <- (lp_entry.Message.le_lsn, promise) :: t.waiting_sync;
          schedule_sync t;
          Future.map fut (fun () -> Message.Log_push_ack { durable_version = t.dv })
      else begin
        let* () =
          Engine.cpu t.proc
            (Params.log_per_push
            +. Params.cpu (Params.log_per_byte *. float_of_int (entry_bytes lp_entry)))
        in
        if lp_entry.Message.le_prev = t.rcv then
          let* () = accept t lp_entry in
          Future.return (Message.Log_push_ack { durable_version = t.dv })
        else if lp_entry.Message.le_prev > t.rcv then begin
          (* Out of order: park with our reply promise; [accept] of the
             predecessor fulfills it once this record is durable in order,
             and [Log_lock] fails it if the epoch ends first. (Replaces a
             1ms polling loop — with the pipelined proxy parking is the
             common case, not a rarity.) *)
          if Det_tbl.mem t.pending lp_entry.Message.le_prev then begin
            (* A parked promise must never be silently overwritten (lost
               wakeup); a second push on the same prev slot only happens on
               duplicated traffic, which may safely fail. *)
            Trace.emit "tlog_park_dup"
              [ ("lsn", Int64.to_string lp_entry.Message.le_lsn) ];
            Future.return (Message.Reject (Error.Internal "tlog: park slot taken"))
          end
          else begin
            let fut, promise = Future.make ~label:"tlog.park" () in
            Det_tbl.replace t.pending lp_entry.Message.le_prev (lp_entry, promise);
            Trace.emit "tlog_park"
              [ ("lsn", Int64.to_string lp_entry.Message.le_lsn);
                ("prev", Int64.to_string lp_entry.Message.le_prev) ];
            fut
          end
        end
        else Future.return (Message.Reject (Error.Internal "tlog: chain regression"))
      end
  | Message.Log_peek { tag; from_version } ->
      if t.stopped then Future.return (Message.Reject Error.Wrong_epoch)
      else
      let entries = tag_entries t tag ~from_version in
      Future.return
        (Message.Log_peek_reply { pk_entries = entries; pk_end = t.rcv; pk_kcv = t.kcv })
  | Message.Log_pop { tag; up_to } ->
      do_pop t tag up_to;
      Future.return Message.Ok_reply
  | Message.Log_lock { ll_epoch } ->
      if ll_epoch > t.epoch then begin
        if not t.stopped then begin
          t.stopped <- true;
          (* Parked pushes can never be unparked now: reply with a definite
             rejection rather than letting their RPCs run out the clock
             (a broken handler future would send no reply at all). *)
          let parked = Det_tbl.fold (fun _ v acc -> v :: acc) t.pending [] in
          Det_tbl.reset t.pending;
          List.iter
            (fun ((e : Message.log_entry), promise) ->
              if not (Future.try_fulfill promise (Message.Reject Error.Wrong_epoch))
              then
                Trace.emit "tlog_parked_ack_lost"
                  [ ("lsn", Int64.to_string e.Message.le_lsn) ])
            parked;
          Trace.emit "tlog_locked"
            [ ("id", string_of_int t.id); ("epoch", string_of_int t.epoch);
              ("by", string_of_int ll_epoch); ("dv", Int64.to_string t.dv) ]
        end;
        Future.return
          (Message.Log_lock_reply
             { lk_kcv = t.kcv; lk_dv = t.dv; lk_entries = unpopped_durable_entries t })
      end
      else Future.return (Message.Reject Error.Wrong_epoch)
  | Message.Log_seed { ls_entries } ->
      (* Recovery hand-off: pre-existing durable history. Persist before
         acking; it is already below our start LSN so it joins per-tag
         indexes but not the chain. *)
      List.iter
        (fun (e : Message.log_entry) ->
          if not (Det_tbl.mem t.entries e.Message.le_lsn) then begin
            Det_tbl.replace t.entries e.Message.le_lsn e;
            index_payload t e
          end)
        ls_entries;
      let* () =
        Future.all_unit
          (List.map
             (fun e -> Disk.append t.disk t.wal (Marshal.to_string (e : Message.log_entry) []))
             ls_entries)
      in
      let* () = Disk.sync t.disk t.wal in
      Future.return Message.Ok_reply
  | _ -> Future.return (Message.Reject (Error.Internal "tlog: unexpected message"))

(* Rebuild from disk after a crash: keep the contiguous chain prefix (plus
   seeds, which sit below start_lsn); serve only recovery traffic. *)
let resurrect ctx proc ~disk ~(meta : meta) =
  let* records = Disk.read_all disk (wal_file ~epoch:meta.m_epoch ~id:meta.m_id) in
  let* floor_bytes =
    Disk.read_file disk (floor_file_name ~epoch:meta.m_epoch ~id:meta.m_id)
  in
  let floor =
    match floor_bytes with
    | Some b when String.length b >= 8 -> max meta.m_start_lsn (Types.version_of_bytes b)
    | _ -> meta.m_start_lsn
  in
  let t =
    {
      ctx;
      proc;
      ep = meta.m_endpoint;
      epoch = meta.m_epoch;
      id = meta.m_id;
      disk;
      wal = wal_file ~epoch:meta.m_epoch ~id:meta.m_id;
      floor_file = floor_file_name ~epoch:meta.m_epoch ~id:meta.m_id;
      start_lsn = meta.m_start_lsn;
      floor;
      stopped = true;
      dv = meta.m_start_lsn;
      rcv = meta.m_start_lsn;
      kcv = 0L;
      entries = Det_tbl.create ~size:1024 ();
      next = Hashtbl.create 1024;
      pending = Det_tbl.create ~size:4 ();
      per_tag = Hashtbl.create 64;
      pop_floor = Det_tbl.create ~size:64 ();
      waiting_sync = [];
      sync_scheduled = false;
      unpopped_bytes = 0;
      obs_append_lat =
        Fdb_obs.Registry.histogram ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "append_latency";
      obs_pushes =
        Fdb_obs.Registry.counter ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "pushes";
      obs_dv =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "durable_version";
      obs_rcv =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "received_version";
      obs_unpopped =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "unpopped_bytes";
    }
  in
  let parsed =
    List.filter_map
      (fun r ->
        match (Marshal.from_string r 0 : Message.log_entry) with
        | e -> Some e
        | exception _ -> None)
      records
  in
  (* Seeds (lsn <= start) and already-pruned-floor records are durable
     history; chain records must form a contiguous prefix from the floor
     (collected in a scratch table by LSN, not [t.pending], which holds
     live parked pushes with reply promises). *)
  let scratch : (Types.version, Message.log_entry) Det_tbl.t =
    Det_tbl.create ~size:1024 ()
  in
  List.iter
    (fun (e : Message.log_entry) ->
      if e.Message.le_lsn <= floor && not (Det_tbl.mem t.entries e.Message.le_lsn)
      then begin
        Det_tbl.replace t.entries e.Message.le_lsn e;
        index_payload t e
      end
      else if e.Message.le_lsn > floor then
        Det_tbl.replace scratch e.Message.le_lsn e)
    parsed;
  let rec chain v =
    let candidates = Det_tbl.fold (fun lsn e acc -> if e.Message.le_prev = v then (lsn, e) :: acc else acc) scratch [] in
    match candidates with
    | (lsn, e) :: _ ->
        Det_tbl.remove scratch lsn;
        Det_tbl.replace t.entries lsn e;
        Hashtbl.replace t.next v lsn;
        index_payload t e;
        if e.Message.le_kcv > t.kcv then t.kcv <- e.Message.le_kcv;
        chain lsn
    | [] -> v
  in
  let dv = chain floor in
  t.dv <- dv;
  t.rcv <- dv;
  Fdb_obs.Registry.set_gauge t.obs_dv (Int64.to_float dv);
  Fdb_obs.Registry.set_gauge t.obs_rcv (Int64.to_float dv);
  Network.register ctx.Context.net meta.m_endpoint proc (handle t);
  Trace.emit "tlog_resurrected"
    [ ("id", string_of_int meta.m_id); ("epoch", string_of_int meta.m_epoch);
      ("dv", Int64.to_string dv) ];
  Future.return t

let create ctx proc ~disk ~epoch ~id ~start_lsn =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let meta = { m_epoch = epoch; m_id = id; m_start_lsn = start_lsn; m_endpoint = ep } in
  let t =
    {
      ctx;
      proc;
      ep;
      epoch;
      id;
      disk;
      wal = wal_file ~epoch ~id;
      floor_file = floor_file_name ~epoch ~id;
      start_lsn;
      floor = start_lsn;
      stopped = false;
      dv = start_lsn;
      rcv = start_lsn;
      kcv = 0L;
      entries = Det_tbl.create ~size:1024 ();
      next = Hashtbl.create 1024;
      pending = Det_tbl.create ~size:16 ();
      per_tag = Hashtbl.create 64;
      pop_floor = Det_tbl.create ~size:64 ();
      waiting_sync = [];
      sync_scheduled = false;
      unpopped_bytes = 0;
      obs_append_lat =
        Fdb_obs.Registry.histogram ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "append_latency";
      obs_pushes =
        Fdb_obs.Registry.counter ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "pushes";
      obs_dv =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "durable_version";
      obs_rcv =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "received_version";
      obs_unpopped =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Log
          ~process:proc.Process.pid "unpopped_bytes";
    }
  in
  Disk.attach disk proc;
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "tlog-prune" (fun () -> prune_loop t);
  (* The boot thunk captures the identity (modelling an on-disk manifest):
     after a crash the process comes back as a stopped log server able to
     serve recovery hand-off from whatever survived on disk. *)
  proc.Process.boot <-
    (fun () ->
      Engine.spawn ~process:proc "tlog-resurrect" (fun () ->
          let* r = resurrect ctx proc ~disk ~meta in
          r.proc <- proc;
          Future.return ()));
  (t, ep)
