open Fdb_sim
open Future.Syntax

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  mutable rate : float;
  mutable alive : bool;
}

let max_rate = 5e6
let min_rate = 100.0
let lag_limit = 2.0 (* seconds of storage lag before throttling *)
let window_limit = 2_000_000 (* buffered window events before throttling *)
let busy_limit = 0.2 (* seconds of storage CPU queue before throttling *)

let current_rate t = t.rate

let collect t =
  let eps = Array.to_list t.ctx.Context.storage_eps in
  let calls =
    List.map
      (fun ep ->
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc t.ctx ~timeout:1.0 ~from:t.proc ep Message.Ss_stats_req
            in
            match reply with
            | Message.Ss_stats { ss_lag; ss_window_events; ss_busy; _ } ->
                Future.return (Some (ss_lag, ss_window_events, ss_busy))
            | _ -> Future.return None)
          (fun _ -> Future.return None))
      eps
  in
  Future.map (Future.all calls) (List.filter_map Fun.id)

let control_loop t =
  let rec loop () =
    if not t.alive then Future.return ()
    else
      let* () = Engine.sleep Params.ratekeeper_interval in
      let* stats = collect t in
      let worst_lag, worst_window, worst_busy =
        List.fold_left
          (fun (lag, win, busy) (ss_lag, ss_window_events, ss_busy) ->
            (Float.max lag ss_lag, max win ss_window_events, Float.max busy ss_busy))
          (0.0, 0, 0.0) stats
      in
      let overloaded =
        worst_lag > lag_limit || worst_window > window_limit || worst_busy > busy_limit
      in
      if overloaded then t.rate <- Float.max min_rate (t.rate *. 0.7)
      else t.rate <- Float.min max_rate ((t.rate *. 1.05) +. 100.0);
      Trace.emit "ratekeeper_tick"
        [ ("rate", Printf.sprintf "%.0f" t.rate);
          ("worst_lag", Printf.sprintf "%.3f" worst_lag);
          ("worst_busy", Printf.sprintf "%.3f" worst_busy);
          ("worst_window", string_of_int worst_window) ];
      loop ()
  in
  loop ()

let handle t (msg : Message.t) : Message.t Future.t =
  match msg with
  | Message.Seq_ping -> Future.return Message.Ok_reply
  | Message.Rk_get_rate -> Future.return (Message.Rk_rate { tps = t.rate })
  | _ -> Future.return (Message.Reject (Error.Internal "ratekeeper: unexpected message"))

let create ctx proc =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let t = { ctx; proc; ep; rate = 1e5; alive = true } in
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "ratekeeper" (fun () -> control_loop t);
  (t, ep)
