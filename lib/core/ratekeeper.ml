open Fdb_sim
open Future.Syntax
module Registry = Fdb_obs.Registry

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  mutable rate : float;
  mutable alive : bool;
  (* metrics plane: what we publish *)
  obs_rate : Registry.gauge;
  obs_throttles : Registry.counter;
  obs_ticks : Registry.counter;
}

let max_rate = 5e6
let min_rate = 100.0
let lag_limit = 2.0 (* seconds of storage lag before throttling *)
let window_limit = 2_000_000 (* buffered window events before throttling *)
let busy_limit = 0.2 (* seconds of storage CPU queue before throttling *)

(* A storage server that has not refreshed its heartbeat gauge within this
   long is presumed dead (the RPC path used a 1 s timeout the same way). *)
let stale_after = 1.0

let current_rate t = t.rate

(* Read each live storage server's (lag, window_events, busy) from the
   shared metrics plane instead of a per-server stats RPC scatter: the
   samples are at most one heartbeat interval old, exactly like the
   replies of the old scatter were one ratekeeper interval old. *)
let collect t =
  let reg = t.ctx.Context.metrics in
  let now = Engine.now () in
  Registry.gauges reg ~role:Registry.Storage "heartbeat"
  |> List.filter_map (fun (ss, hb) ->
         if now -. hb > stale_after then None
         else
           let g name =
             Option.value ~default:0.0
               (Registry.gauge_value reg ~role:Registry.Storage ~process:ss name)
           in
           Some (g "lag", int_of_float (g "window_events"), g "busy"))

let control_loop t =
  let rec loop () =
    if not t.alive then Future.return ()
    else
      let* () = Engine.sleep Params.ratekeeper_interval in
      let stats = collect t in
      let worst_lag, worst_window, worst_busy =
        List.fold_left
          (fun (lag, win, busy) (ss_lag, ss_window_events, ss_busy) ->
            (Float.max lag ss_lag, max win ss_window_events, Float.max busy ss_busy))
          (0.0, 0, 0.0) stats
      in
      let overloaded =
        worst_lag > lag_limit || worst_window > window_limit || worst_busy > busy_limit
      in
      if overloaded then begin
        t.rate <- Float.max min_rate (t.rate *. 0.7);
        Registry.incr t.obs_throttles
      end
      else t.rate <- Float.min max_rate ((t.rate *. 1.05) +. 100.0);
      Registry.incr t.obs_ticks;
      Registry.set_gauge t.obs_rate t.rate;
      Trace.emit "ratekeeper_tick"
        [ ("rate", Printf.sprintf "%.0f" t.rate);
          ("worst_lag", Printf.sprintf "%.3f" worst_lag);
          ("worst_busy", Printf.sprintf "%.3f" worst_busy);
          ("worst_window", string_of_int worst_window) ];
      loop ()
  in
  loop ()

let handle t (msg : Message.t) : Message.t Future.t =
  match msg with
  | Message.Seq_ping -> Future.return Message.Ok_reply
  | Message.Rk_get_rate -> Future.return (Message.Rk_rate { tps = t.rate })
  | _ -> Future.return (Message.Reject (Error.Internal "ratekeeper: unexpected message"))

let create ctx proc =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let reg = ctx.Context.metrics in
  let pid = proc.Process.pid in
  let t =
    {
      ctx;
      proc;
      ep;
      rate = 1e5;
      alive = true;
      obs_rate = Registry.gauge reg ~role:Registry.Ratekeeper ~process:pid "rate";
      obs_throttles = Registry.counter reg ~role:Registry.Ratekeeper ~process:pid "throttles";
      obs_ticks = Registry.counter reg ~role:Registry.Ratekeeper ~process:pid "ticks";
    }
  in
  Registry.set_gauge t.obs_rate t.rate;
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "ratekeeper" (fun () -> control_loop t);
  (t, ep)
