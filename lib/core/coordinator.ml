open Fdb_sim
open Future.Syntax

let serve ctx proc ~disk ~endpoint =
  let* server = Fdb_paxos.Server.recover ~disk ~file:"paxos-state" () in
  Network.register ctx.Context.net endpoint proc (fun msg ->
      match (msg : Message.t) with
      | Message.Paxos_req r ->
          Future.map (Fdb_paxos.Server.handle server r) (fun resp ->
              Message.Paxos_resp resp)
      | Message.Seq_ping -> Future.return Message.Ok_reply
      | _ -> Future.return (Message.Reject (Error.Internal "coordinator: unexpected message")));
  Future.return ()

let start ctx proc ~disk ~endpoint =
  Disk.attach disk proc;
  let boot () =
    Engine.spawn ~process:proc "coordinator" (fun () -> serve ctx proc ~disk ~endpoint)
  in
  proc.Process.boot <- boot;
  Engine.schedule ~process:proc boot
