(** The worker agent: one per machine, hosting whatever roles the control
    plane recruits onto it.

    Handles [Recruit_*] by creating a fresh process (one core per role, as
    FDB deploys) running the requested role, campaigns in the
    ClusterController election when the machine is a candidate, and
    forwards [Cc_get_state] to a locally running ClusterController.
    Re-registers itself after machine reboots. *)

type host = {
  h_machine : Fdb_sim.Process.machine;
  h_disks : Fdb_sim.Disk.t array;
}

type t

val create : Context.t -> host -> machine_id:int -> t
(** Build the worker process on the host and start it (must run inside a
    simulation). The returned handle is mainly for tests. *)

val is_cluster_controller : t -> bool
