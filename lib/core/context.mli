(** Static deployment context threaded through every role.

    Plays the part of FDB's cluster file plus compile-time knowledge: the
    network handle, the configuration, and the well-known endpoints that
    survive reboots (coordinators, worker agents, storage servers). Role
    endpoints that change each epoch (proxies, resolvers, log servers) are
    NOT here — they travel through recruitment messages and the
    coordinated state, as in the paper. *)

type t = {
  net : Message.t Fdb_sim.Network.t;
  config : Config.t;
  shard_map : Shard_map.t;
  coordinator_eps : int list;  (** the "cluster file" *)
  worker_eps : int array;  (** worker agent endpoint, by machine index *)
  storage_eps : int array;  (** storage server endpoint, by server id *)
  metrics : Fdb_obs.Registry.t;
      (** cluster-wide metrics plane: every role publishes here *)
}

val rpc :
  t ->
  ?timeout:float ->
  ?bytes:int ->
  from:Fdb_sim.Process.t ->
  int ->
  Message.t ->
  Message.t Fdb_sim.Future.t
(** {!Fdb_sim.Network.call} specialized to the cluster message type; a
    [Reject e] reply is raised as [Error.Fdb e] so callers pattern-match
    only success shapes. *)

val paxos_transport : t -> from:Fdb_sim.Process.t -> Fdb_paxos.Wire.transport
(** Coordinator transport for Paxos clients running on [from]. *)

val proposer_id : Fdb_sim.Process.t -> int
(** Unique Paxos proposer identity for a process. *)
