(** One description of a range read — the unified surface the layer
    ecosystem programs against.

    A query names its two endpoints as key selectors (paper §2.2), a row
    limit, a streaming mode (how storage round-trips are budgeted), a
    direction, snapshot-ness, and an optional continuation cursor. The
    client exposes two evaluators: {!Client.range} runs one bounded batch
    and returns a continuation, {!Client.range_all} drains the query. The
    legacy [get_range] / [get_range_sel] / [get_range_stream] entry points
    are thin wrappers that build a [Range_query.t] and call those. *)

type mode = [ `Want_all | `Iterator | `Exact of int ]
(** [`Want_all] drains with large batches, [`Iterator] uses modest row/byte
    budgets per round-trip, [`Exact n] sizes batches for exactly [n] rows. *)

type t = {
  rq_begin : Message.key_selector;
  rq_end : Message.key_selector;
  rq_limit : int;  (** max rows returned (whole query, not per batch) *)
  rq_mode : mode;
  rq_reverse : bool;
  rq_snapshot : bool;  (** [true]: add no read conflict ranges *)
  rq_continuation : string option;
      (** resume cursor from a previous {!Client.range} batch *)
}

val create :
  ?limit:int ->
  ?mode:mode ->
  ?reverse:bool ->
  ?snapshot:bool ->
  ?continuation:string ->
  begin_:Message.key_selector ->
  end_:Message.key_selector ->
  unit ->
  t
(** General form: both endpoints are key selectors, resolved at the
    storage servers against the transaction's snapshot. Defaults:
    [limit = 1000], [mode = `Want_all], forward, non-snapshot. *)

val keys :
  ?limit:int ->
  ?mode:mode ->
  ?reverse:bool ->
  ?snapshot:bool ->
  ?continuation:string ->
  from:string ->
  until:string ->
  unit ->
  t
(** [\[from, until)] as plain keys (firstGreaterOrEqual bounds) — the fast
    path, no selector-resolution round-trips. *)

val prefix :
  ?limit:int ->
  ?mode:mode ->
  ?reverse:bool ->
  ?snapshot:bool ->
  ?continuation:string ->
  string ->
  unit ->
  t
(** Every key starting with the given byte prefix. *)

val trivial_bounds : t -> (string * string) option
(** [Some (from, until)] when both endpoints are plain
    firstGreaterOrEqual/no-offset selectors (resolution is the identity). *)

val with_continuation : t -> string -> t
val with_limit : t -> int -> t
val with_snapshot : t -> bool -> t
(** Functional updates for re-issuing a query from a batch cursor. *)
