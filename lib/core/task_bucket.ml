open Fdb_sim
open Future.Syntax

type t = {
  from : string;
  until : string;
  prefix : string;
  mutable counter : int; (* uniquifier: stamps collide within one txn *)
}

let create ~prefix =
  let from, until = Types.range_of_prefix (prefix ^ "/task/") in
  { from; until; prefix; counter = 0 }

let add tx t ~payload =
  (* All versionstamped keys of one transaction receive the same stamp
     (8-byte version + 2-byte batch index), exactly as in FDB — so the key
     carries a trailing uniquifier to keep same-transaction tasks distinct.
     Ordering is still stamp-first, i.e. commit order. *)
  t.counter <- t.counter + 1;
  let head = t.prefix ^ "/task/" in
  let template =
    head ^ Client.versionstamp_placeholder ^ Printf.sprintf "%08d" t.counter
  in
  Client.set_versionstamped_key tx ~template ~offset:(String.length head)
    ~value:payload

let is_empty tx t =
  let* head = Client.get_range tx ~limit:1 ~from:t.from ~until:t.until () in
  Future.return (head = [])

let run_one db t ~f =
  Client.run db (fun tx ->
      let* head = Client.get_range tx ~limit:1 ~from:t.from ~until:t.until () in
      match head with
      | [] -> Future.return false
      | (key, payload) :: _ ->
          (* Claim = read (conflict range via get_range) + clear; racing
             executors conflict here and retry onto the next task. *)
          Client.clear tx key;
          let* followups = f tx payload in
          List.iter (fun p -> add tx t ~payload:p) followups;
          Future.return true)

let drain db t ~f =
  let rec go n =
    let* ran = run_one db t ~f in
    if ran then go (n + 1) else Future.return n
  in
  go 0
