type element =
  | Null
  | Bytes of string
  | String of string
  | Int of int64
  | Float of float
  | Bool of bool
  | Nested of element list

type t = element list

(* Type codes, in the spec's order (which defines cross-type ordering). *)
let code_null = '\x00'
let code_bytes = '\x01'
let code_string = '\x02'
let code_nested = '\x05'
let code_int_zero = 0x14 (* 0x0c..0x1c: negative..positive by length *)
let code_float = '\x21'
let code_false = '\x26'
let code_true = '\x27'

(* ---------- pack ---------- *)

let escape_nuls buf s =
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      if c = '\x00' then Buffer.add_char buf '\xff')
    s;
  Buffer.add_char buf '\x00'

let int_byte_length v =
  (* minimal big-endian byte length of a non-negative int64 *)
  let rec go n acc = if n = 0L then max acc 1 else go (Int64.shift_right_logical n 8) (acc + 1) in
  if v = 0L then 0 else go v 0

let add_be_bytes buf v len =
  for i = len - 1 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let float_order_bits f =
  (* IEEE-754 with the standard trick: flip the sign bit of non-negatives,
     flip all bits of negatives, so byte order equals numeric order. *)
  let bits = Int64.bits_of_float f in
  if Int64.compare bits 0L >= 0 then Int64.logor bits Int64.min_int
  else Int64.lognot bits

let rec pack_element buf = function
  | Null -> Buffer.add_char buf code_null
  | Bytes s ->
      Buffer.add_char buf code_bytes;
      escape_nuls buf s
  | String s ->
      Buffer.add_char buf code_string;
      escape_nuls buf s
  | Int v ->
      if Int64.compare v 0L >= 0 then begin
        let len = int_byte_length v in
        Buffer.add_char buf (Char.chr (code_int_zero + len));
        add_be_bytes buf v len
      end
      else begin
        (* negative: one's-complement of |v|, shorter-is-smaller flipped *)
        let abs = Int64.neg v in
        let len = int_byte_length abs in
        Buffer.add_char buf (Char.chr (code_int_zero - len));
        (* stored as (256^len - 1) - abs, big-endian *)
        let ceiling =
          if len = 8 then -1L (* 2^64-1 as unsigned *)
          else Int64.sub (Int64.shift_left 1L (8 * len)) 1L
        in
        add_be_bytes buf (Int64.sub ceiling abs) len
      end
  | Float f ->
      Buffer.add_char buf code_float;
      add_be_bytes buf (float_order_bits f) 8
  | Bool false -> Buffer.add_char buf code_false
  | Bool true -> Buffer.add_char buf code_true
  | Nested elems ->
      Buffer.add_char buf code_nested;
      List.iter
        (fun e ->
          match e with
          | Null ->
              (* escape nested nulls so the terminator stays unambiguous *)
              Buffer.add_char buf '\x00';
              Buffer.add_char buf '\xff'
          | _ -> pack_element buf e)
        elems;
      Buffer.add_char buf '\x00'

let pack t =
  let buf = Buffer.create 64 in
  List.iter (pack_element buf) t;
  Buffer.contents buf

(* ---------- unpack ---------- *)

exception Malformed of string

let unpack s =
  let n = String.length s in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then raise (Malformed "truncated");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let read_escaped () =
    let buf = Buffer.create 16 in
    let rec go () =
      let c = byte () in
      if c = '\x00' then
        if !pos < n && s.[!pos] = '\xff' then begin
          incr pos;
          Buffer.add_char buf '\x00';
          go ()
        end
        else Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let read_be len =
    let v = ref 0L in
    for _ = 1 to len do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (byte ())))
    done;
    !v
  in
  let rec read_element ~nested code =
    match code with
    | c when c = code_bytes -> Bytes (read_escaped ())
    | c when c = code_string -> String (read_escaped ())
    | c when c = code_float ->
        let bits = read_be 8 in
        let bits =
          if Int64.compare bits 0L < 0 then Int64.logand bits Int64.max_int
          else Int64.lognot bits
        in
        Float (Int64.float_of_bits bits)
    | c when c = code_false -> Bool false
    | c when c = code_true -> Bool true
    | c when c = code_nested ->
        let rec elems acc =
          let c = byte () in
          if c = '\x00' then
            if !pos < n && s.[!pos] = '\xff' then begin
              incr pos;
              elems (Null :: acc)
            end
            else Nested (List.rev acc)
          else elems (read_element ~nested:true c :: acc)
        in
        elems []
    | c ->
        let ci = Char.code c in
        if ci = Char.code code_null && not nested then Null
        else if ci > code_int_zero && ci <= code_int_zero + 8 then begin
          let len = ci - code_int_zero in
          Int (read_be len)
        end
        else if ci < code_int_zero && ci >= code_int_zero - 8 then begin
          let len = code_int_zero - ci in
          let stored = read_be len in
          let ceiling =
            if len = 8 then -1L
            else Int64.sub (Int64.shift_left 1L (8 * len)) 1L
          in
          Int (Int64.neg (Int64.sub ceiling stored))
        end
        else if ci = code_int_zero then Int 0L
        else raise (Malformed (Printf.sprintf "unknown type code 0x%02x" ci))
  in
  let rec top acc =
    if !pos >= n then List.rev acc
    else begin
      let c = byte () in
      if c = code_null then top (Null :: acc)
      else top (read_element ~nested:false c :: acc)
    end
  in
  try top [] with Malformed m -> invalid_arg ("Tuple.unpack: " ^ m)

(* ---------- natural comparison (must agree with pack order) ---------- *)

let type_rank = function
  | Null -> 0
  | Bytes _ -> 1
  | String _ -> 2
  | Nested _ -> 3
  | Int _ -> 4
  | Float _ -> 5
  | Bool _ -> 6

let rec compare_element a b =
  match (a, b) with
  | Null, Null -> 0
  | Bytes x, Bytes y | String x, String y -> compare x y
  | Int x, Int y -> Int64.compare x y
  | Float x, Float y -> Int64.unsigned_compare (float_order_bits x) (float_order_bits y)
  | Bool x, Bool y -> compare x y
  | Nested x, Nested y -> compare_elements x y
  | _ -> compare (type_rank a) (type_rank b)

and compare_elements a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare_element x y in
      if c <> 0 then c else compare_elements xs ys

let range t =
  let p = pack t in
  (p ^ "\x00", p ^ "\xff")

let subspace prefix t = pack prefix ^ pack t

let rec pp_element fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bytes s -> Format.fprintf fmt "b%S" s
  | String s -> Format.fprintf fmt "%S" s
  | Int v -> Format.fprintf fmt "%Ld" v
  | Float f -> Format.fprintf fmt "%g" f
  | Bool b -> Format.pp_print_bool fmt b
  | Nested l -> pp fmt l

and pp fmt t =
  Format.fprintf fmt "(";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf fmt ", ";
      pp_element fmt e)
    t;
  Format.fprintf fmt ")"
