(** TaskBucket (paper §6.4): the pattern for work that cannot fit in one
    5-second transaction — "one transaction creates a number of jobs and
    each job can be further divided or executed in a transaction".

    A bucket is a durable queue of tasks in the key space. Adding tasks is
    transactional (atomically with the caller's own writes); executors
    claim one task per transaction, process it, and in the SAME transaction
    remove it and optionally add follow-up tasks — so a crash between
    transactions never loses or duplicates work. Claims use OCC: two
    executors racing for the same task conflict and one retries onto the
    next. The paper's continuous backup splits a full-keyspace scan into
    range-sized tasks exactly this way (see [examples] and the tests). *)

type t

val create : prefix:string -> t
(** A bucket living under [prefix] in the key space. *)

val add : Client.tx -> t -> payload:string -> unit
(** Enqueue a task within the caller's transaction (versionstamp-keyed:
    conflict-free appends, commit-ordered). *)

val run_one :
  Client.db ->
  t ->
  f:(Client.tx -> string -> string list Fdb_sim.Future.t) ->
  bool Fdb_sim.Future.t
(** Claim the oldest task, run [f tx payload] inside the claiming
    transaction, enqueue whatever follow-up payloads [f] returns, and
    commit it all atomically. Returns [false] when the bucket is empty.
    [f] must keep its work within transaction limits — that is the whole
    point: it subdivides by returning follow-ups. *)

val drain :
  Client.db ->
  t ->
  f:(Client.tx -> string -> string list Fdb_sim.Future.t) ->
  int Fdb_sim.Future.t
(** Run tasks until the bucket is empty; returns how many ran. *)

val is_empty : Client.tx -> t -> bool Fdb_sim.Future.t
