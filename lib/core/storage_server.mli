(** The StorageServer: MVCC reads over an in-memory version window backed by
    an unversioned persistent store (paper §2.3.2, §2.4.3, §2.4.4).

    A pull loop continuously peeks the tag's mutation stream from the
    current LogServers (including not-yet-durable entries, for low read
    lag) and applies it in LSN order, materializing atomic operations. A
    durability loop graduates mutations that have both left the MVCC window
    and become known-committed into the persistent store, then pops them
    from the logs. Reads wait briefly for a future version and fail with
    [Transaction_too_old] below the window. On recovery the window suffix
    past RV is discarded; the persistent store never needs rollback because
    it only ever holds known-committed data. *)

type t

val create :
  Context.t -> Fdb_sim.Process.t -> id:int -> disk:Fdb_sim.Disk.t -> t Fdb_sim.Future.t
(** Open (recovering from disk if present) storage server [id], register
    its well-known endpoint, start the pull/durability loops, and install
    the boot thunk that re-creates everything after a crash. *)

val version : t -> Types.version
(** Latest applied version. *)

val durable_version : t -> Types.version
val lag_seconds : t -> float
(** How far the applied version trails the current time-version. *)

val window_events : t -> int
