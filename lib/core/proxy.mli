(** The Proxy: client front door for read versions and commits
    (paper §2.4.1, Figure 1).

    GRV requests are batched (one Sequencer round-trip serves the batch,
    §2.6) and rate-limited by the Ratekeeper's current TPS. Commits are
    batched, assigned one commit version / LSN per batch, resolved against
    every Resolver, stamped (versionstamp operations), fanned out to every
    LogServer with per-tag payloads (Figure 2), and acknowledged to clients
    only after {e all} LogServers confirm durability — the paper's
    all-replicas rule that lets recovery use RV = min DV. A proxy that
    cannot complete this pipeline marks itself failed so the Sequencer's
    monitor ends the epoch.

    Up to [Params.proxy_commit_pipeline_depth] batches are in flight
    concurrently: each fetches its own [(lsn, prev)] pair (gated so LSNs
    follow launch order) and resolves/pushes without waiting for its
    predecessor — the §2.4.1 prev-chaining at Resolvers and LogServers
    re-orders out-of-order arrivals — while an in-order completion stage
    keeps [Seq_report]s LSN-ordered, the KCV monotone, and fails every
    in-flight batch after a failed one (see DESIGN.md "The commit
    pipeline"). Depth 1 is the serial pre-pipeline path, kept verbatim as
    the benchmark baseline. *)

type t

val create :
  Context.t ->
  Fdb_sim.Process.t ->
  epoch:Types.epoch ->
  sequencer:int ->
  resolvers:(Message.key_range * int) list ->
  logs:(int * int) list ->
  ratekeeper:int option ->
  recovery_version:Types.version ->
  t * int

val known_committed : t -> Types.version
val is_dead : t -> bool
