type t = {
  machines : int;
  coordinators : int;
  proxies : int;
  resolvers : int;
  log_servers : int;
  storage_per_machine : int;
  log_replication : int;
  storage_replication : int;
  mvcc_window : float;
  shards_per_storage : int;
  cc_candidates : int;
  racks : int;
  disks_per_machine : int;
  shard_boundaries : string list;
  regions : int;
}

let region_of_machine t m = Printf.sprintf "dc%d" (1 + (m mod max 1 t.regions))

let default =
  {
    machines = 5;
    coordinators = 3;
    proxies = 2;
    resolvers = 1;
    log_servers = 3;
    storage_per_machine = 2;
    log_replication = 3;
    storage_replication = 3;
    mvcc_window = 5.0;
    shards_per_storage = 2;
    cc_candidates = 3;
    racks = 5;
    disks_per_machine = 8;
  shard_boundaries = [];
    regions = 1;
  }

let test_small =
  {
    machines = 3;
    coordinators = 3;
    proxies = 1;
    resolvers = 1;
    log_servers = 2;
    storage_per_machine = 1;
    log_replication = 2;
    storage_replication = 2;
    mvcc_window = 5.0;
    shards_per_storage = 2;
    cc_candidates = 2;
    racks = 3;
    disks_per_machine = 2;
  shard_boundaries = [];
    regions = 1;
  }

let scaled ~machines =
  let ts = max 2 (machines - 2) in
  {
    machines;
    coordinators = 3;
    proxies = ts;
    resolvers = 2;
    log_servers = ts;
    storage_per_machine = 14;
    log_replication = min 3 ts;
    storage_replication = min 3 (machines * 14);
    mvcc_window = 5.0;
    shards_per_storage = 4;
    cc_candidates = 3;
    racks = min machines 9;
    disks_per_machine = 8;
    shard_boundaries = [];
    regions = 1;
  }

let storage_count t = t.machines * t.storage_per_machine

let validate t =
  if t.machines < 1 then Error "need at least one machine"
  else if t.coordinators > t.machines then Error "more coordinators than machines"
  else if t.coordinators < 1 then Error "need a coordinator"
  else if t.log_replication > t.log_servers then Error "log replication exceeds log servers"
  else if t.storage_replication > storage_count t then
    Error "storage replication exceeds storage servers"
  else if t.proxies < 1 || t.resolvers < 1 || t.log_servers < 1 then
    Error "need at least one proxy, resolver and log server"
  else Ok ()
