(** Typed client-visible errors, mirroring FDB's error model. *)

type t =
  | Not_committed  (** conflict detected by a Resolver — retry *)
  | Commit_unknown_result
      (** the commit may or may not have happened (e.g. recovery raced the
          acknowledgment); retrying requires idempotence *)
  | Transaction_too_old  (** read version fell out of the MVCC window *)
  | Future_version  (** StorageServer has not yet caught up to the version *)
  | Process_behind  (** StorageServer lagging too far; retry elsewhere *)
  | Wrong_shard
      (** StorageServer no longer serves the requested range (the client's
          shard-map snapshot went stale mid-read); re-resolve and retry *)
  | Timed_out
  | Database_locked  (** transaction system is recovering *)
  | Key_too_large
  | Value_too_large
  | Transaction_too_large
  | Key_outside_legal_range
  | Used_during_commit  (** transaction mutated while its commit is in flight *)
  | Wrong_epoch  (** message addressed to a superseded generation *)
  | Internal of string

exception Fdb of t
(** How errors travel through futures inside the database and the client. *)

val fail : t -> 'a Fdb_sim.Future.t
val is_retryable : t -> bool
(** May the client retry the transaction from the top? ([Commit_unknown_result]
    is retryable only for idempotent transactions; {!Client.run} treats it as
    retryable, matching FDB's default retry loop.) *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
