(** The cluster's RPC vocabulary: every message any role sends or receives.

    One closed variant keeps the simulated network monomorphic and makes the
    full protocol auditable in one place (like FDB's *.actor interface
    files). Requests and responses share the type; the RPC layer matches
    them by correlation id. *)

type key_range = string * string  (** [\[from, until)] *)

(** A key selector on the wire (the FDB bindings' KeySelector): find the
    last key [<= sel_key] ([< sel_key] when [sel_or_equal] is false), then
    move [sel_offset] keys forward in key order. The client decomposes
    resolution into per-shard {!Storage_get_key} walks. *)
type key_selector = { sel_key : string; sel_or_equal : bool; sel_offset : int }

(** A client mutation as submitted to a Proxy; versionstamped operations are
    materialized into plain mutations at commit time (§2.6). *)
type client_mutation =
  | Plain of Fdb_kv.Mutation.t
  | Versionstamped_key of { template : string; offset : int; value : string }
      (** 10 zero bytes at [offset] in [template] are replaced by the
          8-byte commit version + 2-byte batch index *)
  | Versionstamped_value of { key : string; template : string; offset : int }

type txn_request = {
  tr_read_version : Types.version;
  tr_reads : key_range list;  (** read conflict ranges *)
  tr_writes : key_range list;  (** write conflict ranges *)
  tr_mutations : client_mutation list;
}

type resolver_verdict = V_commit | V_conflict | V_too_old

(** What the recovery writes to the coordinators (paper §2.3.4: "the
    configuration of LS is stored in all Coordinators"). *)
type coordinated_state = {
  cs_epoch : Types.epoch;
  cs_logs : (int * int) list;  (** (log id, endpoint) of the current LS *)
  cs_log_replication : int;
  cs_recovery_version : Types.version;
  cs_rv_history : (Types.epoch * Types.version) list;
      (** recent generations' recovery versions, newest first. A storage
          server that slept through several generations must roll back to
          the RV of the {e first} recovery after its own epoch — later RVs
          are higher and would let rolled-back data survive. *)
}

val encode_coordinated_state : coordinated_state -> string
val decode_coordinated_state : string -> coordinated_state option

(** One logged entry: a commit batch's per-tag payload. *)
type log_entry = {
  le_lsn : Types.version;
  le_prev : Types.version;
  le_kcv : Types.version;
  le_payload : (Types.tag * Fdb_kv.Mutation.t list) list;
}

type t =
  (* generic *)
  | Ok_reply
  | Reject of Error.t
  (* control plane: Paxos / coordinators *)
  | Paxos_req of Fdb_paxos.Wire.request
  | Paxos_resp of Fdb_paxos.Wire.response
  (* worker agent *)
  | Worker_ping
  | Worker_pong
  | Recruit_sequencer of { rs_ratekeeper : int option }
  | Recruit_proxy of {
      rp_epoch : Types.epoch;
      rp_sequencer : int;
      rp_resolvers : (key_range * int) list;
      rp_logs : (int * int) list;
      rp_ratekeeper : int option;
      rp_recovery_version : Types.version;
    }
  | Recruit_resolver of {
      rr_epoch : Types.epoch;
      rr_range : key_range;
      rr_start_lsn : Types.version;
    }
  | Recruit_log of { rl_epoch : Types.epoch; rl_id : int; rl_start_lsn : Types.version }
  | Recruit_ratekeeper
  | Recruit_data_distributor
  | Recruited of { endpoint : int }
  (* cluster controller *)
  | Cc_get_state
  | Cc_state of {
      st_epoch : Types.epoch;
      st_proxies : int list;
      st_logs : (int * int) list;
      st_recovery_version : Types.version;
      st_recovered : bool;
      st_dd : int option;  (** DataDistributor worker, when recruited *)
    }
  | Seq_ping
  | Seq_pong of {
      sp_epoch : Types.epoch;
      sp_recovered : bool;
      sp_proxies : int list;
      sp_logs : (int * int) list;
      sp_rv : Types.version;
    }
  (* client <-> proxy *)
  | Grv_req
  | Grv_reply of { gv_version : Types.version; gv_epoch : Types.epoch }
  | Commit_req of txn_request
  | Commit_reply of Types.version  (** commit version; errors come as [Reject] *)
  (* proxy <-> sequencer *)
  | Seq_grv
  | Seq_grv_reply of { read_version : Types.version; grv_epoch : Types.epoch }
  | Seq_version
  | Seq_version_reply of { version : Types.version; prev : Types.version }
  | Seq_report of { committed : Types.version }
  (* proxy <-> resolver *)
  | Resolve_req of {
      rs_epoch : Types.epoch;
      rs_lsn : Types.version;
      rs_prev : Types.version;
      rs_txns : (Types.version * key_range list * key_range list) array;
          (** per txn: read version, read ranges, write ranges (clipped to
              this resolver's key partition) *)
    }
  | Resolve_reply of resolver_verdict array
  (* proxy <-> log server *)
  | Log_push of { lp_epoch : Types.epoch; lp_entry : log_entry }
  | Log_push_ack of { durable_version : Types.version }
  (* storage <-> log server *)
  | Log_peek of { tag : Types.tag; from_version : Types.version }
  | Log_peek_reply of {
      pk_entries : (Types.version * Fdb_kv.Mutation.t list) list;
      pk_end : Types.version;  (** caught up through this version *)
      pk_kcv : Types.version;  (** known committed version (durability floor) *)
    }
  | Log_pop of { tag : Types.tag; up_to : Types.version }
  (* recovery <-> old log servers *)
  | Log_lock of { ll_epoch : Types.epoch }
  | Log_lock_reply of {
      lk_kcv : Types.version;
      lk_dv : Types.version;
      lk_entries : log_entry list;  (** unpopped durable entries *)
    }
  | Log_seed of { ls_entries : log_entry list }
  (* recovery -> storage servers *)
  | Ss_recover of {
      sr_epoch : Types.epoch;
      sr_rv : Types.version;
      sr_history : (Types.epoch * Types.version) list;  (** roll back anything newer *)
      sr_logs : (int * int) list;
    }
  | Ss_recover_ack of { version : Types.version }
  (* client <-> storage server *)
  | Storage_get of { key : string; version : Types.version; rv_epoch : Types.epoch }
  | Storage_get_reply of string option
  | Storage_get_range of {
      gr_from : string;
      gr_until : string;
      gr_version : Types.version;
      gr_limit : int;  (** row budget for this round-trip *)
      gr_byte_limit : int;  (** byte budget (>= 1 row always returned) *)
      gr_reverse : bool;
      gr_epoch : Types.epoch;
    }
  | Storage_get_range_reply of {
      rr_rows : (string * string) list;
      rr_more : bool;
          (** the reply was cut by a budget; the caller drains the rest of
              the range with continuation round-trips *)
    }
  | Storage_get_key of {
      gk_from : string;  (** fragment to search, within one shard *)
      gk_until : string;
      gk_reverse : bool;  (** walk direction *)
      gk_start : string;
          (** walk origin: forward walks consider keys [>= gk_start],
              reverse walks keys [< gk_start] (clipped to the fragment) *)
      gk_need : int;  (** resolve to the gk_need-th visible key (>= 1) *)
      gk_version : Types.version;
      gk_epoch : Types.epoch;
    }
  | Storage_get_key_reply of {
      kr_key : string option;  (** [Some k]: resolved inside the fragment *)
      kr_seen : int;
          (** keys consumed toward the offset when the walk ran off the
              fragment edge ([kr_key = None]) *)
    }
  (* ratekeeper *)
  | Rk_get_rate
  | Rk_rate of { tps : float }
  | Ss_stats_req
  | Ss_stats of {
      ss_version : Types.version;
      ss_durable : Types.version;
      ss_window_events : int;
      ss_lag : float;  (** seconds behind the log stream *)
      ss_busy : float;  (** CPU queue depth in seconds (read overload) *)
    }
  (* data distributor <-> storage server *)
  | Ss_fetch_shard of {
      fs_from : string;
      fs_until : string;
      fs_version : Types.version;
          (** committed snapshot version to fetch at (the DD's marker-txn
              commit has already pinned it below the readable horizon) *)
      fs_epoch : Types.epoch;
      fs_sources : int list;  (** current team members to fetch from *)
    }
  | Ss_fetch_ack of { fa_rows : int; fa_bytes : int }
  | Ss_split_point of { spl_from : string; spl_until : string }
  | Ss_split_point_reply of { spl_key : string option }
      (** median-by-bytes key of the range, when one strictly inside exists *)
  (* watches (long-poll change notification, the layer ecosystem's
     replacement for client polling) *)
  | Ss_watch of { w_key : string; w_version : Types.version; w_epoch : Types.epoch }
      (** register interest in [w_key]: reply fired as soon as a mutation
          to it applies at a version > [w_version], or not-fired after the
          server's poll window elapses (the client re-registers) *)
  | Ss_watch_reply of { wr_fired : bool; wr_version : Types.version }
      (** [wr_fired = true]: the key changed at [wr_version]. [false]: no
          change observed through [wr_version] — re-register from there *)

val pp : Format.formatter -> t -> unit
(** Constructor name only (tracing). *)
