(** The Ratekeeper: cluster-wide overload protection (paper §2.3.1).

    Polls StorageServer statistics and derives a transactions-per-second
    budget: additive increase while the cluster is healthy, multiplicative
    decrease when storage lag or version-window memory grows. Proxies poll
    the budget and meter GRV issuance against it, which is where client
    latency rises instead of the cluster melting down (Figure 9b). *)

type t

val create : Context.t -> Fdb_sim.Process.t -> t * int
val current_rate : t -> float

val min_rate : float
(** Floor of the budget; the control loop never throttles below this. *)

val max_rate : float
(** Ceiling of the budget during additive increase. *)
