open Fdb_sim
open Future.Syntax
module Mutation = Fdb_kv.Mutation
module Window = Fdb_kv.Version_window
module Pstore = Fdb_kv.Persistent_store

let version_meta_key = "\xff\xff/ss/version"

(* One marker per range this server fetched as a move destination, persisted
   above [system_key_space_end] (never served, never clipped by shard
   filters). Key: prefix ^ lo; value: fetch version (8 bytes) ^ hi. *)
let movein_prefix = "\xff\xff/ss/movein/"
let movein_key lo = movein_prefix ^ lo

(* One registered watch: fire (fulfill the promise with the mutation's
   version) as soon as any mutation to the watched key applies at a version
   strictly above [we_version]. The promise is deliberately unlabeled: its
   resolution is guaranteed by the handler's poll timer (lifecycle-sanitizer
   convention for timer-backed promises). *)
type watch_entry = {
  we_id : int;
  we_version : Types.version;
  we_promise : Types.version Future.promise;
}

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  id : int; (* also the tag *)
  disk : Disk.t;
  pstore : Pstore.t;
  window : Window.t;
  mutable version : Types.version; (* caught up through this version *)
  mutable durable : Types.version;
  mutable kcv : Types.version; (* durability floor learned from logs *)
  mutable epoch : Types.epoch;
  mutable logs : (int * int) list;
  mutable waiters : (Types.version * unit Future.promise) list;
  mutable stale_pulls : int; (* consecutive failed peeks *)
  mutable refreshing : bool; (* single-flight coordinator consultation *)
  mutable alive : bool;
  mutable incoming : (string * string * Types.version) list;
      (* ranges fetched as a move destination, with the snapshot version
         [since] the fetched pstore image embodies. Window events at
         versions <= since are invisible for these keys, reads below since
         are Transaction_too_old, and durability passes skip re-applying
         popped mutations <= since. *)
  mutable fetches_in_flight : int;
      (* durability passes pause while > 0: a pop racing the snapshot
         install could either land stale data after the install or be lost
         under it; pausing (a fetch lasts well under a durable interval's
         worth of window growth) removes the interleaving entirely. *)
  mutable stats_ticks : int;
  mutable watch_seq : int;
  watches : (string, watch_entry list) Fdb_util.Det_tbl.t;
      (* key -> registrations in arrival order; in-memory only (a reboot
         drops them and the clients' long-polls fail over / re-register) *)
  (* metrics plane: keyed by the storage id, which is stable across reboots *)
  obs_read_lat : Fdb_obs.Registry.timer;
  obs_reads : Fdb_obs.Registry.counter;
  obs_range_reqs : Fdb_obs.Registry.counter;
  obs_watch_reqs : Fdb_obs.Registry.counter;
  obs_watch_fires : Fdb_obs.Registry.counter;
  obs_lag : Fdb_obs.Registry.gauge;
  obs_window : Fdb_obs.Registry.gauge;
  obs_busy : Fdb_obs.Registry.gauge;
  obs_version : Fdb_obs.Registry.gauge;
  obs_durable : Fdb_obs.Registry.gauge;
  obs_heartbeat : Fdb_obs.Registry.gauge;
  (* per-shard traffic/size metrics, lazily registered as shards arrive *)
  shard_read_ctrs : (string, Fdb_obs.Registry.counter) Fdb_util.Det_tbl.t;
  shard_write_ctrs : (string, Fdb_obs.Registry.counter) Fdb_util.Det_tbl.t;
  shard_size_gauges : (string, Fdb_obs.Registry.gauge) Fdb_util.Det_tbl.t;
}

let hex_of_key k =
  String.concat "" (List.init (String.length k) (fun i -> Printf.sprintf "%02x" (Char.code k.[i])))

let version t = t.version
let durable_version t = t.durable
let window_events t = Window.event_count t.window

let time_version () = Int64.of_float (Engine.now () *. Types.versions_per_second)

let lag_seconds t =
  let lag = Int64.to_float (Int64.sub (time_version ()) t.version) /. Types.versions_per_second in
  if lag < 0.0 then 0.0 else lag

(* The served ranges come live from the shared shard map, so a runtime team
   change (Shard_map.set_team) takes effect on the next request — members
   removed from a team start answering Wrong_shard instead of silently
   serving (or silently missing) data. *)
let served_shards t = Shard_map.shards_of_storage t.ctx.Context.shard_map t.id

(* Ranges we must *apply mutations for*: everything served plus shards
   moving here (dual-tagged traffic arrives on our tag from begin_move on,
   and must be buffered so the post-snapshot suffix is not lost). *)
let applied_shards t = Shard_map.apply_ranges_of_storage t.ctx.Context.shard_map t.id

let in_shards t key =
  List.exists (fun (lo, hi) -> lo <= key && key < hi) (served_shards t)

let in_applied_shards t key =
  List.exists (fun (lo, hi) -> lo <= key && key < hi) (applied_shards t)

(* Does this server serve the whole [from, until)? Client sub-reads are
   per-shard fragments, so a single served range must cover it. *)
let covers t ~from ~until =
  from >= until
  || List.exists (fun (lo, hi) -> lo <= from && until <= hi) (served_shards t)

let clip_to_shards t ~from ~until =
  List.filter_map
    (fun (lo, hi) ->
      let f = if from > lo then from else lo in
      let u = if until < hi then until else hi in
      if f < u then Some (f, u) else None)
    (applied_shards t)

(* Snapshot floor for a key inside a fetched range: the pstore image already
   embodies every mutation <= the floor. *)
let incoming_floor t key =
  List.fold_left
    (fun acc (lo, hi, since) -> if lo <= key && key < hi && since > acc then since else acc)
    Int64.min_int t.incoming

let incoming_floor_range t ~from ~until =
  List.fold_left
    (fun acc (lo, hi, since) -> if lo < until && from < hi && since > acc then since else acc)
    Int64.min_int t.incoming

(* Value visible at [v] while applying version [v] itself: within one
   commit version, later mutations must observe earlier ones (atomic ops
   stack), so the probe version is the version being applied. *)
let read_for_apply t v key =
  match Window.read ~floor:(incoming_floor t key) t.window v key with
  | Window.Value value -> Some value
  | Window.Cleared -> None
  | Window.Unknown -> Pstore.get t.pstore key

(* Wake watchers of every key the (concrete) mutation touches whose watch
   version lies below [v]. No-op when the table is empty, so runs that
   never register a watch keep byte-identical event schedules. Promise
   callbacks run synchronously here; the woken handlers' replies are
   ordinary network sends. *)
let notify_watches t v (m : Mutation.t) =
  if Fdb_util.Det_tbl.length t.watches > 0 then begin
    let fire key =
      match Fdb_util.Det_tbl.find_opt t.watches key with
      | None -> ()
      | Some entries ->
          let fired, keep = List.partition (fun e -> v > e.we_version) entries in
          (match keep with
          | [] -> Fdb_util.Det_tbl.remove t.watches key
          | l -> Fdb_util.Det_tbl.replace t.watches key l);
          List.iter
            (fun e ->
              Fdb_obs.Registry.incr t.obs_watch_fires;
              Trace.emit "ss_watch_fire"
                [ ("ss", string_of_int t.id); ("key", String.escaped key);
                  ("v", Int64.to_string v) ];
              ignore (Future.try_fulfill e.we_promise v : bool))
            fired
    in
    match m with
    | Mutation.Set (k, _) | Mutation.Clear k -> fire k
    | Mutation.Clear_range (a, b) ->
        (* Det_tbl folds key-sorted, so the firing order is deterministic. *)
        let covered =
          Fdb_util.Det_tbl.fold
            (fun k _ acc -> if a <= k && k < b then k :: acc else acc)
            t.watches []
        in
        List.iter fire (List.rev covered)
    | Mutation.Atomic _ -> () (* materialized before reaching here *)
  end

let apply_mutation t v (m : Mutation.t) =
  let concrete =
    match m with
    | Mutation.Atomic (kind, key, operand) -> (
        let old_value = read_for_apply t v key in
        match Mutation.atomic_result kind ~old_value operand with
        | Some value -> Mutation.Set (key, value)
        | None -> Mutation.Clear key)
    | m -> m
  in
  Window.apply t.window v concrete;
  notify_watches t v concrete

(* ---------- per-shard traffic accounting (DD's rebalancing signal) ---------- *)

let shard_lo t key = fst (Shard_map.shard_range_for_key t.ctx.Context.shard_map key)

let shard_counter t cache stem lo =
  Fdb_util.Det_tbl.find_or_add cache lo (fun () ->
      Fdb_obs.Registry.counter t.ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
        ~process:t.id
        (Printf.sprintf "%s:%s" stem (hex_of_key lo)))

let note_read_traffic t key bytes =
  if bytes > 0 then
    let lo = shard_lo t key in
    Fdb_obs.Registry.incr ~by:bytes (shard_counter t t.shard_read_ctrs "shard_read_bytes" lo)

let note_write_traffic t key bytes =
  if bytes > 0 then
    let lo = shard_lo t key in
    Fdb_obs.Registry.incr ~by:bytes (shard_counter t t.shard_write_ctrs "shard_write_bytes" lo)

let wake_waiters t =
  let ready, waiting = List.partition (fun (v, _) -> v <= t.version) t.waiters in
  t.waiters <- waiting;
  (* A false fulfil would strand a read waiter forever: trace it. *)
  List.iter
    (fun (_, p) ->
      if not (Future.try_fulfill p ()) then Trace.emit "ss_waiter_lost" [])
    ready

let apply_entries t ~as_of_epoch entries end_v kcv =
  (* Strictly sequential: mutations must enter the window in version order.
     Abort if a newer generation was adopted mid-batch (the awaits below
     yield): these entries came from the old generation's logs and may sit
     above the rollback boundary. *)
  let rec go = function
    | [] -> Future.return ()
    | _ when t.epoch <> as_of_epoch -> Future.return ()
    | (v, muts) :: rest ->
        if v <= t.version then go rest
        else begin
          let bytes = List.fold_left (fun a m -> a + Mutation.byte_size m) 0 muts in
          let* () =
            Engine.cpu t.proc
              (Params.cpu
                 (Params.storage_per_apply
                 +. (Params.storage_per_apply_byte *. float_of_int bytes)))
          in
          List.iter
            (fun m ->
              let lo, hi = Mutation.key_range m in
              (* Only apply the parts of the mutation we serve or are
                 receiving as a move destination. *)
              match m with
              | Mutation.Clear_range _ ->
                  List.iter
                    (fun (f, u) ->
                      apply_mutation t v (Mutation.Clear_range (f, u));
                      note_write_traffic t f (Mutation.byte_size m))
                    (clip_to_shards t ~from:lo ~until:hi)
              | _ ->
                  if in_applied_shards t lo then begin
                    apply_mutation t v m;
                    note_write_traffic t lo (Mutation.byte_size m)
                  end)
            muts;
          if v > t.version then t.version <- v;
          go rest
        end
  in
  let* () = go entries in
  if t.epoch = as_of_epoch then begin
    if end_v > t.version then t.version <- end_v;
    if kcv > t.kcv then t.kcv <- kcv
  end;
  wake_waiters t;
  Future.return ()

(* ---------- log pulling (§2.4.3) ---------- *)

(* Only the k servers of Figure 2's per-tag replica set hold this tag's
   payload; failing over to any other log server would return an empty
   stream whose end-version still advances — silently skipping our own
   mutations. Rotate within the replica set only. *)
let preferred_log t =
  match t.logs with
  | [] -> None
  | logs ->
      let n = List.length logs in
      let k = min t.ctx.Context.config.Config.log_replication n in
      let replica = (t.id + (t.stale_pulls mod k)) mod n in
      Some (snd (List.nth logs replica))

(* Adopt a newer transaction-system generation. The rollback boundary is
   the RV of the FIRST recovery after our current epoch (from the RV
   history): later recoveries have higher RVs, under which our phantom
   (semi-committed, since rolled back) window data could survive. When the
   history has been trimmed past that entry, fall back to the always-safe
   durable floor (the persistent store only ever holds known-committed
   data). *)
let adopt t ~epoch ~rv ~history ~logs =
  if epoch > t.epoch then begin
    let boundary =
      List.fold_left
        (fun acc (e, erv) -> if e > t.epoch && erv < acc then erv else acc)
        rv history
    in
    let boundary =
      if List.exists (fun (e, _) -> e = t.epoch + 1) history then boundary
      else t.durable
    in
    let target = max boundary t.durable in
    Trace.emit "ss_adopt_state"
      [ ("ss", string_of_int t.id); ("epoch", string_of_int epoch);
        ("target", Int64.to_string target) ];
    t.epoch <- epoch;
    t.logs <- logs;
    if t.version > target then begin
      let dropped = Window.rollback t.window ~after:target in
      Trace.emit "ss_rollback"
        [ ("ss", string_of_int t.id); ("rv", Int64.to_string target);
          ("dropped", string_of_int dropped) ];
      t.version <- target
    end;
    t.stale_pulls <- 0
  end
  else if epoch = t.epoch then t.logs <- logs

(* When peeks keep failing, consult the coordinators for a newer
   transaction-system generation (the fallback path behind Ss_recover). *)
let refresh_from_coordinators t =
  if t.refreshing then Engine.sleep 0.1
  else begin
  t.refreshing <- true;
  Future.protect ~finally:(fun () -> t.refreshing <- false) @@ fun () ->
  let reg =
    Fdb_paxos.Register.create
      (Context.paxos_transport t.ctx ~from:t.proc)
      ~reg:"ts-state" ~proposer:(Context.proposer_id t.proc)
  in
  let* v = Fdb_paxos.Register.read_any reg in
  (match Option.bind v Message.decode_coordinated_state with
  | Some cs when cs.Message.cs_epoch > t.epoch ->
      adopt t ~epoch:cs.Message.cs_epoch ~rv:cs.Message.cs_recovery_version
        ~history:cs.Message.cs_rv_history ~logs:cs.Message.cs_logs
  | _ -> ());
  Future.return ()
  end

let pull_once t =
  match preferred_log t with
  | None -> refresh_from_coordinators t
  | Some log_ep ->
      let as_of_epoch = t.epoch in
      Future.catch
        (fun () ->
          let* reply =
            Context.rpc t.ctx ~timeout:1.0 ~from:t.proc log_ep
              (Message.Log_peek { tag = t.id; from_version = Int64.add t.version 1L })
          in
          match reply with
          | Message.Log_peek_reply { pk_entries; pk_end; pk_kcv } ->
              t.stale_pulls <- 0;
              (* fdb-lint: allow R5 -- deliberate pre-RPC snapshot: entries apply under the epoch in force when the peek was issued (Wrong_epoch protocol) *)
              apply_entries t ~as_of_epoch pk_entries pk_end pk_kcv
          | _ -> Future.return ())
        (function
          | Error.Fdb Error.Wrong_epoch ->
              (* The log server is locked: a recovery is in flight. *)
              t.stale_pulls <- t.stale_pulls + 1;
              refresh_from_coordinators t
          | exn ->
              Trace.emit "ss_pull_fail"
                [ ("ss", string_of_int t.id); ("exn", Printexc.to_string exn) ];
              t.stale_pulls <- t.stale_pulls + 1;
              if t.stale_pulls > 3 then refresh_from_coordinators t
              else Future.return ())

let pull_loop t =
  let rec loop () =
    if not t.alive then Future.return ()
    else
      (* Buggify: a sluggish pull loop widens the lag/rollback windows. *)
      let* () =
        Engine.sleep
          (Params.storage_peek_interval +. (Buggify.delay ~p:0.02 "ss_slow_peek" /. 5.0))
      in
      let* () = pull_once t in
      loop ()
  in
  loop ()

(* ---------- metrics publication (the shared metrics plane) ---------- *)

(* The Ratekeeper and the Status workload read these gauges instead of
   issuing a stats RPC scatter; the heartbeat gauge doubles as a liveness
   signal (a dead process stops publishing). *)
let publish_stats t =
  let busy = t.proc.Process.cpu_busy_until -. Engine.now () in
  Fdb_obs.Registry.set_gauge t.obs_lag (lag_seconds t);
  Fdb_obs.Registry.set_gauge t.obs_window (float_of_int (Window.event_count t.window));
  Fdb_obs.Registry.set_gauge t.obs_busy (if busy > 0.0 then busy else 0.0);
  Fdb_obs.Registry.set_gauge t.obs_version (Int64.to_float t.version);
  Fdb_obs.Registry.set_gauge t.obs_durable (Int64.to_float t.durable);
  Fdb_obs.Registry.set_gauge t.obs_heartbeat (Engine.now ())

(* Per-shard persistent size: a pstore range scan, so only refreshed every
   8th stats tick (~2 s) — cheap enough, fresh enough for DD split/merge
   decisions. *)
let publish_shard_sizes t =
  List.iter
    (fun (lo, hi) ->
      let bytes =
        List.fold_left
          (fun a (k, v) -> a + String.length k + String.length v)
          0
          (Pstore.get_range t.pstore ~from:lo ~until:hi ())
      in
      let g =
        Fdb_util.Det_tbl.find_or_add t.shard_size_gauges lo (fun () ->
            Fdb_obs.Registry.gauge t.ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
              ~process:t.id
              (Printf.sprintf "shard_size_bytes:%s" (hex_of_key lo)))
      in
      Fdb_obs.Registry.set_gauge g (float_of_int bytes))
    (served_shards t)

let stats_loop t =
  let rec loop () =
    if not t.alive then Future.return ()
    else
      let* () = Engine.sleep Params.heartbeat_interval in
      publish_stats t;
      t.stats_ticks <- t.stats_ticks + 1;
      if t.stats_ticks mod 8 = 0 then publish_shard_sizes t;
      loop ()
  in
  loop ()

(* ---------- durability (§2.4.3: delayed, coalesced persistence) ---------- *)

(* Subtract [lo, hi) from a segment, yielding the surviving pieces. *)
let subtract_range (f, u) (lo, hi) =
  if hi <= f || u <= lo then [ (f, u) ]
  else (if f < lo then [ (f, lo) ] else []) @ if u > hi then [ (hi, u) ] else []

(* A popped mutation at a version already embodied in a fetched snapshot
   must not be re-applied to the pstore: it could be a *stale* value (the
   snapshot was taken later) and would corrupt the fetched image. *)
let durable_filter t (v, (m : Mutation.t)) =
  match m with
  | Mutation.Set (k, _) | Mutation.Clear k -> if v <= incoming_floor t k then [] else [ m ]
  | Mutation.Clear_range (a, b) ->
      List.fold_left
        (fun segs (lo, hi, since) ->
          if since < v then segs
          else List.concat_map (fun seg -> subtract_range seg (lo, hi)) segs)
        [ (a, b) ] t.incoming
      |> List.map (fun (f, u) -> Mutation.Clear_range (f, u))
  | Mutation.Atomic _ -> [ m ]

let make_durable t =
  let window_versions =
    Int64.of_float (t.ctx.Context.config.Config.mvcc_window *. Types.versions_per_second)
  in
  let target =
    min t.kcv (Int64.sub t.version window_versions)
  in
  if t.fetches_in_flight > 0 then Future.return ()
  else if target > t.durable then begin
    let muts =
      List.concat_map (durable_filter t) (Window.pop_through_versioned t.window target)
    in
    (* Snapshot floors at or below the new durable horizon are spent: every
       stale window event has been popped (and filtered) above, and reads
       below them are already rejected by the Window.oldest gate. Drop the
       persisted markers along with the in-memory entries. *)
    let retired, keep = List.partition (fun (_, _, since) -> since <= target) t.incoming in
    t.incoming <- keep;
    let clears = List.map (fun (lo, _, _) -> Mutation.Clear (movein_key lo)) retired in
    let marker = Mutation.Set (version_meta_key, Types.version_to_bytes target) in
    let* () = Pstore.apply t.pstore (muts @ clears @ [ marker ]) in
    let* () = Pstore.commit t.pstore in
    (* Monotone re-read after the pstore yields (rule R5): never regress a
       durable horizon a concurrent pass already advanced. *)
    if target > t.durable then t.durable <- target;
    (* Tell the logs this data no longer needs them. *)
    List.iter
      (fun (_, ep) ->
        Network.send t.ctx.Context.net ~from:t.proc ep
          (Message.Log_pop { tag = t.id; up_to = target }))
      t.logs;
    Future.return ()
  end
  else Future.return ()

let durable_loop t =
  let rec loop () =
    if not t.alive then Future.return ()
    else
      let* () = Engine.sleep Params.storage_durable_interval in
      let* () = make_durable t in
      loop ()
  in
  loop ()

(* ---------- reads ---------- *)

let wait_for_version t v =
  if v <= t.version then Future.return true
  else begin
    let fut, promise = Future.make ~label:"ss.version_wait" () in
    t.waiters <- (v, promise) :: t.waiters;
    Future.catch
      (fun () -> Future.map (Engine.timeout Params.storage_read_wait fut) (fun () -> true))
      (function Engine.Timed_out -> Future.return false | e -> raise e)
  end

let read_at t version key =
  match Window.read ~floor:(incoming_floor t key) t.window version key with
  | Window.Value v -> Some v
  | Window.Cleared -> None
  | Window.Unknown -> Pstore.get t.pstore key

(* Merge the persistent image and the window overlay for a range read.
   Forward scan with chunked persistent reads; candidate keys come from
   both sources, visibility is decided per key at [version]. Stops at the
   row or byte budget (always returning at least one row when any is
   visible); [more = true] reports a budget cut, so the caller knows to
   drain the rest with a continuation round-trip. *)
let range_read t version ~from ~until ~limit ~byte_limit =
  let limit = min limit 10_000_000 in
  let chunk_size = min limit 10_000 + 16 in
  let out = ref [] in
  let count = ref 0 in
  let bytes = ref 0 in
  let cursor = ref from in
  let continue = ref true in
  let more = ref false in
  while !continue && !count < limit && !bytes < byte_limit && !cursor < until do
    let chunk = Pstore.get_range t.pstore ~limit:chunk_size ~from:!cursor ~until () in
    (* This pass covers [cursor, pass_until): either the whole remaining
       range (chunk exhausted the store) or up to the chunk's last key. *)
    let pass_until =
      if List.length chunk < chunk_size then until
      else Types.next_key (fst (List.nth chunk (List.length chunk - 1)))
    in
    let window_keys =
      Window.keys_in_range t.window ~from:!cursor ~until:pass_until
      |> List.filter (fun k -> not (List.mem_assoc k chunk))
    in
    let candidates = List.sort_uniq compare (List.map fst chunk @ window_keys) in
    List.iter
      (fun k ->
        if !count >= limit || !bytes >= byte_limit then more := true
        else
          match read_at t version k with
          | Some v ->
              out := (k, v) :: !out;
              incr count;
              bytes := !bytes + String.length k + String.length v
          | None -> ())
      candidates;
    cursor := pass_until;
    if pass_until >= until then continue := false
  done;
  if !continue && !cursor < until then more := true;
  (List.rev !out, !more)

let range_read_reverse t version ~from ~until ~limit ~byte_limit =
  let out = ref [] in
  let count = ref 0 in
  let bytes = ref 0 in
  let cursor = ref until in
  let window_keys =
    Window.keys_in_range t.window ~from ~until |> List.sort compare |> List.rev
  in
  let wk = ref window_keys in
  let continue = ref true in
  while !continue && !count < limit && !bytes < byte_limit do
    let p = Pstore.prev_entry t.pstore ~before:!cursor in
    let pk = match p with Some (k, _) when k >= from -> Some k | _ -> None in
    let wkey = match !wk with k :: _ when k < !cursor -> Some k | _ -> None in
    match (pk, wkey) with
    | None, None -> continue := false
    | _ ->
        let k =
          match (pk, wkey) with
          | Some a, Some b -> if a > b then a else b
          | Some a, None -> a
          | None, Some b -> b
          | None, None -> assert false
        in
        (match read_at t version k with
        | Some v ->
            out := (k, v) :: !out;
            incr count;
            bytes := !bytes + String.length k + String.length v
        | None -> ());
        cursor := k;
        wk := List.filter (fun x -> x < k) !wk
  done;
  (* [continue] still true here means a budget stop with candidates
     possibly remaining below the cursor. *)
  (List.rev !out, !continue)

(* ---------- RPC surface ---------- *)

(* Generation gate: a read version minted by a newer transaction-system
   generation must not be served until we adopt that generation (rolling
   back any semi-committed suffix) — otherwise a partitioned replica could
   serve stale or phantom data. *)
let ensure_epoch t rv_epoch =
  if rv_epoch <= t.epoch then Future.return true
  else
    let rec wait tries =
      if tries = 0 then Future.return (rv_epoch <= t.epoch)
      else
        let* () = refresh_from_coordinators t in
        if rv_epoch <= t.epoch then Future.return true
        else
          let* () = Engine.sleep 0.05 in
          wait (tries - 1)
    in
    wait 5

(* Load shedding: a read queued behind more CPU work than the client's
   timeout would burn a core for an answer nobody is waiting for — reject
   it cheaply instead (the spiral breaker real storage servers have). *)
let overloaded t =
  t.proc.Process.cpu_busy_until -. Engine.now () > Params.client_read_timeout

(* ---------- shard movement: destination-side fetch (§2.5) ---------- *)

(* Drain a committed snapshot of [from, until) at [version] from the current
   team, install it in the pstore under a [movein] floor, and ack. The DD
   has already begun the move, so our own tLog tag carries every mutation
   above [version] for the range — the floor makes window entries at or
   below it invisible (the snapshot embodies them) and the durable path
   skips re-applying them. *)
let fetch_shard t ~from ~until ~version ~epoch ~sources =
  let srcs = Array.of_list (List.filter (fun ss -> ss <> t.id) sources) in
  if Array.length srcs = 0 then
    Future.return (Message.Reject (Error.Internal "fetch: no source replica"))
  else if t.durable > version then
    (* Our durable horizon already passed the snapshot version: data above
       it is in the pstore and would be wiped by the install. *)
    Future.return (Message.Reject (Error.Internal "fetch: snapshot below durable horizon"))
  else begin
    t.fetches_in_flight <- t.fetches_in_flight + 1;
    Future.protect
      ~finally:(fun () -> t.fetches_in_flight <- t.fetches_in_flight - 1)
      (fun () ->
        let rec drain attempt cursor acc rows bytes =
          if attempt > 3 * Array.length srcs then Future.return None
          else begin
            let src = srcs.(attempt mod Array.length srcs) in
            let retry () =
              let* () = Engine.sleep 0.2 in
              drain (attempt + 1) cursor acc rows bytes
            in
            Future.catch
              (fun () ->
                let* reply =
                  Context.rpc t.ctx ~timeout:2.0 ~from:t.proc
                    t.ctx.Context.storage_eps.(src)
                    (Message.Storage_get_range
                       {
                         gr_from = cursor;
                         gr_until = until;
                         gr_version = version;
                         gr_limit = max_int;
                         gr_byte_limit = Params.range_bytes_want_all;
                         gr_reverse = false;
                         gr_epoch = epoch;
                       })
                in
                match reply with
                | Message.Storage_get_range_reply { rr_rows; rr_more } ->
                    let bytes =
                      List.fold_left
                        (fun a (k, v) -> a + String.length k + String.length v)
                        bytes rr_rows
                    in
                    let rows = rows + List.length rr_rows in
                    if rr_more && rr_rows <> [] then
                      let last = fst (List.nth rr_rows (List.length rr_rows - 1)) in
                      drain attempt (Types.next_key last) (rr_rows :: acc) rows bytes
                    else Future.return (Some (List.concat (List.rev (rr_rows :: acc)), rows, bytes))
                | _ -> retry ())
              (fun _ -> retry ())
          end
        in
        let* fetched = drain 0 from [] 0 0 in
        match fetched with
        | None -> Future.return (Message.Reject (Error.Internal "fetch: no source answered"))
        | Some (kvs, rows, bytes) ->
            let* () =
              Engine.cpu t.proc
                (Params.cpu (Params.storage_per_apply_byte *. float_of_int bytes))
            in
            if t.durable > version then
              Future.return
                (Message.Reject (Error.Internal "fetch: snapshot below durable horizon"))
            else begin
              (* Floor registration and the pstore install are synchronous
                 with each other (no yield between them), so no durability
                 pass can interleave a pop. *)
              t.incoming <-
                (from, until, version)
                :: List.filter (fun (lo, hi, _) -> not (lo = from && hi = until)) t.incoming;
              let muts =
                (Mutation.Clear_range (from, until)
                :: List.map (fun (k, v) -> Mutation.Set (k, v)) kvs)
                @ [ Mutation.Set (movein_key from, Types.version_to_bytes version ^ until) ]
              in
              let* () = Pstore.apply t.pstore muts in
              let* () = Pstore.commit t.pstore in
              Trace.emit "ss_shard_fetched"
                [ ("ss", string_of_int t.id); ("lo", String.escaped from);
                  ("rows", string_of_int rows);
                  ("since", Int64.to_string version) ];
              Future.return (Message.Ss_fetch_ack { fa_rows = rows; fa_bytes = bytes })
            end)
  end

(* Median-by-bytes key of a range (DD's organic split point). *)
let split_point t ~from ~until =
  let rows = Pstore.get_range t.pstore ~from ~until () in
  let total = List.fold_left (fun a (k, v) -> a + String.length k + String.length v) 0 rows in
  let acc = ref 0 and found = ref None in
  if total > 0 then
    List.iter
      (fun (k, v) ->
        if !found = None then begin
          if !acc * 2 >= total && k > from then found := Some k;
          acc := !acc + String.length k + String.length v
        end)
      rows;
  match !found with Some k when k > from && k < until -> Some k | _ -> None

let handle t (msg : Message.t) : Message.t Future.t =
  match msg with
  | Message.Seq_ping -> Future.return Message.Ok_reply
  | Message.Storage_get { key; version; rv_epoch } ->
      if overloaded t then Future.return (Message.Reject Error.Process_behind)
      else
      let t0 = Engine.now () in
      let* () = Engine.cpu t.proc (Params.cpu Params.storage_per_point_read) in
      let* current = ensure_epoch t rv_epoch in
      let* ok = if current then wait_for_version t version else Future.return false in
      if not (current && ok) then Future.return (Message.Reject Error.Future_version)
      else if version < Window.oldest t.window && Window.oldest t.window > 0L then begin
        Trace.emit "ss_too_old"
          [ ("ss", string_of_int t.id); ("rv", Int64.to_string version);
            ("oldest", Int64.to_string (Window.oldest t.window));
            ("version", Int64.to_string t.version);
            ("kcv", Int64.to_string t.kcv);
            ("durable", Int64.to_string t.durable) ];
        Future.return (Message.Reject Error.Transaction_too_old)
      end
      else if not (in_shards t key) then
        Future.return (Message.Reject Error.Wrong_shard)
      else if version < incoming_floor t key then
        (* The key arrived here by shard movement and the fetched snapshot
           cannot reconstruct state below its version: retryable. *)
        Future.return (Message.Reject Error.Transaction_too_old)
      else begin
        Fdb_obs.Registry.incr t.obs_reads;
        Fdb_obs.Registry.observe t.obs_read_lat (Engine.now () -. t0);
        let value = read_at t version key in
        note_read_traffic t key
          (String.length key + match value with Some v -> String.length v | None -> 0);
        Future.return (Message.Storage_get_reply value)
      end
  | Message.Storage_get_range
      { gr_from; gr_until; gr_version; gr_limit; gr_byte_limit; gr_reverse; gr_epoch } ->
      Fdb_obs.Registry.incr t.obs_range_reqs;
      if overloaded t then Future.return (Message.Reject Error.Process_behind)
      else if
        (* Buggify: an occasional spurious shed exercises the client's
           replica-failover path under simulation. *)
        Buggify.on ~p:0.1 "ss_flaky_range"
      then Future.return (Message.Reject Error.Process_behind)
      else
      let* current = ensure_epoch t gr_epoch in
      let* ok = if current then wait_for_version t gr_version else Future.return false in
      if not (current && ok) then Future.return (Message.Reject Error.Future_version)
      else if gr_version < Window.oldest t.window && Window.oldest t.window > 0L then
        Future.return (Message.Reject Error.Transaction_too_old)
      else if not (covers t ~from:gr_from ~until:gr_until) then
        Future.return (Message.Reject Error.Wrong_shard)
      else if gr_version < incoming_floor_range t ~from:gr_from ~until:gr_until then
        Future.return (Message.Reject Error.Transaction_too_old)
      else begin
        let results, more =
          if gr_reverse then
            range_read_reverse t gr_version ~from:gr_from ~until:gr_until ~limit:gr_limit
              ~byte_limit:gr_byte_limit
          else
            range_read t gr_version ~from:gr_from ~until:gr_until ~limit:gr_limit
              ~byte_limit:gr_byte_limit
        in
        let* () =
          Engine.cpu t.proc
            (Params.cpu
               (Params.storage_per_point_read
               +. (Params.storage_per_range_key *. float_of_int (List.length results))))
        in
        note_read_traffic t gr_from
          (List.fold_left (fun a (k, v) -> a + String.length k + String.length v) 0 results);
        Future.return (Message.Storage_get_range_reply { rr_rows = results; rr_more = more })
      end
  | Message.Storage_get_key
      { gk_from; gk_until; gk_reverse; gk_start; gk_need; gk_version; gk_epoch } ->
      (* Key-selector resolution (paper §2.2): walk gk_need visible keys at
         the read version, inside one served fragment. Resolution runs
         against the same MVCC window + persistent-store merge as range
         reads, so a selector observes exactly the snapshot it should. *)
      if overloaded t then Future.return (Message.Reject Error.Process_behind)
      else if Buggify.on ~p:0.1 "ss_flaky_range" then
        Future.return (Message.Reject Error.Process_behind)
      else
      let* current = ensure_epoch t gk_epoch in
      let* ok = if current then wait_for_version t gk_version else Future.return false in
      if not (current && ok) then Future.return (Message.Reject Error.Future_version)
      else if gk_version < Window.oldest t.window && Window.oldest t.window > 0L then
        Future.return (Message.Reject Error.Transaction_too_old)
      else if not (covers t ~from:gk_from ~until:gk_until) then
        Future.return (Message.Reject Error.Wrong_shard)
      else if gk_version < incoming_floor_range t ~from:gk_from ~until:gk_until then
        Future.return (Message.Reject Error.Transaction_too_old)
      else begin
        let need = max 1 gk_need in
        let rows, _ =
          if gk_reverse then
            let until = if gk_start < gk_until then gk_start else gk_until in
            range_read_reverse t gk_version ~from:gk_from ~until ~limit:need
              ~byte_limit:max_int
          else
            let from = if gk_start > gk_from then gk_start else gk_from in
            range_read t gk_version ~from ~until:gk_until ~limit:need ~byte_limit:max_int
        in
        let* () =
          Engine.cpu t.proc
            (Params.cpu
               (Params.storage_per_point_read
               +. (Params.storage_per_range_key *. float_of_int (List.length rows))))
        in
        let seen = List.length rows in
        if seen >= need then
          Future.return
            (Message.Storage_get_key_reply
               { kr_key = Some (fst (List.nth rows (need - 1))); kr_seen = seen })
        else Future.return (Message.Storage_get_key_reply { kr_key = None; kr_seen = seen })
      end
  | Message.Ss_recover { sr_epoch; sr_rv; sr_history; sr_logs } ->
      adopt t ~epoch:sr_epoch ~rv:sr_rv ~history:sr_history ~logs:sr_logs;
      Future.return (Message.Ss_recover_ack { version = t.version })
  | Message.Ss_stats_req ->
      let busy = t.proc.Process.cpu_busy_until -. Engine.now () in
      Future.return
        (Message.Ss_stats
           {
             ss_version = t.version;
             ss_durable = t.durable;
             ss_window_events = Window.event_count t.window;
             ss_lag = lag_seconds t;
             ss_busy = (if busy > 0.0 then busy else 0.0);
           })
  | Message.Ss_fetch_shard { fs_from; fs_until; fs_version; fs_epoch; fs_sources } ->
      (* Buggify: an occasionally failing fetch exercises the DD's
         abort-and-retry path under simulation. *)
      if Buggify.on ~p:0.05 "dd_fetch_abort" then
        Future.return (Message.Reject (Error.Internal "buggified fetch abort"))
      else
        fetch_shard t ~from:fs_from ~until:fs_until ~version:fs_version ~epoch:fs_epoch
          ~sources:fs_sources
  | Message.Ss_split_point { spl_from; spl_until } ->
      let* () = Engine.cpu t.proc (Params.cpu Params.storage_per_point_read) in
      Future.return (Message.Ss_split_point_reply { spl_key = split_point t ~from:spl_from ~until:spl_until })
  | Message.Ss_watch { w_key; w_version; w_epoch } ->
      (* Long-poll change notification (layer watches). Registration-time
         catch-up consults the window's per-key history, so a change that
         landed between the client's snapshot and this RPC — including one
         embodied while the shard moved to this server — fires immediately
         rather than being lost. *)
      Fdb_obs.Registry.incr t.obs_watch_reqs;
      let* current = ensure_epoch t w_epoch in
      if not current then Future.return (Message.Reject Error.Future_version)
      else if not (in_shards t w_key) then
        Future.return (Message.Reject Error.Wrong_shard)
      else if
        (w_version < Window.oldest t.window && Window.oldest t.window > 0L)
        || w_version < incoming_floor t w_key
      then
        (* The window cannot prove the key unchanged since [w_version]: the
           client treats this as a conservative wake and re-checks. *)
        Future.return (Message.Reject Error.Transaction_too_old)
      else begin
        match Window.last_change ~floor:(incoming_floor t w_key) t.window w_key with
        | Some cv when cv > w_version ->
            Fdb_obs.Registry.incr t.obs_watch_fires;
            Trace.emit "ss_watch_catchup"
              [ ("ss", string_of_int t.id); ("key", String.escaped w_key);
                ("v", Int64.to_string cv) ];
            Future.return (Message.Ss_watch_reply { wr_fired = true; wr_version = cv })
        | _ ->
            t.watch_seq <- t.watch_seq + 1;
            let id = t.watch_seq in
            let fut, promise = Future.make () in
            let entry = { we_id = id; we_version = w_version; we_promise = promise } in
            Fdb_util.Det_tbl.replace t.watches w_key
              (match Fdb_util.Det_tbl.find_opt t.watches w_key with
              | Some l -> l @ [ entry ]
              | None -> [ entry ]);
            Trace.emit "ss_watch_register"
              [ ("ss", string_of_int t.id); ("key", String.escaped w_key) ];
            Future.catch
              (fun () ->
                let* v = Engine.timeout !Params.watch_poll_timeout fut in
                Future.return (Message.Ss_watch_reply { wr_fired = true; wr_version = v }))
              (function
                | Engine.Timed_out ->
                    (* Poll window over: drop the registration (re-reading
                       the table — rule R5, the poll yielded) and resolve
                       the promise so nothing dangles. *)
                    (match Fdb_util.Det_tbl.find_opt t.watches w_key with
                    | Some l -> (
                        match List.filter (fun e -> e.we_id <> id) l with
                        | [] -> Fdb_util.Det_tbl.remove t.watches w_key
                        | l -> Fdb_util.Det_tbl.replace t.watches w_key l)
                    | None -> ());
                    ignore (Future.try_break promise Engine.Timed_out : bool);
                    if not (in_shards t w_key) then
                      (* The shard moved away mid-poll: a registration here
                         would never fire again — send the client back to
                         re-resolution. *)
                      Future.return (Message.Reject Error.Wrong_shard)
                    else
                      Future.return
                        (Message.Ss_watch_reply
                           { wr_fired = false; wr_version = t.version })
                | e -> Future.fail e)
      end
  | _ -> Future.return (Message.Reject (Error.Internal "storage: unexpected message"))

let rec create ctx proc ~id ~disk =
  let* pstore = Pstore.recover ~disk ~prefix:(Printf.sprintf "ss%d" id) () in
  let start_version =
    match Pstore.get pstore version_meta_key with
    | Some bytes -> Types.version_of_bytes bytes
    | None -> 0L
  in
  (* Reload snapshot floors for ranges fetched as a move destination: after
     a reboot the log replays from the durable version, which may sit below
     a fetched snapshot — replayed mutations at or below the floor must stay
     invisible/unapplied exactly as before the crash. *)
  let incoming =
    Pstore.get_range pstore ~from:movein_prefix ~until:(Types.strinc movein_prefix) ()
    |> List.filter_map (fun (k, v) ->
           if String.length v < 8 then None
           else begin
             let lo = String.sub k (String.length movein_prefix) (String.length k - String.length movein_prefix) in
             let since = Types.version_of_bytes (String.sub v 0 8) in
             let hi = String.sub v 8 (String.length v - 8) in
             Some (lo, hi, since)
           end)
  in
  let t =
    {
      ctx;
      proc;
      ep = ctx.Context.storage_eps.(id);
      id;
      disk;
      pstore;
      window = Window.create ~initial_version:start_version ();
      version = start_version;
      durable = start_version;
      kcv = start_version;
      epoch = 0;
      logs = [];
      waiters = [];
      stale_pulls = 0;
      refreshing = false;
      alive = true;
      incoming;
      fetches_in_flight = 0;
      stats_ticks = 0;
      obs_read_lat =
        Fdb_obs.Registry.histogram ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "read_latency";
      obs_reads =
        Fdb_obs.Registry.counter ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "reads";
      obs_lag =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "lag";
      obs_window =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "window_events";
      obs_busy =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "busy";
      obs_version =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "version";
      obs_durable =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "durable_version";
      obs_heartbeat =
        Fdb_obs.Registry.gauge ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "heartbeat";
      shard_read_ctrs = Fdb_util.Det_tbl.create ~size:32 ();
      shard_write_ctrs = Fdb_util.Det_tbl.create ~size:32 ();
      shard_size_gauges = Fdb_util.Det_tbl.create ~size:32 ();
      watch_seq = 0;
      watches = Fdb_util.Det_tbl.create ~size:16 ();
      obs_range_reqs =
        Fdb_obs.Registry.counter ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "range_requests";
      obs_watch_reqs =
        Fdb_obs.Registry.counter ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "watch_requests";
      obs_watch_fires =
        Fdb_obs.Registry.counter ctx.Context.metrics ~role:Fdb_obs.Registry.Storage
          ~process:id "watch_fires";
    }
  in
  publish_stats t;
  Disk.attach disk proc;
  Network.register ctx.Context.net t.ep proc (handle t);
  Engine.spawn ~process:proc "ss-pull" (fun () -> pull_loop t);
  Engine.spawn ~process:proc "ss-durable" (fun () -> durable_loop t);
  Engine.spawn ~process:proc "ss-stats" (fun () -> stats_loop t);
  proc.Process.boot <-
    (fun () ->
      Engine.spawn ~process:proc "ss-reboot" (fun () ->
          let* _t = create ctx proc ~id ~disk in
          Future.return ()));
  Future.return t
