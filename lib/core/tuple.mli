(** The tuple layer: FDB's canonical order-preserving encoding.

    The paper's "foundational building blocks" (§1) include the tuple
    encoding every layer builds on (the Record Layer [28], directories,
    indexes): typed tuples serialize to byte strings whose lexicographic
    order equals the natural order of the tuples. This implements the
    core of FDB's tuple spec: null, byte strings, unicode strings,
    variable-length signed integers, floats, booleans, and nested tuples. *)

type element =
  | Null
  | Bytes of string
  | String of string  (** UTF-8 text (escaped like byte strings) *)
  | Int of int64  (** order-preserving variable-length encoding *)
  | Float of float  (** IEEE-754 with sign-flip trick for ordering *)
  | Bool of bool
  | Nested of element list

type t = element list

val pack : t -> string
(** Serialize; for all tuples [a], [b]: [compare a b] agrees with
    [String.compare (pack a) (pack b)] (the ordering contract). *)

val unpack : string -> t
(** Inverse of {!pack}. Raises [Invalid_argument] on malformed input. *)

val compare_elements : t -> t -> int
(** Natural order on tuples: element-wise, by type code then value —
    exactly the order {!pack} preserves. *)

val range : t -> string * string
(** [range t] is the key range containing every tuple that extends [t]
    (the standard "subspace range" used for prefix scans). *)

val subspace : t -> t -> string
(** [subspace prefix t] packs [t] inside [prefix] (concatenation — sound
    because the encoding is prefix-order-compatible). *)

val pp : Format.formatter -> t -> unit
