open Fdb_sim

type host = { h_machine : Process.machine; h_disks : Disk.t array }

type t = {
  ctx : Context.t;
  host : host;
  machine_id : int;
  ep : int;
  mutable proc : Process.t;
  mutable cc : Cluster_controller.t option;
}

let is_cluster_controller t = t.cc <> None

let role_process t name = Process.create ~name t.host.h_machine

(* Each LogServer gets the machine's dedicated log disk (disk 0), like the
   paper's one-SSD-per-LogServer binding. *)
let log_disk t = t.host.h_disks.(0)

let handle t (msg : Message.t) : Message.t Future.t =
  match msg with
  (* Buggify: refuse a recruitment now and then so recovery's walk-on
     placement path gets exercised. *)
  | Message.Recruit_log _ | Message.Recruit_proxy _ | Message.Recruit_resolver _
    when Buggify.on ~p:0.1 "worker_refuse_recruit" ->
      Future.return (Message.Reject (Error.Internal "buggify: recruit refused"))
  | Message.Worker_ping -> Future.return Message.Worker_pong
  | Message.Seq_ping -> Future.return Message.Ok_reply
  | Message.Recruit_log { rl_epoch; rl_id; rl_start_lsn } ->
      let proc = role_process t (Printf.sprintf "tlog-%d.%d" rl_epoch rl_id) in
      let _, ep =
        Log_server.create t.ctx proc ~disk:(log_disk t) ~epoch:rl_epoch ~id:rl_id
          ~start_lsn:rl_start_lsn
      in
      Future.return (Message.Recruited { endpoint = ep })
  | Message.Recruit_resolver { rr_epoch; rr_range; rr_start_lsn } ->
      let proc = role_process t (Printf.sprintf "resolver-%d" rr_epoch) in
      let _, ep =
        Resolver.create t.ctx proc ~epoch:rr_epoch ~range:rr_range
          ~start_lsn:rr_start_lsn
      in
      Future.return (Message.Recruited { endpoint = ep })
  | Message.Recruit_proxy
      { rp_epoch; rp_sequencer; rp_resolvers; rp_logs; rp_ratekeeper; rp_recovery_version }
    ->
      let proc = role_process t (Printf.sprintf "proxy-%d" rp_epoch) in
      let _, ep =
        Proxy.create t.ctx proc ~epoch:rp_epoch ~sequencer:rp_sequencer
          ~resolvers:rp_resolvers ~logs:rp_logs ~ratekeeper:rp_ratekeeper
          ~recovery_version:rp_recovery_version
      in
      Future.return (Message.Recruited { endpoint = ep })
  | Message.Recruit_sequencer { rs_ratekeeper } ->
      let proc = role_process t "sequencer" in
      let _, ep = Sequencer.create t.ctx proc ~ratekeeper:rs_ratekeeper in
      Future.return (Message.Recruited { endpoint = ep })
  | Message.Recruit_ratekeeper ->
      let proc = role_process t "ratekeeper" in
      let _, ep = Ratekeeper.create t.ctx proc in
      Future.return (Message.Recruited { endpoint = ep })
  | Message.Recruit_data_distributor ->
      let proc = role_process t "data-distributor" in
      let _, ep = Data_distributor.create t.ctx proc in
      Future.return (Message.Recruited { endpoint = ep })
  | Message.Cc_get_state -> (
      match t.cc with
      | Some cc -> Future.return (Cluster_controller.state_reply cc)
      | None -> Future.return (Message.Reject (Error.Internal "not the cluster controller")))
  | _ -> Future.return (Message.Reject (Error.Internal "worker: unexpected message"))

let start_election t proc =
  if t.machine_id < t.ctx.Context.config.Config.cc_candidates then begin
    let reg =
      Fdb_paxos.Register.create
        (Context.paxos_transport t.ctx ~from:proc)
        ~reg:"cc-leader" ~proposer:(Context.proposer_id proc)
    in
    (* The election handle is owned by its callbacks; the worker never
       stops campaigning explicitly. *)
    ignore
      (Fdb_paxos.Election.start reg
         ~self:(string_of_int t.machine_id)
         ~lease:Params.lease_duration
         ~on_elected:(fun () -> t.cc <- Some (Cluster_controller.start t.ctx proc))
         ~on_deposed:(fun () ->
           match t.cc with
           | Some cc ->
               Cluster_controller.stop cc;
               t.cc <- None
           | None -> ())
         ()
       : Fdb_paxos.Election.t)
  end

let boot t () =
  let proc = t.proc in
  Network.register t.ctx.Context.net t.ep proc (handle t);
  t.cc <- None;
  start_election t proc

let create ctx host ~machine_id =
  let proc = Process.create ~name:(Printf.sprintf "worker-%d" machine_id) host.h_machine in
  let t =
    { ctx; host; machine_id; ep = ctx.Context.worker_eps.(machine_id); proc; cc = None }
  in
  proc.Process.boot <- (fun () -> boot t ());
  Engine.schedule ~process:proc (fun () -> boot t ());
  t
