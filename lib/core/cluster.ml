open Fdb_sim
open Future.Syntax

type t = {
  ctx : Context.t;
  hosts : Worker.host array;
  workers : Worker.t array;
  rollup : Fdb_obs.Rollup.t;
  mutable client_count : int;
}

let context t = t.ctx
let metrics t = t.ctx.Context.metrics

(* A fresh per-role aggregate of the metrics plane (the rollup actor also
   refreshes one every second; this computes it on demand). *)
let status_doc t = Fdb_obs.Rollup.snapshot ~now:(Engine.now ()) t.ctx.Context.metrics
let latest_status_doc t = Fdb_obs.Rollup.latest t.rollup
let worker_machines t = Array.map (fun h -> h.Worker.h_machine) t.hosts

let coordinator_machines t =
  Array.sub (worker_machines t) 0 t.ctx.Context.config.Config.coordinators

let log_bytes t =
  Array.fold_left
    (fun acc h -> Array.fold_left (fun a d -> a +. Disk.bytes_written d) acc h.Worker.h_disks)
    0.0 t.hosts

let create ?(config = Config.default) () =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cluster.create: " ^ msg));
  let net : Message.t Network.t = Network.create () in
  let hosts =
    Array.init config.Config.machines (fun i ->
        let machine =
          Process.fresh_machine
            ~dc:(Config.region_of_machine config i)
            ~rack:(Printf.sprintf "rack%d" (i mod config.Config.racks))
            i
        in
        let disks =
          Array.init config.Config.disks_per_machine (fun d ->
              Disk.create ~name:(Printf.sprintf "m%d-disk%d" i d) ())
        in
        { Worker.h_machine = machine; h_disks = disks })
  in
  (* Cross-region links get WAN latency (paper §5.1 measures ~60 ms). *)
  for a = 1 to config.Config.regions do
    for b = a + 1 to config.Config.regions do
      Network.set_dc_latency net
        (Printf.sprintf "dc%d" a) (Printf.sprintf "dc%d" b) 0.03
    done
  done;
  let coordinator_eps =
    List.init config.Config.coordinators (fun _ -> Network.fresh_endpoint net)
  in
  let worker_eps = Array.init config.Config.machines (fun _ -> Network.fresh_endpoint net) in
  let n_ss = Config.storage_count config in
  let storage_eps = Array.init n_ss (fun _ -> Network.fresh_endpoint net) in
  let ctx =
    {
      Context.net;
      config;
      shard_map = Shard_map.build config;
      coordinator_eps;
      worker_eps;
      storage_eps;
      metrics = Fdb_obs.Registry.create ();
    }
  in
  (* Coordinators: processes on the first machines, own disk slice. *)
  List.iteri
    (fun i ep ->
      let host = hosts.(i) in
      let proc = Process.create ~name:(Printf.sprintf "coordinator-%d" i) host.Worker.h_machine in
      let disk = host.Worker.h_disks.(Array.length host.Worker.h_disks - 1) in
      Coordinator.start ctx proc ~disk ~endpoint:ep)
    coordinator_eps;
  (* Storage servers: one process per server, spread over the data disks. *)
  for ss = 0 to n_ss - 1 do
    let machine_idx = ss / config.Config.storage_per_machine in
    let host = hosts.(machine_idx) in
    let disk_count = Array.length host.Worker.h_disks in
    let disk =
      host.Worker.h_disks.(1 + (ss mod (max 1 (disk_count - 2))))
    in
    let proc =
      Process.create ~name:(Printf.sprintf "storage-%d" ss) host.Worker.h_machine
    in
    Engine.schedule ~process:proc (fun () ->
        Engine.spawn ~process:proc "ss-start" (fun () ->
            let* _t = Storage_server.create ctx proc ~id:ss ~disk in
            Future.return ()))
  done;
  (* Worker agents (recruitment + CC election). *)
  let workers =
    Array.init config.Config.machines (fun i -> Worker.create ctx hosts.(i) ~machine_id:i)
  in
  let rollup = Fdb_obs.Rollup.start ctx.Context.metrics in
  { ctx; hosts; workers; rollup; client_count = 0 }

let next_client_machine_id = 100_000

let client t ~name =
  t.client_count <- t.client_count + 1;
  let machine =
    Process.fresh_machine ~dc:"dc1" ~rack:"client-rack"
      (next_client_machine_id + t.client_count)
  in
  let proc = Process.create ~name machine in
  Client.create_db t.ctx proc

let wait_ready ?(timeout = 60.0) t =
  let probe = client t ~name:"ready-probe" in
  let deadline = Engine.now () +. timeout in
  let rec loop () =
    if Engine.now () > deadline then
      Future.fail (Error.Fdb (Error.Internal "cluster: not ready before timeout"))
    else begin
      let* () = Client.refresh probe in
      let* ok =
        Future.catch
          (fun () ->
            let* v =
              Client.run probe ~max_attempts:1 (fun tx ->
                  Client.get_read_version tx)
            in
            Future.return (v >= 0L))
          (fun _ -> Future.return false)
      in
      if ok then Future.return ()
      else
        let* () = Engine.sleep 0.25 in
        loop ()
    end
  in
  loop ()

let current_epoch t =
  let (_probe : Client.db) = client t ~name:"epoch-probe" in
  let transport = Context.paxos_transport t.ctx ~from:(
    let machine = Process.fresh_machine ~dc:"dc1" 999_999 in
    Process.create ~name:"epoch-query" machine)
  in
  let reg =
    Fdb_paxos.Register.create transport ~reg:"ts-state" ~proposer:999_999
  in
  let* v = Fdb_paxos.Register.read_any reg in
  match Option.bind v Message.decode_coordinated_state with
  | Some cs -> Future.return cs.Message.cs_epoch
  | None -> Future.return 0
