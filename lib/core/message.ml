type key_range = string * string

(* A key selector, wire form (paper §2.2 / the FDB bindings' KeySelector).
   Resolution: find the last key [<= sel_key] (or [< sel_key] when
   [sel_or_equal] is false), then move [sel_offset] keys forward in key
   order. The client decomposes resolution into per-shard walks. *)
type key_selector = { sel_key : string; sel_or_equal : bool; sel_offset : int }

type client_mutation =
  | Plain of Fdb_kv.Mutation.t
  | Versionstamped_key of { template : string; offset : int; value : string }
  | Versionstamped_value of { key : string; template : string; offset : int }

type txn_request = {
  tr_read_version : Types.version;
  tr_reads : key_range list;
  tr_writes : key_range list;
  tr_mutations : client_mutation list;
}

type resolver_verdict = V_commit | V_conflict | V_too_old

type coordinated_state = {
  cs_epoch : Types.epoch;
  cs_logs : (int * int) list;
  cs_log_replication : int;
  cs_recovery_version : Types.version;
  cs_rv_history : (Types.epoch * Types.version) list;
}

let encode_coordinated_state (cs : coordinated_state) = Marshal.to_string cs []

let decode_coordinated_state s =
  match (Marshal.from_string s 0 : coordinated_state) with
  | cs -> Some cs
  | exception _ -> None

type log_entry = {
  le_lsn : Types.version;
  le_prev : Types.version;
  le_kcv : Types.version;
  le_payload : (Types.tag * Fdb_kv.Mutation.t list) list;
}

type t =
  | Ok_reply
  | Reject of Error.t
  | Paxos_req of Fdb_paxos.Wire.request
  | Paxos_resp of Fdb_paxos.Wire.response
  | Worker_ping
  | Worker_pong
  | Recruit_sequencer of { rs_ratekeeper : int option }
  | Recruit_proxy of {
      rp_epoch : Types.epoch;
      rp_sequencer : int;
      rp_resolvers : (key_range * int) list;
      rp_logs : (int * int) list;
      rp_ratekeeper : int option;
      rp_recovery_version : Types.version;
    }
  | Recruit_resolver of {
      rr_epoch : Types.epoch;
      rr_range : key_range;
      rr_start_lsn : Types.version;
    }
  | Recruit_log of { rl_epoch : Types.epoch; rl_id : int; rl_start_lsn : Types.version }
  | Recruit_ratekeeper
  | Recruit_data_distributor
  | Recruited of { endpoint : int }
  | Cc_get_state
  | Cc_state of {
      st_epoch : Types.epoch;
      st_proxies : int list;
      st_logs : (int * int) list;
      st_recovery_version : Types.version;
      st_recovered : bool;
      st_dd : int option; (* DataDistributor worker, when recruited *)
    }
  | Seq_ping
  | Seq_pong of {
      sp_epoch : Types.epoch;
      sp_recovered : bool;
      sp_proxies : int list;
      sp_logs : (int * int) list;
      sp_rv : Types.version;
    }
  | Grv_req
  | Grv_reply of { gv_version : Types.version; gv_epoch : Types.epoch }
  | Commit_req of txn_request
  | Commit_reply of Types.version
  | Seq_grv
  | Seq_grv_reply of { read_version : Types.version; grv_epoch : Types.epoch }
  | Seq_version
  | Seq_version_reply of { version : Types.version; prev : Types.version }
  | Seq_report of { committed : Types.version }
  | Resolve_req of {
      rs_epoch : Types.epoch;
      rs_lsn : Types.version;
      rs_prev : Types.version;
      rs_txns : (Types.version * key_range list * key_range list) array;
    }
  | Resolve_reply of resolver_verdict array
  | Log_push of { lp_epoch : Types.epoch; lp_entry : log_entry }
  | Log_push_ack of { durable_version : Types.version }
  | Log_peek of { tag : Types.tag; from_version : Types.version }
  | Log_peek_reply of {
      pk_entries : (Types.version * Fdb_kv.Mutation.t list) list;
      pk_end : Types.version;
      pk_kcv : Types.version;
    }
  | Log_pop of { tag : Types.tag; up_to : Types.version }
  | Log_lock of { ll_epoch : Types.epoch }
  | Log_lock_reply of {
      lk_kcv : Types.version;
      lk_dv : Types.version;
      lk_entries : log_entry list;
    }
  | Log_seed of { ls_entries : log_entry list }
  | Ss_recover of {
      sr_epoch : Types.epoch;
      sr_rv : Types.version;
      sr_history : (Types.epoch * Types.version) list;
      sr_logs : (int * int) list;
    }
  | Ss_recover_ack of { version : Types.version }
  | Storage_get of { key : string; version : Types.version; rv_epoch : Types.epoch }
  | Storage_get_reply of string option
  | Storage_get_range of {
      gr_from : string;
      gr_until : string;
      gr_version : Types.version;
      gr_limit : int;
      gr_byte_limit : int;
      gr_reverse : bool;
      gr_epoch : Types.epoch;
    }
  | Storage_get_range_reply of {
      rr_rows : (string * string) list;
      rr_more : bool;
          (* true: the reply was cut by the row/byte budget; drain the rest
             of the range with a continuation round-trip *)
    }
  | Storage_get_key of {
      gk_from : string; (* fragment to search, within one shard *)
      gk_until : string;
      gk_reverse : bool; (* walk direction *)
      gk_start : string;
          (* walk origin: forward walks consider keys >= gk_start, reverse
             walks consider keys < gk_start (both clipped to the fragment) *)
      gk_need : int; (* resolve to the gk_need-th visible key (>= 1) *)
      gk_version : Types.version;
      gk_epoch : Types.epoch;
    }
  | Storage_get_key_reply of {
      kr_key : string option;
          (* Some k: the walk resolved inside the fragment *)
      kr_seen : int;
          (* keys consumed toward the offset when the walk ran off the
             fragment edge (kr_key = None): the client continues in the
             next shard with gk_need reduced by this *)
    }
  | Rk_get_rate
  | Rk_rate of { tps : float }
  | Ss_stats_req
  | Ss_stats of {
      ss_version : Types.version;
      ss_durable : Types.version;
      ss_window_events : int;
      ss_lag : float;
      ss_busy : float;
    }
  | Ss_fetch_shard of {
      fs_from : string;
      fs_until : string;
      fs_version : Types.version; (* committed snapshot version to fetch at *)
      fs_epoch : Types.epoch;
      fs_sources : int list; (* current team members to fetch from *)
    }
  | Ss_fetch_ack of { fa_rows : int; fa_bytes : int }
  | Ss_split_point of { spl_from : string; spl_until : string }
  | Ss_split_point_reply of { spl_key : string option }
      (* median-by-bytes key of the range, when one strictly inside exists *)
  | Ss_watch of { w_key : string; w_version : Types.version; w_epoch : Types.epoch }
  | Ss_watch_reply of { wr_fired : bool; wr_version : Types.version }

let name = function
  | Ok_reply -> "Ok_reply"
  | Reject _ -> "Reject"
  | Paxos_req _ -> "Paxos_req"
  | Paxos_resp _ -> "Paxos_resp"
  | Worker_ping -> "Worker_ping"
  | Worker_pong -> "Worker_pong"
  | Recruit_sequencer _ -> "Recruit_sequencer"
  | Recruit_proxy _ -> "Recruit_proxy"
  | Recruit_resolver _ -> "Recruit_resolver"
  | Recruit_log _ -> "Recruit_log"
  | Recruit_ratekeeper -> "Recruit_ratekeeper"
  | Recruit_data_distributor -> "Recruit_data_distributor"
  | Recruited _ -> "Recruited"
  | Cc_get_state -> "Cc_get_state"
  | Cc_state _ -> "Cc_state"
  | Seq_ping -> "Seq_ping"
  | Seq_pong _ -> "Seq_pong"
  | Grv_req -> "Grv_req"
  | Grv_reply _ -> "Grv_reply"
  | Commit_req _ -> "Commit_req"
  | Commit_reply _ -> "Commit_reply"
  | Seq_grv -> "Seq_grv"
  | Seq_grv_reply _ -> "Seq_grv_reply"
  | Seq_version -> "Seq_version"
  | Seq_version_reply _ -> "Seq_version_reply"
  | Seq_report _ -> "Seq_report"
  | Resolve_req _ -> "Resolve_req"
  | Resolve_reply _ -> "Resolve_reply"
  | Log_push _ -> "Log_push"
  | Log_push_ack _ -> "Log_push_ack"
  | Log_peek _ -> "Log_peek"
  | Log_peek_reply _ -> "Log_peek_reply"
  | Log_pop _ -> "Log_pop"
  | Log_lock _ -> "Log_lock"
  | Log_lock_reply _ -> "Log_lock_reply"
  | Log_seed _ -> "Log_seed"
  | Ss_recover _ -> "Ss_recover"
  | Ss_recover_ack _ -> "Ss_recover_ack"
  | Storage_get _ -> "Storage_get"
  | Storage_get_reply _ -> "Storage_get_reply"
  | Storage_get_range _ -> "Storage_get_range"
  | Storage_get_range_reply _ -> "Storage_get_range_reply"
  | Storage_get_key _ -> "Storage_get_key"
  | Storage_get_key_reply _ -> "Storage_get_key_reply"
  | Rk_get_rate -> "Rk_get_rate"
  | Rk_rate _ -> "Rk_rate"
  | Ss_stats_req -> "Ss_stats_req"
  | Ss_stats _ -> "Ss_stats"
  | Ss_fetch_shard _ -> "Ss_fetch_shard"
  | Ss_fetch_ack _ -> "Ss_fetch_ack"
  | Ss_split_point _ -> "Ss_split_point"
  | Ss_split_point_reply _ -> "Ss_split_point_reply"
  | Ss_watch _ -> "Ss_watch"
  | Ss_watch_reply _ -> "Ss_watch_reply"

let pp fmt m = Format.pp_print_string fmt (name m)
