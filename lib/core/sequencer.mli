(** The Sequencer: version authority and recovery orchestrator.

    On creation (recruited by the ClusterController) it runs the §2.4.4
    recovery: lock the coordinated state, stop the previous epoch's
    LogServers, compute PEV = max KCV and RV = min DV, recruit and seed a
    new transaction system, write the new configuration to the
    coordinators, and tell StorageServers to roll back past RV. Afterwards
    it hands out read versions (max acknowledged commit) and commit
    versions (monotonic, ~1M/s, forming the LSN chain), and monitors its
    proxies / resolvers / LogServers — any failure makes it terminate so
    the ClusterController starts the next generation (§2.3.5). *)

type t

val create : Context.t -> Fdb_sim.Process.t -> ratekeeper:int option -> t * int
(** Instantiate on a process and return its endpoint. Registration and the
    recovery actor start immediately; the sequencer serves
    [Reject Database_locked] until recovery completes. *)

val epoch : t -> Types.epoch
val is_recovered : t -> bool
val is_dead : t -> bool
val recovery_version : t -> Types.version
val proxies : t -> int list
