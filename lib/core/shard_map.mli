(** Key-range sharding and replica-team placement (paper §2.5).

    The key space is split into contiguous shards; each shard is served by a
    {e team} of [storage_replication] StorageServers whose members are
    placed in distinct fault domains where possible (the hierarchical
    replication policy of §2.5). Each StorageServer has a unique {e tag}
    (equal to its id) naming its mutation stream on the LogServers. *)

type t

val build : Config.t -> t
(** Deterministic initial placement for a deployment. *)

val shard_count : t -> int

val generation : t -> int
(** Bumped on every runtime team change; clients compare it to detect a
    stale shard resolution. *)

val set_team : t -> shard:int -> team:int list -> unit
(** Reassign a shard's replica team at runtime (bumps {!generation}). No
    data movement is modelled: only shrink/permute a team, or grow it with
    servers that already hold the data. Storage servers consult the map
    live, so members removed from a team start answering [Wrong_shard]. *)

val team_for_key : t -> string -> int list
(** StorageServer ids replicating the shard that contains the key. *)

val shards_for_range :
  t -> from:string -> until:string -> (string * string * int list) list
(** Shard fragments covering [\[from, until)]: each element is the
    intersected range and its team. *)

val shards_of_storage : t -> int -> (string * string) list
(** Ranges a given StorageServer serves. *)

val tags_for_mutation : t -> Fdb_kv.Mutation.t -> int list
(** All tags (StorageServer ids) that must receive the mutation. *)

val tag_teams : t -> int list array
(** For each shard index, the team (for tests / status). *)

val ranges : t -> (string * string) array
(** Shard boundaries. *)
