(** Key-range sharding and replica-team placement (paper §2.5), with runtime
    reconfiguration (paper §2.3.1).

    The key space is split into contiguous shards; each shard is served by a
    {e team} of [storage_replication] StorageServers whose members are
    placed in distinct fault domains where possible (the hierarchical
    placement of §2.5, degraded gracefully for tiny clusters).

    At runtime the DataDistributor splits hot shards, merges cold adjacent
    ones, and moves shards between teams with a fetch-then-cutover protocol.
    A shard mid-move keeps two views: the {e read} view ({!shards_of_storage},
    {!team_for_key}, {!shards_for_range}) still names the current team, while
    the {e apply/tag} view ({!tags_for_mutation}, {!apply_ranges_of_storage})
    already includes the destination — so every mutation committed after
    {!begin_move} is dual-tagged and streams to the newcomers' tLog tags
    while they fetch the snapshot. {!commit_move} flips the read view in a
    single synchronous mutation.

    Every runtime change bumps {!generation} (clients holding an older
    generation get [Wrong_shard] and re-resolve), folds into
    {!history_checksum} (the swarm's shard-schedule determinism oracle), and
    emits a [shard_map_update] trace event. *)

type t

val build : Config.t -> t
(** Deterministic initial placement for a deployment. *)

val shard_count : t -> int

val generation : t -> int
(** Bumped on every runtime change; the version clients cache. *)

val history_checksum : t -> int64
(** FNV-1a fold of every runtime change since {!build}. Two runs of the same
    seed must end with equal checksums — the shard-move-schedule oracle. *)

(** {1 Lookup (read view)} *)

val team_for_key : t -> string -> int list
(** The team currently {e serving} the key (excludes move destinations). *)

val shard_range_for_key : t -> string -> string * string
(** [(lo, hi)] of the shard containing the key. *)

val shards_for_range :
  t -> from:string -> until:string -> (string * string * int list) list
(** Serving fragments tiling [\[from, until)]: [(frag_lo, frag_hi, team)]. *)

val shards_of_storage : t -> int -> (string * string) list
(** Ranges server [ss] currently {e serves reads for} (its read view). *)

val apply_ranges_of_storage : t -> int -> (string * string) list
(** Ranges server [ss] must {e apply mutations for}: everything it serves
    plus shards moving {e to} it (superset of {!shards_of_storage}). *)

val tags_for_mutation : t -> Fdb_kv.Mutation.t -> int list
(** Storage tags a mutation must reach: the serving team(s) of every shard
    it overlaps, plus the destination team of any such shard mid-move. *)

val tag_teams : t -> int list array
(** Snapshot of per-shard serving teams, index-aligned with {!ranges}. *)

val ranges : t -> (string * string) array
(** Snapshot of shard boundaries, ascending. *)

val pending_moves : t -> (string * string * int list * float) list
(** In-flight moves: [(lo, hi, dst_team, started_at)]. *)

(** {1 Runtime reconfiguration}

    All mutators bump {!generation} and emit [shard_map_update]. *)

val set_team : t -> shard:int -> team:int list -> unit
(** Reassign shard [shard] (by index) to [team] directly — the pre-movement
    primitive, kept for tests and healing paths that know the data is
    already in place. Raises [Invalid_argument] on an empty team. *)

val split : t -> at:string -> (unit, string) result
(** Split the shard containing [at] into [\[lo, at)] and [\[at, hi)]; both
    halves keep the team. Fails if [at] is a shard boundary or the shard is
    mid-move. *)

val merge_at : t -> lo:string -> (unit, string) result
(** Merge the shard starting at [lo] with its successor. Requires equal
    teams and neither shard mid-move. *)

val begin_move : t -> lo:string -> dst:int list -> (string * string * int list, string) result
(** Start moving the shard starting at [lo] to team [dst]: from now on
    mutations are dual-tagged to both teams. Returns [(lo, hi, src_team)]
    for the mover. Fails if already moving, [dst] is empty/out-of-range, or
    [dst] equals the current team. *)

val commit_move : t -> lo:string -> dst:int list -> (unit, string) result
(** Cut over: the destination becomes the serving team, atomically (a single
    synchronous mutation — no reader can observe a half-moved shard). [dst]
    must match the pending move so a stale mover racing an abort + re-move
    cannot commit the wrong team. *)

val abort_move : t -> lo:string -> (unit, string) result
(** Cancel an in-flight move; the current team keeps serving. *)
