open Fdb_sim
open Future.Syntax
module Register = Fdb_paxos.Register

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  ratekeeper : int option;
  mutable rv_history : (Types.epoch * Types.version) list;
  mutable epoch : Types.epoch;
  mutable recovered : bool;
  mutable dead : bool;
  mutable last_version : Types.version; (* last issued commit version *)
  mutable committed : Types.version; (* max acknowledged commit version *)
  mutable rv : Types.version; (* this epoch's recovery version *)
  mutable proxies : int list;
  mutable resolvers : (Message.key_range * int) list;
  mutable logs : (int * int) list;
}

let epoch t = t.epoch
let is_recovered t = t.recovered
let is_dead t = t.dead
let recovery_version t = t.rv
let proxies t = t.proxies

let die t reason =
  if not t.dead then begin
    t.dead <- true;
    Trace.emit "sequencer_die" [ ("epoch", string_of_int t.epoch); ("reason", reason) ];
    Network.unregister t.ctx.Context.net t.ep
  end

(* ---------- recovery (paper §2.4.4) ---------- *)

(* Stop the previous generation's LogServers and gather their KCV/DV and
   unpopped entries. Needs at least m - k + 1 replies so every tag's data is
   covered by some responder. *)
let lock_old_logs t (old : Message.coordinated_state) =
  let m = List.length old.Message.cs_logs in
  let needed = m - old.Message.cs_log_replication + 1 in
  let rec gather () =
    if t.dead then Future.fail (Error.Fdb Error.Wrong_epoch)
    else begin
      let calls =
        List.map
          (fun (_, ep) ->
            Future.catch
              (fun () ->
                let* reply =
                  Context.rpc t.ctx ~timeout:1.0 ~from:t.proc ep
                    (Message.Log_lock { ll_epoch = t.epoch })
                in
                match reply with
                | Message.Log_lock_reply { lk_kcv; lk_dv; lk_entries } ->
                    Future.return (Some (lk_kcv, lk_dv, lk_entries))
                | _ -> Future.return None)
              (fun _ -> Future.return None))
          old.Message.cs_logs
      in
      let* replies = Future.all calls in
      let got = List.filter_map Fun.id replies in
      if List.length got >= needed then Future.return got
      else
        let* () = Engine.sleep 0.3 in
        gather ()
    end
  in
  gather ()

(* Merge the unpopped entries of all responding old LogServers: same LSN on
   different servers carries different tags' payloads. *)
let merge_entries (replies : (Types.version * Types.version * Message.log_entry list) list) rv =
  let module Det_tbl = Fdb_util.Det_tbl in
  let table : (Types.version, Message.log_entry) Det_tbl.t = Det_tbl.create ~size:1024 () in
  List.iter
    (fun (_, _, entries) ->
      List.iter
        (fun (e : Message.log_entry) ->
          if e.Message.le_lsn <= rv then
            match Det_tbl.find_opt table e.Message.le_lsn with
            | None -> Det_tbl.add table e.Message.le_lsn e
            | Some existing ->
                let merged =
                  List.fold_left
                    (fun acc (tag, muts) ->
                      if List.mem_assoc tag acc then acc else (tag, muts) :: acc)
                    existing.Message.le_payload e.Message.le_payload
                in
                Det_tbl.replace table e.Message.le_lsn
                  { existing with Message.le_payload = merged })
        entries)
    replies;
  (* LSN-sorted by Det_tbl's key order already. *)
  List.map snd (Det_tbl.to_sorted_list table)

(* Ask workers to host a role, walking machines round-robin from [offset]
   until one answers. Retries forever: recovery cannot proceed without the
   role, and the ClusterController will replace us if we take too long. *)
let recruit_one t ~offset ~used msg =
  let machines = Array.length t.ctx.Context.worker_eps in
  let rec attempt d =
    if t.dead then Future.fail (Error.Fdb Error.Wrong_epoch)
    else if d >= machines then
      let* () = Engine.sleep 0.5 in
      attempt 0
    else begin
      let m = (offset + d) mod machines in
      if List.mem m !used && d < machines - 1 then attempt (d + 1)
      else
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc t.ctx ~timeout:1.0 ~from:t.proc
                t.ctx.Context.worker_eps.(m) msg
            in
            match reply with
            | Message.Recruited { endpoint } ->
                used := m :: !used;
                Future.return endpoint
            | _ -> Future.fail (Error.Fdb (Error.Internal "bad recruit reply")))
          (fun _ -> attempt (d + 1))
    end
  in
  attempt 0

(* Key-range partition for resolvers: even two-byte-prefix split, mirroring
   Shard_map's boundaries. *)
let resolver_ranges n =
  let boundary i =
    if i = 0 then ""
    else if i >= n then Types.system_key_space_end
    else
      let x = i * 65536 / n in
      String.init 2 (fun b -> Char.chr ((x lsr (8 * (1 - b))) land 0xff))
  in
  List.init n (fun i -> (boundary i, boundary (i + 1)))

(* Which LogServers replicate a tag: the preferred server plus the next
   k - 1, as in Figure 2. *)
let logs_for_tag ~n_logs ~replication tag =
  List.init (min replication n_logs) (fun i -> (tag + i) mod n_logs)

let seed_new_logs t ~entries ~log_eps ~replication =
  let n_logs = List.length log_eps in
  let for_log i =
    List.filter_map
      (fun (e : Message.log_entry) ->
        let mine =
          List.filter
            (fun (tag, _) -> List.mem i (logs_for_tag ~n_logs ~replication tag))
            e.Message.le_payload
        in
        if mine = [] then None else Some { e with Message.le_payload = mine })
      entries
  in
  let seeds =
    List.mapi
      (fun i (_, ep) ->
        let mine = for_log i in
        if mine = [] then Future.return ()
        else
          let* _ =
            Context.rpc t.ctx ~timeout:5.0 ~from:t.proc ep
              (Message.Log_seed { ls_entries = mine })
          in
          Future.return ())
      log_eps
  in
  Future.all_unit seeds

let broadcast_ss_recover t =
  Array.iter
    (fun ep ->
      Engine.spawn ~process:t.proc "ss-recover-cast" (fun () ->
          Future.catch
            (fun () ->
              let* _ =
                Context.rpc t.ctx ~timeout:2.0 ~from:t.proc ep
                  (Message.Ss_recover
                     {
                       sr_epoch = t.epoch;
                       sr_rv = t.rv;
                       sr_history = t.rv_history;
                       sr_logs = t.logs;
                     })
              in
              Future.return ())
            (fun _ -> Future.return ())))
    t.ctx.Context.storage_eps

let time_version () = Int64.of_float (Engine.now () *. Types.versions_per_second)

let recover t =
  let reg =
    Register.create
      (Context.paxos_transport t.ctx ~from:t.proc)
      ~reg:"ts-state" ~proposer:(Context.proposer_id t.proc)
  in
  let* old_value = Register.lock_and_read reg in
  let old = Option.bind old_value Message.decode_coordinated_state in
  t.epoch <- (match old with Some o -> o.Message.cs_epoch + 1 | None -> 1);
  Trace.emit "recovery_begin" [ ("epoch", string_of_int t.epoch) ];
  (* Phase 1: stop the old LogServers and establish PEV / RV. *)
  let* rv, seed_entries =
    match old with
    | None -> Future.return (0L, [])
    | Some o when o.Message.cs_logs = [] -> Future.return (o.Message.cs_recovery_version, [])
    | Some o ->
        let* replies = lock_old_logs t o in
        let pev = List.fold_left (fun acc (kcv, _, _) -> max acc kcv) 0L replies in
        let rv =
          List.fold_left (fun acc (_, dv, _) -> min acc dv) Int64.max_int replies
        in
        let rv = max rv pev in
        let entries = merge_entries replies rv in
        Trace.emit "recovery_locked"
          [ ("pev", Int64.to_string pev); ("rv", Int64.to_string rv);
            ("entries", string_of_int (List.length entries)) ];
        Future.return (rv, entries)
  in
  t.rv <- rv;
  (let old_history = match old with Some o -> o.Message.cs_rv_history | None -> [] in
   let rec trim n = function [] -> [] | _ when n = 0 -> [] | x :: tl -> x :: trim (n - 1) tl in
   t.rv_history <- trim 64 ((t.epoch, rv) :: old_history));
  if t.dead then Future.return ()
  else begin
    (* Phase 2: recruit the new generation. *)
    let cfg = t.ctx.Context.config in
    let used = ref [ t.proc.Process.machine.Process.machine_id ] in
    let recruit_list n mk =
      let rec go i acc =
        if i = n then Future.return (List.rev acc)
        else
          let* ep = recruit_one t ~offset:(t.epoch + i) ~used (mk i) in
          go (i + 1) (ep :: acc)
      in
      go 0 []
    in
    let* log_raw =
      recruit_list cfg.Config.log_servers (fun i ->
          Message.Recruit_log { rl_epoch = t.epoch; rl_id = i; rl_start_lsn = rv })
    in
    let log_eps = List.mapi (fun i ep -> (i, ep)) log_raw in
    (* fdb-lint: allow R5 -- Context.t is immutable: cfg cannot go stale across the recruit yields *)
    let ranges = resolver_ranges cfg.Config.resolvers in
    let* resolver_raw =
      let rec go i acc =
        if i = cfg.Config.resolvers then Future.return (List.rev acc)
        else
          let range = List.nth ranges i in
          let* ep =
            recruit_one t ~offset:(t.epoch + 7 + i) ~used
              (Message.Recruit_resolver
                 { rr_epoch = t.epoch; rr_range = range; rr_start_lsn = rv })
          in
          go (i + 1) ((range, ep) :: acc)
      in
      go 0 []
    in
    (* Phase 3: seed the new logs with the old unpopped history (this both
       heals replication for [PEV+1, RV] and lets lagging StorageServers
       catch up on older data). *)
    let* () =
      seed_new_logs t ~entries:seed_entries ~log_eps
        ~replication:cfg.Config.log_replication
    in
    if t.dead then Future.return ()
    else begin
      t.logs <- log_eps;
      t.resolvers <- resolver_raw;
      (* Phase 4: write the new coordinated state; losing the lock here
         means another recovery superseded us. *)
      let state =
        Message.encode_coordinated_state
          {
            Message.cs_epoch = t.epoch;
            cs_logs = log_eps;
            cs_log_replication = cfg.Config.log_replication;
            cs_recovery_version = rv;
            cs_rv_history = t.rv_history;
          }
      in
      let* () =
        Future.catch
          (fun () -> Register.write reg state)
          (fun e ->
            die t "lock lost during recovery";
            Future.fail e)
      in
      (* Phase 5: recruit proxies (they can start committing immediately). *)
      let* proxy_eps =
        recruit_list cfg.Config.proxies (fun _rank ->
            Message.Recruit_proxy
              {
                rp_epoch = t.epoch;
                rp_sequencer = t.ep;
                rp_resolvers = t.resolvers;
                rp_logs = t.logs;
                rp_ratekeeper = t.ratekeeper;
                rp_recovery_version = rv;
              })
      in
      t.proxies <- proxy_eps;
      (* The LSN chain must start exactly at RV: resolvers and new logs
         were recruited with start_lsn = RV, so the first batch's prev
         must be RV. Later versions jump to time-based values. *)
      t.last_version <- rv;
      t.committed <- rv;
      t.recovered <- true;
      Trace.emit "recovery_complete"
        [ ("epoch", string_of_int t.epoch); ("rv", Int64.to_string rv) ];
      (* Phase 6: the "special recovery transaction": tell StorageServers
         the RV, the new logs, and the new epoch. *)
      broadcast_ss_recover t;
      Future.return ()
    end
  end

(* ---------- monitoring (§2.3.5: any TS/LS failure ends the epoch) ---------- *)

let monitor t =
  (* Progress watchdog: if commit versions are outstanding but nothing gets
     acknowledged for a long time, the LSN chain has a hole (e.g. a version
     handed out whose batch was never pushed) — only a new generation can
     unwedge that. *)
  let stagnant_since = ref None in
  let check_progress () =
    if t.last_version > t.committed then begin
      match !stagnant_since with
      | None -> stagnant_since := Some (Engine.now (), t.committed)
      | Some (_, c) when c <> t.committed ->
          stagnant_since := Some (Engine.now (), t.committed)
      | Some (since, _) ->
          if Engine.now () -. since > 5.0 then die t "commit pipeline stalled"
    end
    else stagnant_since := None
  in
  let rec loop () =
    if t.dead then Future.return ()
    else
      let* () = Engine.sleep Params.heartbeat_interval in
      if not t.recovered then loop ()
      else begin
        check_progress ();
        let targets =
          t.proxies @ List.map snd t.resolvers @ List.map snd t.logs
        in
        let checks =
          List.map
            (fun ep ->
              Future.catch
                (fun () ->
                  let* reply =
                    Context.rpc t.ctx ~timeout:Params.heartbeat_timeout ~from:t.proc ep
                      Message.Seq_ping
                  in
                  match reply with Message.Ok_reply -> Future.return true | _ -> Future.return false)
                (fun _ -> Future.return false))
            targets
        in
        let* oks = Future.all checks in
        if List.exists not oks then begin
          die t "role failure detected";
          Future.return ()
        end
        else loop ()
      end
  in
  loop ()

(* ---------- request handling ---------- *)

let handle t (msg : Message.t) : Message.t Future.t =
  if t.dead then Future.return (Message.Reject Error.Wrong_epoch)
  else
    match msg with
    | Message.Seq_ping ->
        Future.return
          (Message.Seq_pong
             {
               sp_epoch = t.epoch;
               sp_recovered = t.recovered;
               sp_proxies = t.proxies;
               sp_logs = t.logs;
               sp_rv = t.rv;
             })
    | Message.Seq_grv ->
        if not t.recovered then Future.return (Message.Reject Error.Database_locked)
        else if Buggify.on ~p:0.01 "seq_grv_reject" then
          Future.return (Message.Reject Error.Database_locked)
        else
          let* () = Engine.cpu t.proc Params.sequencer_per_request in
          Future.return (Message.Seq_grv_reply { read_version = t.committed; grv_epoch = t.epoch })
    | Message.Seq_version ->
        if not t.recovered then Future.return (Message.Reject Error.Database_locked)
        else begin
          let* () = Engine.cpu t.proc Params.sequencer_per_request in
          let v =
            let tv = time_version () in
            if tv > Int64.add t.last_version 1L then tv else Int64.add t.last_version 1L
          in
          let prev = t.last_version in
          t.last_version <- v;
          Future.return (Message.Seq_version_reply { version = v; prev })
        end
    | Message.Seq_report { committed } ->
        (* A pipelined proxy keeps several batches in flight and serializes
           only its *sends*: report RPCs for consecutive LSNs may overlap on
           the wire, and with several proxies reports interleave arbitrarily.
           The max-merge makes any in-order-per-proxy delivery safe — each
           proxy only reports an LSN after all its smaller LSNs are durable,
           so [t.committed] never exposes a non-durable prefix. *)
        if committed > t.committed then t.committed <- committed;
        Trace.emit "seq_report" [ ("lsn", Int64.to_string committed) ];
        Future.return Message.Ok_reply
    | _ -> Future.return (Message.Reject (Error.Internal "sequencer: unexpected message"))

let create ctx proc ~ratekeeper =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let t =
    {
      ctx;
      proc;
      ep;
      ratekeeper;
      rv_history = [];
      epoch = 0;
      recovered = false;
      dead = false;
      last_version = 0L;
      committed = 0L;
      rv = 0L;
      proxies = [];
      resolvers = [];
      logs = [];
    }
  in
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "sequencer-recovery" (fun () ->
      Future.catch
        (fun () -> recover t)
        (fun exn ->
          die t ("recovery failed: " ^ Printexc.to_string exn);
          Future.return ()));
  Engine.spawn ~process:proc "sequencer-monitor" (fun () -> monitor t);
  (t, ep)
