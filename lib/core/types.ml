type version = int64
type tag = int
type epoch = int

let versions_per_second = 1e6
let invalid_version = -1L
let key_space_end = "\xff"
let system_key_space_end = "\xff\xff"
let next_key k = k ^ "\x00"

let strinc prefix =
  let n = String.length prefix in
  let rec last_incrementable i =
    if i < 0 then invalid_arg "Types.strinc: key has no incrementable byte"
    else if prefix.[i] <> '\xff' then i
    else last_incrementable (i - 1)
  in
  let i = last_incrementable (n - 1) in
  String.sub prefix 0 i ^ String.make 1 (Char.chr (Char.code prefix.[i] + 1))

let range_of_prefix prefix = (prefix, strinc prefix)

let key_size_limit = 10_000
let value_size_limit = 100_000
let transaction_size_limit = 10_000_000

let version_to_bytes v =
  String.init 8 (fun i -> Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xff))

let version_of_bytes s =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  !v
