type t = {
  boundaries : (string * string) array; (* shard i covers [fst, snd) *)
  teams : int list array; (* shard i -> storage server ids *)
  mutable per_ss : (string * string) list array; (* ss id -> ranges served *)
  config : Config.t;
  mutable generation : int; (* bumped on every runtime team change *)
}

(* Shard boundaries are two-byte prefixes splitting [""; "\xff\xff") evenly.
   User keys hash into them by their leading bytes; the final shard also
   covers the system key space. *)
let boundary shards i =
  if i = 0 then ""
  else if i >= shards then Types.system_key_space_end
  else begin
    let x = i * 65536 / shards in
    String.init 2 (fun b -> Char.chr ((x lsr (8 * (1 - b))) land 0xff))
  end

let machine_of_ss config ss = ss / config.Config.storage_per_machine
let rack_of_machine config m = m mod config.Config.racks

(* Pick a team for shard [i]: walk storage servers from an offset, greedily
   preferring new racks, then new machines, then anything — the §2.5
   hierarchical placement, degraded gracefully for tiny clusters. *)
let pick_team config n_ss i =
  let k = min config.Config.storage_replication n_ss in
  let start = i mod n_ss in
  let chosen = ref [] in
  let used_machines = ref [] and used_racks = ref [] in
  let try_pass accept =
    for d = 0 to n_ss - 1 do
      let ss = (start + d) mod n_ss in
      if List.length !chosen < k && not (List.mem ss !chosen) then begin
        let m = machine_of_ss config ss in
        let r = rack_of_machine config m in
        if accept m r then begin
          chosen := !chosen @ [ ss ];
          used_machines := m :: !used_machines;
          used_racks := r :: !used_racks
        end
      end
    done
  in
  try_pass (fun m r -> (not (List.mem m !used_machines)) && not (List.mem r !used_racks));
  try_pass (fun m _ -> not (List.mem m !used_machines));
  try_pass (fun _ _ -> true);
  !chosen

let build config =
  let n_ss = Config.storage_count config in
  let boundaries =
    match config.Config.shard_boundaries with
    | [] ->
        let shards = max 1 (n_ss * config.Config.shards_per_storage) in
        Array.init shards (fun i -> (boundary shards i, boundary shards (i + 1)))
    | splits ->
        let splits = List.sort_uniq compare splits in
        let points = ("" :: splits) @ [ Types.system_key_space_end ] in
        let arr = Array.of_list points in
        Array.init (Array.length arr - 1) (fun i -> (arr.(i), arr.(i + 1)))
  in
  let shards = Array.length boundaries in
  let teams = Array.init shards (fun i -> pick_team config n_ss i) in
  let per_ss = Array.make n_ss [] in
  Array.iteri
    (fun i team ->
      let range = boundaries.(i) in
      List.iter (fun ss -> per_ss.(ss) <- range :: per_ss.(ss)) team)
    teams;
  Array.iteri (fun i l -> per_ss.(i) <- List.rev l) per_ss;
  { boundaries; teams; per_ss; config; generation = 0 }

let shard_count t = Array.length t.boundaries
let generation t = t.generation

let rebuild_per_ss t =
  let n_ss = Array.length t.per_ss in
  let per_ss = Array.make n_ss [] in
  Array.iteri
    (fun i team ->
      List.iter (fun ss -> per_ss.(ss) <- t.boundaries.(i) :: per_ss.(ss)) team)
    t.teams;
  Array.iteri (fun i l -> per_ss.(i) <- List.rev l) per_ss;
  t.per_ss <- per_ss

(* Runtime team reassignment (the data-distribution plane's move primitive).
   No data movement is modelled: callers may only shrink or permute a team,
   or grow it with servers that already hold the data. Readers that resolved
   the old team learn about the change through Wrong_shard rejections. *)
let set_team t ~shard ~team =
  if team = [] then invalid_arg "Shard_map.set_team: empty team";
  t.teams.(shard) <- team;
  t.generation <- t.generation + 1;
  rebuild_per_ss t;
  Fdb_sim.Trace.emit "shard_map_set_team"
    [ ("shard", string_of_int shard);
      ("team", String.concat "," (List.map string_of_int team));
      ("generation", string_of_int t.generation) ]

(* Binary search for the shard containing [key]. *)
let shard_index t key =
  let lo = ref 0 and hi = ref (Array.length t.boundaries - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if fst t.boundaries.(mid) <= key then lo := mid else hi := mid - 1
  done;
  !lo

let team_for_key t key = t.teams.(shard_index t key)

let shards_for_range t ~from ~until =
  if from >= until then []
  else begin
    let first = shard_index t from in
    let out = ref [] in
    let i = ref first in
    let continue = ref true in
    while !continue && !i < Array.length t.boundaries do
      let lo, hi = t.boundaries.(!i) in
      if lo >= until then continue := false
      else begin
        let f = if lo > from then lo else from in
        let u = if hi < until then hi else until in
        if f < u then out := (f, u, t.teams.(!i)) :: !out;
        incr i
      end
    done;
    List.rev !out
  end

let shards_of_storage t ss = t.per_ss.(ss)

let tags_for_mutation t (m : Fdb_kv.Mutation.t) =
  let from, until = Fdb_kv.Mutation.key_range m in
  shards_for_range t ~from ~until
  |> List.concat_map (fun (_, _, team) -> team)
  |> List.sort_uniq compare

let tag_teams t = t.teams
let ranges t = t.boundaries
