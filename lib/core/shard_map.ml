(* Key-range sharding with runtime reconfiguration (paper §2.3.1, §2.5).

   Shards are kept as a sorted array of immutable records; every runtime
   mutation (split / merge / team change / move state transition) replaces
   the array, bumps the generation counter, folds itself into a history
   checksum (the swarm's shard-schedule determinism oracle) and emits a
   [shard_map_update] trace event.

   A shard mid-move carries its destination team ([dst]): reads keep being
   served by the current team until the cutover, but the *apply/tag* view
   ([tags_for_mutation], [apply_ranges_of_storage]) already includes the
   destination, so every mutation committed after [begin_move] is
   dual-tagged and reaches the newcomers through their own tLog streams
   while they fetch the snapshot. *)

type shard = {
  s_lo : string;
  s_hi : string; (* covers [s_lo, s_hi) *)
  s_team : int list;
  s_dst : int list option; (* in-flight move destination team *)
  s_started : float; (* move begin time (sim seconds); 0 when idle *)
}

type t = {
  mutable shards : shard array;
  mutable per_ss_read : (string * string) list array; (* serving view *)
  mutable per_ss_apply : (string * string) list array; (* serving + incoming *)
  mutable generation : int; (* bumped on every runtime change *)
  mutable history : int64; (* FNV-1a fold of every runtime change *)
}

(* Shard boundaries are two-byte prefixes splitting [""; "\xff\xff") evenly.
   User keys hash into them by their leading bytes; the final shard also
   covers the system key space. *)
let boundary shards i =
  if i = 0 then ""
  else if i >= shards then Types.system_key_space_end
  else begin
    let x = i * 65536 / shards in
    String.init 2 (fun b -> Char.chr ((x lsr (8 * (1 - b))) land 0xff))
  end

let machine_of_ss config ss = ss / config.Config.storage_per_machine
let rack_of_machine config m = m mod config.Config.racks

(* Pick a team for shard [i]: walk storage servers from an offset, greedily
   preferring new racks, then new machines, then anything — the §2.5
   hierarchical placement, degraded gracefully for tiny clusters. *)
let pick_team config n_ss i =
  let k = min config.Config.storage_replication n_ss in
  let start = i mod n_ss in
  let chosen = ref [] in
  let used_machines = ref [] and used_racks = ref [] in
  let try_pass accept =
    for d = 0 to n_ss - 1 do
      let ss = (start + d) mod n_ss in
      if List.length !chosen < k && not (List.mem ss !chosen) then begin
        let m = machine_of_ss config ss in
        let r = rack_of_machine config m in
        if accept m r then begin
          chosen := !chosen @ [ ss ];
          used_machines := m :: !used_machines;
          used_racks := r :: !used_racks
        end
      end
    done
  in
  try_pass (fun m r -> (not (List.mem m !used_machines)) && not (List.mem r !used_racks));
  try_pass (fun m _ -> not (List.mem m !used_machines));
  try_pass (fun _ _ -> true);
  !chosen

let rebuild_per_ss t =
  let n_ss = Array.length t.per_ss_read in
  let read = Array.make n_ss [] and apply = Array.make n_ss [] in
  Array.iter
    (fun s ->
      let range = (s.s_lo, s.s_hi) in
      List.iter (fun ss -> read.(ss) <- range :: read.(ss)) s.s_team;
      let appliers =
        match s.s_dst with
        | None -> s.s_team
        | Some dst -> List.sort_uniq compare (s.s_team @ dst)
      in
      List.iter (fun ss -> apply.(ss) <- range :: apply.(ss)) appliers)
    t.shards;
  Array.iteri (fun i l -> read.(i) <- List.rev l) read;
  Array.iteri (fun i l -> apply.(i) <- List.rev l) apply;
  t.per_ss_read <- read;
  t.per_ss_apply <- apply

(* FNV-1a over the textual description of a runtime change: two runs of the
   same seed must perform byte-identical shard-schedule mutations. *)
let fnv_fold h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let team_str team = String.concat "," (List.map string_of_int team)

let record_change t ~op ~shard fields =
  t.generation <- t.generation + 1;
  let summary =
    Printf.sprintf "%s|%s|%s|%s|%d" op shard.s_lo shard.s_hi (team_str shard.s_team)
      t.generation
  in
  t.history <- fnv_fold t.history summary;
  rebuild_per_ss t;
  Fdb_sim.Trace.emit "shard_map_update"
    ([ ("op", op); ("lo", String.escaped shard.s_lo);
       ("team", team_str shard.s_team);
       ("generation", string_of_int t.generation) ]
    @ fields)

let build config =
  let n_ss = Config.storage_count config in
  let boundaries =
    match config.Config.shard_boundaries with
    | [] ->
        let shards = max 1 (n_ss * config.Config.shards_per_storage) in
        Array.init shards (fun i -> (boundary shards i, boundary shards (i + 1)))
    | splits ->
        let splits = List.sort_uniq compare splits in
        let points = ("" :: splits) @ [ Types.system_key_space_end ] in
        let arr = Array.of_list points in
        Array.init (Array.length arr - 1) (fun i -> (arr.(i), arr.(i + 1)))
  in
  let shards =
    Array.mapi
      (fun i (lo, hi) ->
        { s_lo = lo; s_hi = hi; s_team = pick_team config n_ss i; s_dst = None;
          s_started = 0.0 })
      boundaries
  in
  let t =
    {
      shards;
      per_ss_read = Array.make n_ss [];
      per_ss_apply = Array.make n_ss [];
      generation = 0;
      history = 0xcbf29ce484222325L;
    }
  in
  rebuild_per_ss t;
  t

let shard_count t = Array.length t.shards
let generation t = t.generation
let history_checksum t = t.history

(* Binary search for the shard containing [key]. *)
let shard_index t key =
  let lo = ref 0 and hi = ref (Array.length t.shards - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.shards.(mid).s_lo <= key then lo := mid else hi := mid - 1
  done;
  !lo

let shard_index_at t lo =
  let i = shard_index t lo in
  if t.shards.(i).s_lo = lo then Some i else None

let team_for_key t key = t.shards.(shard_index t key).s_team

let shard_range_for_key t key =
  let s = t.shards.(shard_index t key) in
  (s.s_lo, s.s_hi)

let shards_for_range t ~from ~until =
  if from >= until then []
  else begin
    let first = shard_index t from in
    let out = ref [] in
    let i = ref first in
    let continue = ref true in
    while !continue && !i < Array.length t.shards do
      let s = t.shards.(!i) in
      if s.s_lo >= until then continue := false
      else begin
        let f = if s.s_lo > from then s.s_lo else from in
        let u = if s.s_hi < until then s.s_hi else until in
        if f < u then out := (f, u, s.s_team) :: !out;
        incr i
      end
    done;
    List.rev !out
  end

let shards_of_storage t ss = t.per_ss_read.(ss)
let apply_ranges_of_storage t ss = t.per_ss_apply.(ss)

let tags_for_mutation t (m : Fdb_kv.Mutation.t) =
  let from, until = Fdb_kv.Mutation.key_range m in
  if from >= until then []
  else begin
    let first = shard_index t from in
    let out = ref [] in
    let i = ref first in
    let continue = ref true in
    while !continue && !i < Array.length t.shards do
      let s = t.shards.(!i) in
      if s.s_lo >= until then continue := false
      else begin
        out := s.s_team :: !out;
        (match s.s_dst with Some dst -> out := dst :: !out | None -> ());
        incr i
      end
    done;
    List.sort_uniq compare (List.concat !out)
  end

let tag_teams t = Array.map (fun s -> s.s_team) t.shards
let ranges t = Array.map (fun s -> (s.s_lo, s.s_hi)) t.shards

let pending_moves t =
  Array.to_list t.shards
  |> List.filter_map (fun s ->
         match s.s_dst with
         | Some dst -> Some (s.s_lo, s.s_hi, dst, s.s_started)
         | None -> None)

(* ---------- runtime reconfiguration ---------- *)

let replace t i s' = t.shards <- Array.mapi (fun j s -> if i = j then s' else s) t.shards

(* Runtime team reassignment (the pre-movement primitive, kept for tests and
   for healing paths that know the data is already in place). Only shrink or
   permute a team, or grow it with servers that already hold the data.
   Readers that resolved the old team learn about the change through
   Wrong_shard rejections. *)
let set_team t ~shard ~team =
  if team = [] then invalid_arg "Shard_map.set_team: empty team";
  let s = { (t.shards.(shard)) with s_team = team } in
  replace t shard s;
  record_change t ~op:"set_team" ~shard:s []

let split t ~at =
  let i = shard_index t at in
  let s = t.shards.(i) in
  if at <= s.s_lo || at >= s.s_hi then Error "split point not strictly inside a shard"
  else if s.s_dst <> None then Error "cannot split a shard mid-move"
  else begin
    let left = { s with s_hi = at } in
    let right = { s with s_lo = at } in
    t.shards <-
      Array.concat
        [ Array.sub t.shards 0 i; [| left; right |];
          Array.sub t.shards (i + 1) (Array.length t.shards - i - 1) ];
    record_change t ~op:"split" ~shard:left [ ("at", String.escaped at) ];
    Ok ()
  end

let merge_at t ~lo =
  match shard_index_at t lo with
  | None -> Error "no shard starts at the given key"
  | Some i when i + 1 >= Array.length t.shards -> Error "no successor shard to merge"
  | Some i ->
      let a = t.shards.(i) and b = t.shards.(i + 1) in
      if List.sort compare a.s_team <> List.sort compare b.s_team then
        Error "adjacent shards have different teams"
      else if a.s_dst <> None || b.s_dst <> None then Error "cannot merge mid-move"
      else begin
        let merged = { a with s_hi = b.s_hi } in
        t.shards <-
          Array.concat
            [ Array.sub t.shards 0 i; [| merged |];
              Array.sub t.shards (i + 2) (Array.length t.shards - i - 2) ];
        record_change t ~op:"merge" ~shard:merged [];
        Ok ()
      end

let begin_move t ~lo ~dst =
  let dst = List.sort_uniq compare dst in
  match shard_index_at t lo with
  | None -> Error "no shard starts at the given key"
  | Some i ->
      let s = t.shards.(i) in
      if dst = [] then Error "empty destination team"
      else if s.s_dst <> None then Error "shard already moving"
      else if List.exists (fun ss -> ss < 0 || ss >= Array.length t.per_ss_read) dst
      then Error "destination out of range"
      else if dst = List.sort compare s.s_team then Error "destination equals team"
      else begin
        let s' = { s with s_dst = Some dst; s_started = Fdb_sim.Engine.now () } in
        replace t i s';
        record_change t ~op:"begin_move" ~shard:s' [ ("dst", team_str dst) ];
        Ok (s.s_lo, s.s_hi, s.s_team)
      end

(* The cutover: a single synchronous map mutation (no scheduler yield), so
   no reader can observe a half-moved shard — before it the old team serves
   every key of the shard, after it the new team serves every key. [dst]
   must match the pending move: a concurrent abort + re-move must not be
   committed by a stale mover. *)
let commit_move t ~lo ~dst =
  let dst = List.sort_uniq compare dst in
  match shard_index_at t lo with
  | None -> Error "no shard starts at the given key"
  | Some i ->
      let s = t.shards.(i) in
      (match s.s_dst with
      | Some d when List.sort compare d = dst ->
          let s' = { s with s_team = d; s_dst = None; s_started = 0.0 } in
          replace t i s';
          record_change t ~op:"commit_move" ~shard:s' [];
          Ok ()
      | Some _ -> Error "pending move has a different destination"
      | None -> Error "shard is not moving")

let abort_move t ~lo =
  match shard_index_at t lo with
  | None -> Error "no shard starts at the given key"
  | Some i ->
      let s = t.shards.(i) in
      (match s.s_dst with
      | None -> Error "shard is not moving"
      | Some dst ->
          let s' = { s with s_dst = None; s_started = 0.0 } in
          replace t i s';
          record_change t ~op:"abort_move" ~shard:s' [ ("dst", team_str dst) ];
          Ok ())
