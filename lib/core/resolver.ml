open Fdb_sim
open Future.Syntax
module Rvm = Fdb_kv.Range_version_map

type t = {
  ctx : Context.t;
  proc : Process.t;
  ep : int;
  epoch : Types.epoch;
  range : Message.key_range;
  rvm : Rvm.t;
  mutable last_lsn : Types.version;
  (* Batches whose predecessor has not arrived yet, keyed by their prev. *)
  parked : (Types.version, Message.t * Message.t Future.promise) Fdb_util.Det_tbl.t;
  (* Replay cache so duplicate deliveries get consistent verdicts, plus the
     cached LSNs in arrival order: they are assigned monotonically, so the
     expiry loop pops the below-floor prefix instead of scanning the table. *)
  verdicts : (Types.version, Message.resolver_verdict array) Fdb_util.Det_tbl.t;
  verdict_lsns : Types.version Queue.t;
  (* metrics plane *)
  obs_checked : Fdb_obs.Registry.counter;
  obs_conflicts : Fdb_obs.Registry.counter;
  obs_too_old : Fdb_obs.Registry.counter;
  obs_entries : Fdb_obs.Registry.gauge;
  obs_check_cost : Fdb_obs.Registry.gauge;
  obs_parked : Fdb_obs.Registry.gauge;
}

let last_lsn t = t.last_lsn
let entry_count t = Rvm.entry_count t.rvm

let clip (lo, hi) (from, until) =
  let f = if from > lo then from else lo in
  let u = if until < hi then until else hi in
  if f < u then Some (f, u) else None

(* Algorithm 1, over the whole batch: within a batch, earlier transactions'
   writes are visible to later conflict checks because commits share the
   batch's single version. *)
let check_batch t lsn txns =
  Array.map
    (fun (read_version, reads, writes) ->
      (* Blind writes carry no snapshot: nothing to check, nothing too old. *)
      if reads <> [] && read_version < Rvm.oldest t.rvm then Message.V_too_old
      else begin
        let conflicted =
          List.exists
            (fun r ->
              match clip t.range r with
              | None -> false
              | Some (from, until) ->
                  Rvm.max_version t.rvm ~from ~until > read_version)
            reads
        in
        if conflicted then Message.V_conflict
        else begin
          List.iter
            (fun w ->
              match clip t.range w with
              | None -> ()
              | Some (from, until) -> Rvm.note_write t.rvm ~from ~until lsn)
            writes;
          Message.V_commit
        end
      end)
    txns

let cost txns =
  Array.fold_left
    (fun acc (_, reads, writes) ->
      acc +. Params.resolver_per_txn
      +. (Params.resolver_per_range *. float_of_int (List.length reads + List.length writes)))
    0.0 txns

let rec process t lsn prev txns =
  assert (prev = t.last_lsn);
  let* () = Engine.cpu t.proc (Params.cpu (cost txns)) in
  (* Re-check the chain head after the CPU yield (rule R5): a duplicate
     delivery that passed handle's [rs_prev = t.last_lsn] guard before we
     advanced [last_lsn] runs a concurrent [process] for the same slot. The
     loser must replay the winner's verdicts, not re-run check_batch
     against a version map the winner already mutated. *)
  if t.last_lsn <> prev then begin
    Trace.emit "resolver_stale_process"
      [ ("lsn", Int64.to_string lsn); ("prev", Int64.to_string prev) ];
    match Fdb_util.Det_tbl.find_opt t.verdicts lsn with
    | Some v -> Future.return (Message.Resolve_reply v)
    | None -> Future.return (Message.Reject (Error.Internal "stale resolve"))
  end
  else begin
  let work_before = Rvm.work t.rvm in
  let verdicts = check_batch t lsn txns in
  Fdb_obs.Registry.set_gauge t.obs_check_cost
    (float_of_int (Rvm.work t.rvm - work_before));
  Array.iter
    (fun v ->
      Fdb_obs.Registry.incr t.obs_checked;
      match v with
      | Message.V_conflict -> Fdb_obs.Registry.incr t.obs_conflicts
      | Message.V_too_old -> Fdb_obs.Registry.incr t.obs_too_old
      | Message.V_commit -> ())
    verdicts;
  Fdb_obs.Registry.set_gauge t.obs_entries (float_of_int (Rvm.entry_count t.rvm));
  t.last_lsn <- lsn;
  Fdb_util.Det_tbl.replace t.verdicts lsn verdicts;
  Queue.push lsn t.verdict_lsns;
  (* Unpark the successor, if it already arrived. *)
  (match Fdb_util.Det_tbl.find_opt t.parked lsn with
  | Some (Message.Resolve_req { rs_lsn; rs_prev; rs_txns; _ }, promise) ->
      Fdb_util.Det_tbl.remove t.parked lsn;
      Fdb_obs.Registry.set_gauge t.obs_parked
        (float_of_int (Fdb_util.Det_tbl.length t.parked));
      Engine.spawn ~process:t.proc "resolver-unpark" (fun () ->
          let* reply = process t rs_lsn rs_prev rs_txns in
          ignore (Future.try_fulfill promise reply : bool);
          Future.return ())
  | Some _ | None -> ());
  Future.return (Message.Resolve_reply verdicts)
  end

let handle t (msg : Message.t) : Message.t Future.t =
  match msg with
  | Message.Seq_ping -> Future.return Message.Ok_reply
  | Message.Resolve_req { rs_epoch; rs_lsn; rs_prev; rs_txns } ->
      if rs_epoch <> t.epoch then Future.return (Message.Reject Error.Wrong_epoch)
      else if rs_lsn <= t.last_lsn then (
        (* Duplicate delivery: replay the original verdicts. *)
        match Fdb_util.Det_tbl.find_opt t.verdicts rs_lsn with
        | Some v -> Future.return (Message.Resolve_reply v)
        | None -> Future.return (Message.Reject (Error.Internal "stale resolve")))
      else if rs_prev = t.last_lsn then process t rs_lsn rs_prev rs_txns
      else begin
        (* Out of order: park until the chain catches up. A batch is already
           parked on this prev when the delivery is a reordered duplicate —
           overwriting would leak the first waiter's promise (lost wakeup),
           so reject the duplicate; the parked original still gets its
           verdicts when the chain fills. *)
        match Fdb_util.Det_tbl.find_opt t.parked rs_prev with
        | Some _ ->
            Trace.emit "resolver_park_dup"
              [ ("lsn", Int64.to_string rs_lsn); ("prev", Int64.to_string rs_prev) ];
            Future.return (Message.Reject (Error.Internal "duplicate parked resolve"))
        | None ->
            let fut, promise = Future.make ~label:"resolver.park" () in
            Fdb_util.Det_tbl.replace t.parked rs_prev (msg, promise);
            Fdb_obs.Registry.set_gauge t.obs_parked
              (float_of_int (Fdb_util.Det_tbl.length t.parked));
            Trace.emit "resolver_park"
              [ ("lsn", Int64.to_string rs_lsn); ("prev", Int64.to_string rs_prev) ];
            fut
      end
  | _ -> Future.return (Message.Reject (Error.Internal "resolver: unexpected message"))

(* Coalesce history that has left the MVCC window (§2.4.2: "modified keys
   expire after the MVCC window"). *)
let expiry_loop t =
  let window_versions =
    Int64.of_float (t.ctx.Context.config.Config.mvcc_window *. Types.versions_per_second)
  in
  let rec loop () =
    let* () = Engine.sleep 1.0 in
    let floor = Int64.sub t.last_lsn window_versions in
    if floor > 0L then begin
      Rvm.expire t.rvm ~before:floor;
      (* LSNs were enqueued in increasing order: pop the expired prefix —
         O(expired), never a scan of the whole replay cache. *)
      let continue = ref true in
      while !continue do
        match Queue.peek_opt t.verdict_lsns with
        | Some lsn when lsn < floor ->
            ignore (Queue.pop t.verdict_lsns : Types.version);
            Fdb_util.Det_tbl.remove t.verdicts lsn
        | _ -> continue := false
      done
    end;
    Fdb_obs.Registry.set_gauge t.obs_entries (float_of_int (Rvm.entry_count t.rvm));
    loop ()
  in
  loop ()

let create ctx proc ~epoch ~range ~start_lsn =
  let ep = Network.fresh_endpoint ctx.Context.net in
  let reg = ctx.Context.metrics in
  let pid = proc.Process.pid in
  let t =
    {
      ctx;
      proc;
      ep;
      epoch;
      range;
      rvm = Rvm.create ~rng:(Engine.fork_rng ()) ();
      last_lsn = start_lsn;
      parked = Fdb_util.Det_tbl.create ~size:16 ();
      verdicts = Fdb_util.Det_tbl.create ~size:1024 ();
      verdict_lsns = Queue.create ();
      obs_checked = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Resolver ~process:pid "txns_checked";
      obs_conflicts = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Resolver ~process:pid "conflicts";
      obs_too_old = Fdb_obs.Registry.counter reg ~role:Fdb_obs.Registry.Resolver ~process:pid "too_old";
      obs_entries = Fdb_obs.Registry.gauge reg ~role:Fdb_obs.Registry.Resolver ~process:pid "history_entries";
      obs_check_cost = Fdb_obs.Registry.gauge reg ~role:Fdb_obs.Registry.Resolver ~process:pid "batch_check_cost";
      obs_parked = Fdb_obs.Registry.gauge reg ~role:Fdb_obs.Registry.Resolver ~process:pid "parked_batches";
    }
  in
  Network.register ctx.Context.net ep proc (handle t);
  Engine.spawn ~process:proc "resolver-expiry" (fun () -> expiry_loop t);
  (t, ep)
