(** Deployment factory: builds a whole simulated FDB cluster (paper
    Figure 1) inside the running simulation engine.

    Creates machines with disks, coordinator processes, storage server
    processes, and worker agents; the control plane then elects a
    ClusterController, which recruits the first transaction system
    generation. Also mints client handles on their own machines and
    exposes the machine list for fault injection. *)

type t

val create : ?config:Config.t -> unit -> t
(** Must be called inside {!Fdb_sim.Engine.run}. *)

val context : t -> Context.t

val wait_ready : ?timeout:float -> t -> unit Fdb_sim.Future.t
(** Resolve once a transaction system has completed recovery and is
    accepting commits (default timeout 60 simulated seconds). *)

val client : t -> name:string -> Client.db
(** A new client on a fresh machine (clients are not fault-injection
    targets unless you include their machines explicitly). *)

val worker_machines : t -> Fdb_sim.Process.machine array
(** The database machines — the fault injector's target list. *)

val coordinator_machines : t -> Fdb_sim.Process.machine array

val current_epoch : t -> Types.epoch Fdb_sim.Future.t
(** Ask the control plane for the current generation (for tests). *)

val log_bytes : t -> float
(** Total bytes written to all machine disks (throughput accounting). *)

val metrics : t -> Fdb_obs.Registry.t
(** The cluster-wide metrics registry every role publishes into. *)

val status_doc : t -> Fdb_obs.Rollup.doc
(** Aggregate the registry into a per-role status document right now. *)

val latest_status_doc : t -> Fdb_obs.Rollup.doc option
(** The most recent document produced by the periodic roll-up actor
    (None until the first interval elapses). *)
