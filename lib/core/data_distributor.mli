(** The DataDistributor: storage health monitoring and active data
    distribution (paper §2.3.1, §2.5).

    Watches every StorageServer and tracks per-team health (published as
    [unhealthy_teams] / [data_loss_risk] gauges on the metrics plane).
    When [Params.dd_movement_enabled] is set it also rebalances: splits
    shards whose size or traffic exceed the [Params.dd_*] thresholds
    (split point = median-by-bytes from a team member), merges cold
    adjacent same-team shards (never below the deployment's initial shard
    count), and moves shards off the hottest server with the
    fetch-then-cutover protocol described in the implementation header. *)

type t

val create : Context.t -> Fdb_sim.Process.t -> t * int

val unhealthy_teams : t -> int
(** Teams currently below full replication. *)

val data_loss_risk : t -> bool
(** True if some team has zero responsive replicas. *)

val move_shard :
  Context.t ->
  proc:Fdb_sim.Process.t ->
  db:Client.db ->
  lo:string ->
  dst:int list ->
  (unit, string) result Fdb_sim.Future.t
(** Move the shard starting at [lo] to team [dst] end-to-end: begin_move
    (dual-tagging), marker transaction + readable-snapshot wait, parallel
    newcomer fetches, then commit_move — aborting the move on any failure.
    Standalone so test harnesses (the swarm's mover job) can drive movement
    without a DataDistributor instance. *)
