(** The DataDistributor: storage health monitoring (paper §2.3.1, §2.5).

    Watches every StorageServer, tracks per-team health (how many replicas
    of each shard's team are responsive), and emits trace events when a
    team degrades or heals. With our reboot-based fault model, replica
    healing is performed by the rebooted server catching up from the logs;
    the DataDistributor's job here is detection and reporting, which is
    what the recoverability oracle and status surface consume. *)

type t

val create : Context.t -> Fdb_sim.Process.t -> t * int

val unhealthy_teams : t -> int
(** Teams currently below full replication. *)

val data_loss_risk : t -> bool
(** True if some team has zero responsive replicas. *)
