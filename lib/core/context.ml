open Fdb_sim

type t = {
  net : Message.t Network.t;
  config : Config.t;
  shard_map : Shard_map.t;
  coordinator_eps : int list;
  worker_eps : int array;
  storage_eps : int array;
  metrics : Fdb_obs.Registry.t; (* the cluster-wide metrics plane *)
}

let rpc t ?timeout ?bytes ~from ep msg =
  Future.bind (Network.call t.net ?timeout ?bytes ~from ep msg) (function
    | Message.Reject e -> Future.fail (Error.Fdb e)
    | reply -> Future.return reply)

let paxos_transport t ~from =
  {
    Fdb_paxos.Wire.endpoints = t.coordinator_eps;
    call =
      (fun ep req ->
        Future.bind
          (Network.call t.net ~timeout:1.0 ~from ep (Message.Paxos_req req))
          (function
            | Message.Paxos_resp r -> Future.return r
            | _ -> Future.fail (Error.Fdb (Error.Internal "bad paxos reply"))));
  }

let proposer_id (p : Process.t) = p.Process.pid
