(** The Resolver: lock-free OCC conflict detection (paper §2.4.2,
    Algorithm 1) over one partition of the key space.

    Batches arrive tagged with (LSN, previous LSN) and are processed
    strictly in LSN-chain order — out-of-order arrivals are parked until
    the chain fills in. History older than the MVCC window is coalesced
    away; transactions whose read version predates the window are aborted
    as too old. *)

type t

val create :
  Context.t ->
  Fdb_sim.Process.t ->
  epoch:Types.epoch ->
  range:Message.key_range ->
  start_lsn:Types.version ->
  t * int
(** Instantiate and register; returns the endpoint. *)

val last_lsn : t -> Types.version
val entry_count : t -> int
(** Size of the lastCommit history (diagnostics). *)
