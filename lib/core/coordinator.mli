(** A Coordinator process: hosts the disk-Paxos acceptor for the cluster's
    named registers (paper §2.3.1) behind a well-known endpoint, and
    survives reboots by recovering acceptor state from its disk. *)

val start :
  Context.t -> Fdb_sim.Process.t -> disk:Fdb_sim.Disk.t -> endpoint:int -> unit
(** Register (and arrange re-registration on every reboot). *)
