(** Shared identifiers and key-space helpers for the database core. *)

type version = int64
(** Commit / read versions double as Log Sequence Numbers (paper §2.4.2).
    The Sequencer advances them at ~1M versions per second. *)

type tag = int
(** StorageServer tag: names the mutation stream a LogServer keeps for one
    StorageServer (paper Figure 2). *)

type epoch = int
(** Generation of the transaction management system (paper §2.3.5). *)

val versions_per_second : float
(** Rate at which commit versions advance (1e6, per §2.4.1). *)

val invalid_version : version
(** Sentinel (-1) for "no version". *)

val key_space_end : string
(** Exclusive upper bound of the user key space, ["\xff"]. Keys at or above
    it are reserved for system use. *)

val system_key_space_end : string
(** End of the whole key space including system keys, ["\xff\xff"]. *)

val next_key : string -> string
(** Smallest key strictly greater than the argument ([k ^ "\x00"]). *)

val strinc : string -> string
(** Smallest key strictly greater than every key with the given prefix
    (increment the last non-0xff byte, truncating what follows). Raises
    [Invalid_argument] on the empty string or all-0xff input. *)

val range_of_prefix : string -> string * string
(** [\[prefix, strinc prefix)] — every key that starts with [prefix]. *)

val key_size_limit : int
(** 10 kB (paper §2.2). *)

val value_size_limit : int
(** 100 kB (paper §2.2). *)

val transaction_size_limit : int
(** 10 MB (paper §2.2). *)

val version_to_bytes : version -> string
(** 8-byte big-endian encoding (versionstamp prefix ordering). *)

val version_of_bytes : string -> version
(** Inverse of {!version_to_bytes} on its first 8 bytes. *)
