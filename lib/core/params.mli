(** Calibrated service-time and protocol-timing parameters.

    These model where real FDB processes spend CPU, so that saturation and
    queueing in the simulator reproduce the *shapes* of the paper's
    evaluation figures (who saturates first, by what factor throughput
    scales). EXPERIMENTS.md records the calibration rationale. All times in
    seconds. *)

val cpu_scale : float ref
(** Global multiplier on every CPU service time (default 1.0). Benchmarks
    raise it to run the paper's saturation experiments at a uniformly
    scaled-down op rate: shapes (scaling factors, saturation knees, who
    bottlenecks) are preserved while simulation cost drops by the same
    factor. EXPERIMENTS.md documents the scale used per figure. *)

val cpu : float -> float
(** [cpu base] is the effective service time [base *. !cpu_scale]. *)

(* {2 CPU service times} *)

val sequencer_per_request : float
val proxy_per_batch : float
val proxy_per_txn : float
val proxy_per_byte : float
val resolver_per_txn : float
(** ~3.5 µs: one single-threaded Resolver sustains ~280K TPS (paper §2.4.2). *)

val resolver_per_range : float
val log_per_push : float
val log_per_byte : float
(** LogServer CPU per logged byte — the write-path bottleneck (Figure 8a). *)

val storage_per_point_read : float
val storage_per_range_key : float
val storage_per_apply : float
val storage_per_apply_byte : float

(* {2 Protocol timing} *)

val grv_batch_interval : float

val commit_batch_interval : float ref
(** Mutable: the batching ablation bench sweeps it (§2.6). *)

val max_commit_batch : int ref
(** Mutable: the batching ablation sweeps it; 1 = no batching. *)

val proxy_commit_pipeline_depth : int ref
(** How many commit batches one proxy keeps in flight concurrently
    (default 4). Batch N+1 fetches its own LSN and overlaps resolution and
    log pushes with batch N's push/report; an in-order completion stage
    keeps [Seq_report]s LSN-ordered and the proxy KCV monotone. 1 selects
    the serial pre-pipeline commit path (kept verbatim as the benchmark
    baseline). Mutable: benches sweep it; tests pin it. *)

val storage_peek_interval : float
(** How often a StorageServer polls its LogServer for new mutations. *)

val storage_durable_interval : float
(** How often buffered window data is persisted (longer delay coalesces
    I/O, paper §2.4.3). *)

val heartbeat_interval : float
val heartbeat_timeout : float
val ratekeeper_interval : float
val lease_duration : float
(** ClusterController election lease. *)

val storage_read_wait : float
(** How long a StorageServer waits for a future version before erroring. *)

val client_read_timeout : float
(** Per-replica read attempt timeout before trying another replica. *)

val watch_poll_timeout : float ref
(** How long a StorageServer holds one watch registration before replying
    not-fired (the client re-registers from the server's reply version).
    Kept well under the MVCC window so re-registrations never go stale on
    a healthy server. Mutable: chaos tests shrink it to force many
    re-registration rounds. *)

(* {2 Range-read pipeline} *)

val client_range_fanout : int ref
(** How many per-shard sub-reads a single range read keeps in flight
    concurrently (default 4). Mutable: benches sweep it; 1 degrades to the
    old sequential walk. *)

val range_rows_per_batch : int
(** Row budget of one iterator-mode streaming batch. *)

val range_bytes_per_req : int ref
(** Byte budget of one storage round-trip in iterator mode. Mutable: tests
    shrink it to force continuation stitching. *)

val range_bytes_want_all : int
(** Byte budget per round-trip for [`Want_all]/[`Exact] reads. *)

(* {2 Data distribution} *)

val dd_movement_enabled : bool ref
(** Master switch for active data distribution (splits, merges, moves).
    Default [false]: runs that do not opt in keep byte-identical schedules
    and checksums. The swarm mover and the rebalance bench enable it. *)

val dd_rebalance_interval : float ref
(** How often the DataDistributor evaluates splits/merges/moves. *)

val dd_split_bytes : int ref
(** Split a shard whose persistent size exceeds this many bytes. *)

val dd_split_bandwidth : float ref
(** Split a shard whose read+write traffic exceeds this many bytes/s. *)

val dd_merge_bytes : int ref
(** Merge adjacent same-team shards when both are smaller than this. *)

val dd_imbalance_ratio : float ref
(** Move a shard off the hottest server when its load exceeds the coldest
    server's load by this factor. *)

val dd_move_timeout : float
(** Abort in-flight moves pending longer than this (mover died mid-fetch). *)
