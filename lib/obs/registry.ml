(* Typed metrics registry: the cluster-wide metrics plane (paper §2.3.1 /
   `fdbcli status`). Every role registers counters, gauges, and log-bucketed
   latency histograms keyed by (role, process, metric). Handles are obtained
   once at role creation and updated on the hot path without hashing; when the
   registry is disabled every handle is a no-op constant, so instrumentation
   costs nothing.

   All sampling runs on simulated time from the seeded RNG, so a serialized
   dump of the registry is bit-identical across reruns of the same seed —
   the metrics plane doubles as a determinism oracle for the swarm. *)

module Histogram = Fdb_util.Histogram
module Det_tbl = Fdb_util.Det_tbl

(* [Data_distributor] is appended after [Client] so the polymorphic-compare
   key order of every pre-existing role (and thus serialized dumps of runs
   that never recruit a DD metric) is unchanged. *)
type role =
  | Proxy
  | Resolver
  | Log
  | Storage
  | Ratekeeper
  | Sequencer
  | Client
  | Data_distributor

let role_name = function
  | Proxy -> "proxy"
  | Resolver -> "resolver"
  | Log -> "log"
  | Storage -> "storage"
  | Ratekeeper -> "ratekeeper"
  | Sequencer -> "sequencer"
  | Client -> "client"
  | Data_distributor -> "data_distributor"

let all_roles =
  [ Proxy; Resolver; Log; Storage; Ratekeeper; Sequencer; Client; Data_distributor ]

(* Field order matters: polymorphic compare on [key] orders by role (in
   constructor-declaration order, which matches [all_roles]), then process,
   then metric name — the canonical order every dump uses, supplied for
   free by Det_tbl's key-sorted enumeration. *)
type key = { k_role : role; k_process : int; k_metric : string }

type cell =
  | Counter_cell of int ref
  | Gauge_cell of float ref
  | Hist_cell of Histogram.t

type t = { enabled : bool; cells : (key, cell) Det_tbl.t }

let create ?(enabled = true) () = { enabled; cells = Det_tbl.create ~size:256 () }
let disabled = { enabled = false; cells = Det_tbl.create ~size:1 () }
let is_enabled t = t.enabled
let clear t = Det_tbl.reset t.cells

(* ---------- write-side handles ---------- *)

type counter = No_counter | Counter of int ref
type gauge = No_gauge | Gauge of float ref
type timer = No_timer | Timer of Histogram.t

let find_or_add t key make = Det_tbl.find_or_add t.cells key make

let counter t ~role ~process name =
  if not t.enabled then No_counter
  else
    match
      find_or_add t
        { k_role = role; k_process = process; k_metric = name }
        (fun () -> Counter_cell (ref 0))
    with
    | Counter_cell r -> Counter r
    | _ -> invalid_arg ("Fdb_obs: metric is not a counter: " ^ name)

let gauge t ~role ~process name =
  if not t.enabled then No_gauge
  else
    match
      find_or_add t
        { k_role = role; k_process = process; k_metric = name }
        (fun () -> Gauge_cell (ref 0.0))
    with
    | Gauge_cell r -> Gauge r
    | _ -> invalid_arg ("Fdb_obs: metric is not a gauge: " ^ name)

let histogram t ~role ~process name =
  if not t.enabled then No_timer
  else
    match
      find_or_add t
        { k_role = role; k_process = process; k_metric = name }
        (fun () -> Hist_cell (Histogram.create ()))
    with
    | Hist_cell h -> Timer h
    | _ -> invalid_arg ("Fdb_obs: metric is not a histogram: " ^ name)

let incr ?(by = 1) c = match c with No_counter -> () | Counter r -> r := !r + by
let set_gauge g v = match g with No_gauge -> () | Gauge r -> r := v
let observe h v = match h with No_timer -> () | Timer hist -> Histogram.add hist v

(* ---------- read side ---------- *)

let counter_value t ~role ~process name =
  match Det_tbl.find_opt t.cells { k_role = role; k_process = process; k_metric = name } with
  | Some (Counter_cell r) -> !r
  | _ -> 0

let gauge_value t ~role ~process name =
  match Det_tbl.find_opt t.cells { k_role = role; k_process = process; k_metric = name } with
  | Some (Gauge_cell r) -> Some !r
  | _ -> None

(* Det_tbl folds in ascending key order; within a fixed (role, metric) that
   is ascending process id, so consing + rev is already sorted. *)
let by_process t ~role name pick =
  Det_tbl.fold
    (fun k cell acc ->
      if k.k_role = role && k.k_metric = name then
        match pick cell with Some v -> (k.k_process, v) :: acc | None -> acc
      else acc)
    t.cells []
  |> List.rev

let counters t ~role name =
  by_process t ~role name (function Counter_cell r -> Some !r | _ -> None)

let gauges t ~role name =
  by_process t ~role name (function Gauge_cell r -> Some !r | _ -> None)

let histograms t ~role name =
  by_process t ~role name (function Hist_cell h -> Some h | _ -> None)

let sum_counter t ~role name =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (counters t ~role name)

(* All cells, in the canonical (role, process, metric) order — exactly
   Det_tbl's key order on [key]. Histograms are returned by reference:
   readers must treat them as read-only. *)
let entries t = Det_tbl.to_sorted_list t.cells

(* ---------- deterministic serialization ---------- *)

let render_float f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.9g" f

let render_cell = function
  | Counter_cell r -> string_of_int !r
  | Gauge_cell r -> render_float !r
  | Hist_cell h ->
      Printf.sprintf "hist(count=%d,mean=%s,p50=%s,p99=%s,max=%s)"
        (Histogram.count h)
        (render_float (Histogram.mean h))
        (render_float (Histogram.percentile h 50.0))
        (render_float (Histogram.percentile h 99.0))
        (render_float (Histogram.max_value h))

let serialize t =
  let b = Buffer.create 4096 in
  List.iter
    (fun (k, cell) ->
      Buffer.add_string b
        (Printf.sprintf "%s/%d/%s %s\n" (role_name k.k_role) k.k_process k.k_metric
           (render_cell cell)))
    (entries t);
  Buffer.contents b
