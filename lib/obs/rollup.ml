(* Periodic roll-up: aggregate the per-process registry into a per-role
   status document in the spirit of FDB's `\xff\xff/status/json` — summed
   counters, min/max gauges, merged latency histograms with percentiles.
   The document is machine-readable (sorted keys, canonical float rendering),
   so two runs of the same seed serialize to identical bytes. *)

open Fdb_sim
open Future.Syntax
module Histogram = Fdb_util.Histogram

type lat = {
  l_count : int;
  l_mean : float;
  l_p50 : float;
  l_p99 : float;
  l_max : float;
}

type role_doc = {
  rd_role : string;
  rd_processes : int;
  rd_counters : (string * int) list; (* summed across processes *)
  rd_gauges : (string * (float * float)) list; (* (min, max) across processes *)
  rd_latencies : (string * lat) list; (* merged histograms *)
}

type doc = { d_time : float; d_roles : role_doc list }

let lat_of_hist h =
  {
    l_count = Histogram.count h;
    l_mean = Histogram.mean h;
    l_p50 = Histogram.percentile h 50.0;
    l_p99 = Histogram.percentile h 99.0;
    l_max = Histogram.max_value h;
  }

let snapshot ~now (reg : Registry.t) : doc =
  let all_entries = Registry.entries reg in
  let roles =
    List.filter_map
      (fun role ->
        let procs = ref [] in
        let counters = ref [] in
        let gauges = ref [] in
        let hists = ref [] in
        List.iter
          (fun ((k : Registry.key), cell) ->
            if k.Registry.k_role = role then begin
              if not (List.mem k.Registry.k_process !procs) then
                procs := k.Registry.k_process :: !procs;
              let name = k.Registry.k_metric in
              match cell with
              | Registry.Counter_cell r ->
                  counters :=
                    (match List.assoc_opt name !counters with
                    | Some sum -> (name, sum + !r) :: List.remove_assoc name !counters
                    | None -> (name, !r) :: !counters)
              | Registry.Gauge_cell r ->
                  gauges :=
                    (match List.assoc_opt name !gauges with
                    | Some (lo, hi) ->
                        (name, (Float.min lo !r, Float.max hi !r))
                        :: List.remove_assoc name !gauges
                    | None -> (name, (!r, !r)) :: !gauges)
              | Registry.Hist_cell h ->
                  let dst =
                    match List.assoc_opt name !hists with
                    | Some dst -> dst
                    | None ->
                        let dst = Histogram.create () in
                        hists := (name, dst) :: !hists;
                        dst
                  in
                  Histogram.merge_into ~dst h
            end)
          all_entries;
        if !procs = [] then None
        else
          let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
          Some
            {
              rd_role = Registry.role_name role;
              rd_processes = List.length !procs;
              rd_counters = sorted !counters;
              rd_gauges = sorted !gauges;
              rd_latencies =
                sorted (List.map (fun (n, h) -> (n, lat_of_hist h)) !hists);
            })
      Registry.all_roles
  in
  { d_time = now; d_roles = roles }

(* ---------- JSON ---------- *)

let json_float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "0"
  else
    let s = Printf.sprintf "%.9g" f in
    (* "%.9g" may emit "1e+06": valid JSON. Bare "1" is too. *)
    s

let buf_kv b first key value =
  if not !first then Buffer.add_char b ',';
  first := false;
  Buffer.add_string b (Printf.sprintf "\"%s\":%s" key value)

let json_of_role_doc b (rd : role_doc) =
  Buffer.add_string b (Printf.sprintf "\"%s\":{" rd.rd_role);
  let first = ref true in
  buf_kv b first "processes" (string_of_int rd.rd_processes);
  let obj items render =
    let bb = Buffer.create 128 in
    Buffer.add_char bb '{';
    let f = ref true in
    List.iter
      (fun (name, v) ->
        if not !f then Buffer.add_char bb ',';
        f := false;
        Buffer.add_string bb (Printf.sprintf "\"%s\":%s" name (render v)))
      items;
    Buffer.add_char bb '}';
    Buffer.contents bb
  in
  buf_kv b first "counters" (obj rd.rd_counters string_of_int);
  buf_kv b first "gauges"
    (obj rd.rd_gauges (fun (lo, hi) ->
         Printf.sprintf "{\"min\":%s,\"max\":%s}" (json_float lo) (json_float hi)));
  buf_kv b first "latencies"
    (obj rd.rd_latencies (fun l ->
         Printf.sprintf
           "{\"count\":%d,\"mean_ms\":%s,\"p50_ms\":%s,\"p99_ms\":%s,\"max_ms\":%s}"
           l.l_count
           (json_float (l.l_mean *. 1e3))
           (json_float (l.l_p50 *. 1e3))
           (json_float (l.l_p99 *. 1e3))
           (json_float (l.l_max *. 1e3))));
  Buffer.add_char b '}'

let json_of_doc (d : doc) =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "{\"time\":%s,\"roles\":{" (json_float d.d_time));
  List.iteri
    (fun i rd ->
      if i > 0 then Buffer.add_char b ',';
      json_of_role_doc b rd)
    d.d_roles;
  Buffer.add_string b "}}";
  Buffer.contents b

(* ---------- the periodic roll-up actor ---------- *)

type t = {
  reg : Registry.t;
  interval : float;
  mutable latest : doc option;
  mutable alive : bool;
}

let latest t = t.latest
let stop t = t.alive <- false

let start ?(interval = 1.0) reg =
  let t = { reg; interval; latest = None; alive = true } in
  if Registry.is_enabled reg then
    Engine.spawn "obs-rollup" (fun () ->
        let rec loop () =
          if not t.alive then Future.return ()
          else
            let* () = Engine.sleep t.interval in
            t.latest <- Some (snapshot ~now:(Engine.now ()) t.reg);
            loop ()
        in
        loop ());
  t
