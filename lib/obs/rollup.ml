(* Periodic roll-up: aggregate the per-process registry into a per-role
   status document in the spirit of FDB's `\xff\xff/status/json` — summed
   counters, min/max gauges, merged latency histograms with percentiles.
   The document is machine-readable (sorted keys, canonical float rendering),
   so two runs of the same seed serialize to identical bytes. *)

open Fdb_sim
open Future.Syntax
module Histogram = Fdb_util.Histogram
module Det_tbl = Fdb_util.Det_tbl

type lat = {
  l_count : int;
  l_mean : float;
  l_p50 : float;
  l_p99 : float;
  l_max : float;
}

type role_doc = {
  rd_role : string;
  rd_processes : int;
  rd_counters : (string * int) list; (* summed across processes *)
  rd_gauges : (string * (float * float)) list; (* (min, max) across processes *)
  rd_latencies : (string * lat) list; (* merged histograms *)
}

type doc = { d_time : float; d_roles : role_doc list }

let lat_of_hist h =
  {
    l_count = Histogram.count h;
    l_mean = Histogram.mean h;
    l_p50 = Histogram.percentile h 50.0;
    l_p99 = Histogram.percentile h 99.0;
    l_max = Histogram.max_value h;
  }

let snapshot ~now (reg : Registry.t) : doc =
  let all_entries = Registry.entries reg in
  let roles =
    List.filter_map
      (fun role ->
        (* Det_tbl accumulators: enumeration comes out sorted by metric
           name, so the document needs no ad-hoc post-sorts. *)
        let procs : (int, unit) Det_tbl.t = Det_tbl.create () in
        let counters : (string, int) Det_tbl.t = Det_tbl.create () in
        let gauges : (string, float * float) Det_tbl.t = Det_tbl.create () in
        let hists : (string, Histogram.t) Det_tbl.t = Det_tbl.create () in
        List.iter
          (fun ((k : Registry.key), cell) ->
            if k.Registry.k_role = role then begin
              Det_tbl.replace procs k.Registry.k_process ();
              let name = k.Registry.k_metric in
              match cell with
              | Registry.Counter_cell r ->
                  let sum =
                    match Det_tbl.find_opt counters name with Some s -> s | None -> 0
                  in
                  Det_tbl.replace counters name (sum + !r)
              | Registry.Gauge_cell r ->
                  let lo, hi =
                    match Det_tbl.find_opt gauges name with
                    | Some (lo, hi) -> (Float.min lo !r, Float.max hi !r)
                    | None -> (!r, !r)
                  in
                  Det_tbl.replace gauges name (lo, hi)
              | Registry.Hist_cell h ->
                  let dst = Det_tbl.find_or_add hists name Histogram.create in
                  Histogram.merge_into ~dst h
            end)
          all_entries;
        if Det_tbl.length procs = 0 then None
        else
          Some
            {
              rd_role = Registry.role_name role;
              rd_processes = Det_tbl.length procs;
              rd_counters = Det_tbl.to_sorted_list counters;
              rd_gauges = Det_tbl.to_sorted_list gauges;
              rd_latencies =
                List.map (fun (n, h) -> (n, lat_of_hist h)) (Det_tbl.to_sorted_list hists);
            })
      Registry.all_roles
  in
  { d_time = now; d_roles = roles }

(* ---------- JSON ---------- *)

let json_float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "0"
  else
    let s = Printf.sprintf "%.9g" f in
    (* "%.9g" may emit "1e+06": valid JSON. Bare "1" is too. *)
    s

let buf_kv b first key value =
  if not !first then Buffer.add_char b ',';
  first := false;
  Buffer.add_string b (Printf.sprintf "\"%s\":%s" key value)

let json_of_role_doc b (rd : role_doc) =
  Buffer.add_string b (Printf.sprintf "\"%s\":{" rd.rd_role);
  let first = ref true in
  buf_kv b first "processes" (string_of_int rd.rd_processes);
  let obj items render =
    let bb = Buffer.create 128 in
    Buffer.add_char bb '{';
    let f = ref true in
    List.iter
      (fun (name, v) ->
        if not !f then Buffer.add_char bb ',';
        f := false;
        Buffer.add_string bb (Printf.sprintf "\"%s\":%s" name (render v)))
      items;
    Buffer.add_char bb '}';
    Buffer.contents bb
  in
  buf_kv b first "counters" (obj rd.rd_counters string_of_int);
  buf_kv b first "gauges"
    (obj rd.rd_gauges (fun (lo, hi) ->
         Printf.sprintf "{\"min\":%s,\"max\":%s}" (json_float lo) (json_float hi)));
  buf_kv b first "latencies"
    (obj rd.rd_latencies (fun l ->
         Printf.sprintf
           "{\"count\":%d,\"mean_ms\":%s,\"p50_ms\":%s,\"p99_ms\":%s,\"max_ms\":%s}"
           l.l_count
           (json_float (l.l_mean *. 1e3))
           (json_float (l.l_p50 *. 1e3))
           (json_float (l.l_p99 *. 1e3))
           (json_float (l.l_max *. 1e3))));
  Buffer.add_char b '}'

let json_of_doc (d : doc) =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "{\"time\":%s,\"roles\":{" (json_float d.d_time));
  List.iteri
    (fun i rd ->
      if i > 0 then Buffer.add_char b ',';
      json_of_role_doc b rd)
    d.d_roles;
  Buffer.add_string b "}}";
  Buffer.contents b

(* ---------- the periodic roll-up actor ---------- *)

type t = {
  reg : Registry.t;
  interval : float;
  mutable latest : doc option;
  mutable alive : bool;
}

let latest t = t.latest
let stop t = t.alive <- false

let start ?(interval = 1.0) reg =
  let t = { reg; interval; latest = None; alive = true } in
  if Registry.is_enabled reg then
    Engine.spawn "obs-rollup" (fun () ->
        let rec loop () =
          if not t.alive then Future.return ()
          else
            let* () = Engine.sleep t.interval in
            t.latest <- Some (snapshot ~now:(Engine.now ()) t.reg);
            loop ()
        in
        loop ());
  t
