(* Ablations of the design choices DESIGN.md calls out — not paper figures,
   but the paper argues for each choice and these show it holds here:
   - transaction batching (§2.6): batching interval vs commit throughput;
   - log replication degree (§2.5): k = f+1 replicas vs write throughput;
   - resolver partitioning (§2.4.2): resolver count vs mixed throughput. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

let universe = 8_000
let machines = 8
let scale = 20.0

let base_config () =
  let c = { (Config.scaled ~machines) with Config.storage_per_machine = 4 } in
  Bench_util.shard_evenly c ~universe ~key_of:Bench_util.key

let write_txn db rng =
  Client.run db ~max_attempts:4 (fun tx ->
      let bytes = ref 0 in
      for _ = 1 to 20 do
        let k = Bench_util.rand_key rng universe in
        let v = Bench_util.rand_value rng in
        bytes := !bytes + String.length k + String.length v;
        Client.set tx k v
      done;
      Future.return (20, !bytes))

(* Resolver-bound load: blind single-key writes with explicit read conflict
   ranges, so each transaction costs the resolvers a read check and a write
   note while staying cheap everywhere else. *)
let point db rng =
  Client.run db ~max_attempts:4 (fun tx ->
      (* A real snapshot version: conflict ranges against version 0 would
         collide with the entire preload history. *)
      let* _rv = Client.get_read_version tx in
      let k = Bench_util.rand_key rng universe in
      Client.add_read_conflict_range tx ~from:k ~until:(Types.next_key k);
      Client.set tx (Bench_util.rand_key rng universe) "v";
      Future.return (1, 80))

let measure config ~txn =
  Bench_util.with_sim ~cpu_scale:scale config (fun cluster ->
      let* () = Bench_util.preload cluster ~universe in
      Bench_util.closed_loop cluster ~clients:(8 * machines) ~warmup:0.3 ~measure:0.4 ~txn)

let run () =
  Bench_util.header "Ablation: transaction batching (§2.6), max batch size";
  Bench_util.row "%-14s %12s\n" "batch cap" "txns/s (1-key writes)";
  List.iter
    (fun cap ->
      Params.max_commit_batch := cap;
      let txns, _, _, _ =
        Bench_util.with_sim ~cpu_scale:scale (base_config ()) (fun cluster ->
            let* () = Bench_util.preload cluster ~universe in
            Bench_util.closed_loop cluster ~clients:(40 * machines) ~warmup:0.3
              ~measure:0.4 ~txn:point)
      in
      Params.max_commit_batch := 512;
      Bench_util.row "%-14d %12.0f\n" cap txns)
    [ 1; 8; 64; 512 ];

  Bench_util.header "Ablation: log replication degree (§2.5: k = f+1)";
  Bench_util.row "%-14s %12s %12s\n" "replicas" "txns/s" "MBps";
  List.iter
    (fun k ->
      let config = { (base_config ()) with Config.log_replication = k } in
      let txns, _, bytes, _ = measure config ~txn:write_txn in
      Bench_util.row "%-14d %12.0f %12.2f\n" k txns (bytes /. 1e6))
    [ 1; 2; 3 ];

  Bench_util.header "Ablation: resolver count (§2.4.2 range partitioning)";
  Bench_util.row "%-14s %12s\n" "resolvers" "txns/s";
  List.iter
    (fun r ->
      let config = { (base_config ()) with Config.resolvers = r } in
      let txns, _, _, _ =
        Bench_util.with_sim ~cpu_scale:scale config (fun cluster ->
            let* () = Bench_util.preload cluster ~universe in
            Bench_util.closed_loop cluster ~clients:(40 * machines) ~warmup:0.3
              ~measure:0.4 ~txn:point)
      in
      Bench_util.row "%-14d %12.0f\n" r txns)
    [ 1; 2; 4 ];
  Bench_util.row
    "(flat here means the offered load sits below single-resolver capacity —\n      partitioning pays off only past ~1/resolver_per_txn TPS, §2.4.2)\n"
