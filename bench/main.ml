(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (§5). `dune exec bench/main.exe` runs everything;
   `-- --only figN[,figM...]` selects, `-- --quick` shrinks figure 8/10
   sweeps. See EXPERIMENTS.md for paper-vs-measured discussion. *)

let available =
  [ "micro"; "conflict"; "range"; "commit"; "rebalance"; "fig3"; "fig7"; "fig8"; "fig9"; "fig10"; "ablation" ]

let () =
  let only = ref [] in
  let quick = ref false in
  let smoke = ref false in
  let spec =
    [
      ( "--only",
        Arg.String
          (fun s -> only := String.split_on_char ',' s @ !only),
        "NAMES  comma-separated subset of: " ^ String.concat " " available );
      ("--quick", Arg.Set quick, "  smaller sweeps (fig8/fig10)");
      ( "--smoke",
        Arg.Set smoke,
        "  CI smoke: tiny measurement quotas, skip simulations (conflict)" );
    ]
  in
  Arg.parse spec (fun s -> only := s :: !only) "fdb benchmark harness";
  let selected = if !only = [] then available else !only in
  let want name = List.mem name selected in
  Printf.printf "FoundationDB reproduction benchmarks (simulated cluster)\n";
  Printf.printf "selected: %s%s\n%!" (String.concat " " selected)
    (if !quick then " (quick)" else "");
  if want "micro" then Micro.run ();
  if want "conflict" then Conflict.run ~smoke:!smoke ();
  if want "range" then Range_read.run ~smoke:!smoke ();
  if want "commit" then Commit_pipeline.run ~smoke:!smoke ();
  if want "rebalance" then Rebalance.run ~smoke:!smoke ();
  if want "fig3" then Fig3.run ();
  if want "fig7" then Fig7.run ();
  if want "fig8" then
    Fig8.run ~machine_counts:(if !quick then [ 4; 12; 24 ] else [ 4; 6; 8; 12; 16; 20; 24 ]) ();
  if want "fig9" then Fig9.run ();
  if want "fig10" then Fig10.run ();
  if want "ablation" then Ablation.run ();
  Printf.printf "\ndone.\n"
