(* Two halves:

   1. Resolver data-structure microbench (the PR's before/after record):
      range-max queries and window expiry against a ~100k-entry [lastCommit]
      history, comparing the version-augmented skiplist descent against the
      pre-augmentation linear algorithms (kept here, verbatim, as the
      baseline). Results go to stdout and to BENCH_conflict.json.

   2. §5.1: "the average transaction conflict rate is 0.73%" on the
      multi-tenant production cluster. We run a low-contention 90/10 mix
      (many clients, wide key space — the paper's multi-tenant shape) and
      report committed vs conflicted transactions. Skipped in smoke mode. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng
module Sl = Fdb_kv.Skiplist
module Rvm = Fdb_kv.Range_version_map

(* ---------- the pre-augmentation resolver history, as the baseline ----------

   This is the previous Range_version_map implementation: max_version does an
   O(k) [iter_range] scan and expire rebuilds the whole history via
   [to_list] every tick. Same skiplist underneath, same entry layout. *)
module Linear = struct
  type t = { sl : int64 Sl.t; mutable oldest : int64 }

  let create ~rng () =
    let sl = Sl.create ~rng () in
    Sl.insert sl "" 0L;
    { sl; oldest = 0L }

  let covering_version t key =
    match Sl.find_less_equal t.sl key with Some (_, v) -> v | None -> 0L

  let note_write t ~from ~until version =
    if from < until then begin
      (match Sl.find t.sl until with
      | Some _ -> ()
      | None -> Sl.insert t.sl until (covering_version t until));
      let prev = covering_version t from in
      ignore (Sl.remove_range t.sl ~from ~until : int);
      Sl.insert t.sl from (if version > prev then version else prev)
    end

  let max_version t ~from ~until =
    if from >= until then 0L
    else begin
      let best = ref (covering_version t from) in
      Sl.iter_range t.sl ~from ~until (fun _ v -> if v > !best then best := v);
      !best
    end

  let expire t ~before =
    if before > t.oldest then begin
      t.oldest <- before;
      let entries = Sl.to_list t.sl in
      let rec walk prev_old = function
        | [] -> ()
        | (k, v) :: rest ->
            let old = v < before in
            if old && prev_old && k <> "" then ignore (Sl.remove t.sl k : bool);
            walk old rest
      in
      match entries with
      | [] -> ()
      | (_, v0) :: rest -> walk (v0 < before) rest
    end

  let entry_count t = Sl.length t.sl
end

(* ---------- microbench ---------- *)

let target_entries = 100_000
let key_universe = 1_000_000
let mk_key i = Printf.sprintf "%08d" i

(* Identical history into both structures: random single-key writes at
   increasing versions until the map holds ~[target_entries] entries. *)
let build_histories () =
  let rng = Rng.create 2024L in
  let lin = Linear.create ~rng:(Rng.create 5L) () in
  let aug = Rvm.create ~rng:(Rng.create 5L) () in
  let version = ref 0L in
  while Rvm.entry_count aug < target_entries do
    for _ = 1 to 1_000 do
      version := Int64.add !version 1L;
      let k = mk_key (Rng.int rng key_universe) in
      let k_end = k ^ "\x00" in
      Linear.note_write lin ~from:k ~until:k_end !version;
      Rvm.note_write aug ~from:k ~until:k_end !version
    done
  done;
  (lin, aug, !version)

let mk_queries ~span n =
  let rng = Rng.create 7L in
  Array.init n (fun _ ->
      let a = Rng.int rng key_universe in
      let b = if span = 0 then a + 1 + Rng.int rng key_universe else a + span in
      (mk_key a, mk_key (min b key_universe)))

(* Bechamel OLS estimate in ns/op for one thunk. *)
let time_ns ~smoke name fn =
  let open Bechamel in
  let open Toolkit in
  let test = Test.make ~name (Staged.stage fn) in
  let quota = if smoke then Time.second 0.05 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimate = ref nan in
  (* fdb-lint: allow R2 -- bechamel hands back a raw Hashtbl; wall-clock bench output, not simulation state *)
  Hashtbl.iter
    (fun _key v ->
      match Analyze.OLS.estimates v with
      | Some [ ns ] -> estimate := ns
      | _ -> ())
    results;
  Bench_util.row "%-42s %12.0f ns/op\n" name !estimate;
  !estimate

type pair = { before_ns : float; after_ns : float }

let speedup p = p.before_ns /. p.after_ns

let micro ~smoke () =
  Bench_util.header
    "Resolver history: version-augmented skiplist vs linear scan (before/after)";
  let lin, aug, version = build_histories () in
  Bench_util.row "history: %d entries (linear: %d), last version %Ld\n"
    (Rvm.entry_count aug) (Linear.entry_count lin) version;
  (* Equivalence guard: both structures answer every probe identically.
     (Wide probes cost ~ms each on the linear side: fewer in smoke mode.) *)
  let probes = if smoke then 100 else 2_000 in
  let mismatches = ref 0 in
  Array.iter
    (fun (from, until) ->
      if Linear.max_version lin ~from ~until <> Rvm.max_version aug ~from ~until
      then incr mismatches)
    (Array.append (mk_queries ~span:0 probes) (mk_queries ~span:1_000 probes));
  Bench_util.row "equivalence: %s (%d probes)\n"
    (if !mismatches = 0 then "ok" else Printf.sprintf "%d MISMATCHES" !mismatches)
    (2 * probes);
  let run_queries queries f =
    let i = ref 0 in
    fun () ->
      let from, until = queries.(!i land 4095) in
      incr i;
      ignore (f ~from ~until : int64)
  in
  let wide = mk_queries ~span:0 4096 in
  let short = mk_queries ~span:1_000 4096 in
  let wide_pair =
    {
      before_ns = time_ns ~smoke "range max, wide   (linear scan)" (run_queries wide (Linear.max_version lin));
      after_ns = time_ns ~smoke "range max, wide   (augmented)" (run_queries wide (Rvm.max_version aug));
    }
  in
  let short_pair =
    {
      before_ns = time_ns ~smoke "range max, short  (linear scan)" (run_queries short (Linear.max_version lin));
      after_ns = time_ns ~smoke "range max, short  (augmented)" (run_queries short (Rvm.max_version aug));
    }
  in
  (* Steady-state expiry tick: what the resolver does each simulated second —
     note a batch of writes, then expire everything that left the MVCC
     window. The window lag keeps ~the whole history live, the heavy-traffic
     shape: the linear baseline still materializes every live entry per tick,
     while the incremental walk touches only the runs that just expired.
     Both sides are drained to the window floor first so the timed loop
     measures the steady state, not a one-off catch-up. *)
  let window = 50_000L in
  Linear.expire lin ~before:(Int64.sub version window);
  Rvm.expire aug ~before:(Int64.sub version window);
  Bench_util.row "steady-state entries inside the window: %d\n" (Rvm.entry_count aug);
  let expire_tick note expire =
    let rng = Rng.create 11L in
    let v = ref version in
    fun () ->
      for _ = 1 to 100 do
        v := Int64.add !v 1L;
        let k = mk_key (Rng.int rng key_universe) in
        note ~from:k ~until:(k ^ "\x00") !v
      done;
      expire ~before:(Int64.sub !v window)
  in
  let expire_pair =
    {
      before_ns =
        time_ns ~smoke "expiry tick (100 writes + to_list rebuild)"
          (expire_tick (Linear.note_write lin) (fun ~before -> Linear.expire lin ~before));
      after_ns =
        time_ns ~smoke "expiry tick (100 writes + incremental)"
          (expire_tick (Rvm.note_write aug) (fun ~before -> Rvm.expire aug ~before));
    }
  in
  Bench_util.row "speedup: range max wide %.1fx, short %.1fx, expiry tick %.1fx\n"
    (speedup wide_pair) (speedup short_pair) (speedup expire_pair);
  (!mismatches, wide_pair, short_pair, expire_pair)

(* ---------- §5.1 conflict-rate simulation ---------- *)

let universe = 12_000
let clients = 24
let duration = 8.0

let conflict_rate () =
  Bench_util.header "§5.1 conflict rate (paper: 0.73% on production multi-tenant load)";
  let committed = ref 0 and conflicted = ref 0 in
  Bench_util.with_sim ~cpu_scale:2.0
    (Bench_util.shard_evenly Config.default ~universe ~key_of:Bench_util.key)
    (fun cluster ->
      let* () = Bench_util.preload cluster ~universe in
      let stop_at = Engine.now () +. duration in
      let client i =
        let db = Cluster.client cluster ~name:(Printf.sprintf "tenant-%d" i) in
        let rng = Engine.fork_rng () in
        let rec loop () =
          if Engine.now () >= stop_at then Future.return ()
          else
            let* () = Engine.sleep (Rng.float rng 0.01) in
            let tx = Client.begin_tx db in
            let* () =
              Future.catch
                (fun () ->
                  let rec reads n =
                    if n = 0 then Future.return ()
                    else
                      let* _ = Client.get tx (Bench_util.rand_key rng universe) in
                      reads (n - 1)
                  in
                  let* () = reads 5 in
                  for _ = 1 to 2 do
                    Client.set tx (Bench_util.rand_key rng universe)
                      (Bench_util.rand_value rng)
                  done;
                  let* _ = Client.commit tx in
                  incr committed;
                  Future.return ())
                (function
                  | Error.Fdb Error.Not_committed ->
                      incr conflicted;
                      Future.return ()
                  | Error.Fdb _ -> Future.return ()
                  | e -> Future.fail e)
            in
            loop ()
        in
        loop ()
      in
      Future.all_unit (List.init clients client));
  let total = !committed + !conflicted in
  let rate =
    if total = 0 then 0.0
    else 100.0 *. float_of_int !conflicted /. float_of_int total
  in
  Bench_util.row "transactions: %d   conflicts: %d   conflict rate: %.2f%%\n" total
    !conflicted rate;
  (total, !conflicted, rate)

(* ---------- JSON record (BENCH_conflict.json) ---------- *)

let json_pair oc name p =
  Printf.fprintf oc
    "  \"%s\": {\"before_ns\": %.1f, \"after_ns\": %.1f, \"speedup\": %.2f}" name
    p.before_ns p.after_ns (speedup p)

let write_json ~smoke ~mismatches ~wide ~short ~expire ~rate =
  let oc = open_out "BENCH_conflict.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"conflict\",\n";
  Printf.fprintf oc "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full");
  Printf.fprintf oc "  \"history_entries\": %d,\n" target_entries;
  Printf.fprintf oc "  \"equivalence_mismatches\": %d,\n" mismatches;
  json_pair oc "range_max_wide" wide;
  Printf.fprintf oc ",\n";
  json_pair oc "range_max_short" short;
  Printf.fprintf oc ",\n";
  json_pair oc "expiry_tick" expire;
  (match rate with
  | None -> Printf.fprintf oc ",\n  \"conflict_rate_pct\": null\n"
  | Some (total, conflicts, pct) ->
      Printf.fprintf oc
        ",\n  \"conflict_rate_pct\": %.2f,\n  \"transactions\": %d,\n  \"conflicts\": %d\n"
        pct total conflicts);
  Printf.fprintf oc "}\n";
  close_out oc;
  Bench_util.row "wrote BENCH_conflict.json\n"

let run ?(smoke = false) () =
  let mismatches, wide, short, expire = micro ~smoke () in
  let rate = if smoke then None else Some (conflict_rate ()) in
  write_json ~smoke ~mismatches ~wide ~short ~expire ~rate;
  if mismatches > 0 then failwith "conflict bench: augmented/linear divergence"
