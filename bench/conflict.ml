(* §5.1: "the average transaction conflict rate is 0.73%" on the
   multi-tenant production cluster. We run a low-contention 90/10 mix
   (many clients, wide key space — the paper's multi-tenant shape) and
   report committed vs conflicted transactions. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

let universe = 12_000
let clients = 24
let duration = 8.0

let run () =
  Bench_util.header "§5.1 conflict rate (paper: 0.73% on production multi-tenant load)";
  let committed = ref 0 and conflicted = ref 0 in
  Bench_util.with_sim ~cpu_scale:2.0
    (Bench_util.shard_evenly Config.default ~universe ~key_of:Bench_util.key)
    (fun cluster ->
      let* () = Bench_util.preload cluster ~universe in
      let stop_at = Engine.now () +. duration in
      let client i =
        let db = Cluster.client cluster ~name:(Printf.sprintf "tenant-%d" i) in
        let rng = Engine.fork_rng () in
        let rec loop () =
          if Engine.now () >= stop_at then Future.return ()
          else
            let* () = Engine.sleep (Rng.float rng 0.01) in
            let tx = Client.begin_tx db in
            let* () =
              Future.catch
                (fun () ->
                  let rec reads n =
                    if n = 0 then Future.return ()
                    else
                      let* _ = Client.get tx (Bench_util.rand_key rng universe) in
                      reads (n - 1)
                  in
                  let* () = reads 5 in
                  for _ = 1 to 2 do
                    Client.set tx (Bench_util.rand_key rng universe)
                      (Bench_util.rand_value rng)
                  done;
                  let* _ = Client.commit tx in
                  incr committed;
                  Future.return ())
                (function
                  | Error.Fdb Error.Not_committed ->
                      incr conflicted;
                      Future.return ()
                  | Error.Fdb _ -> Future.return ()
                  | e -> Future.fail e)
            in
            loop ()
        in
        loop ()
      in
      Future.all_unit (List.init clients client));
  let total = !committed + !conflicted in
  Bench_util.row "transactions: %d   conflicts: %d   conflict rate: %.2f%%\n" total
    !conflicted
    (if total = 0 then 0.0 else 100.0 *. float_of_int !conflicted /. float_of_int total)
