(* Figure 8: scalability test. 4..24 machines, saturated closed-loop load:
   (a) blind-write and range-read throughput (MBps) with 100 and 500
       operations per transaction,
   (b) 90/10 read-write operations per second.
   Run at 1/20 scale (Params.cpu_scale = 20); shapes match the paper:
   writes scale ~6x from 4 to 24 machines (LogServers saturate), reads
   scale with StorageServers, larger transactions help throughput. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

let universe = 20_000
let scale = 20.0

let blind_write_txn n db rng =
  Client.run db ~max_attempts:4 (fun tx ->
      let bytes = ref 0 in
      for _ = 1 to n do
        let k = Bench_util.rand_key rng universe in
        let v = Bench_util.rand_value rng in
        bytes := !bytes + String.length k + String.length v;
        Client.set tx k v
      done;
      Future.return (n, !bytes))

let range_read_txn n db rng =
  Client.run db ~max_attempts:4 (fun tx ->
      let start = Rng.int rng (universe - n) in
      let* rows =
        Client.get_range tx ~limit:n ~from:(Bench_util.key start)
          ~until:(Bench_util.key (start + n)) ()
      in
      let bytes =
        List.fold_left (fun a (k, v) -> a + String.length k + String.length v) 0 rows
      in
      Future.return (List.length rows, bytes))

let mix_txn db rng =
  if Rng.chance rng 0.8 then
    (* point reads: fetch 10 random keys *)
    Client.run db ~max_attempts:4 (fun tx ->
        let rec go i bytes =
          if i = 10 then Future.return (10, bytes)
          else
            let k = Bench_util.rand_key rng universe in
            let* v = Client.get tx k in
            go (i + 1) (bytes + String.length k + String.length (Option.value v ~default:""))
        in
        go 0 0)
  else
    (* point writes: fetch 5 and update 5 *)
    Client.run db ~max_attempts:4 (fun tx ->
        let rec go i bytes =
          if i = 5 then Future.return bytes
          else
            let k = Bench_util.rand_key rng universe in
            let* v = Client.get tx k in
            go (i + 1) (bytes + String.length k + String.length (Option.value v ~default:""))
        in
        let* bytes = go 0 0 in
        let bytes = ref bytes in
        for _ = 1 to 5 do
          let k = Bench_util.rand_key rng universe in
          let v = Bench_util.rand_value rng in
          bytes := !bytes + String.length k + String.length v;
          Client.set tx k v
        done;
        Future.return (10, !bytes))

let measure_point ?doc_sink ~machines ~txn ~clients_per_machine () =
  let config = Config.scaled ~machines in
  (* Keep simulation cost in check: 4 storage servers per machine instead
     of 14 (documented in EXPERIMENTS.md; shapes unaffected). *)
  let config = { config with Config.storage_per_machine = 4 } in
  let config = Bench_util.shard_evenly config ~universe ~key_of:Bench_util.key in
  Bench_util.with_sim ~cpu_scale:scale config (fun cluster ->
      let* () = Bench_util.preload cluster ~universe in
      let* r =
        Bench_util.closed_loop cluster
          ~clients:(clients_per_machine * machines)
          ~warmup:0.3 ~measure:0.4 ~txn
      in
      Option.iter (fun sink -> sink := Some (Cluster.status_doc cluster)) doc_sink;
      Future.return r)

let mbps bytes_per_sec = bytes_per_sec /. 1e6

let run ~machine_counts () =
  Bench_util.header "Figure 8a: write/read throughput scaling (MBps, 1/20 scale)";
  Bench_util.row "%-9s %12s %12s %12s %12s\n" "machines" "Write(100)" "Write(500)"
    "Read(100)" "Read(500)";
  let fig8a = ref [] in
  List.iter
    (fun machines ->
      let _, _, w100, _ =
        measure_point ~machines ~txn:(blind_write_txn 100) ~clients_per_machine:10 ()
      in
      let _, _, w500, _ =
        measure_point ~machines ~txn:(blind_write_txn 500) ~clients_per_machine:6 ()
      in
      let _, _, r100, _ =
        measure_point ~machines ~txn:(range_read_txn 100) ~clients_per_machine:14 ()
      in
      let _, _, r500, _ =
        measure_point ~machines ~txn:(range_read_txn 500) ~clients_per_machine:8 ()
      in
      fig8a := (machines, w100, w500, r100, r500) :: !fig8a;
      Bench_util.row "%-9d %12.1f %12.1f %12.1f %12.1f\n" machines (mbps w100) (mbps w500)
        (mbps r100) (mbps r500))
    machine_counts;
  Bench_util.header "Figure 8b: 90/10 read-write operations per second (1/20 scale)";
  Bench_util.row "%-9s %14s\n" "machines" "ops/s";
  let fig8b = ref [] in
  let last_doc = ref None in
  List.iter
    (fun machines ->
      let _, ops, _, _ =
        measure_point ~doc_sink:last_doc ~machines ~txn:mix_txn ~clients_per_machine:14 ()
      in
      fig8b := (machines, ops) :: !fig8b;
      Bench_util.row "%-9d %14.0f\n" machines ops)
    machine_counts;
  (* Scaling factors, the paper's headline shape. *)
  (match (List.rev !fig8a, List.rev !fig8b) with
  | ( (m0, w0, w0', r0, r0') :: _ :: _,
      (mb0, o0) :: _ :: _ ) ->
      let mN, wN, wN', rN, rN' = List.hd !fig8a in
      let mbN, oN = List.hd !fig8b in
      Bench_util.row
        "\nScaling %dx->%dx machines: Write(100) %.2fx (paper 5.84x), Write(500) %.2fx \
         (paper 6.40x),\n  Read(100) %.2fx (paper 3.43x), Read(500) %.2fx (paper 4.32x)\n"
        m0 mN (wN /. w0) (wN' /. w0') (rN /. r0) (rN' /. r0');
      Bench_util.row "Scaling %dx->%dx machines: 90/10 ops %.2fx (paper 4.69x)\n" mb0 mbN
        (oN /. o0)
  | _ -> ());
  (* Server-side percentile view of the largest 90/10 run. *)
  Option.iter Bench_util.print_percentiles !last_doc
