(* Shared machinery for the figure-reproduction benches: cluster bring-up,
   preloading, closed-loop (saturation) and open-loop (latency) load
   generators, and measurement windows. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng
module Histogram = Fdb_util.Histogram

(* The benches run the paper's experiments at 1/10 op rate by inflating CPU
   service times 10x (Params.cpu_scale); shapes are preserved. *)
let default_scale = 10.0

let with_sim ?(seed = 42L) ?(cpu_scale = default_scale) config body =
  Engine.run ~seed ~max_time:1e6 (fun () ->
      Params.cpu_scale := cpu_scale;
      let cluster = Cluster.create ~config () in
      let* () = Cluster.wait_ready ~timeout:120.0 cluster in
      Future.protect
        ~finally:(fun () -> Params.cpu_scale := 1.0)
        (fun () -> body cluster))

(* Shard the benchmark key population evenly (real FDB's DataDistributor
   would split shards by observed size; our static map takes the split
   points from the config). *)
let shard_evenly config ~universe ~key_of =
  let shards = max 1 (Config.storage_count config * config.Config.shards_per_storage) in
  let boundaries =
    List.init (shards - 1) (fun i -> key_of ((i + 1) * universe / shards))
  in
  { config with Config.shard_boundaries = boundaries }

(* Fixed key universe: 16-byte keys, values 8..100 bytes (mean 54), §5.2. *)
let key i = Printf.sprintf "bench/%09d" i
let rand_key rng universe = key (Rng.int rng universe)
let rand_value rng = Rng.alphanum rng (8 + Rng.int rng 93)

(* Bulk preload with CPU costs suspended (the paper pre-populates out of
   band); restores the scale and lets the pipeline drain. *)
let preload cluster ~universe =
  let saved = !Params.cpu_scale in
  Params.cpu_scale := 0.0;
  let db = Cluster.client cluster ~name:"preload" in
  let rng = Engine.fork_rng () in
  let batch = 500 in
  let rec load i =
    if i >= universe then Future.return ()
    else begin
      let hi = min universe (i + batch) in
      let* _ =
        Client.run db (fun tx ->
            for j = i to hi - 1 do
              Client.set tx (key j) (rand_value rng)
            done;
            Future.return ())
      in
      load hi
    end
  in
  let* () = load 0 in
  Params.cpu_scale := saved;
  Engine.sleep 1.0

(* ---------- closed loop (figure 8): saturate and measure ---------- *)

type window = {
  mutable measuring : bool;
  mutable txns : int;
  mutable ops : int;
  mutable bytes : int;
  mutable aborts : int;
}

let closed_loop cluster ~clients ~warmup ~measure ~txn =
  let w = { measuring = false; txns = 0; ops = 0; bytes = 0; aborts = 0 } in
  let stop = ref false in
  let runner i =
    let db = Cluster.client cluster ~name:(Printf.sprintf "load-%d" i) in
    let rng = Engine.fork_rng () in
    let rec loop () =
      if !stop then Future.return ()
      else
        let* () =
          Future.catch
            (fun () ->
              let* ops, bytes = txn db rng in
              if w.measuring then begin
                w.txns <- w.txns + 1;
                w.ops <- w.ops + ops;
                w.bytes <- w.bytes + bytes
              end;
              Future.return ())
            (function
              | Error.Fdb _ ->
                  if w.measuring then w.aborts <- w.aborts + 1;
                  Future.return ()
              | e -> Future.fail e)
        in
        loop ()
    in
    loop ()
  in
  let jobs = List.init clients runner in
  let all = Future.all_unit jobs in
  let* () = Engine.sleep warmup in
  w.measuring <- true;
  let t0 = Engine.now () in
  let* () = Engine.sleep measure in
  w.measuring <- false;
  let elapsed = Engine.now () -. t0 in
  stop := true;
  let* () = all in
  Future.return
    ( float_of_int w.txns /. elapsed,
      float_of_int w.ops /. elapsed,
      float_of_int w.bytes /. elapsed,
      w.aborts )

(* ---------- open loop (figure 9): offered rate, latency histograms ---------- *)

type latencies = {
  grv : Histogram.t;
  read : Histogram.t;
  commit : Histogram.t;
  mutable completed_ops : int;
  mutable failed : int;
}

let fresh_latencies () =
  {
    grv = Histogram.create ();
    read = Histogram.create ();
    commit = Histogram.create ();
    completed_ops = 0;
    failed = 0;
  }

(* One 90/10 transaction (§5.2): 80% point-reads-of-10, 20% 5-read-5-write;
   records GRV / read / commit latencies into [lat]. *)
let mixed_txn ~universe db rng lat measuring =
  let is_write = Rng.chance rng 0.2 in
  let tx = Client.begin_tx db in
  let t0 = Engine.now () in
  let* _rv = Client.get_read_version tx in
  if measuring () then Histogram.add lat.grv (Engine.now () -. t0);
  let n_reads = if is_write then 5 else 10 in
  let rec reads i =
    if i = n_reads then Future.return ()
    else begin
      let t1 = Engine.now () in
      let* _ = Client.get tx (rand_key rng universe) in
      if measuring () then Histogram.add lat.read (Engine.now () -. t1);
      reads (i + 1)
    end
  in
  let* () = reads 0 in
  if is_write then
    for _ = 1 to 5 do
      Client.set tx (rand_key rng universe) (rand_value rng)
    done;
  if is_write then begin
    let t2 = Engine.now () in
    let* _ = Client.commit tx in
    if measuring () then Histogram.add lat.commit (Engine.now () -. t2);
    if measuring () then lat.completed_ops <- lat.completed_ops + 10;
    Future.return ()
  end
  else begin
    if measuring () then lat.completed_ops <- lat.completed_ops + n_reads;
    Future.return ()
  end

let open_loop cluster ~universe ~rate ~warmup ~measure =
  let lat = fresh_latencies () in
  let measuring = ref false in
  let stop_at = Engine.now () +. warmup +. measure in
  let rng = Engine.fork_rng () in
  (* A pool of client handles shared by arrivals (connection reuse). *)
  let dbs =
    Array.init 16 (fun i -> Cluster.client cluster ~name:(Printf.sprintf "open-%d" i))
  in
  (* ops/s offered -> txns/s: average ops per txn is 10 reads or 10 r+w. *)
  let txn_rate = rate /. 10.0 in
  let rec arrivals () =
    if Engine.now () >= stop_at then Future.return ()
    else
      let* () = Engine.sleep (Rng.exponential rng (1.0 /. txn_rate)) in
      let db = dbs.(Rng.int rng (Array.length dbs)) in
      Engine.spawn "open-txn" (fun () ->
          Future.catch
            (fun () -> mixed_txn ~universe db rng lat (fun () -> !measuring))
            (fun _ ->
              if !measuring then lat.failed <- lat.failed + 1;
              Future.return ()));
      arrivals ()
  in
  let gen = arrivals () in
  let* () = Engine.sleep warmup in
  measuring := true;
  let t0 = Engine.now () in
  let* () = Engine.sleep measure in
  measuring := false;
  let elapsed = Engine.now () -. t0 in
  let* () = gen in
  (* Let stragglers finish recording nothing. *)
  let* () = Engine.sleep 1.0 in
  Future.return (lat, float_of_int lat.completed_ops /. elapsed)

(* ---------- output helpers ---------- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let row fmt = Printf.printf fmt

(* Per-role latency percentile table from the cluster's metrics plane — the
   same roll-up document `fdb_sim status --json` emits, as bench output. *)
let print_percentiles (doc : Fdb_obs.Rollup.doc) =
  header "Role latency percentiles (from Fdb_obs)";
  row "%-12s %-16s %9s %10s %10s %10s %10s\n" "role" "metric" "count" "mean ms"
    "p50 ms" "p99 ms" "max ms";
  List.iter
    (fun rd ->
      List.iter
        (fun (name, l) ->
          let { Fdb_obs.Rollup.l_count; l_mean; l_p50; l_p99; l_max } = l in
          row "%-12s %-16s %9d %10.3f %10.3f %10.3f %10.3f\n" rd.Fdb_obs.Rollup.rd_role
            name l_count (l_mean *. 1e3) (l_p50 *. 1e3) (l_p99 *. 1e3) (l_max *. 1e3))
        rd.Fdb_obs.Rollup.rd_latencies)
    doc.Fdb_obs.Rollup.d_roles

let obs_percentiles cluster = print_percentiles (Cluster.status_doc cluster)
