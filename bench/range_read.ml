(* Range-read pipeline bench: sequential shard walk (the pre-pipeline
   client read path, kept here verbatim as the baseline) vs the parallel
   bounded-fanout pipeline now inside [Client.get_range], on a range
   spanning every shard of the cluster. Records simulated milliseconds per
   full-range read and the speedup into BENCH_range.json. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

(* ---------- the sequential baseline ----------

   The previous [Client.storage_get_range]: walk shard fragments strictly
   in scan order, one team at a time, next fragment only after the
   previous one answered. Replica shuffle and failover identical to the
   old code; the only adaptation is draining [rr_more] continuations
   (sequentially), since the wire format now carries a byte budget. *)
let sequential_get_range ctx proc rng ~version ~epoch ~from ~until ~limit =
  let fragments = Shard_map.shards_for_range ctx.Context.shard_map ~from ~until in
  let fetch_fragment ~f ~u ~team remaining =
    let replicas = Array.of_list team in
    Rng.shuffle rng replicas;
    let rec attempt i last_err cursor acc =
      if i >= Array.length replicas then Future.fail last_err
      else
        let ep = ctx.Context.storage_eps.(replicas.(i)) in
        Future.catch
          (fun () ->
            let* reply =
              Context.rpc ctx ~timeout:Params.client_read_timeout ~from:proc ep
                (Message.Storage_get_range
                   {
                     gr_from = cursor;
                     gr_until = u;
                     gr_version = version;
                     gr_limit = remaining - List.length acc;
                     gr_byte_limit = Params.range_bytes_want_all;
                     gr_reverse = false;
                     gr_epoch = epoch;
                   })
            in
            match reply with
            | Message.Storage_get_range_reply { rr_rows = []; _ } ->
                Future.return (List.rev acc)
            | Message.Storage_get_range_reply { rr_rows; rr_more } ->
                if rr_more && List.length acc + List.length rr_rows < remaining
                then
                  let last = fst (List.hd (List.rev rr_rows)) in
                  attempt i last_err (Types.next_key last)
                    (List.rev_append rr_rows acc)
                else Future.return (List.rev (List.rev_append rr_rows acc))
            | _ -> Future.fail (Error.Fdb Error.Timed_out))
          (function
            | Error.Fdb Error.Transaction_too_old as e -> Future.fail e
            | Engine.Timed_out -> attempt (i + 1) (Error.Fdb Error.Timed_out) f []
            | Error.Fdb _ as e -> attempt (i + 1) e f []
            | e -> Future.fail e)
    in
    attempt 0 (Error.Fdb Error.Timed_out) f []
  in
  let rec walk fragments acc remaining =
    match fragments with
    | [] -> Future.return (List.concat (List.rev acc))
    | _ when remaining <= 0 -> Future.return (List.concat (List.rev acc))
    | (f, u, team) :: rest ->
        let* rows = fetch_fragment ~f ~u ~team remaining in
        walk rest (rows :: acc) (remaining - List.length rows)
  in
  walk fragments [] limit

(* ---------- measurement ---------- *)

let time_reads label reads =
  let* () = Future.return () in
  let t0 = Engine.now () in
  let* rows = reads () in
  let elapsed = Engine.now () -. t0 in
  Printf.printf "%-28s %8.2f ms  (%d rows)\n%!" label (elapsed *. 1000.0) rows;
  Future.return (elapsed, rows)

let write_json ~smoke ~shards ~rows ~fanout ~seq_ms ~pipe_ms =
  let oc = open_out "BENCH_range.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"range_read\",\n";
  Printf.fprintf oc "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full");
  Printf.fprintf oc "  \"shards\": %d,\n" shards;
  Printf.fprintf oc "  \"rows\": %d,\n" rows;
  Printf.fprintf oc "  \"fanout\": %d,\n" fanout;
  Printf.fprintf oc "  \"sequential_ms_per_read\": %.3f,\n" seq_ms;
  Printf.fprintf oc "  \"pipelined_ms_per_read\": %.3f,\n" pipe_ms;
  Printf.fprintf oc "  \"speedup\": %.2f\n" (seq_ms /. Float.max pipe_ms 1e-9);
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_range.json\n%!"

let run ?(smoke = false) () =
  Bench_util.header "Range-read pipeline: sequential shard walk vs bounded fan-out";
  let universe = if smoke then 2_000 else 20_000 in
  let iters = if smoke then 3 else 10 in
  let config =
    Bench_util.shard_evenly Config.default ~universe ~key_of:Bench_util.key
  in
  let shards = ref 0 and fanout = !Params.client_range_fanout in
  let seq_ms = ref 0.0 and pipe_ms = ref 0.0 and row_count = ref 0 in
  Bench_util.with_sim ~cpu_scale:1.0 config (fun cluster ->
      let* () = Bench_util.preload cluster ~universe in
      let ctx = Cluster.context cluster in
      shards := Shard_map.shard_count ctx.Context.shard_map;
      let db = Cluster.client cluster ~name:"range-bench" in
      let machine = Process.fresh_machine ~dc:"dc1" 920_000 in
      let probe = Process.create ~name:"range-bench-seq" machine in
      let rng = Engine.fork_rng () in
      let from = Bench_util.key 0 and until = Bench_util.key universe in
      let limit = universe + 10 in
      (* A fresh snapshot per iteration, shared by both paths so they read
         the same data at the same version. *)
      let iteration () =
        let tx = Client.begin_tx db in
        let* version, epoch = Client.read_snapshot tx in
        let* seq, nseq =
          time_reads "sequential walk" (fun () ->
              let* rows =
                sequential_get_range ctx probe rng ~version ~epoch ~from ~until
                  ~limit
              in
              Future.return (List.length rows))
        in
        let* pipe, npipe =
          time_reads "pipelined fan-out" (fun () ->
              let tx = Client.begin_tx db in
              Client.set_read_version tx version;
              let* rows = Client.get_range ~limit tx ~from ~until () in
              Future.return (List.length rows))
        in
        if nseq <> npipe then
          Printf.printf "WARNING: row-count mismatch (seq %d, pipe %d)\n%!" nseq
            npipe;
        seq_ms := !seq_ms +. (seq *. 1000.0);
        pipe_ms := !pipe_ms +. (pipe *. 1000.0);
        row_count := nseq;
        Future.return ()
      in
      let rec loop i = if i = 0 then Future.return () else
          let* () = iteration () in
          loop (i - 1)
      in
      loop iters);
  let seq_ms = !seq_ms /. float_of_int iters in
  let pipe_ms = !pipe_ms /. float_of_int iters in
  Printf.printf
    "shards: %d, rows: %d, fanout: %d\nmean per read: sequential %.2f ms, pipelined %.2f ms (%.2fx)\n"
    !shards !row_count fanout seq_ms pipe_ms
    (seq_ms /. Float.max pipe_ms 1e-9);
  write_json ~smoke ~shards:!shards ~rows:!row_count ~fanout ~seq_ms ~pipe_ms
