(* Figure 7: a month of production traffic with a diurnal pattern.
   (a) read / write / keys-read rates per hour;
   (b) average and 99.9-percentile client read and commit latencies.
   We compress the month: each simulated "hour" is 2 simulated seconds
   (672 "hours" would be 22 min of sim, so we run 3 "days" = 72 buckets),
   driving a sinusoidal open-loop load whose read:write:keys-read mix
   matches the paper's averages (390.4K reads : 138.5K writes : 1.467M
   keys — i.e. ~2.8 reads per write, ~3.8 keys per read via range reads). *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng
module Histogram = Fdb_util.Histogram

let universe = 10_000
let hour = 2.0 (* simulated seconds per displayed hour *)
let hours = 72

type bucket = { mutable reads : int; mutable writes : int; mutable keys : int }

let run () =
  Bench_util.header "Figure 7: diurnal production traffic (3 compressed 'days')";
  let buckets = Array.init hours (fun _ -> { reads = 0; writes = 0; keys = 0 }) in
  let read_lat = Histogram.create () and commit_lat = Histogram.create () in
  Bench_util.with_sim ~cpu_scale:5.0
    (Bench_util.shard_evenly Config.default ~universe ~key_of:Bench_util.key)
    (fun cluster ->
      let* () = Bench_util.preload cluster ~universe in
      let rng = Engine.fork_rng () in
      let db = Array.init 8 (fun i -> Cluster.client cluster ~name:(Printf.sprintf "prod-%d" i)) in
      let t_start = Engine.now () in
      let bucket_of_now () =
        let i = int_of_float ((Engine.now () -. t_start) /. hour) in
        if i < 0 then 0 else if i >= hours then hours - 1 else i
      in
      (* Offered transaction rate follows a day/night sine. *)
      let rate_now () =
        let day_pos = Float.rem ((Engine.now () -. t_start) /. (hour *. 24.0)) 1.0 in
        let base = 260.0 in
        base *. (1.0 +. (0.6 *. sin (2.0 *. Float.pi *. day_pos)))
      in
      let one_txn () =
        let dbi = db.(Rng.int rng (Array.length db)) in
        if Rng.chance rng 0.74 then
          (* read transaction: one range read of ~4 keys *)
          Future.catch
            (fun () ->
              let t0 = Engine.now () in
              let* rows =
                Client.run dbi ~max_attempts:2 (fun tx ->
                    let s = Rng.int rng (universe - 8) in
                    Client.get_range tx ~limit:4 ~from:(Bench_util.key s)
                      ~until:(Bench_util.key (s + 8)) ())
              in
              Histogram.add read_lat (Engine.now () -. t0);
              let b = buckets.(bucket_of_now ()) in
              b.reads <- b.reads + 1;
              b.keys <- b.keys + List.length rows;
              Future.return ())
            (fun _ -> Future.return ())
        else
          Future.catch
            (fun () ->
              let t0 = Engine.now () in
              let* _ =
                Client.run dbi ~max_attempts:2 (fun tx ->
                    for _ = 1 to 2 do
                      Client.set tx (Bench_util.rand_key rng universe)
                        (Bench_util.rand_value rng)
                    done;
                    Future.return ())
              in
              Histogram.add commit_lat (Engine.now () -. t0);
              let b = buckets.(bucket_of_now ()) in
              b.writes <- b.writes + 2;
              Future.return ())
            (fun _ -> Future.return ())
      in
      let stop_at = t_start +. (float_of_int hours *. hour) in
      let rec arrivals () =
        if Engine.now () >= stop_at then Future.return ()
        else
          let* () = Engine.sleep (Rng.exponential rng (1.0 /. rate_now ())) in
          Engine.spawn "prod-txn" one_txn;
          arrivals ()
      in
      let* () = arrivals () in
      Engine.sleep 1.0);
  Bench_util.row "%-6s %10s %10s %10s\n" "hour" "reads/s" "writes/s" "keys/s";
  Array.iteri
    (fun i b ->
      if i mod 4 = 0 then
        Bench_util.row "%-6d %10.0f %10.0f %10.0f\n" i
          (float_of_int b.reads /. hour)
          (float_of_int b.writes /. hour)
          (float_of_int b.keys /. hour))
    buckets;
  let p h q = Histogram.percentile h q *. 1e3 in
  Bench_util.row
    "\nFigure 7b latencies: reads avg %.2f ms p99.9 %.2f ms (paper ~1/19); commits avg \
     %.2f ms p99.9 %.2f ms (paper ~22/281, WAN-replicated)\n"
    (Histogram.mean read_lat *. 1e3)
    (p read_lat 99.9)
    (Histogram.mean commit_lat *. 1e3)
    (p commit_lat 99.9)
