(* Figure 3: the lag from StorageServers to LogServers under steady load.
   The paper reports, over 12 hours of production traffic, 99.9th
   percentiles of 3.96 ms (cluster-average lag) and 208.6 ms (cluster-max
   lag). We run a steady mixed workload and sample every StorageServer's
   version lag once per 100 ms, reporting the same two series. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Histogram = Fdb_util.Histogram

let universe = 5_000

let run () =
  Bench_util.header "Figure 3: storage server lag behind the log stream";
  let avg_hist = Histogram.create () and max_hist = Histogram.create () in
  let samples = ref 0 in
  Bench_util.with_sim ~cpu_scale:5.0
    (Bench_util.shard_evenly Config.default ~universe ~key_of:Bench_util.key)
    (fun cluster ->
      let* () = Bench_util.preload cluster ~universe in
      let ctx = Cluster.context cluster in
      let probe_machine = Process.fresh_machine ~dc:"dc1" 910_000 in
      let probe = Process.create ~name:"lag-probe" probe_machine in
      let stop = ref false in
      (* Steady writer load so versions keep advancing. *)
      let writer i =
        let db = Cluster.client cluster ~name:(Printf.sprintf "lagw-%d" i) in
        let rng = Engine.fork_rng () in
        let rec loop () =
          if !stop then Future.return ()
          else
            let* () = Engine.sleep 0.002 in
            let* () =
              Future.catch
                (fun () ->
                  let* _ =
                    Client.run db ~max_attempts:2 (fun tx ->
                        for _ = 1 to 10 do
                          Client.set tx
                            (Bench_util.rand_key rng universe)
                            (Bench_util.rand_value rng)
                        done;
                        Future.return ())
                  in
                  Future.return ())
                (fun _ -> Future.return ())
            in
            loop ()
        in
        loop ()
      in
      let writers = Future.all_unit (List.init 4 (fun i -> writer i)) in
      (* Occasional clogging, like the production disturbances behind the
         paper's 208 ms max-lag tail. *)
      let clogger =
        let net = ctx.Context.net in
        let machines = Cluster.worker_machines cluster in
        let rng = Engine.fork_rng () in
        let rec loop n =
          if n = 0 then Future.return ()
          else
            let* () = Engine.sleep (Fdb_util.Det_rng.exponential rng 3.0) in
            let m = machines.(Fdb_util.Det_rng.int rng (Array.length machines)) in
            Network.clog_machine net m.Process.machine_id
              (Engine.now () +. Fdb_util.Det_rng.float rng 0.15);
            loop (n - 1)
        in
        loop 8
      in
      let rec sample n =
        if n = 0 then Future.return ()
        else
          let* () = Engine.sleep 0.1 in
          let* lags =
            Future.all
              (Array.to_list
                 (Array.map
                    (fun ep ->
                      Future.catch
                        (fun () ->
                          let* reply =
                            Context.rpc ctx ~timeout:1.0 ~from:probe ep
                              Message.Ss_stats_req
                          in
                          match reply with
                          | Message.Ss_stats { ss_lag; _ } -> Future.return (Some ss_lag)
                          | _ -> Future.return None)
                        (fun _ -> Future.return None))
                    ctx.Context.storage_eps))
          in
          let lags = List.filter_map Fun.id lags in
          if lags <> [] then begin
            incr samples;
            Histogram.add avg_hist (Fdb_util.Stats.mean lags);
            Histogram.add max_hist (Fdb_util.Stats.maximum lags)
          end;
          sample (n - 1)
      in
      let* () = sample 300 in
      stop := true;
      let* () = writers in
      let* () = clogger in
      Future.return ());
  let report name h =
    Bench_util.row "%-22s mean %7.2f ms   p99 %7.2f ms   p99.9 %7.2f ms   max %7.2f ms\n"
      name
      (Histogram.mean h *. 1e3)
      (Histogram.percentile h 99.0 *. 1e3)
      (Histogram.percentile h 99.9 *. 1e3)
      (Histogram.max_value h *. 1e3)
  in
  Bench_util.row "samples: %d (paper: 12h production, p99.9 avg=3.96ms max=208.6ms)\n"
    !samples;
  report "average storage lag" avg_hist;
  report "max storage lag" max_hist
