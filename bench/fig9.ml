(* Figure 9: throughput and average latency vs offered operation rate on
   the 24-machine configuration, 90/10 read-write open-loop load.
   Shapes to reproduce: throughput tracks the offered rate linearly until
   saturation; below the knee mean latencies are flat (read < GRV <
   commit); past the knee queueing blows latencies up while batching
   sustains throughput. Run at 1/20 scale: the paper's 100k-op knee region
   maps to ~5k and its 2M saturation point to ~100k. *)

open Fdb_core

let universe = 20_000
let scale = 20.0

let rates = [ 500.; 2_000.; 8_000.; 20_000.; 40_000.; 80_000.; 120_000. ]

let run () =
  Bench_util.header
    "Figure 9: 24-machine 90/10 open loop (1/20 scale: paper axis = 20x these ops)";
  Bench_util.row "%-12s %14s %10s %10s %10s %8s\n" "offered/s" "completed/s" "GRV ms"
    "Read ms" "Commit ms" "failed";
  let config = Config.scaled ~machines:24 in
  let config = Bench_util.shard_evenly config ~universe ~key_of:Bench_util.key in
  let last_doc = ref None in
  List.iter
    (fun rate ->
      let lat, tput =
        Bench_util.with_sim ~cpu_scale:scale config (fun cluster ->
            let open Fdb_sim.Future.Syntax in
            let* () = Bench_util.preload cluster ~universe in
            let* r = Bench_util.open_loop cluster ~universe ~rate ~warmup:4.0 ~measure:1.5 in
            last_doc := Some (Cluster.status_doc cluster);
            Fdb_sim.Future.return r)
      in
      let ms h = Fdb_util.Histogram.mean h *. 1e3 in
      Bench_util.row "%-12.0f %14.0f %10.2f %10.2f %10.2f %8d\n" rate tput
        (ms lat.Bench_util.grv) (ms lat.Bench_util.read) (ms lat.Bench_util.commit)
        lat.Bench_util.failed)
    rates;
  (* Server-side percentile view of the highest offered rate. *)
  Option.iter Bench_util.print_percentiles !last_doc
