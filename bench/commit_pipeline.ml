(* Commit-pipeline bench: the serial commit path (pipeline depth 1 — the
   pre-pipeline [Proxy.commit_flush], kept verbatim inside proxy.ml as the
   dispatch fallback) vs the bounded pipeline (depth
   [Params.proxy_commit_pipeline_depth]) on a single-proxy cluster, under
   an open-loop blind-write load at several offered rates. Records
   committed txn/s and client-observed commit latency p50/p99 per load
   into BENCH_commit.json, plus the speedup at the saturating load.

   The batch cap is pinned small for the bench: with the default 512 a
   single batch absorbs the whole offered load and the comparison would
   measure batching, not pipelining. With small batches the serial path is
   bottlenecked at one batch per end-to-end cycle (version RPC + resolve +
   push/sync + report) while the pipeline overlaps up to [depth] cycles. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng
module Histogram = Fdb_util.Histogram

type point = { tps : float; p50_ms : float; p99_ms : float; failed : int }

(* One offered-load measurement on a fresh single-proxy cluster. *)
let measure_load ~depth ~rate ~warmup ~measure ~universe =
  let config = { Config.default with Config.proxies = 1 } in
  let tps = ref 0.0 and p50 = ref 0.0 and p99 = ref 0.0 and failed = ref 0 in
  Bench_util.with_sim ~cpu_scale:1.0 config (fun cluster ->
      Params.proxy_commit_pipeline_depth := depth;
      let hist = Histogram.create () in
      let committed = ref 0 in
      let measuring = ref false in
      let dbs =
        Array.init 8 (fun i ->
            Cluster.client cluster ~name:(Printf.sprintf "commit-bench-%d" i))
      in
      let rng = Engine.fork_rng () in
      let stop_at = Engine.now () +. warmup +. measure in
      let blind_write db =
        let tx = Client.begin_tx db in
        Client.set tx (Bench_util.key (Rng.int rng universe)) (Bench_util.rand_value rng);
        let t0 = Engine.now () in
        Future.catch
          (fun () ->
            let* _ = Client.commit tx in
            if !measuring then begin
              Histogram.add hist (Engine.now () -. t0);
              incr committed
            end;
            Future.return ())
          (fun _ ->
            if !measuring then incr failed;
            Future.return ())
      in
      let rec arrivals () =
        if Engine.now () >= stop_at then Future.return ()
        else
          let* () = Engine.sleep (Rng.exponential rng (1.0 /. rate)) in
          let db = dbs.(Rng.int rng (Array.length dbs)) in
          Engine.spawn "commit-bench-txn" (fun () -> blind_write db);
          arrivals ()
      in
      let gen = arrivals () in
      let* () = Engine.sleep warmup in
      measuring := true;
      let t0 = Engine.now () in
      let* () = Engine.sleep measure in
      measuring := false;
      let elapsed = Engine.now () -. t0 in
      let* () = gen in
      (* Let in-flight commits settle (recorded only if they beat the flag
         flip; stragglers count as nothing, as in the open-loop benches). *)
      let* () = Engine.sleep 1.0 in
      tps := float_of_int !committed /. elapsed;
      p50 := Histogram.percentile hist 50.0 *. 1e3;
      p99 := Histogram.percentile hist 99.0 *. 1e3;
      if Sys.getenv_opt "BENCH_COMMIT_DEBUG" <> None then
        Bench_util.obs_percentiles cluster;
      Future.return ());
  { tps = !tps; p50_ms = !p50; p99_ms = !p99; failed = !failed }

let write_json ~smoke ~depth ~batch_cap ~rows ~speedup =
  let oc = open_out "BENCH_commit.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"commit_pipeline\",\n";
  Printf.fprintf oc "  \"mode\": \"%s\",\n" (if smoke then "smoke" else "full");
  Printf.fprintf oc "  \"pipeline_depth\": %d,\n" depth;
  Printf.fprintf oc "  \"max_commit_batch\": %d,\n" batch_cap;
  Printf.fprintf oc "  \"loads\": [\n";
  List.iteri
    (fun i (offered, serial, pipelined) ->
      Printf.fprintf oc
        "    {\"offered_tps\": %.0f,\n\
        \     \"serial\":    {\"tps\": %.0f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"failed\": %d},\n\
        \     \"pipelined\": {\"tps\": %.0f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"failed\": %d}}%s\n"
        offered serial.tps serial.p50_ms serial.p99_ms serial.failed
        pipelined.tps pipelined.p50_ms pipelined.p99_ms pipelined.failed
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"speedup_at_saturation\": %.2f\n" speedup;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_commit.json\n%!"

let run ?(smoke = false) () =
  Bench_util.header
    "Commit pipeline: serial batches (depth 1) vs overlapped in-flight batches";
  let depth = 4 in
  let batch_cap = 8 in
  let universe = 10_000 in
  let loads =
    if smoke then [ 2_000.0; 6_000.0; 20_000.0 ]
    else [ 2_000.0; 4_000.0; 8_000.0; 14_000.0; 20_000.0 ]
  in
  let warmup = 0.5 and measure = if smoke then 1.5 else 4.0 in
  let saved_depth = !Params.proxy_commit_pipeline_depth in
  let saved_cap = !Params.max_commit_batch in
  Params.max_commit_batch := batch_cap;
  let finish () =
    Params.proxy_commit_pipeline_depth := saved_depth;
    Params.max_commit_batch := saved_cap
  in
  let rows =
    try
      List.map
        (fun rate ->
          let serial = measure_load ~depth:1 ~rate ~warmup ~measure ~universe in
          let pipelined = measure_load ~depth ~rate ~warmup ~measure ~universe in
          Printf.printf
            "offered %6.0f/s   serial %6.0f/s (p50 %6.2f ms, p99 %7.2f ms)   \
             depth %d %6.0f/s (p50 %6.2f ms, p99 %7.2f ms)\n%!"
            rate serial.tps serial.p50_ms serial.p99_ms depth pipelined.tps
            pipelined.p50_ms pipelined.p99_ms;
          (rate, serial, pipelined))
        loads
    with e ->
      finish ();
      raise e
  in
  finish ();
  (* Saturation point: the load where the serial path leaves the most
     offered transactions on the table. *)
  let _, sat_serial, sat_pipelined =
    let gap (offered, (s : point), _) = offered -. s.tps in
    List.fold_left
      (fun best row -> if gap row > gap best then row else best)
      (List.hd rows) (List.tl rows)
  in
  let speedup = sat_pipelined.tps /. Float.max sat_serial.tps 1e-9 in
  Printf.printf "single-proxy speedup at saturating load: %.2fx\n" speedup;
  write_json ~smoke ~depth ~batch_cap ~rows ~speedup;
  if speedup < 2.0 then
    failwith
      (Printf.sprintf
         "commit pipeline speedup regressed: %.2fx < 2x at saturating load"
         speedup)
