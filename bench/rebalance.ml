(* Rebalancing under skew (§2.5): Zipfian point-read throughput on a key
   population that lands entirely inside one shard (the default two-byte
   boundaries cannot split inside the "bench/" prefix), so a single team
   serves every read. Measure with the DataDistributor idle, then let it
   split the hot shard and spread the pieces across the cluster with
   fetch-then-cutover moves — under the same load — and measure again. The
   smoke run fails if the spread cluster is not at least 2x faster. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Keygen = Fdb_workloads.Random_ops.Keygen
module Registry = Fdb_obs.Registry

let config machines =
  {
    Config.machines;
    coordinators = 3;
    proxies = 3;
    resolvers = 1;
    log_servers = 2;
    storage_per_machine = 1;
    log_replication = 2;
    storage_replication = 2;
    mvcc_window = 5.0;
    shards_per_storage = 2;
    cc_candidates = 3;
    racks = machines;
    disks_per_machine = 2;
    shard_boundaries = [];
    regions = 1;
  }

type point = { tps : float; ops : float; aborts : int }

let zipf_theta = 0.8

(* Ten Zipfian point reads per transaction: rank 0 is the hottest key, and
   every rank lives in the single "bench/" shard until the DD splits it. *)
let read_txn gen db rng =
  Client.run db (fun tx ->
      let rec go i bytes =
        if i = 10 then Future.return (10, bytes)
        else
          let key = Bench_util.key (Keygen.next_rank gen rng) in
          let* v = tx |> fun tx -> Client.get tx key in
          go (i + 1)
            (bytes + String.length key
            + match v with Some s -> String.length s | None -> 0)
      in
      go 0 0)

let dd_moves cluster =
  List.fold_left
    (fun acc (_, v) -> acc + v)
    0
    (Registry.counters (Cluster.metrics cluster) ~role:Registry.Data_distributor
       "moves_committed")

let write_json ~smoke ~universe ~shards_before ~shards_after ~moves
    ~(before : point) ~(after : point) ~speedup =
  let oc = open_out "BENCH_rebalance.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"name\": \"rebalance\",\n";
  Printf.fprintf oc "  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"universe\": %d,\n" universe;
  Printf.fprintf oc "  \"zipf_theta\": %.2f,\n" zipf_theta;
  Printf.fprintf oc "  \"shards_before\": %d,\n" shards_before;
  Printf.fprintf oc "  \"shards_after\": %d,\n" shards_after;
  Printf.fprintf oc "  \"moves_committed\": %d,\n" moves;
  Printf.fprintf oc
    "  \"before\": {\"tps\": %.1f, \"ops_per_s\": %.1f, \"aborts\": %d},\n"
    before.tps before.ops before.aborts;
  Printf.fprintf oc
    "  \"after\": {\"tps\": %.1f, \"ops_per_s\": %.1f, \"aborts\": %d},\n"
    after.tps after.ops after.aborts;
  Printf.fprintf oc "  \"speedup\": %.2f\n" speedup;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_rebalance.json\n%!"

let run ?(smoke = false) () =
  Bench_util.header
    "Rebalancing under skew: Zipfian reads on one hot shard, DD off vs on";
  let machines = 6 in
  let universe = if smoke then 2_500 else 8_000 in
  let clients = 32 in
  let warmup = 1.0 and measure = if smoke then 4.0 else 10.0 in
  let rebalance_time = if smoke then 30.0 else 45.0 in
  let gen = Keygen.zipfian ~n:universe ~theta:zipf_theta in
  let saved =
    ( !Params.dd_movement_enabled, !Params.dd_rebalance_interval,
      !Params.dd_split_bytes, !Params.dd_split_bandwidth, !Params.dd_merge_bytes,
      !Params.dd_imbalance_ratio )
  in
  let restore () =
    let en, iv, sb, sbw, mb, ir = saved in
    Params.dd_movement_enabled := en;
    Params.dd_rebalance_interval := iv;
    Params.dd_split_bytes := sb;
    Params.dd_split_bandwidth := sbw;
    Params.dd_merge_bytes := mb;
    Params.dd_imbalance_ratio := ir
  in
  let shards_before, shards_after, moves, before, after =
    Fun.protect ~finally:restore @@ fun () ->
    Bench_util.with_sim ~seed:4242L (config machines) (fun cluster ->
        let* () = Bench_util.preload cluster ~universe in
        let sm = (Cluster.context cluster).Context.shard_map in
        let shards_before = Shard_map.shard_count sm in
        let txn db rng = read_txn gen db rng in
        let* b_tps, b_ops, _, b_aborts =
          Bench_util.closed_loop cluster ~clients ~warmup ~measure ~txn
        in
        (* Unleash the DataDistributor: aggressive split threshold, no
           merging back, low imbalance bar — and keep the load running
           while it splits and spreads the hot shard. *)
        Params.dd_movement_enabled := true;
        Params.dd_rebalance_interval := 0.5;
        Params.dd_split_bytes := 20_000;
        (* also split by heat, so the hottest Zipf ranks end up isolated in
           shards small enough to spread one server apart *)
        Params.dd_split_bandwidth := 25_000.0;
        Params.dd_merge_bytes := 0;
        Params.dd_imbalance_ratio := 1.2;
        let* _ =
          Bench_util.closed_loop cluster ~clients ~warmup:rebalance_time
            ~measure:1.0 ~txn
        in
        (* Steady state: movement stays enabled (the realistic config); with
           the load spread there is nothing left worth moving. *)
        let* a_tps, a_ops, _, a_aborts =
          Bench_util.closed_loop cluster ~clients ~warmup ~measure ~txn
        in
        Future.return
          ( shards_before, Shard_map.shard_count sm, dd_moves cluster,
            { tps = b_tps; ops = b_ops; aborts = b_aborts },
            { tps = a_tps; ops = a_ops; aborts = a_aborts } ))
  in
  let speedup = after.tps /. Float.max before.tps 1e-9 in
  Printf.printf
    "one hot shard : %7.0f reads/s (%5.0f txn/s, %d aborts) over %d shards\n"
    before.ops before.tps before.aborts shards_before;
  Printf.printf
    "rebalanced    : %7.0f reads/s (%5.0f txn/s, %d aborts) over %d shards, %d moves\n"
    after.ops after.tps after.aborts shards_after moves;
  Printf.printf "rebalancing speedup: %.2fx\n" speedup;
  write_json ~smoke ~universe ~shards_before ~shards_after ~moves ~before ~after
    ~speedup;
  if speedup < 2.0 then
    failwith
      (Printf.sprintf "rebalancing speedup regressed: %.2fx < 2x under skew"
         speedup)
