(* Figure 10: CDF of reconfiguration (transaction system recovery)
   duration. The paper collects 289 production reconfigurations: median
   3.08 s, 90th percentile 5.28 s, all well under 10 s because recovery
   depends only on metadata sizes. We trigger repeated recoveries (killing
   the sequencer's machine or a LogServer) under light load across several
   seeds and measure client-visible write outage: last successful commit
   before the fault to first successful commit after. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng

let recoveries_per_seed = 8

let find_processes cluster prefix =
  Array.to_list (Cluster.worker_machines cluster)
  |> List.concat_map (fun m -> m.Process.machine_processes)
  |> List.filter (fun p ->
         p.Process.alive
         && String.length p.Process.name >= String.length prefix
         && String.sub p.Process.name 0 (String.length prefix) = prefix)

let one_seed seed =
  Engine.run ~seed ~max_time:1e5 (fun () ->
      let cluster = Cluster.create ~config:Config.default () in
      let* () = Cluster.wait_ready cluster in
      let db = Cluster.client cluster ~name:"rec-probe" in
      let rng = Engine.fork_rng () in
      let try_write () =
        Future.catch
          (fun () ->
            let tx = Client.begin_tx db in
            Client.set tx "rec/probe" (string_of_float (Engine.now ()));
            let* _ = Engine.timeout 0.5 (Client.commit tx) in
            Future.return true)
          (fun _ -> Future.return false)
      in
      let rec measure_one n acc =
        if n = 0 then Future.return acc
        else begin
          (* Make sure writes work, then inject the failure. *)
          let rec settle () =
            let* ok = try_write () in
            if ok then Future.return ()
            else
              let* () = Engine.sleep 0.2 in
              settle ()
          in
          let* () = settle () in
          let* epoch = Cluster.current_epoch cluster in
          let t_fault = Engine.now () in
          (* Stale role processes of dead generations linger; only killing a
             CURRENT-generation role causes an outage. Old sequencers are
             inert, so killing every alive one targets exactly the current
             generation; tlogs carry their epoch in the process name. *)
          (if Rng.bool rng then
             List.iter (fun p -> Engine.reboot p ~delay:(0.5 +. Rng.float rng 2.0) ())
               (find_processes cluster "sequencer")
           else
             match find_processes cluster (Printf.sprintf "tlog-%d." epoch) with
             | p :: _ -> Engine.reboot p ~delay:(0.5 +. Rng.float rng 2.0) ()
             | [] -> ());
          (* Poll until a write succeeds again. *)
          let rec poll () =
            let* ok = try_write () in
            if ok then Future.return (Engine.now () -. t_fault)
            else
              let* () = Engine.sleep 0.1 in
              poll ()
          in
          let* d = poll () in
          let* () = Engine.sleep 2.0 in
          measure_one (n - 1) (d :: acc)
        end
      in
      measure_one recoveries_per_seed [])

let run () =
  Bench_util.header "Figure 10: reconfiguration duration CDF";
  let durations =
    List.concat_map
      (fun seed -> one_seed (Int64.of_int seed))
      [ 11; 22; 33; 44; 55; 66 ]
  in
  let n = List.length durations in
  let sorted = List.sort compare durations in
  Bench_util.row "%d reconfigurations (paper: 289; median 3.08s, p90 5.28s)\n" n;
  Bench_util.row "%-12s %10s\n" "duration(s)" "CDF";
  List.iteri
    (fun i d ->
      let f = float_of_int (i + 1) /. float_of_int n in
      if i = 0 || i = n - 1 || i mod (max 1 (n / 12)) = 0 then
        Bench_util.row "%-12.2f %10.2f\n" d f)
    sorted;
  Bench_util.row "median %.2fs   p90 %.2fs   max %.2fs\n"
    (Fdb_util.Stats.median durations)
    (Fdb_util.Stats.percentile durations 90.0)
    (Fdb_util.Stats.maximum durations)
