(* Micro-benchmarks (bechamel, real wall-clock):
   - the §2.4.2 Resolver claim: one single-threaded Resolver handles ~280K
     TPS, each transaction checking one read range and noting one write
     range in the version-augmented skiplist;
   - skiplist primitives and future/engine overhead (substrate ablations). *)

open Bechamel
open Toolkit
module Rng = Fdb_util.Det_rng

let resolver_txn () =
  let rng = Rng.create 17L in
  let rvm = Fdb_kv.Range_version_map.create ~rng () in
  let version = ref 0L in
  (* Keys precomputed outside the measured loop (the paper measures the
     conflict check, not key formatting). *)
  let keys = Array.init 65_536 (fun i -> Printf.sprintf "%08d" i) in
  let ends = Array.map (fun k -> k ^ "\x00") keys in
  for i = 0 to 5_000 do
    let j = Rng.int rng 65_536 in
    Fdb_kv.Range_version_map.note_write rvm ~from:keys.(j) ~until:ends.(j)
      (Int64.of_int i)
  done;
  version := 5_001L;
  fun () ->
    let r = Rng.int rng 65_536 and w = Rng.int rng 65_536 in
    version := Int64.add !version 1L;
    let v = Fdb_kv.Range_version_map.max_version rvm ~from:keys.(r) ~until:ends.(r) in
    if v <= !version then
      Fdb_kv.Range_version_map.note_write rvm ~from:keys.(w) ~until:ends.(w) !version;
    (* Keep the history bounded like the 5 s MVCC window does. *)
    if Int64.rem !version 50_000L = 0L then
      Fdb_kv.Range_version_map.expire rvm ~before:(Int64.sub !version 50_000L)

let skiplist_insert () =
  let rng = Rng.create 3L in
  let sl = Fdb_kv.Skiplist.create ~rng () in
  let i = ref 0 in
  fun () ->
    incr i;
    Fdb_kv.Skiplist.insert sl (Printf.sprintf "%08d" (Rng.int rng 1_000_000)) !i

let skiplist_search () =
  let rng = Rng.create 3L in
  let sl = Fdb_kv.Skiplist.create ~rng () in
  for i = 0 to 100_000 do
    Fdb_kv.Skiplist.insert sl (Printf.sprintf "%08d" (Rng.int rng 1_000_000)) i
  done;
  fun () ->
    ignore
      (Fdb_kv.Skiplist.find_less_equal sl (Printf.sprintf "%08d" (Rng.int rng 1_000_000))
       : (string * int) option)

let future_chain () =
  fun () ->
    let open Fdb_sim.Future in
    let f, p = make () in
    let g = bind f (fun x -> return (x + 1)) in
    fulfill p 1;
    ignore (peek g : int option)

let tests =
  [
    ("resolver-check+note (one txn)", resolver_txn ());
    ("skiplist insert", skiplist_insert ());
    ("skiplist find_less_equal (100k)", skiplist_search ());
    ("future make/bind/fulfill", future_chain ());
  ]

let run () =
  Bench_util.header "Micro-benchmarks (wall clock; paper: 1 resolver ~ 280K TPS)";
  List.iter
    (fun (name, fn) ->
      let test = Test.make ~name (Staged.stage fn) in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      (* fdb-lint: allow R2 -- bechamel hands back a raw Hashtbl; wall-clock bench output, not simulation state *)
      Hashtbl.iter
        (fun _key v ->
          match Analyze.OLS.estimates v with
          | Some [ ns ] ->
              let tps = 1e9 /. ns in
              Bench_util.row "%-34s %10.0f ns/op  (%.0fK ops/s)\n" name ns (tps /. 1e3)
          | _ -> Bench_util.row "%-34s (no estimate)\n" name)
        results)
    tests
