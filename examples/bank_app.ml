(* Bank example: concurrent transfers between accounts while machines are
   being killed and rebooted — and the money is still conserved, because
   transactions are strictly serializable (paper §2.4.2) and recovery never
   loses an acknowledged commit (§2.4.4).

     dune exec examples/bank_app.exe *)

open Fdb_sim
open Fdb_core
open Fdb_workloads
open Future.Syntax

let accounts = 25
let initial = 100

let () =
  let report =
    Engine.run ~seed:2024L (fun () ->
        let cluster = Cluster.create () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"bank" in
        let* () = Bank.setup db ~accounts ~initial in
        Printf.printf "opened %d accounts with $%d each\n" accounts initial;

        (* Three tellers transfer concurrently for 20 simulated seconds
           while the fault injector wreaks havoc. *)
        let stop_at = Engine.now () +. 20.0 in
        let teller i =
          let tdb = Cluster.client cluster ~name:(Printf.sprintf "teller%d" i) in
          Bank.transfer_loop tdb ~accounts ~until:stop_at ~rng:(Engine.fork_rng ())
        in
        let faults =
          { Fault_injector.default with duration = 20.0; kill_mean_interval = 8.0 }
        in
        let chaos =
          Fault_injector.run
            ~net:(Cluster.context cluster).Context.net
            ~machines:(Cluster.worker_machines cluster)
            faults
        in
        let t1 = teller 1 and t2 = teller 2 and t3 = teller 3 in
        let* s1 = t1 and* s2 = t2 and* s3 = t3 and* () = chaos in
        let* () = Cluster.wait_ready ~timeout:60.0 cluster in
        let* check = Bank.check db ~accounts ~expected_total:(accounts * initial) in
        let* epoch = Cluster.current_epoch cluster in
        Future.return (s1, s2, s3, check, epoch))
  in
  let s1, s2, s3, check, epoch = report in
  let total t = t.Bank.transfers_committed in
  Printf.printf "transfers committed: %d (conflicts retried: %d)\n"
    (total s1 + total s2 + total s3)
    (s1.Bank.conflicts + s2.Bank.conflicts + s3.Bank.conflicts);
  Printf.printf "transaction system generations consumed: %d\n" epoch;
  match check with
  | Ok () -> Printf.printf "invariant holds: every dollar accounted for.\n"
  | Error m -> failwith ("INVARIANT VIOLATED: " ^ m)
