(* Durable job queue built on versionstamped keys (paper §2.6 and §6.4's
   TaskBucket pattern), now layered on Directory/Subspace and driven by
   watches instead of polling: producers append jobs under
   commit-version-ordered keys and bump a signal key in the same
   transaction; an idle consumer arms a watch on the signal key inside the
   very transaction that observed the queue empty — so a job enqueued at
   any later commit version is guaranteed to wake it (registration-time
   catch-up on the storage server), and an idle queue costs zero range
   reads.

   Data model (inside the directory ["examples"; "queue"]):
     items:  ("items", <10-byte versionstamp>) = payload
     signal: ("signal",)  -- atomic-add bumped by every enqueue
     stop:   ("stop",)    -- set once producers are done

     dune exec examples/queue_layer.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Subspace = Fdb_layers.Subspace
module Directory = Fdb_layers.Directory

type q = { items : Subspace.t; signal_key : string; stop_key : string }

let open_queue db =
  Client.run db (fun tx ->
      let* dir = Directory.create_or_open tx [ "examples"; "queue" ] in
      Future.return
        {
          items = Subspace.sub dir [ Tuple.String "items" ];
          signal_key = Subspace.pack dir [ Tuple.String "signal" ];
          stop_key = Subspace.pack dir [ Tuple.String "stop" ];
        })

let enqueue db q payload =
  Client.run db (fun tx ->
      Client.set_versionstamped_key tx
        ~template:(Subspace.prefix q.items ^ Client.versionstamp_placeholder)
        ~offset:(String.length (Subspace.prefix q.items))
        ~value:payload;
      (* The watched key: one conflict-free bump per enqueue. *)
      Client.atomic_op tx Fdb_kv.Mutation.Add q.signal_key
        (Fdb_layers.Index.le64 1L);
      Future.return ())

(* One claim attempt. Two racing consumers conflict on the head key and
   one retries onto the next job — classic OCC. An empty queue arms a
   watch on the signal key in the SAME transaction that observed
   emptiness: an enqueue committing at any later version must change the
   signal key, so the wakeup cannot be lost. *)
let try_claim db q =
  Client.run db (fun tx ->
      let* head =
        Client.range tx (Subspace.query ~limit:1 ~mode:(`Exact 1) q.items ())
      in
      match head.Client.batch_rows with
      | (k, payload) :: _ ->
          Client.clear tx k;
          Future.return (`Job payload)
      | [] -> (
          let* stopped = Client.get tx q.stop_key in
          match stopped with
          | Some _ -> Future.return `Stop
          | None ->
              let w = Client.watch tx q.signal_key in
              Future.return (`Wait w)))

let () =
  Engine.run (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let producer_db = Cluster.client cluster ~name:"producer" in
      let consumer_a = Cluster.client cluster ~name:"consumer-a" in
      let consumer_b = Cluster.client cluster ~name:"consumer-b" in
      let* q = open_queue producer_db in

      let drained = ref [] in
      let consume db who =
        let rec go () =
          let* r = try_claim db q in
          match r with
          | `Job payload ->
              drained := (who, payload) :: !drained;
              go ()
          | `Stop -> Future.return ()
          | `Wait w ->
              (* Park until an enqueue bumps the signal key — no polling. *)
              let* () = Client.watch_future w in
              go ()
        in
        go ()
      in

      let produce db who n =
        let rec go i =
          if i > n then Future.return ()
          else
            let* () = enqueue db q (Printf.sprintf "%s-job%d" who i) in
            go (i + 1)
        in
        go 1
      in

      let c1 = consume consumer_a "A" and c2 = consume consumer_b "B" in

      (* Phase 1: four jobs; wait until the consumers drain them. *)
      let* () = produce producer_db "red" 4 in
      let rec wait_for n =
        if List.length !drained >= n then Future.return ()
        else
          let* () = Engine.sleep 0.2 in
          wait_for n
      in
      let* () = wait_for 4 in

      (* Phase 2: the queue idles with both consumers parked on watches.
         Watch long-polls are not range reads: the storage-side range
         request counter must not move. *)
      let metrics = Cluster.metrics cluster in
      let range_reqs () =
        Fdb_obs.Registry.sum_counter metrics ~role:Fdb_obs.Registry.Storage
          "range_requests"
      in
      let* () = Engine.sleep 1.0 in
      let idle0 = range_reqs () in
      let* () = Engine.sleep 10.0 in
      let idle1 = range_reqs () in
      Printf.printf "storage range requests over 10 idle seconds: %d\n"
        (idle1 - idle0);
      assert (idle1 - idle0 = 0);

      (* Phase 3: more jobs — the watches fire and consumption resumes. *)
      let* () = produce producer_db "blue" 3 in
      let* () = wait_for 7 in

      (* Shut down: the stop marker and a signal bump ride one transaction
         so parked consumers wake, see stop, and exit. *)
      let* () =
        Client.run producer_db (fun tx ->
            Client.set tx q.stop_key "done";
            Client.atomic_op tx Fdb_kv.Mutation.Add q.signal_key
              (Fdb_layers.Index.le64 1L);
            Future.return ())
      in
      let* () = c1 and* () = c2 in
      let jobs = List.rev !drained in
      List.iter (fun (who, p) -> Printf.printf "consumer %s got %s\n" who p) jobs;
      Printf.printf "delivered %d jobs, duplicates: %d\n" (List.length jobs)
        (List.length jobs
        - List.length (List.sort_uniq compare (List.map snd jobs)));
      assert (List.length (List.sort_uniq compare (List.map snd jobs)) = 7);
      Future.return ())
