(* Durable job queue built on versionstamped keys (paper §2.6 and §6.4's
   TaskBucket pattern): producers append jobs under commit-version-ordered
   keys without conflicting with each other; consumers atomically claim the
   head. Versionstamps give a total, commit-order-consistent enqueue order
   with zero coordination.

   Data model:
     queue/<10-byte versionstamp> = payload

     dune exec examples/queue_layer.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let enqueue db payload =
  Client.run db (fun tx ->
      Client.set_versionstamped_key tx
        ~template:("queue/" ^ Client.versionstamp_placeholder)
        ~offset:6 ~value:payload;
      Future.return ())

(* Claim-and-remove the head job. Two racing consumers conflict on the head
   key and one retries onto the next job — classic OCC. *)
let dequeue db =
  Client.run db (fun tx ->
      let* head = Client.get_range tx ~limit:1 ~from:"queue/" ~until:"queue0" () in
      match head with
      | [] -> Future.return None
      | (k, payload) :: _ ->
          Client.clear tx k;
          Future.return (Some payload))

let () =
  Engine.run (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let producer_db = Cluster.client cluster ~name:"producer" in
      let consumer_a = Cluster.client cluster ~name:"consumer-a" in
      let consumer_b = Cluster.client cluster ~name:"consumer-b" in

      (* Two producers interleave; versionstamps order the queue by commit. *)
      let produce db who n =
        let rec go i =
          if i > n then Future.return ()
          else
            let* () = enqueue db (Printf.sprintf "%s-job%d" who i) in
            go (i + 1)
        in
        go 1
      in
      let p1 = produce producer_db "red" 4 in
      let* () = p1 in
      let* () = produce producer_db "blue" 3 in
      Printf.printf "enqueued 7 jobs\n";

      (* Two consumers drain concurrently; each job is delivered once. *)
      let drained = ref [] in
      let consume db who =
        let rec go () =
          let* job = dequeue db in
          match job with
          | None -> Future.return ()
          | Some payload ->
              drained := (who, payload) :: !drained;
              go ()
        in
        go ()
      in
      let c1 = consume consumer_a "A" and c2 = consume consumer_b "B" in
      let* () = c1 and* () = c2 in
      let jobs = List.rev !drained in
      List.iter (fun (who, p) -> Printf.printf "consumer %s got %s\n" who p) jobs;
      Printf.printf "delivered %d jobs, duplicates: %d\n" (List.length jobs)
        (List.length jobs
        - List.length (List.sort_uniq compare (List.map snd jobs)));
      assert (List.length (List.sort_uniq compare (List.map snd jobs)) = 7);
      Future.return ())
