(* Class scheduling — FoundationDB's canonical tutorial, built on the bare
   key-value API: class listings with limited seats, students signing up
   and dropping, capacity enforced transactionally.

   Data model (ordered keys make the "available classes" query a range
   scan):
     attends/<student>/<class> = ""
     class/<class>             = remaining seats

     dune exec examples/class_scheduling.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let class_key c = "class/" ^ c
let attends_key s c = Printf.sprintf "attends/%s/%s" s c
let attends_range s = Types.range_of_prefix (Printf.sprintf "attends/%s/" s)

let seats_of v = int_of_string v

let available_classes tx =
  let from, until = Types.range_of_prefix "class/" in
  let* all = Client.get_range tx ~from ~until () in
  Future.return
    (List.filter_map
       (fun (k, v) ->
         if seats_of v > 0 then Some (String.sub k 6 (String.length k - 6)) else None)
       all)

let signup db student cls =
  Client.run db (fun tx ->
      let* already = Client.get tx (attends_key student cls) in
      if already <> None then Future.return `Already_signed_up
      else
        let* seats = Client.get tx (class_key cls) in
        match seats with
        | None -> Future.return `No_such_class
        | Some v when seats_of v <= 0 -> Future.return `Class_full
        | Some v ->
            (* A student may attend at most 5 classes. *)
            let from, until = attends_range student in
            let* attending = Client.get_range tx ~from ~until () in
            if List.length attending >= 5 then Future.return `Too_many_classes
            else begin
              Client.set tx (class_key cls) (string_of_int (seats_of v - 1));
              Client.set tx (attends_key student cls) "";
              Future.return `Signed_up
            end)

let drop db student cls =
  Client.run db (fun tx ->
      let* attending = Client.get tx (attends_key student cls) in
      if attending = None then Future.return ()
      else
        let* seats = Client.get tx (class_key cls) in
        Client.set tx (class_key cls)
          (string_of_int (seats_of (Option.get seats) + 1));
        Client.clear tx (attends_key student cls);
        Future.return ())

let () =
  Engine.run (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let db = Cluster.client cluster ~name:"registrar" in
      let classes = [ "alg101"; "bio201"; "chem301"; "db401" ] in
      let* _ =
        Client.run db (fun tx ->
            List.iter (fun c -> Client.set tx (class_key c) "2") classes;
            Future.return ())
      in
      Printf.printf "opened %d classes with 2 seats each\n" (List.length classes);

      (* Five students race for the 8 seats; capacity must hold exactly. *)
      let students = [ "alice"; "bob"; "carol"; "dave"; "eve" ] in
      let rng = Engine.fork_rng () in
      let enroll s =
        let rec try_classes = function
          | [] -> Future.return ()
          | c :: rest ->
              let* () = Engine.sleep (Fdb_util.Det_rng.float rng 0.05) in
              let* outcome = signup db s c in
              (match outcome with
              | `Signed_up -> Printf.printf "%-6s signed up for %s\n" s c
              | `Class_full -> Printf.printf "%-6s found %s full\n" s c
              | _ -> ());
              try_classes rest
        in
        try_classes classes
      in
      let* () = Future.all_unit (List.map enroll students) in

      (* Verify: per-class enrolment matches the seat counters. *)
      let* ok =
        Client.run db (fun tx ->
            let* rows = Client.get_range tx ~from:"attends/" ~until:"attends0" () in
            let enrolled c =
              List.length
                (List.filter
                   (fun (k, _) ->
                     String.length k > String.length c
                     && String.sub k (String.length k - String.length c) (String.length c) = c)
                   rows)
            in
            let* counts =
              Future.all
                (List.map
                   (fun c -> Future.map (Client.get tx (class_key c)) (fun v -> (c, v)))
                   classes)
            in
            Future.return
              (List.for_all
                 (fun (c, v) -> seats_of (Option.get v) + enrolled c = 2)
                 counts))
      in
      Printf.printf "capacity invariant: %s\n" (if ok then "holds" else "VIOLATED");
      if not ok then exit 1;

      (* Drop and re-check availability. *)
      let* () = drop db "alice" "alg101" in
      let* avail = Client.run db (fun tx -> available_classes tx) in
      Printf.printf "classes with open seats after alice drops alg101: %s\n"
        (String.concat ", " avail);
      Future.return ())
