(* A miniature Record-Layer-flavored store (paper §1 cites the
   FoundationDB Record Layer as the flagship layer): typed records keyed
   by tuple-encoded primary keys plus a declared secondary index, riding
   the Subspace and Index layers — order-preserving tuples remain the
   layer-building primitive, but the key plumbing and index maintenance
   are the layer's job now.

   Records: pkey = pack (city, unix_day), value = pack (celsius).
   Index "by_day": (day, city), maintained transactionally by the layer.

     dune exec examples/record_store.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module T = Tuple
module Subspace = Fdb_layers.Subspace
module Directory = Fdb_layers.Directory
module Index = Fdb_layers.Index

let pkey city day = T.pack [ T.String city; T.Int (Int64.of_int day) ]

let defs =
  [
    Index.Value
      {
        name = "by_day";
        extract =
          (fun ~pkey ~value:_ ->
            match T.unpack pkey with
            | [ T.String city; T.Int day ] -> [ [ T.Int day; T.String city ] ]
            | _ -> []);
      };
  ]

let open_store db =
  Client.run db (fun tx ->
      let* dir = Directory.create_or_open tx [ "examples"; "temps" ] in
      Future.return (Index.create dir defs))

let insert db store ~city ~day ~celsius =
  Client.run db (fun tx ->
      Index.set store tx (pkey city day) (T.pack [ T.Float celsius ]))

(* Range scan over one city's history: tuple prefixes make this a single
   ordered range read over the record subspace, with days coming back in
   numeric order even though keys are raw bytes. *)
let history db store ~city =
  Client.run db (fun tx ->
      let* rows = Index.scan store tx in
      Future.return
        (List.filter_map
           (fun (k, v) ->
             match (T.unpack k, T.unpack v) with
             | [ T.String c; T.Int day ], [ T.Float temp ] when c = city ->
                 Some (Int64.to_int day, temp)
             | _ -> None)
           rows))

let cities_measured_on db store ~day =
  Client.run db (fun tx ->
      let* pkeys =
        Index.lookup store tx ~index:"by_day" ~entry:[ T.Int (Int64.of_int day) ]
      in
      Future.return
        (List.filter_map
           (fun k ->
             match T.unpack k with
             | [ T.String city; T.Int _ ] -> Some city
             | _ -> None)
           pkeys))

let () =
  Engine.run (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let db = Cluster.client cluster ~name:"records" in
      let* store = open_store db in
      let* () = insert db store ~city:"oslo" ~day:19_000 ~celsius:(-3.5) in
      let* () = insert db store ~city:"oslo" ~day:19_001 ~celsius:(-1.0) in
      let* () = insert db store ~city:"oslo" ~day:19_002 ~celsius:2.25 in
      let* () = insert db store ~city:"lima" ~day:19_001 ~celsius:24.0 in
      let* oslo = history db store ~city:"oslo" in
      Printf.printf "oslo history:\n";
      List.iter (fun (d, c) -> Printf.printf "  day %d: %+.2f C\n" d c) oslo;
      let* cities = cities_measured_on db store ~day:19_001 in
      Printf.printf "cities measured on day 19001: %s\n" (String.concat ", " cities);
      assert (List.map fst oslo = [ 19_000; 19_001; 19_002 ]);
      let* issues = Client.run db (fun tx -> Index.verify store tx) in
      assert (issues = []);
      Future.return ())
