(* A miniature Record-Layer-flavored store (paper §1 cites the
   FoundationDB Record Layer as the flagship layer): typed records keyed
   by tuple-encoded primary keys, plus a tuple-encoded secondary index —
   showing why order-preserving tuples are the layer-building primitive.

   Key space:
     ("temps", city, unix_day)        -> reading (float, tuple-encoded)
     ("idx", "by_day", unix_day, city) -> ""

     dune exec examples/record_store.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module T = Tuple

let record_key city day = T.pack [ T.String "temps"; T.String city; T.Int (Int64.of_int day) ]
let index_key day city = T.pack [ T.String "idx"; T.String "by_day"; T.Int (Int64.of_int day); T.String city ]

let insert db ~city ~day ~celsius =
  Client.run db (fun tx ->
      Client.set tx (record_key city day) (T.pack [ T.Float celsius ]);
      Client.set tx (index_key day city) "";
      Future.return ())

(* Range scan over one city's history: tuple prefixes make this a single
   ordered range read, with days coming back in numeric order even though
   keys are raw bytes. *)
let history db ~city =
  Client.run db (fun tx ->
      let from, until = T.range [ T.String "temps"; T.String city ] in
      let* rows = Client.get_range tx ~from ~until () in
      Future.return
        (List.map
           (fun (k, v) ->
             match (T.unpack k, T.unpack v) with
             | [ _; _; T.Int day ], [ T.Float c ] -> (Int64.to_int day, c)
             | _ -> failwith "corrupt record")
           rows))

let cities_measured_on db ~day =
  Client.run db (fun tx ->
      let from, until = T.range [ T.String "idx"; T.String "by_day"; T.Int (Int64.of_int day) ] in
      let* rows = Client.get_range tx ~from ~until () in
      Future.return
        (List.map
           (fun (k, _) ->
             match T.unpack k with
             | [ _; _; _; T.String city ] -> city
             | _ -> failwith "corrupt index")
           rows))

let () =
  Engine.run (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let db = Cluster.client cluster ~name:"records" in
      let* () = insert db ~city:"oslo" ~day:19_000 ~celsius:(-3.5) in
      let* () = insert db ~city:"oslo" ~day:19_001 ~celsius:(-1.0) in
      let* () = insert db ~city:"oslo" ~day:19_002 ~celsius:2.25 in
      let* () = insert db ~city:"lima" ~day:19_001 ~celsius:24.0 in
      let* oslo = history db ~city:"oslo" in
      Printf.printf "oslo history:\n";
      List.iter (fun (d, c) -> Printf.printf "  day %d: %+.2f C\n" d c) oslo;
      let* cities = cities_measured_on db ~day:19_001 in
      Printf.printf "cities measured on day 19001: %s\n" (String.concat ", " cities);
      assert (List.map fst oslo = [ 19_000; 19_001; 19_002 ]);
      Future.return ())
