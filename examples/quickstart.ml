(* Quickstart: boot a simulated FoundationDB cluster, write, read, range
   scan — the README example. Everything runs inside the deterministic
   simulator, so the output is identical on every run.

     dune exec examples/quickstart.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let () =
  Engine.run (fun () ->
      (* 1. Bring up a cluster (coordinators elect a ClusterController,
            which recruits the first transaction system generation). *)
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      Printf.printf "cluster ready at t=%.2fs (simulated)\n" (Engine.now ());

      (* 2. Open a database handle and run a transaction. [Client.run]
            retries on conflicts, just like the real bindings. *)
      let db = Cluster.client cluster ~name:"quickstart" in
      let* commit_version =
        Client.run db (fun tx ->
            Client.set tx "hello" "world";
            Client.set tx "marbles/red" "5";
            Client.set tx "marbles/blue" "3";
            Client.commit tx)
      in
      Printf.printf "committed at version %Ld\n" commit_version;

      (* 3. Read it back — point read and ordered range scan. *)
      let* value, marbles =
        Client.run db (fun tx ->
            let* value = Client.get tx "hello" in
            let* marbles = Client.get_range tx ~from:"marbles/" ~until:"marbles0" () in
            Future.return (value, marbles))
      in
      Printf.printf "hello = %s\n" (Option.value value ~default:"<missing>");
      List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) marbles;

      (* 4. Atomic increment: no read conflict, ideal for hot counters. *)
      let one = String.init 8 (fun i -> if i = 0 then '\x01' else '\x00') in
      let* _ =
        Client.run db (fun tx ->
            Client.atomic_op tx Fdb_kv.Mutation.Add "visits" one;
            Future.return ())
      in
      let* visits = Client.run db (fun tx -> Client.get tx "visits") in
      (match visits with
      | Some bytes -> Printf.printf "visits = %d\n" (Char.code bytes.[0])
      | None -> ());
      Future.return ())
