(* Consistent secondary index layer (paper §1: transactions let users
   "implement more advanced features, such as consistent secondary
   indices"). A tiny user table indexed by city; both the record and its
   index entry move in one transaction, so the index can never dangle.

   Data model:
     user/<id>            = <name>,<city>
     index/city/<city>/<id> = ""

     dune exec examples/indexer.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let user_key id = "user/" ^ id
let index_key city id = Printf.sprintf "index/city/%s/%s" city id

let parse_record v =
  match String.index_opt v ',' with
  | Some i -> (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
  | None -> (v, "")

let upsert_user db ~id ~name ~city =
  Client.run db (fun tx ->
      (* Remove the old index entry, if the user moved. *)
      let* old = Client.get tx (user_key id) in
      (match old with
      | Some v ->
          let _, old_city = parse_record v in
          if old_city <> city then Client.clear tx (index_key old_city id)
      | None -> ());
      Client.set tx (user_key id) (name ^ "," ^ city);
      Client.set tx (index_key city id) "";
      Future.return ())

let delete_user db ~id =
  Client.run db (fun tx ->
      let* old = Client.get tx (user_key id) in
      (match old with
      | Some v ->
          let _, city = parse_record v in
          Client.clear tx (user_key id);
          Client.clear tx (index_key city id)
      | None -> ());
      Future.return ())

let users_in_city db city =
  Client.run db (fun tx ->
      let from, until = Types.range_of_prefix (Printf.sprintf "index/city/%s/" city) in
      (* Stream the index in bounded batches: memory stays flat however
         large the city gets, and each batch rides the parallel pipeline. *)
      let rec scan ?continuation acc =
        let* b = Client.get_range_stream ?continuation tx ~from ~until () in
        let acc = List.rev_append b.Client.batch_rows acc in
        match b.Client.batch_continuation with
        | Some c -> scan ~continuation:c acc
        | None -> Future.return (List.rev acc)
      in
      let* entries = scan [] in
      let ids =
        List.map
          (fun (k, _) ->
            let prefix_len = String.length (Printf.sprintf "index/city/%s/" city) in
            String.sub k prefix_len (String.length k - prefix_len))
          entries
      in
      (* Resolve ids to names inside the SAME transaction: the index and the
         records are from one snapshot, so this join is always consistent. *)
      let rec resolve acc = function
        | [] -> Future.return (List.rev acc)
        | id :: rest ->
            let* v = Client.get tx (user_key id) in
            (match v with
            | Some record -> resolve (fst (parse_record record) :: acc) rest
            | None -> Future.fail (Failure "dangling index entry!"))
        in
      resolve [] ids)

let () =
  Engine.run (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let db = Cluster.client cluster ~name:"indexer" in
      let* () = upsert_user db ~id:"u1" ~name:"Ada" ~city:"london" in
      let* () = upsert_user db ~id:"u2" ~name:"Grace" ~city:"nyc" in
      let* () = upsert_user db ~id:"u3" ~name:"Edsger" ~city:"london" in
      let* londoners = users_in_city db "london" in
      Printf.printf "london: %s\n" (String.concat ", " londoners);

      (* Move Ada; the index follows atomically. *)
      let* () = upsert_user db ~id:"u1" ~name:"Ada" ~city:"nyc" in
      let* londoners = users_in_city db "london" in
      let* new_yorkers = users_in_city db "nyc" in
      Printf.printf "after the move — london: %s | nyc: %s\n"
        (String.concat ", " londoners)
        (String.concat ", " new_yorkers);

      let* () = delete_user db ~id:"u2" in
      let* new_yorkers = users_in_city db "nyc" in
      Printf.printf "after deleting Grace — nyc: %s\n" (String.concat ", " new_yorkers);
      Future.return ())
