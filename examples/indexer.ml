(* Consistent secondary index layer (paper §1: transactions let users
   "implement more advanced features, such as consistent secondary
   indices"), now expressed with the index layer: declare the index once
   and every write maintains it in the same transaction — no hand-rolled
   key concatenation, no manual old-entry cleanup.

   Data model (inside the directory ["examples"; "users"]):
     ("r", id)                 = <name>,<city>
     ("i", "city", city, id)   = ""     (maintained by the layer)
     ("c", "city", city)       = LE64   (how many users per city)

     dune exec examples/indexer.exe *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Directory = Fdb_layers.Directory
module Index = Fdb_layers.Index

let parse_record v =
  match String.index_opt v ',' with
  | Some i -> (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
  | None -> (v, "")

let city_of ~pkey:_ ~value = snd (parse_record value)

let defs =
  [
    Index.Value
      {
        name = "city";
        extract = (fun ~pkey ~value -> [ [ Tuple.String (city_of ~pkey ~value) ] ]);
      };
    Index.Counter
      {
        name = "city";
        group = (fun ~pkey ~value -> [ Tuple.String (city_of ~pkey ~value) ]);
      };
  ]

let open_store db =
  Client.run db (fun tx ->
      let* dir = Directory.create_or_open tx [ "examples"; "users" ] in
      Future.return (Index.create dir defs))

let upsert_user db store ~id ~name ~city =
  Client.run db (fun tx -> Index.set store tx id (name ^ "," ^ city))

let delete_user db store ~id =
  Client.run db (fun tx -> Index.clear store tx id)

let users_in_city db store city =
  Client.run db (fun tx ->
      let* ids = Index.lookup store tx ~index:"city" ~entry:[ Tuple.String city ] in
      (* Resolve ids to names inside the SAME transaction: the index and
         the records come from one snapshot, so this join is always
         consistent. *)
      let rec resolve acc = function
        | [] -> Future.return (List.rev acc)
        | id :: rest -> (
            let* v = Index.get store tx id in
            match v with
            | Some record -> resolve (fst (parse_record record) :: acc) rest
            | None -> Future.fail (Failure "dangling index entry!"))
      in
      let* names = resolve [] ids in
      let* count = Index.counter_value store tx ~index:"city" ~group:[ Tuple.String city ] in
      Future.return (names, count))

let () =
  Engine.run (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let db = Cluster.client cluster ~name:"indexer" in
      let* store = open_store db in
      let* () = upsert_user db store ~id:"u1" ~name:"Ada" ~city:"london" in
      let* () = upsert_user db store ~id:"u2" ~name:"Grace" ~city:"nyc" in
      let* () = upsert_user db store ~id:"u3" ~name:"Edsger" ~city:"london" in
      let* londoners, n = users_in_city db store "london" in
      Printf.printf "london (%Ld): %s\n" n (String.concat ", " londoners);

      (* Move Ada; the index and the counters follow atomically. *)
      let* () = upsert_user db store ~id:"u1" ~name:"Ada" ~city:"nyc" in
      let* londoners, _ = users_in_city db store "london" in
      let* new_yorkers, _ = users_in_city db store "nyc" in
      Printf.printf "after the move — london: %s | nyc: %s\n"
        (String.concat ", " londoners)
        (String.concat ", " new_yorkers);

      let* () = delete_user db store ~id:"u2" in
      let* new_yorkers, n = users_in_city db store "nyc" in
      Printf.printf "after deleting Grace — nyc (%Ld): %s\n" n
        (String.concat ", " new_yorkers);

      (* The layer's oracle: recompute the indexes from the records and
         diff against storage. *)
      let* issues = Client.run db (fun tx -> Index.verify store tx) in
      Printf.printf "index verify: %s\n"
        (if issues = [] then "consistent" else String.concat "; " issues);
      assert (issues = []);
      Future.return ())
