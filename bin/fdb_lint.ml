(* fdb_lint: the determinism lint driver (DESIGN.md, "The determinism
   contract"). Walks every .ml under the given roots (default lib bin
   bench), runs the Lint pass, prints file:line:col diagnostics (or a JSON
   array with --json), and exits non-zero on any violation. Also audits the
   whitelist: an entry that absorbed no diagnostic anywhere in the scanned
   tree is stale and reported as an error. Wired into `dune build @lint`,
   which `dune runtest` depends on.

     dune exec bin/fdb_lint.exe -- --explain R5
     dune exec bin/fdb_lint.exe -- --whitelist lint-whitelist.txt lib bin bench
     dune exec bin/fdb_lint.exe -- --json lib *)

open Cmdliner

(* The pass must stay cheap enough to sit on the edit-test loop. *)
let budget_seconds = 5.0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk_dir acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else walk_dir acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let run_lint json whitelist_file roots =
  let t0 = Sys.time () in
  match
    match whitelist_file with
    | None -> Ok []
    | Some f -> ( try Ok (Lint.parse_whitelist (read_file f)) with Failure m -> Error m)
  with
  | Error msg ->
      prerr_endline ("fdb_lint: " ^ msg);
      2
  | Ok whitelist ->
      let files =
        List.concat_map (fun root -> walk_dir [] root) roots |> List.sort compare
      in
      (* Stale-whitelist audit: track which entries absorbed a diagnostic.
         Only entries whose file was actually scanned can be convicted —
         linting a subtree must not flag entries for files outside it. *)
      let used = Hashtbl.create 8 in
      let whitelist_used entry = Hashtbl.replace used entry () in
      let diags =
        List.concat_map (Lint.lint_file ~whitelist ~whitelist_used) files
      in
      let scanned =
        List.map
          (fun f -> String.map (fun c -> if c = '\\' then '/' else c) f)
          files
      in
      let stale_entries =
        List.filter
          (fun ((_, path) as entry) ->
            List.mem path scanned && not (Hashtbl.mem used entry))
          whitelist
      in
      let stale_diags =
        List.map
          (fun (rule, path) ->
            {
              Lint.d_file = path;
              d_line = 0;
              d_col = 0;
              d_rule = None;
              d_msg =
                "stale whitelist entry: " ^ Lint.rule_name rule ^ " " ^ path
                ^ " no longer suppresses any diagnostic; remove it from the \
                   whitelist";
            })
          stale_entries
      in
      let diags = diags @ stale_diags in
      if json then print_endline (Lint.diagnostics_to_json diags)
      else List.iter (fun d -> Format.printf "%a@." Lint.pp_diagnostic d) diags;
      let elapsed = Sys.time () -. t0 in
      if elapsed > budget_seconds then begin
        Printf.eprintf "fdb_lint: blew the %.0fs runtime budget (%.2fs over %d files)\n"
          budget_seconds elapsed (List.length files);
        2
      end
      else if diags <> [] then begin
        if not json then
          Printf.printf "fdb_lint: %d violation(s) in %d files (%.2fs)\n"
            (List.length diags) (List.length files) elapsed;
        1
      end
      else begin
        if not json then
          Printf.printf "fdb_lint: OK — %d files clean (%.2fs)\n"
            (List.length files) elapsed;
        0
      end

let explain_rule name =
  match Lint.rule_of_string name with
  | Some rule ->
      print_endline (Lint.explain rule);
      0
  | None ->
      Printf.eprintf "fdb_lint: unknown rule %s (have %s)\n" name
        (String.concat " " (List.map Lint.rule_name Lint.all_rules));
      2

let cmd =
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"RULE" ~doc:"Print the rationale for $(docv) and exit.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit diagnostics as a JSON array (file/line/col/rule/msg) \
             instead of text; suppresses the summary line.")
  in
  let whitelist =
    Arg.(
      value
      & opt (some file) None
      & info [ "whitelist" ] ~docv:"FILE"
          ~doc:"Checked-in exemption list: one \"RULE path\" pair per line.")
  in
  let roots =
    Arg.(
      value
      & pos_all string [ "lib"; "bin"; "bench" ]
      & info [] ~docv:"DIR" ~doc:"Directories to scan (default: lib bin bench).")
  in
  let action explain json whitelist roots =
    exit
      (match explain with
      | Some r -> explain_rule r
      | None -> run_lint json whitelist roots)
  in
  Cmd.v
    (Cmd.info "fdb_lint" ~doc:"determinism lint for the FoundationDB reproduction")
    Term.(const action $ explain $ json $ whitelist $ roots)

let () = exit (Cmd.eval cmd)
