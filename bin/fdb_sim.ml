(* fdb_sim: the simulation-testing command line (paper §4).

   Runs randomized whole-cluster simulations with fault injection and
   buggification, evaluating every oracle. A failing seed prints its
   report (and optionally the trace) and reproduces bit-identically.

     dune exec bin/fdb_sim.exe -- swarm --seeds 20
     dune exec bin/fdb_sim.exe -- run --seed 101 --duration 60 --trace *)

open Cmdliner

let leak_count (r : Fdb_workloads.Swarm.report) =
  Fdb_sim.Future.Lifecycle.total_leaks r.Fdb_workloads.Swarm.lifecycle

let run_seed ~buggify ~duration ~dd_movement ~layers ~trace ~check_leaks seed =
  let report =
    Fdb_workloads.Swarm.run_one ~buggify ~duration ~dd_movement ~layers ~seed ()
  in
  Format.printf "%a@." Fdb_workloads.Swarm.pp_report report;
  if trace && report.Fdb_workloads.Swarm.oracle_failures <> [] then
    Fdb_sim.Trace.dump Format.std_formatter ();
  let leaked = check_leaks && leak_count report > 0 in
  if leaked then
    Printf.printf "seed=%Ld LEAK FAIL: %d promise(s) still pending at sim end\n"
      seed (leak_count report);
  report.Fdb_workloads.Swarm.oracle_failures = [] && not leaked

let swarm_cmd =
  let seeds =
    Arg.(value & opt int 10 & info [ "seeds"; "n" ] ~doc:"Number of random runs.")
  in
  let start =
    Arg.(value & opt int 1 & info [ "start-seed" ] ~doc:"First seed (consecutive after).")
  in
  let duration =
    Arg.(value & opt float 40.0 & info [ "duration" ] ~doc:"Simulated seconds of chaos per run.")
  in
  let no_buggify =
    Arg.(value & flag & info [ "no-buggify" ] ~doc:"Disable buggification points.")
  in
  let check_det =
    Arg.(
      value & flag
      & info [ "check-determinism" ]
          ~doc:
            "Replay every seed twice and fail on trace- or shard-checksum \
             divergence (the paper's nondeterminism detector).")
  in
  let dd_movement =
    Arg.(
      value & flag
      & info [ "dd-movement" ]
          ~doc:
            "Enable active data distribution: the rebalancer plus a mover \
             job firing random shard splits, merges and moves during chaos.")
  in
  let check_leaks =
    Arg.(
      value & flag
      & info [ "check-leaks" ]
          ~doc:
            "Fail any run whose promise-lifecycle report shows leaked \
             wakeups: labeled promises still pending, with waiters, on live \
             processes at simulation end (the runtime backstop behind lint \
             rule R6).")
  in
  let layers =
    Arg.(
      value & flag
      & info [ "layers" ]
          ~doc:
            "Add the layer-ecosystem soak: directory-housed record stores \
             with transactional secondary indexes plus a watch-driven job \
             queue, checked by the index-consistency and exactly-once \
             oracles.")
  in
  let action seeds start duration no_buggify check_det dd_movement layers check_leaks =
    let buggify = not no_buggify in
    let failures = ref 0 in
    for s = start to start + seeds - 1 do
      let seed = Int64.of_int s in
      if check_det then begin
        match
          Fdb_workloads.Swarm.check_determinism ~buggify ~duration ~dd_movement
            ~layers ~seed ()
        with
        | Ok report ->
            let leaks = if check_leaks then leak_count report else 0 in
            Printf.printf "seed=%Ld csum=%016Lx shards=%016Lx determinism OK%s%s\n" seed
              report.Fdb_workloads.Swarm.trace_checksum
              report.Fdb_workloads.Swarm.shard_checksum
              (if report.Fdb_workloads.Swarm.oracle_failures = [] then ""
               else " (oracle FAIL)")
              (if leaks > 0 then Printf.sprintf " (LEAK FAIL: %d)" leaks else "");
            if report.Fdb_workloads.Swarm.oracle_failures <> [] || leaks > 0 then
              incr failures
        | Error (a, b) ->
            Printf.printf "seed=%Ld DETERMINISM FAIL: %016Lx <> %016Lx\n" seed a b;
            incr failures
      end
      else if
        not
          (run_seed ~buggify ~duration ~dd_movement ~layers ~trace:false
             ~check_leaks seed)
      then incr failures
    done;
    Printf.printf "%d/%d runs passed all oracles.\n" (seeds - !failures) seeds;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "swarm" ~doc:"Run many randomized fault-injection simulations.")
    Term.(
      const action $ seeds $ start $ duration $ no_buggify $ check_det $ dd_movement
      $ layers $ check_leaks)

let run_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let duration =
    Arg.(value & opt float 40.0 & info [ "duration" ] ~doc:"Simulated seconds of chaos.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the event trace on oracle failure.")
  in
  let no_buggify =
    Arg.(value & flag & info [ "no-buggify" ] ~doc:"Disable buggification points.")
  in
  let dd_movement =
    Arg.(value & flag & info [ "dd-movement" ] ~doc:"Enable active data distribution.")
  in
  let layers =
    Arg.(
      value & flag
      & info [ "layers" ] ~doc:"Add the layer-ecosystem soak and its oracles.")
  in
  let check_leaks =
    Arg.(
      value & flag
      & info [ "check-leaks" ] ~doc:"Fail on leaked promises at simulation end.")
  in
  let action seed duration trace no_buggify dd_movement layers check_leaks =
    if
      not
        (run_seed ~buggify:(not no_buggify) ~duration ~dd_movement ~layers ~trace
           ~check_leaks (Int64.of_int seed))
    then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run (or replay) a single seeded simulation.")
    Term.(
      const action $ seed $ duration $ trace $ no_buggify $ dd_movement $ layers
      $ check_leaks)

let status_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable status document.")
  in
  let action seed json =
    let open Fdb_sim in
    let open Fdb_core in
    let report, doc =
      Engine.run ~seed:(Int64.of_int seed) ~max_time:1e4 (fun () ->
          let open Future.Syntax in
          let cluster = Cluster.create () in
          let* () = Cluster.wait_ready cluster in
          let db = Cluster.client cluster ~name:"status-demo" in
          let rec txn i =
            if i >= 25 then Future.return ()
            else
              let* _ =
                Client.run db (fun tx ->
                    Client.set tx (Printf.sprintf "demo/%02d" i) (string_of_int i);
                    let* _ = Client.get tx "demo/00" in
                    Future.return ())
              in
              txn (i + 1)
          in
          let* () = txn 0 in
          (* Let heartbeats, the ratekeeper, and the roll-up actor tick so the
             gauges and percentile tables are populated. *)
          let* () = Engine.sleep 2.0 in
          let* report = Fdb_workloads.Status.gather cluster in
          Future.return (report, Cluster.status_doc cluster))
    in
    if json then print_endline (Fdb_workloads.Status.to_json report doc)
    else Format.printf "%a@." Fdb_workloads.Status.pp report
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Boot a simulated cluster and print its status report.")
    Term.(const action $ seed $ json)

let () =
  let doc = "deterministic simulation testing for the FoundationDB reproduction" in
  exit (Cmd.eval (Cmd.group (Cmd.info "fdb_sim" ~doc) [ swarm_cmd; run_cmd; status_cmd ]))
