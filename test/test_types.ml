open Fdb_core

let test_next_key () =
  Alcotest.(check string) "appends nul" "abc\x00" (Types.next_key "abc");
  Alcotest.(check bool) "strictly greater" true (Types.next_key "abc" > "abc");
  Alcotest.(check bool) "tight bound" true ("abc\x00" >= Types.next_key "abc")

let test_strinc () =
  Alcotest.(check string) "simple" "abd" (Types.strinc "abc");
  Alcotest.(check string) "trailing 0xff truncated" "ac" (Types.strinc "ab\xff");
  Alcotest.(check string) "multiple 0xff" "b" (Types.strinc "a\xff\xff");
  Alcotest.check_raises "all 0xff rejected"
    (Invalid_argument "Types.strinc: key has no incrementable byte") (fun () ->
      ignore (Types.strinc "\xff\xff"))

let test_strinc_covers_prefix () =
  let prefix = "user/1" in
  let lo, hi = Types.range_of_prefix prefix in
  Alcotest.(check bool) "prefix itself inside" true (lo <= prefix && prefix < hi);
  Alcotest.(check bool) "extension inside" true (lo <= prefix ^ "zzz" && prefix ^ "zzz" < hi);
  Alcotest.(check bool) "sibling outside" false (lo <= "user/2" && "user/2" < hi)

let test_version_bytes_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check int64) "roundtrip" v (Types.version_of_bytes (Types.version_to_bytes v)))
    [ 0L; 1L; 255L; 65_536L; 1_000_000_000_000L; Int64.max_int ]

let test_version_bytes_order () =
  (* big-endian: byte order equals numeric order (versionstamp contract) *)
  let vs = [ 0L; 1L; 255L; 256L; 1_000_000L; 17_378_188L; Int64.max_int ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "order preserved" (a < b)
            (Types.version_to_bytes a < Types.version_to_bytes b))
        vs)
    vs

let qcheck_strinc_bound =
  QCheck.Test.make ~name:"strinc is a tight exclusive prefix bound" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 12)) small_string)
    (fun (prefix, suffix) ->
      QCheck.assume (String.exists (fun c -> c <> '\xff') prefix);
      let hi = Types.strinc prefix in
      prefix ^ suffix < hi && prefix < hi)

let suite =
  [
    Alcotest.test_case "next_key" `Quick test_next_key;
    Alcotest.test_case "strinc" `Quick test_strinc;
    Alcotest.test_case "strinc covers prefix" `Quick test_strinc_covers_prefix;
    Alcotest.test_case "version bytes roundtrip" `Quick test_version_bytes_roundtrip;
    Alcotest.test_case "version bytes order" `Quick test_version_bytes_order;
    QCheck_alcotest.to_alcotest qcheck_strinc_bound;
  ]
