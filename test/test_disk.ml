open Fdb_sim
open Future.Syntax

let test_append_read_back () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" () in
        let* () = Disk.append d "log" "a" in
        let* () = Disk.append d "log" "b" in
        let* recs = Disk.read_all d "log" in
        Future.return recs)
  in
  Alcotest.(check (list string)) "append order" [ "a"; "b" ] r

let test_unsynced_lost_on_crash () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" () in
        let* () = Disk.append d "log" "a" in
        let* () = Disk.sync d "log" in
        let* () = Disk.append d "log" "b" in
        Disk.crash d;
        let* recs = Disk.read_all d "log" in
        Future.return recs)
  in
  Alcotest.(check (list string)) "only synced survives" [ "a" ] r

let test_synced_survives_crash () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" () in
        let* () = Disk.append d "log" "a" in
        let* () = Disk.append d "log" "b" in
        let* () = Disk.sync d "log" in
        Disk.crash d;
        Disk.crash d;
        let* recs = Disk.read_all d "log" in
        Future.return recs)
  in
  Alcotest.(check (list string)) "all synced survive double crash" [ "a"; "b" ] r

let test_write_file_read_file () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" () in
        let* () = Disk.write_file d "state" "v1" in
        let* () = Disk.write_file d "state" "v2" in
        let* v = Disk.read_file d "state" in
        Future.return v)
  in
  Alcotest.(check (option string)) "last write wins" (Some "v2") r

let test_unsynced_file_lost () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" () in
        let* () = Disk.write_file d "state" "v1" in
        let* () = Disk.sync d "state" in
        let* () = Disk.write_file d "state" "v2" in
        Disk.crash d;
        let* v = Disk.read_file d "state" in
        Future.return v)
  in
  (* write_file truncates, so after the crash the unsynced truncate+write is
     rolled back to... nothing durable. The caller must sync before relying
     on replacement; losing both versions is a legal outcome of our model. *)
  Alcotest.(check (option string)) "unsynced replacement lost" None r

let test_missing_file () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" () in
        let* recs = Disk.read_all d "nope" in
        let* v = Disk.read_file d "nope" in
        Future.return (recs, v))
  in
  Alcotest.(check (pair (list string) (option string))) "missing" ([], None) r

let test_attach_crashes_on_kill () =
  let r =
    Engine.run (fun () ->
        let m = Process.fresh_machine 1 in
        let p = Process.create m in
        let d = Disk.create ~name:"d0" () in
        Disk.attach d p;
        let* () = Disk.append d "log" "a" in
        Engine.kill p;
        let* recs = Disk.read_all d "log" in
        Future.return recs)
  in
  Alcotest.(check (list string)) "dropped via hook" [] r

let test_disk_op_takes_time () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" ~seek:0.001 ~bytes_per_sec:1000.0 () in
        let t0 = Engine.now () in
        let* () = Disk.append d "log" (String.make 1000 'x') in
        Future.return (Engine.now () -. t0))
  in
  Alcotest.(check bool) "seek + transfer" true (r >= 1.0)

let test_disk_queueing () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" ~seek:1.0 ~bytes_per_sec:1e12 () in
        let done1 = ref 0.0 and done2 = ref 0.0 in
        let j out () =
          let* () = Disk.append d "log" "x" in
          out := Engine.now ();
          Future.return ()
        in
        let f1 = j done1 () in
        let f2 = j done2 () in
        let* () = Future.all_unit [ f1; f2 ] in
        Future.return (!done1, !done2))
  in
  Alcotest.(check (pair (float 0.01) (float 0.01))) "fcfs" (1.0, 2.0) r

let test_delete () =
  let r =
    Engine.run (fun () ->
        let d = Disk.create ~name:"d0" () in
        let* () = Disk.append d "log" "a" in
        let* () = Disk.delete d "log" in
        let* recs = Disk.read_all d "log" in
        Future.return recs)
  in
  Alcotest.(check (list string)) "deleted" [] r

let suite =
  [
    Alcotest.test_case "append/read back" `Quick test_append_read_back;
    Alcotest.test_case "unsynced lost on crash" `Quick test_unsynced_lost_on_crash;
    Alcotest.test_case "synced survives crash" `Quick test_synced_survives_crash;
    Alcotest.test_case "write_file/read_file" `Quick test_write_file_read_file;
    Alcotest.test_case "unsynced file lost" `Quick test_unsynced_file_lost;
    Alcotest.test_case "missing file" `Quick test_missing_file;
    Alcotest.test_case "attach crash hook" `Quick test_attach_crashes_on_kill;
    Alcotest.test_case "ops take time" `Quick test_disk_op_takes_time;
    Alcotest.test_case "fcfs queueing" `Quick test_disk_queueing;
    Alcotest.test_case "delete" `Quick test_delete;
  ]
