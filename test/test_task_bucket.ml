(* TaskBucket (§6.4): atomic claim+execute+subdivide, the backup pattern. *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let with_db body =
  Engine.run ~seed:61L ~max_time:1e5 (fun () ->
      let cluster = Cluster.create ~config:Config.test_small () in
      let* () = Cluster.wait_ready cluster in
      body cluster (Cluster.client cluster ~name:"tb"))

let test_fifo_and_atomic_enqueue () =
  let r =
    with_db (fun _ db ->
        let tb = Task_bucket.create ~prefix:"jobs" in
        let* _ =
          Client.run db (fun tx ->
              (* tasks enqueue atomically with application writes *)
              Client.set tx "app/state" "launched";
              Task_bucket.add tx tb ~payload:"one";
              Future.return ())
        in
        let* _ =
          Client.run db (fun tx ->
              Task_bucket.add tx tb ~payload:"two";
              Future.return ())
        in
        let seen = ref [] in
        let* n =
          Task_bucket.drain db tb ~f:(fun _tx payload ->
              seen := payload :: !seen;
              Future.return [])
        in
        Future.return (n, List.rev !seen))
  in
  Alcotest.(check int) "two ran" 2 (fst r);
  Alcotest.(check (list string)) "commit order" [ "one"; "two" ] (snd r)

let test_subdivision_backup_pattern () =
  (* §6.4's backup: one task scanning the whole space subdivides into
     per-range tasks, each small enough for one transaction. *)
  let r =
    with_db (fun _ db ->
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 49 do
                Client.set tx (Printf.sprintf "data/%03d" i) (string_of_int i)
              done;
              Future.return ())
        in
        let tb = Task_bucket.create ~prefix:"backup" in
        let* _ =
          Client.run db (fun tx ->
              Task_bucket.add tx tb ~payload:"range:data/000:data/999";
              Future.return ())
        in
        let chunk = 20 in
        let backup_task tx payload =
          match String.split_on_char ':' payload with
          | [ "range"; from; until ] ->
              let* rows = Client.get_range tx ~limit:chunk ~from ~until () in
              List.iter
                (fun (k, v) -> Client.set tx ("snapshot/" ^ k) v)
                rows;
              if List.length rows < chunk then Future.return []
              else
                let last = fst (List.nth rows (List.length rows - 1)) in
                Future.return [ Printf.sprintf "range:%s:%s" (Types.next_key last) until ]
          | _ -> Future.return []
        in
        let* tasks_ran = Task_bucket.drain db tb ~f:backup_task in
        let* snapshot =
          Client.run db (fun tx ->
              Client.get_range tx ~limit:100 ~from:"snapshot/" ~until:"snapshot0" ())
        in
        Future.return (tasks_ran, List.length snapshot))
  in
  Alcotest.(check int) "scan split into 5s-sized chunks" 3 (fst r);
  Alcotest.(check int) "full snapshot taken" 50 (snd r)

let test_racing_executors_no_duplicates () =
  let r =
    with_db (fun _cluster db ->
        let tb = Task_bucket.create ~prefix:"race" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 9 do
                Task_bucket.add tx tb ~payload:(string_of_int i)
              done;
              Future.return ())
        in
        let seen = ref [] in
        let worker () =
          Task_bucket.drain db tb ~f:(fun _tx payload ->
              seen := payload :: !seen;
              Future.return [])
        in
        let w1 = worker () and w2 = worker () in
        let* n1 = w1 and* n2 = w2 in
        Future.return (n1 + n2, List.sort_uniq compare !seen))
  in
  Alcotest.(check int) "every task ran exactly once" 10 (fst r);
  Alcotest.(check int) "no duplicates" 10 (List.length (snd r))

let suite =
  [
    Alcotest.test_case "fifo + atomic enqueue" `Quick test_fifo_and_atomic_enqueue;
    Alcotest.test_case "subdivision (backup pattern)" `Quick test_subdivision_backup_pattern;
    Alcotest.test_case "racing executors" `Quick test_racing_executors_no_duplicates;
  ]
