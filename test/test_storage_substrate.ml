open Fdb_sim
open Fdb_kv
open Future.Syntax

(* --- Version_window --- *)

let vw_with_events () =
  let w = Version_window.create () in
  Version_window.apply w 10L (Mutation.Set ("a", "1"));
  Version_window.apply w 20L (Mutation.Set ("a", "2"));
  Version_window.apply w 30L (Mutation.Clear "a");
  w

let check_read = Alcotest.(check bool)

let test_vw_point_reads () =
  let w = vw_with_events () in
  check_read "before first" true (Version_window.read w 5L "a" = Version_window.Unknown);
  check_read "at v10" true (Version_window.read w 10L "a" = Version_window.Value "1");
  check_read "between" true (Version_window.read w 15L "a" = Version_window.Value "1");
  check_read "at v20" true (Version_window.read w 20L "a" = Version_window.Value "2");
  check_read "cleared" true (Version_window.read w 30L "a" = Version_window.Cleared);
  check_read "other key" true (Version_window.read w 30L "b" = Version_window.Unknown)

let test_vw_range_clear_masks () =
  let w = Version_window.create () in
  Version_window.apply w 10L (Mutation.Set ("c", "x"));
  Version_window.apply w 20L (Mutation.Clear_range ("a", "m"));
  check_read "set before clear-range" true
    (Version_window.read w 15L "c" = Version_window.Value "x");
  check_read "swept by clear-range" true
    (Version_window.read w 20L "c" = Version_window.Cleared);
  check_read "persistent-only key masked" true
    (Version_window.read w 25L "d" = Version_window.Cleared);
  check_read "outside the range" true
    (Version_window.read w 25L "z" = Version_window.Unknown);
  Version_window.apply w 30L (Mutation.Set ("c", "y"));
  check_read "rewrite after clear-range" true
    (Version_window.read w 30L "c" = Version_window.Value "y")

let test_vw_pop_through () =
  let w = vw_with_events () in
  let popped = Version_window.pop_through w 20L in
  Alcotest.(check int) "popped two" 2 (List.length popped);
  Alcotest.(check bool) "in order" true
    (popped = [ Mutation.Set ("a", "1"); Mutation.Set ("a", "2") ]);
  Alcotest.(check int64) "oldest advanced" 20L (Version_window.oldest w);
  check_read "newer event still visible" true
    (Version_window.read w 30L "a" = Version_window.Cleared);
  check_read "older now unknown" true
    (Version_window.read w 25L "a" = Version_window.Unknown);
  Alcotest.(check int) "one event left" 1 (Version_window.event_count w)

let test_vw_rollback () =
  let w = vw_with_events () in
  let dropped = Version_window.rollback w ~after:15L in
  Alcotest.(check int) "dropped two" 2 dropped;
  Alcotest.(check int64) "latest lowered" 15L (Version_window.latest w);
  check_read "v10 intact" true (Version_window.read w 30L "a" = Version_window.Value "1")

let test_vw_version_regression_rejected () =
  let w = vw_with_events () in
  Alcotest.(check bool) "regression raises" true
    (try
       Version_window.apply w 5L (Mutation.Set ("z", "1"));
       false
     with Invalid_argument _ -> true)

let test_vw_keys_in_range () =
  let w = Version_window.create () in
  List.iter (fun k -> Version_window.apply w 10L (Mutation.Set (k, k))) [ "a"; "c"; "e" ];
  Alcotest.(check (list string)) "subset" [ "a"; "c" ]
    (Version_window.keys_in_range w ~from:"a" ~until:"d")

(* --- Mutation / atomic ops --- *)

let le_bytes i = String.init 8 (fun b -> Char.chr ((i lsr (8 * b)) land 0xff))

let test_atomic_add () =
  let v1 = Mutation.atomic_result Mutation.Add ~old_value:(Some (le_bytes 5)) (le_bytes 7) in
  Alcotest.(check (option string)) "5+7" (Some (le_bytes 12)) v1;
  let v2 = Mutation.atomic_result Mutation.Add ~old_value:None (le_bytes 3) in
  Alcotest.(check (option string)) "missing treated as 0" (Some (le_bytes 3)) v2

let test_atomic_add_carry () =
  let v =
    Mutation.atomic_result Mutation.Add ~old_value:(Some "\xff\x00") "\x01\x00"
  in
  Alcotest.(check (option string)) "carry" (Some "\x00\x01") v

let test_atomic_minmax () =
  let old_v = Some (le_bytes 10) in
  Alcotest.(check (option string)) "max" (Some (le_bytes 12))
    (Mutation.atomic_result Mutation.Max ~old_value:old_v (le_bytes 12));
  Alcotest.(check (option string)) "min keeps" (Some (le_bytes 10))
    (Mutation.atomic_result Mutation.Min ~old_value:old_v (le_bytes 12));
  Alcotest.(check (option string)) "min missing takes operand" (Some (le_bytes 12))
    (Mutation.atomic_result Mutation.Min ~old_value:None (le_bytes 12))

let test_atomic_compare_and_clear () =
  Alcotest.(check (option string)) "match clears" None
    (Mutation.atomic_result Mutation.Compare_and_clear ~old_value:(Some "x") "x");
  Alcotest.(check (option string)) "mismatch keeps" (Some "y")
    (Mutation.atomic_result Mutation.Compare_and_clear ~old_value:(Some "y") "x")

let test_atomic_bitops () =
  Alcotest.(check (option string)) "or" (Some "\x07")
    (Mutation.atomic_result Mutation.Bit_or ~old_value:(Some "\x05") "\x03");
  Alcotest.(check (option string)) "and" (Some "\x01")
    (Mutation.atomic_result Mutation.Bit_and ~old_value:(Some "\x05") "\x03");
  Alcotest.(check (option string)) "xor" (Some "\x06")
    (Mutation.atomic_result Mutation.Bit_xor ~old_value:(Some "\x05") "\x03")

(* --- Persistent_store --- *)

let with_store f =
  Engine.run (fun () ->
      let disk = Disk.create ~name:"ssd" () in
      let* store = Persistent_store.recover ~disk ~prefix:"ss0" () in
      f disk store)

let test_ps_basic () =
  let r =
    with_store (fun _disk store ->
        let* () =
          Persistent_store.apply store
            [ Mutation.Set ("a", "1"); Mutation.Set ("b", "2"); Mutation.Set ("c", "3") ]
        in
        let* () = Persistent_store.apply store [ Mutation.Clear "b" ] in
        let* () = Persistent_store.commit store in
        Future.return
          ( Persistent_store.get store "a",
            Persistent_store.get store "b",
            Persistent_store.get_range store ~from:"a" ~until:"z" () ))
  in
  let a, b, range = r in
  Alcotest.(check (option string)) "a" (Some "1") a;
  Alcotest.(check (option string)) "b cleared" None b;
  Alcotest.(check (list (pair string string))) "range" [ ("a", "1"); ("c", "3") ] range

let test_ps_clear_range_and_limit () =
  let r =
    with_store (fun _disk store ->
        let muts = List.init 10 (fun i -> Mutation.Set (Printf.sprintf "k%d" i, "v")) in
        let* () = Persistent_store.apply store muts in
        let* () = Persistent_store.apply store [ Mutation.Clear_range ("k3", "k7") ] in
        Future.return
          ( Persistent_store.get_range store ~from:"k0" ~until:"k9\xff" (),
            Persistent_store.get_range store ~limit:2 ~from:"k0" ~until:"k9\xff" () ))
  in
  let all, limited = r in
  Alcotest.(check int) "cleared range" 6 (List.length all);
  Alcotest.(check (list (pair string string))) "limit" [ ("k0", "v"); ("k1", "v") ] limited

let test_ps_recovery_durable () =
  let r =
    Engine.run (fun () ->
        let disk = Disk.create ~name:"ssd" () in
        let* store = Persistent_store.recover ~disk ~prefix:"ss0" () in
        let* () = Persistent_store.apply store [ Mutation.Set ("a", "1") ] in
        let* () = Persistent_store.commit store in
        let* () = Persistent_store.apply store [ Mutation.Set ("b", "2") ] in
        (* no commit for b *)
        Disk.crash disk;
        let* store' = Persistent_store.recover ~disk ~prefix:"ss0" () in
        Future.return
          (Persistent_store.get store' "a", Persistent_store.get store' "b"))
  in
  Alcotest.(check (option string)) "synced survives" (Some "1") (fst r);
  Alcotest.(check (option string)) "unsynced lost" None (snd r)

let test_ps_checkpoint_cycle () =
  let r =
    Engine.run (fun () ->
        let disk = Disk.create ~name:"ssd" () in
        let* store = Persistent_store.recover ~disk ~prefix:"ss0" ~checkpoint_every:10 () in
        let rec writes i =
          if i = 50 then Future.return ()
          else
            let* () =
              Persistent_store.apply store [ Mutation.Set (Printf.sprintf "k%03d" i, string_of_int i) ]
            in
            let* () = Persistent_store.commit store in
            writes (i + 1)
        in
        let* () = writes 0 in
        Disk.crash disk;
        let* store' = Persistent_store.recover ~disk ~prefix:"ss0" () in
        Future.return (Persistent_store.entry_count store', Persistent_store.last_seq store'))
  in
  Alcotest.(check int) "all entries back" 50 (fst r);
  Alcotest.(check int) "seq restored" 50 (snd r)

let test_ps_prev_entry () =
  let r =
    with_store (fun _disk store ->
        let* () =
          Persistent_store.apply store [ Mutation.Set ("a", "1"); Mutation.Set ("c", "3") ]
        in
        Future.return
          ( Persistent_store.prev_entry store ~before:"c",
            Persistent_store.prev_entry store ~before:"a" ))
  in
  Alcotest.(check (option (pair string string))) "prev" (Some ("a", "1")) (fst r);
  Alcotest.(check (option (pair string string))) "none" None (snd r)

let qcheck_vw_matches_naive =
  (* Random single-key histories: window reads must match a naive replay. *)
  QCheck.Test.make ~name:"version_window matches naive replay" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 40) (pair (int_range 0 2) small_nat)))
    (fun ops ->
      let w = Version_window.create () in
      let history = ref [] in
      List.iteri
        (fun i (kind, v) ->
          let version = Int64.of_int ((i + 1) * 10) in
          let m =
            match kind with
            | 0 -> Mutation.Set ("k", string_of_int v)
            | 1 -> Mutation.Clear "k"
            | _ -> Mutation.Clear_range ("a", "z")
          in
          Version_window.apply w version m;
          history := (version, m) :: !history)
        ops;
      let naive_at version =
        List.fold_left
          (fun acc (v, m) ->
            if v > version then acc
            else
              match m with
              | Mutation.Set ("k", value) -> `Value value
              | Mutation.Clear "k" | Mutation.Clear_range _ -> `Cleared
              | _ -> acc)
          `No_event
          (List.rev !history)
      in
      List.for_all
        (fun probe ->
          let version = Int64.of_int probe in
          match (Version_window.read w version "k", naive_at version) with
          | Version_window.Value v, `Value v' -> v = v'
          | Version_window.Cleared, `Cleared -> true
          | Version_window.Unknown, `No_event -> true
          | _ -> false)
        (List.init 45 (fun i -> i * 10)))

let suite =
  [
    Alcotest.test_case "vw point reads" `Quick test_vw_point_reads;
    Alcotest.test_case "vw range clear masks" `Quick test_vw_range_clear_masks;
    Alcotest.test_case "vw pop_through" `Quick test_vw_pop_through;
    Alcotest.test_case "vw rollback" `Quick test_vw_rollback;
    Alcotest.test_case "vw version regression" `Quick test_vw_version_regression_rejected;
    Alcotest.test_case "vw keys in range" `Quick test_vw_keys_in_range;
    QCheck_alcotest.to_alcotest qcheck_vw_matches_naive;
    Alcotest.test_case "atomic add" `Quick test_atomic_add;
    Alcotest.test_case "atomic add carry" `Quick test_atomic_add_carry;
    Alcotest.test_case "atomic min/max" `Quick test_atomic_minmax;
    Alcotest.test_case "atomic compare-and-clear" `Quick test_atomic_compare_and_clear;
    Alcotest.test_case "atomic bitops" `Quick test_atomic_bitops;
    Alcotest.test_case "persistent basic" `Quick test_ps_basic;
    Alcotest.test_case "persistent clear range + limit" `Quick test_ps_clear_range_and_limit;
    Alcotest.test_case "persistent recovery durability" `Quick test_ps_recovery_durable;
    Alcotest.test_case "persistent checkpoint cycle" `Quick test_ps_checkpoint_cycle;
    Alcotest.test_case "persistent prev entry" `Quick test_ps_prev_entry;
  ]
