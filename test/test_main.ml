let () =
  Alcotest.run "fdb"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("future", Test_future.suite);
      ("engine", Test_engine.suite);
      ("network", Test_network.suite);
      ("disk", Test_disk.suite);
      ("kv", Test_kv.suite);
      ("storage-substrate", Test_storage_substrate.suite);
      ("paxos", Test_paxos.suite);
      ("cluster", Test_cluster.suite);
      ("recovery", Test_recovery.suite);
      ("simulation", Test_simulation.suite);
      ("geo", Test_geo.suite);
      ("shard-map", Test_shard_map.suite);
      ("data-distribution", Test_data_distribution.suite);
      ("workloads", Test_workloads.suite);
      ("tuple", Test_tuple.suite);
      ("client-ryw", Test_client_ryw.suite);
      ("range-pipeline", Test_range_pipeline.suite);
      ("commit-pipeline", Test_commit_pipeline.suite);
      ("log-server", Test_log_server.suite);
      ("resolver", Test_resolver.suite);
      ("task-bucket", Test_task_bucket.suite);
      ("watch", Test_watch.suite);
      ("layers", Test_layers.suite);
      ("crash-consistency", Test_crash_consistency.suite);
      ("types", Test_types.suite);
      ("lint", Test_lint.suite);
      ("sanitizer", Test_sanitizer.suite);
      ("determinism", Test_determinism.suite);
    ]
