open Fdb_util

let test_rng_deterministic () =
  let a = Det_rng.create 42L and b = Det_rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Det_rng.next_int64 a) (Det_rng.next_int64 b)
  done

let test_rng_distinct_seeds () =
  let a = Det_rng.create 1L and b = Det_rng.create 2L in
  let va = List.init 8 (fun _ -> Det_rng.next_int64 a) in
  let vb = List.init 8 (fun _ -> Det_rng.next_int64 b) in
  Alcotest.(check bool) "different streams" true (va <> vb)

let test_rng_split_independent () =
  let parent = Det_rng.create 7L in
  let child = Det_rng.split parent in
  (* Drawing more from the child must not perturb the parent's stream
     relative to a parent that split and then drew nothing from the child. *)
  let parent' = Det_rng.create 7L in
  let _child' = Det_rng.split parent' in
  for _ = 1 to 50 do
    ignore (Det_rng.next_int64 child)
  done;
  Alcotest.(check int64) "parent unaffected by child draws"
    (Det_rng.next_int64 parent') (Det_rng.next_int64 parent)

let test_rng_bounds () =
  let r = Det_rng.create 3L in
  for _ = 1 to 1000 do
    let v = Det_rng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Det_rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5);
    let i = Det_rng.int_in r (-5) 5 in
    Alcotest.(check bool) "int_in range" true (i >= -5 && i <= 5)
  done

let test_rng_chance_extremes () =
  let r = Det_rng.create 5L in
  Alcotest.(check bool) "p=0 never" false (Det_rng.chance r 0.0);
  Alcotest.(check bool) "p=1 always" true (Det_rng.chance r 1.0)

let test_rng_shuffle_permutation () =
  let r = Det_rng.create 11L in
  let arr = Array.init 20 Fun.id in
  Det_rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 near 0.5" true (p50 > 0.45 && p50 < 0.55);
  let p999 = Histogram.percentile h 99.9 in
  Alcotest.(check bool) "p99.9 near 1.0" true (p999 > 0.95 && p999 <= 1.05);
  let m = Histogram.mean h in
  Alcotest.(check bool) "mean near 0.5" true (m > 0.49 && m < 0.51)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Histogram.mean h);
  Alcotest.(check (float 0.0)) "p50 empty" 0.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "max empty" 0.0 (Histogram.max_value h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1.0;
  Histogram.add b 3.0;
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check (float 1e-9)) "merged total" 4.0 (Histogram.total a);
  Alcotest.(check bool) "merged max" true (Histogram.max_value a >= 3.0)

let test_histogram_cdf_monotone () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.001; 0.01; 0.1; 1.0; 1.0; 10.0 ];
  let pts = Histogram.cdf_points h in
  let rec check prev = function
    | [] -> ()
    | (x, f) :: rest ->
        Alcotest.(check bool) "x increasing" true (x > fst prev);
        Alcotest.(check bool) "f non-decreasing" true (f >= snd prev);
        check (x, f) rest
  in
  check (0.0, 0.0) pts;
  (match List.rev pts with
  | (_, last) :: _ -> Alcotest.(check (float 1e-9)) "cdf ends at 1" 1.0 last
  | [] -> Alcotest.fail "empty cdf")

let test_stats_basic () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p20" 1.0 (Stats.percentile xs 20.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.maximum xs);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.0) (Stats.stddev xs)

let test_stats_counter () =
  let c = Stats.counter () in
  Stats.tick c 10.0;
  Stats.tick c 20.0;
  Alcotest.(check (float 1e-9)) "rate" 15.0 (Stats.rate c ~duration:2.0);
  Alcotest.(check (float 1e-9)) "rate zero duration" 0.0 (Stats.rate c ~duration:0.0)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"histogram percentile within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let xs = List.map (fun x -> Float.abs x +. 1e-6) xs in
      let h = Fdb_util.Histogram.create () in
      List.iter (Fdb_util.Histogram.add h) xs;
      let v = Fdb_util.Histogram.percentile h p in
      v >= Fdb_util.Histogram.min_value h *. 0.97
      && v <= Fdb_util.Histogram.max_value h *. 1.03 +. 1e-9)

(* --- qcheck properties over the histogram (metrics-plane substrate) --- *)

let hist_of_list xs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) xs;
  h

let hist_merge a b =
  let d = Histogram.create () in
  Histogram.merge_into ~dst:d a;
  Histogram.merge_into ~dst:d b;
  d

let pos_samples = QCheck.(list_of_size Gen.(0 -- 40) (map Float.abs (float_bound_exclusive 1000.0)))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:200
    QCheck.(triple pos_samples pos_samples pos_samples)
    (fun (xs, ys, zs) ->
      let a () = hist_of_list xs and b () = hist_of_list ys and c () = hist_of_list zs in
      let l = hist_merge (hist_merge (a ()) (b ())) (c ()) in
      let r = hist_merge (a ()) (hist_merge (b ()) (c ())) in
      (* Bucket contents, counts, and extrema are integer/idempotent data and
         must agree exactly; only [total] is a float sum, so it gets an eps. *)
      Histogram.count l = Histogram.count r
      && Histogram.cdf_points l = Histogram.cdf_points r
      && Histogram.min_value l = Histogram.min_value r
      && Histogram.max_value l = Histogram.max_value r
      && Float.abs (Histogram.total l -. Histogram.total r)
         <= 1e-9 *. (1.0 +. Float.abs (Histogram.total l)))

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentile is monotone in p" ~count:200
    QCheck.(triple pos_samples (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun (xs, p, q) ->
      let h = hist_of_list xs in
      let p, q = if p <= q then (p, q) else (q, p) in
      Histogram.percentile h p <= Histogram.percentile h q)

let qcheck_clamp_non_positive =
  QCheck.Test.make ~name:"histogram clamps non-positive samples" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_range (-10.0) 10.0))
    (fun xs ->
      let h = hist_of_list xs in
      (* Every sample is recorded (none dropped), and the clamp keeps all
         statistics strictly positive even for zero/negative inputs. *)
      Histogram.count h = List.length xs
      && Histogram.min_value h >= 1e-9 *. 0.999
      && Histogram.percentile h 0.0 > 0.0
      && Histogram.total h > 0.0)

(* --- qcheck properties over Det_tbl (the R2 substrate) --- *)

let dedup_keys kvs =
  List.rev
    (List.fold_left
       (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
       [] kvs)

let det_tbl_of kvs =
  let t = Det_tbl.create () in
  List.iter (fun (k, v) -> Det_tbl.replace t k v) kvs;
  t

let qcheck_det_tbl_order_invariant =
  QCheck.Test.make
    ~name:"det_tbl enumeration is invariant under insertion order" ~count:300
    QCheck.(pair small_int (list (pair small_string small_int)))
    (fun (salt, kvs) ->
      let kvs = dedup_keys kvs in
      (* Three insertion orders: as generated, reversed, and shuffled by a
         seeded rng — the sorted snapshot must be identical. *)
      let shuffled =
        let arr = Array.of_list kvs in
        Det_rng.shuffle (Det_rng.create (Int64.of_int salt)) arr;
        Array.to_list arr
      in
      let reference = Det_tbl.to_sorted_list (det_tbl_of kvs) in
      reference = Det_tbl.to_sorted_list (det_tbl_of (List.rev kvs))
      && reference = Det_tbl.to_sorted_list (det_tbl_of shuffled)
      && List.sort compare (List.map fst reference) = List.map fst reference)

let qcheck_det_tbl_iter_matches_sorted =
  QCheck.Test.make ~name:"det_tbl iter/fold visit the sorted snapshot" ~count:300
    QCheck.(list (pair small_string small_int))
    (fun kvs ->
      let t = det_tbl_of (dedup_keys kvs) in
      let via_iter = ref [] in
      Det_tbl.iter (fun k v -> via_iter := (k, v) :: !via_iter) t;
      let via_fold = Det_tbl.fold (fun k v acc -> (k, v) :: acc) t [] in
      List.rev !via_iter = Det_tbl.to_sorted_list t
      && List.rev via_fold = Det_tbl.to_sorted_list t)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng distinct seeds" `Quick test_rng_distinct_seeds;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng chance extremes" `Quick test_rng_chance_extremes;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram cdf monotone" `Quick test_histogram_cdf_monotone;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats counter" `Quick test_stats_counter;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_merge_associative;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    QCheck_alcotest.to_alcotest qcheck_clamp_non_positive;
    QCheck_alcotest.to_alcotest qcheck_det_tbl_order_invariant;
    QCheck_alcotest.to_alcotest qcheck_det_tbl_iter_matches_sorted;
  ]
