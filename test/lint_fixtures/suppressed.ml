(* Fixture: a justified standalone suppression covers the next line. *)
let sum t =
  (* fdb-lint: allow R2 -- fixture exercising the suppression path *)
  Hashtbl.fold (fun _ v acc -> v + acc) t 0
