(* Fixture: R5 — the historical commit_flush re-entrancy shape. The
   in-flight guard is read before the yield and blindly written after it,
   so a second flush interleaving during the yield passes the guard too. *)
open Future.Syntax

let flush t =
  if t.inflight then Future.return ()
  else
    let* lsn = assign_version t in
    t.inflight <- true;
    push_batch t lsn
