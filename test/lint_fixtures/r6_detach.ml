(* Fixture: R6 negative — the approved fire-and-forget idiom. *)
open Future.Syntax

let ok t =
  Future.detach ~name:"background-flush" (flush t);
  let* () = Engine.sleep 1.0 in
  Future.return ()
