(* Fixture: R5 negative — the sanctioned idioms must stay clean. *)
open Future.Syntax

(* Guard idiom: the guard is read AND written before the yield; the
   post-yield write follows our own write, not a stale read. *)
let flush_guarded t =
  if t.inflight then Future.return ()
  else begin
    t.inflight <- true;
    let* lsn = assign_version t in
    t.inflight <- false;
    push_batch t lsn
  end

(* Re-read idiom: the post-yield decision reads the location again. *)
let bump_kcv t lsn =
  let* () = log_commit t lsn in
  if lsn > t.kcv then t.kcv <- lsn;
  Future.return ()

(* A captured value is fine once the location has been re-read. *)
let capture_refreshed t =
  let v = t.version in
  let* () = Engine.sleep 1.0 in
  let current = t.version in
  store t (min v current)
