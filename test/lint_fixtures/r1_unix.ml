(* Fixture: R1 — wall-clock read in simulation code. *)
let now () = Unix.gettimeofday ()
