(* Fixture: a suppression without a reason does not exempt anything and is
   itself a diagnostic. *)
let sum t = Hashtbl.fold (fun _ v acc -> v + acc) t 0 (* fdb-lint: allow R2 *)
