(* Fixture: R2 — hash-order enumeration outside lib/util. *)
let sum t = Hashtbl.fold (fun _ v acc -> v + acc) t 0
