(* Fixture: R6 — lost futures: annotated ignore of a future, the
   unapproved detach, and let-_/statement-position discards of known
   future-returning calls. *)

let a () = ignore (Engine.sleep 1.0 : unit Future.t)

let b fut = Future.ignore_result fut

let c t =
  let _ = Future.map (fetch t) decode in
  ()

let d () =
  Engine.sleep 1.0;
  Future.return ()
