(* Fixture: R3 — ignore without a type annotation. *)
let drop xs = ignore (List.length xs)
