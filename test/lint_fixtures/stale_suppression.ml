(* Fixture: the stale-suppression audit — an allow comment that no longer
   suppresses anything is itself a diagnostic. *)
(* fdb-lint: allow R2 -- nothing below violates R2 any more *)
let clean = 42
