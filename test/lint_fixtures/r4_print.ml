(* Fixture: R4 — stdout write from library code. *)
let report () = print_endline "done"
