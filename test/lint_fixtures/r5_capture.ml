(* Fixture: R5 — a local captures a mutable location's value before the
   yield and is used after it. The local open of the syntax module must
   not launder the yield point. *)

let apply t =
  let open Future.Syntax in
  let v = t.version in
  let* () = Engine.sleep 1.0 in
  store t v
