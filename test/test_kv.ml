open Fdb_kv
module Rng = Fdb_util.Det_rng

let mk_skiplist () = Skiplist.create ~rng:(Rng.create 7L) ()

let test_skiplist_basic () =
  let sl = mk_skiplist () in
  Skiplist.insert sl "b" 2;
  Skiplist.insert sl "a" 1;
  Skiplist.insert sl "c" 3;
  Alcotest.(check int) "length" 3 (Skiplist.length sl);
  Alcotest.(check (option int)) "find a" (Some 1) (Skiplist.find sl "a");
  Alcotest.(check (option int)) "find missing" None (Skiplist.find sl "x");
  Skiplist.insert sl "a" 10;
  Alcotest.(check (option int)) "replace" (Some 10) (Skiplist.find sl "a");
  Alcotest.(check int) "length unchanged on replace" 3 (Skiplist.length sl);
  Alcotest.(check (list (pair string int))) "sorted"
    [ ("a", 10); ("b", 2); ("c", 3) ]
    (Skiplist.to_list sl)

let test_skiplist_find_less_equal () =
  let sl = mk_skiplist () in
  List.iter (fun k -> Skiplist.insert sl k k) [ "b"; "d"; "f" ];
  Alcotest.(check (option (pair string string))) "exact" (Some ("d", "d"))
    (Skiplist.find_less_equal sl "d");
  Alcotest.(check (option (pair string string))) "between" (Some ("d", "d"))
    (Skiplist.find_less_equal sl "e");
  Alcotest.(check (option (pair string string))) "before all" None
    (Skiplist.find_less_equal sl "a");
  Alcotest.(check (option (pair string string))) "after all" (Some ("f", "f"))
    (Skiplist.find_less_equal sl "z")

let test_skiplist_remove () =
  let sl = mk_skiplist () in
  List.iter (fun k -> Skiplist.insert sl k ()) [ "a"; "b"; "c" ];
  Alcotest.(check bool) "removed" true (Skiplist.remove sl "b");
  Alcotest.(check bool) "already gone" false (Skiplist.remove sl "b");
  Alcotest.(check (option unit)) "gone" None (Skiplist.find sl "b");
  Alcotest.(check int) "length" 2 (Skiplist.length sl);
  Alcotest.(check bool) "invariants" true (Skiplist.check_invariants sl)

let test_skiplist_range_ops () =
  let sl = mk_skiplist () in
  List.iter (fun i -> Skiplist.insert sl (Printf.sprintf "k%02d" i) i) (List.init 20 Fun.id);
  let seen = ref [] in
  Skiplist.iter_range sl ~from:"k05" ~until:"k10" (fun _ v -> seen := v :: !seen);
  Alcotest.(check (list int)) "range" [ 5; 6; 7; 8; 9 ] (List.rev !seen);
  let removed = Skiplist.remove_range sl ~from:"k05" ~until:"k10" in
  Alcotest.(check int) "removed count" 5 removed;
  Alcotest.(check int) "remaining" 15 (Skiplist.length sl)

let qcheck_skiplist_model =
  (* Compare against Stdlib.Map over random op sequences. *)
  let op_gen =
    QCheck.Gen.(
      pair (int_range 0 2) (pair (int_range 0 30) (int_range 0 100)))
  in
  QCheck.Test.make ~name:"skiplist matches Map model" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) op_gen))
    (fun ops ->
      let sl = Skiplist.create ~rng:(Rng.create 13L) () in
      let model = ref [] in
      List.iter
        (fun (op, (ki, v)) ->
          let k = Printf.sprintf "key%03d" ki in
          match op with
          | 0 ->
              Skiplist.insert sl k v;
              model := (k, v) :: List.remove_assoc k !model
          | 1 ->
              let present = List.mem_assoc k !model in
              let removed = Skiplist.remove sl k in
              if present <> removed then failwith "remove mismatch";
              model := List.remove_assoc k !model
          | _ ->
              if Skiplist.find sl k <> List.assoc_opt k !model then
                failwith "find mismatch")
        ops;
      let expected = List.sort compare !model in
      Skiplist.to_list sl = expected && Skiplist.check_invariants sl)

(* ---------- augmented-skiplist model suite ----------

   The version annotations on tower links (link_max / link_pairmin) are pure
   acceleration: every query must answer exactly what a naive sorted
   assoc-list would, and [check_invariants] (annotation = level-0
   recomputation of its sublist) must hold after every mutation. *)

let qcheck_augmented_skiplist_model =
  (* Reference semantics over a sorted (key, version) list. *)
  let model_max_in_range entries ~from ~until =
    List.fold_left
      (fun best (k, v) -> if k >= from && k < until && v > best then v else best)
      Int64.min_int entries
  in
  (* A node is coalescible iff it and its predecessor are both below the
     floor; the head sentinel counts as never-old, so the first entry always
     survives. Removed entries are themselves old, so original-predecessor
     oldness and surviving-predecessor oldness agree and one left-to-right
     pass suffices. *)
  let model_coalesce entries floor =
    let prev_old = ref false in
    List.filter
      (fun (_, v) ->
        let old = v < floor in
        let keep = not (old && !prev_old) in
        prev_old := old;
        keep)
      entries
  in
  let op_gen =
    QCheck.Gen.(
      quad (int_range 0 4) (int_range 0 25) (int_range 0 25) (int_range 0 50))
  in
  QCheck.Test.make ~name:"augmented skiplist matches assoc-list model" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 120) op_gen))
    (fun ops ->
      let sl = Skiplist.create ~measure:Fun.id ~rng:(Rng.create 29L) () in
      let model = ref [] in
      let key i = Printf.sprintf "k%02d" i in
      let sorted () = List.sort compare !model in
      List.iter
        (fun (op, a, b, v) ->
          let from = key (min a b) and until = key (max a b) in
          (match op with
          | 0 ->
              Skiplist.insert sl (key a) (Int64.of_int v);
              model :=
                (key a, Int64.of_int v) :: List.remove_assoc (key a) !model
          | 1 ->
              let removed = Skiplist.remove sl (key a) in
              if removed <> List.mem_assoc (key a) !model then
                failwith "remove mismatch";
              model := List.remove_assoc (key a) !model
          | 2 ->
              let n = Skiplist.remove_range sl ~from ~until in
              let keep, drop =
                List.partition (fun (k, _) -> k < from || k >= until) !model
              in
              if n <> List.length drop then failwith "remove_range count";
              model := keep
          | 3 ->
              if
                Skiplist.max_in_range sl ~from ~until
                <> model_max_in_range !model ~from ~until
              then failwith "max_in_range mismatch"
          | _ ->
              let floor = Int64.of_int v in
              let survivors = model_coalesce (sorted ()) floor in
              let n = Skiplist.coalesce_below sl floor in
              if n <> List.length !model - List.length survivors then
                failwith "coalesce count";
              model := survivors);
          if not (Skiplist.check_invariants sl) then
            failwith "annotation invariant broken")
        ops;
      Skiplist.to_list sl = sorted ())

(* ---------- range-version-map reference model ----------

   The pre-augmentation implementation, re-expressed over a plain sorted
   assoc list: note_write / max_version / expire must stay byte-equivalent
   across the data-structure swap, including the coalescing done by expiry
   (resolver verdicts must not change). *)
module Rvm_ref = struct
  type t = { mutable entries : (string * int64) list; mutable oldest : int64 }

  let create () = { entries = [ ("", 0L) ]; oldest = 0L }

  let covering t k =
    List.fold_left
      (fun acc (key, v) -> if key <= k then v else acc)
      0L t.entries

  let note_write t ~from ~until version =
    if from < until then begin
      if not (List.mem_assoc until t.entries) then
        t.entries <-
          List.merge compare t.entries [ (until, covering t until) ];
      let prev = covering t from in
      let kept =
        List.filter (fun (k, _) -> k < from || k >= until) t.entries
      in
      t.entries <-
        List.merge compare kept
          [ (from, if version > prev then version else prev) ]
    end

  let max_version t ~from ~until =
    if from >= until then 0L
    else
      List.fold_left
        (fun best (k, v) -> if k >= from && k < until && v > best then v else best)
        (covering t from) t.entries

  let expire t ~before =
    if before > t.oldest then begin
      t.oldest <- before;
      match t.entries with
      | [] -> ()
      | first :: rest ->
          let prev_old = ref (snd first < before) in
          let kept =
            List.filter
              (fun (_, v) ->
                let old = v < before in
                let keep = not (old && !prev_old) in
                prev_old := old;
                keep)
              rest
          in
          t.entries <- first :: kept
    end
end

let qcheck_rvm_expire_model =
  (* note_write at monotonically increasing versions (the resolver's usage),
     interleaved with expiry at random floors and max_version probes. *)
  let op_gen =
    QCheck.Gen.(quad (int_range 0 5) (int_range 0 11) (int_range 0 11) (int_range 0 80))
  in
  QCheck.Test.make ~name:"range_version_map matches reference across expiry"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 80) op_gen))
    (fun ops ->
      let letter i = String.make 1 (Char.chr (Char.code 'a' + i)) in
      let m = Range_version_map.create ~rng:(Rng.create 31L) () in
      let r = Rvm_ref.create () in
      let version = ref 0L in
      List.iter
        (fun (op, a, b, x) ->
          (match op with
          | 0 | 1 | 2 ->
              version := Int64.add !version 1L;
              let from = letter (min a b) and until = letter (max a b + 1) in
              Range_version_map.note_write m ~from ~until !version;
              Rvm_ref.note_write r ~from ~until !version
          | 3 ->
              let floor = Int64.of_int x in
              Range_version_map.expire m ~before:floor;
              Rvm_ref.expire r ~before:floor
          | _ ->
              let from = letter (min a b) and until = letter (max a b + 1) in
              if
                Range_version_map.max_version m ~from ~until
                <> Rvm_ref.max_version r ~from ~until
              then failwith "max_version mismatch");
          if not (Range_version_map.check_invariants m) then
            failwith "annotation invariant broken")
        ops;
      (* Full sweep: every single-letter range plus the whole space. *)
      List.for_all
        (fun i ->
          let from = letter i and until = letter (i + 1) in
          Range_version_map.max_version m ~from ~until
          = Rvm_ref.max_version r ~from ~until)
        (List.init 12 Fun.id)
      && Range_version_map.max_version m ~from:"a" ~until:"z"
         = Rvm_ref.max_version r ~from:"a" ~until:"z")

let test_rvm_basic () =
  let m = Range_version_map.create ~rng:(Rng.create 3L) () in
  Alcotest.(check int64) "empty" 0L (Range_version_map.max_version m ~from:"a" ~until:"z");
  Range_version_map.note_write m ~from:"b" ~until:"d" 10L;
  Alcotest.(check int64) "inside" 10L (Range_version_map.max_version m ~from:"b" ~until:"c");
  Alcotest.(check int64) "overlap start" 10L
    (Range_version_map.max_version m ~from:"a" ~until:"b\x00");
  Alcotest.(check int64) "overlap end" 10L
    (Range_version_map.max_version m ~from:"c" ~until:"z");
  Alcotest.(check int64) "disjoint before" 0L
    (Range_version_map.max_version m ~from:"a" ~until:"b");
  Alcotest.(check int64) "disjoint after" 0L
    (Range_version_map.max_version m ~from:"d" ~until:"z")

let test_rvm_layering () =
  let m = Range_version_map.create ~rng:(Rng.create 3L) () in
  Range_version_map.note_write m ~from:"a" ~until:"m" 5L;
  Range_version_map.note_write m ~from:"c" ~until:"e" 9L;
  Alcotest.(check int64) "newer wins inside" 9L
    (Range_version_map.max_version m ~from:"c" ~until:"d");
  Alcotest.(check int64) "older outside" 5L
    (Range_version_map.max_version m ~from:"f" ~until:"g");
  Alcotest.(check int64) "max over both" 9L
    (Range_version_map.max_version m ~from:"a" ~until:"z")

let test_rvm_single_key () =
  let m = Range_version_map.create ~rng:(Rng.create 3L) () in
  Range_version_map.note_write m ~from:"k" ~until:"k\x00" 7L;
  Alcotest.(check int64) "the key" 7L
    (Range_version_map.max_version m ~from:"k" ~until:"k\x00");
  Alcotest.(check int64) "neighbor" 0L
    (Range_version_map.max_version m ~from:"k\x00" ~until:"l")

let test_rvm_expire () =
  let m = Range_version_map.create ~rng:(Rng.create 3L) () in
  for i = 0 to 49 do
    let k = Printf.sprintf "k%02d" i in
    Range_version_map.note_write m ~from:k ~until:(k ^ "\x00") (Int64.of_int (i + 1))
  done;
  let before_entries = Range_version_map.entry_count m in
  Range_version_map.expire m ~before:40L;
  Alcotest.(check bool) "coalesced" true (Range_version_map.entry_count m < before_entries);
  Alcotest.(check int64) "oldest raised" 40L (Range_version_map.oldest m);
  (* Conflicts with recent writes must survive expiry. *)
  Alcotest.(check int64) "recent survives" 45L
    (Range_version_map.max_version m ~from:"k44" ~until:"k44\x00")

let qcheck_rvm_model =
  (* Model: per-key last-write version over a tiny domain. *)
  QCheck.Test.make ~name:"range_version_map matches brute-force model" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 60)
           (pair (int_range 0 9) (int_range 0 9))))
    (fun ranges ->
      (* Keys are single letters so lexicographic = index order. *)
      let letter i = String.make 1 (Char.chr (Char.code 'a' + i)) in
      let keys = List.init 10 letter in
      let m = Range_version_map.create ~rng:(Rng.create 17L) () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (a, b) ->
          let lo = min a b and hi = max a b + 1 in
          let v = Int64.of_int (i + 1) in
          Range_version_map.note_write m ~from:(letter lo) ~until:(letter hi) v;
          List.iteri
            (fun ki k -> if ki >= lo && ki < hi then Hashtbl.replace model k v)
            keys)
        ranges;
      List.for_all
        (fun k ->
          let expected = Option.value (Hashtbl.find_opt model k) ~default:0L in
          let got = Range_version_map.max_version m ~from:k ~until:(k ^ "\x00") in
          got = expected)
        keys)

let suite =
  [
    Alcotest.test_case "skiplist basic" `Quick test_skiplist_basic;
    Alcotest.test_case "skiplist find_less_equal" `Quick test_skiplist_find_less_equal;
    Alcotest.test_case "skiplist remove" `Quick test_skiplist_remove;
    Alcotest.test_case "skiplist range ops" `Quick test_skiplist_range_ops;
    QCheck_alcotest.to_alcotest qcheck_skiplist_model;
    QCheck_alcotest.to_alcotest qcheck_augmented_skiplist_model;
    Alcotest.test_case "range_version_map basic" `Quick test_rvm_basic;
    Alcotest.test_case "range_version_map layering" `Quick test_rvm_layering;
    Alcotest.test_case "range_version_map single key" `Quick test_rvm_single_key;
    Alcotest.test_case "range_version_map expire" `Quick test_rvm_expire;
    QCheck_alcotest.to_alcotest qcheck_rvm_model;
    QCheck_alcotest.to_alcotest qcheck_rvm_expire_model;
  ]
