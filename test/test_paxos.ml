open Fdb_sim
open Fdb_paxos
open Future.Syntax

type msg = Req of Wire.request | Resp of Wire.response

(* Build [n] coordinator processes on separate machines, return the
   transport and the machinery for fault injection. *)
let setup_coordinators ?(n = 5) () =
  let net : msg Network.t = Network.create () in
  let machines = Array.init n (fun i -> Process.fresh_machine ~rack:(Printf.sprintf "r%d" i) i) in
  let client_machine = Process.fresh_machine ~dc:"dc0" 100 in
  let client = Process.create ~name:"client" client_machine in
  let endpoints = ref [] in
  let coordinators =
    Array.to_list machines
    |> List.map (fun m ->
           let p = Process.create ~name:"coordinator" m in
           let disk = Disk.create ~name:"coord-disk" () in
           Disk.attach disk p;
           let ep = Network.fresh_endpoint net in
           endpoints := ep :: !endpoints;
           let serve () =
             Future.map (Server.recover ~disk ~file:"paxos" ()) (fun server ->
                 Network.register net ep p (function
                   | Req r -> Future.map (Server.handle server r) (fun resp -> Resp resp)
                   | Resp _ -> Future.fail Exit))
           in
           p.Process.boot <-
             (fun () -> Engine.spawn "coordinator-boot" (fun () -> Future.map (serve ()) ignore));
           Engine.spawn "coordinator-boot" (fun () -> Future.map (serve ()) ignore);
           (p, ep))
  in
  let transport =
    {
      Wire.endpoints = List.rev !endpoints;
      call =
        (fun ep req ->
          Future.map (Network.call net ~timeout:1.0 ~from:client ep (Req req)) (function
            | Resp r -> r
            | Req _ -> failwith "bad wire"));
    }
  in
  (net, client, coordinators, transport)

let run_until_ready body =
  Engine.run (fun () ->
      let* () = Engine.sleep 0.1 in
      (* let coordinators boot *)
      body ())

let test_write_then_read () =
  let r =
    run_until_ready (fun () ->
        let _, _, _, transport = setup_coordinators () in
        let* () = Engine.sleep 0.1 in
        let c1 = Register.create transport ~reg:"state" ~proposer:1 in
        let* _ = Register.lock_and_read c1 in
        let* () = Register.write c1 "generation-1" in
        let c2 = Register.create transport ~reg:"state" ~proposer:2 in
        Register.read c2)
  in
  Alcotest.(check (option string)) "read back" (Some "generation-1") r

let test_lock_invalidates_old_writer () =
  let r =
    run_until_ready (fun () ->
        let _, _, _, transport = setup_coordinators () in
        let* () = Engine.sleep 0.1 in
        let old_seq = Register.create transport ~reg:"state" ~proposer:1 in
        let* _ = Register.lock_and_read old_seq in
        let* () = Register.write old_seq "old" in
        (* A new recovery locks the register... *)
        let new_seq = Register.create transport ~reg:"state" ~proposer:2 in
        let* prev = Register.lock_and_read new_seq in
        (* ...so the old sequencer can no longer write. *)
        let* old_result =
          Future.catch
            (fun () -> Future.map (Register.write old_seq "zombie") (fun () -> `Wrote))
            (function Register.Lock_lost -> Future.return `Locked_out | e -> raise e)
        in
        let* () = Register.write new_seq "new" in
        let reader = Register.create transport ~reg:"state" ~proposer:3 in
        let* final = Register.read reader in
        Future.return (prev, old_result, final))
  in
  let prev, old_result, final = r in
  Alcotest.(check (option string)) "new locker saw old value" (Some "old") prev;
  Alcotest.(check bool) "old writer locked out" true (old_result = `Locked_out);
  Alcotest.(check (option string)) "final value" (Some "new") final

let test_survives_minority_failures () =
  let r =
    run_until_ready (fun () ->
        let _, _, coordinators, transport = setup_coordinators ~n:5 () in
        let* () = Engine.sleep 0.1 in
        (* Kill two of five coordinators (minority). *)
        (match coordinators with
        | (p1, _) :: (p2, _) :: _ ->
            Engine.kill p1;
            Engine.kill p2
        | _ -> assert false);
        let c = Register.create transport ~reg:"state" ~proposer:1 in
        let* _ = Register.lock_and_read c in
        let* () = Register.write c "v" in
        let reader = Register.create transport ~reg:"state" ~proposer:2 in
        Register.read reader)
  in
  Alcotest.(check (option string)) "quorum works" (Some "v") r

let test_value_survives_coordinator_reboot () =
  let r =
    run_until_ready (fun () ->
        let _, _, coordinators, transport = setup_coordinators ~n:3 () in
        let* () = Engine.sleep 0.1 in
        let c = Register.create transport ~reg:"state" ~proposer:1 in
        let* _ = Register.lock_and_read c in
        let* () = Register.write c "durable" in
        (* Reboot ALL coordinators; synced paxos state must survive. *)
        List.iter (fun (p, _) -> Engine.reboot p ~delay:0.2 ()) coordinators;
        let* () = Engine.sleep 1.0 in
        let reader = Register.create transport ~reg:"state" ~proposer:2 in
        Register.read reader)
  in
  Alcotest.(check (option string)) "durable across full reboot" (Some "durable") r

let test_registers_independent () =
  let r =
    run_until_ready (fun () ->
        let _, _, _, transport = setup_coordinators () in
        let* () = Engine.sleep 0.1 in
        let a = Register.create transport ~reg:"a" ~proposer:1 in
        let b = Register.create transport ~reg:"b" ~proposer:1 in
        let* _ = Register.lock_and_read a in
        let* () = Register.write a "va" in
        let* _ = Register.lock_and_read b in
        let* () = Register.write b "vb" in
        let ra = Register.create transport ~reg:"a" ~proposer:2 in
        let rb = Register.create transport ~reg:"b" ~proposer:2 in
        let* va = Register.read ra in
        let* vb = Register.read rb in
        Future.return (va, vb))
  in
  Alcotest.(check (pair (option string) (option string)))
    "independent" (Some "va", Some "vb") r

let test_election_single_leader () =
  let r =
    run_until_ready (fun () ->
        let _, _, _, transport = setup_coordinators () in
        let* () = Engine.sleep 0.1 in
        let wins = ref [] in
        let candidates =
          List.map
            (fun i ->
              let reg =
                Register.create transport ~reg:"leader" ~proposer:i
              in
              Election.start reg
                ~self:(Printf.sprintf "cand%d" i)
                ~lease:2.0
                ~on_elected:(fun () -> wins := i :: !wins)
                ~on_deposed:(fun () -> ())
                ())
            [ 1; 2; 3 ]
        in
        let* () = Engine.sleep 5.0 in
        let leaders = List.filter Election.is_leader candidates in
        Future.return (List.length leaders, List.length !wins >= 1))
  in
  Alcotest.(check (pair int bool)) "exactly one leader" (1, true) r

let test_election_failover () =
  let r =
    run_until_ready (fun () ->
        let _, _, _, transport = setup_coordinators () in
        let* () = Engine.sleep 0.1 in
        let make i =
          let reg = Register.create transport ~reg:"leader" ~proposer:i in
          Election.start reg ~self:(Printf.sprintf "cand%d" i) ~lease:1.0
            ~on_elected:(fun () -> ())
            ~on_deposed:(fun () -> ())
            ()
        in
        let c1 = make 1 in
        let* () = Engine.sleep 2.0 in
        let first_leader = Election.is_leader c1 in
        let c2 = make 2 in
        let* () = Engine.sleep 1.0 in
        (* c1 leaves; c2 must take over after the lease expires. *)
        Election.stop c1;
        let* () = Engine.sleep 5.0 in
        Future.return (first_leader, Election.is_leader c2))
  in
  Alcotest.(check (pair bool bool)) "failover" (true, true) r

let suite =
  [
    Alcotest.test_case "write then read" `Quick test_write_then_read;
    Alcotest.test_case "lock invalidates old writer" `Quick test_lock_invalidates_old_writer;
    Alcotest.test_case "survives minority failures" `Quick test_survives_minority_failures;
    Alcotest.test_case "durable across reboot" `Quick test_value_survives_coordinator_reboot;
    Alcotest.test_case "registers independent" `Quick test_registers_independent;
    Alcotest.test_case "election single leader" `Quick test_election_single_leader;
    Alcotest.test_case "election failover" `Quick test_election_failover;
  ]
