(* The layer ecosystem (paper §1): subspaces, the directory layer with
   its high-contention allocator, transactional secondary indexes with
   the recompute-and-diff oracle, and old-vs-new range API equivalence. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Subspace = Fdb_layers.Subspace
module Directory = Fdb_layers.Directory
module Index = Fdb_layers.Index
module T = Tuple

let with_cluster ?(seed = 81L) body =
  Engine.run ~seed ~max_time:1e5 (fun () ->
      let cluster = Cluster.create ~config:Config.test_small () in
      let* () = Cluster.wait_ready cluster in
      body cluster)

(* ---------- subspace (pure) ---------- *)

let test_subspace_roundtrip () =
  let ss = Subspace.create [ T.String "app"; T.Int 7L ] in
  let items =
    [
      [ T.Null ];
      [ T.Int (-42L); T.String "x" ];
      [ T.Bytes "\x00\xff"; T.Nested [ T.Bool true ] ];
    ]
  in
  List.iter
    (fun t ->
      let k = Subspace.pack ss t in
      Alcotest.(check bool) "inside" true (Subspace.contains ss k);
      if T.compare_elements t (Subspace.unpack ss k) <> 0 then
        Alcotest.failf "roundtrip mismatch for %a" T.pp t)
    items;
  let nested = Subspace.sub ss [ T.String "inner" ] in
  let k = Subspace.pack nested [ T.Int 1L ] in
  Alcotest.(check bool) "nested key inside parent" true (Subspace.contains ss k);
  Alcotest.(check bool) "parent key outside sibling" false
    (Subspace.contains nested (Subspace.pack ss [ T.Int 1L ]))

let test_subspace_range_covers_packed_keys () =
  let ss = Subspace.create [ T.String "r" ] in
  let lo, hi = Subspace.range ss in
  let inside = Subspace.pack ss [ T.Int 5L; T.String "a" ] in
  Alcotest.(check bool) "packed key in range" true (lo <= inside && inside < hi);
  Alcotest.(check bool) "bare prefix below range" true (Subspace.prefix ss < lo);
  Alcotest.(check bool) "unpack rejects outsiders" true
    (match Subspace.unpack ss "zzz" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- directory ---------- *)

let test_directory_reopen_same_prefix () =
  let same, exists_after, missing_before =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"dir" in
        let* missing_before =
          Client.run db (fun tx -> Directory.exists tx [ "app"; "users" ])
        in
        let* d1 =
          Client.run db (fun tx -> Directory.create_or_open tx [ "app"; "users" ])
        in
        let* d2 =
          Client.run db (fun tx -> Directory.create_or_open tx [ "app"; "users" ])
        in
        let* exists_after =
          Client.run db (fun tx -> Directory.exists tx [ "app"; "users" ])
        in
        Future.return
          (Subspace.prefix d1 = Subspace.prefix d2, exists_after, missing_before))
  in
  Alcotest.(check bool) "absent before create" false missing_before;
  Alcotest.(check bool) "reopen returns the same prefix" true same;
  Alcotest.(check bool) "exists after create" true exists_after

let test_directory_list_and_remove () =
  let children, removed, gone, content_cleared =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"dir" in
        let* d =
          Client.run db (fun tx -> Directory.create_or_open tx [ "app"; "a" ])
        in
        let* _ =
          Client.run db (fun tx -> Directory.create_or_open tx [ "app"; "b" ])
        in
        let* _ =
          Client.run db (fun tx -> Directory.create_or_open tx [ "app"; "a"; "x" ])
        in
        let probe = Subspace.pack d [ T.String "payload" ] in
        let* _ =
          Client.run db (fun tx ->
              Client.set tx probe "v";
              Future.return ())
        in
        let* children = Client.run db (fun tx -> Directory.list tx [ "app" ]) in
        let* removed = Client.run db (fun tx -> Directory.remove tx [ "app"; "a" ]) in
        let* gone =
          Client.run db (fun tx ->
              let* a = Directory.exists tx [ "app"; "a" ] in
              let* x = Directory.exists tx [ "app"; "a"; "x" ] in
              Future.return (not a && not x))
        in
        let* v = Client.run db (fun tx -> Client.get tx probe) in
        Future.return (children, removed, gone, v = None))
  in
  Alcotest.(check (list string)) "children listed in order" [ "a"; "b" ] children;
  Alcotest.(check bool) "remove reports success" true removed;
  Alcotest.(check bool) "directory and child gone" true gone;
  Alcotest.(check bool) "content cleared" true content_cleared

let test_allocator_concurrent_distinct () =
  let ids =
    with_cluster (fun cluster ->
        let alloc i =
          let db = Cluster.client cluster ~name:(Printf.sprintf "alloc-%d" i) in
          Client.run db (fun tx -> Directory.allocate tx)
        in
        (* Start all allocations before awaiting any: genuinely concurrent
           transactions contending on the allocator's window. *)
        let jobs = List.init 12 alloc in
        let rec gather acc = function
          | [] -> Future.return (List.rev acc)
          | j :: rest ->
              let* id = j in
              gather (id :: acc) rest
        in
        gather [] jobs)
  in
  Alcotest.(check int) "twelve allocations" 12 (List.length ids);
  Alcotest.(check int) "all distinct" 12
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      let p = Directory.prefix_of_id id in
      Alcotest.(check bool) "short prefix" true (String.length p <= 10))
    ids

(* ---------- the index layer ---------- *)

(* Values look like "name,city"; the index key is the city. *)
let city_of value =
  match String.index_opt value ',' with
  | Some i -> String.sub value (i + 1) (String.length value - i - 1)
  | None -> value

let defs =
  [
    Index.Value
      {
        name = "city";
        extract = (fun ~pkey:_ ~value -> [ [ T.String (city_of value) ] ]);
      };
    Index.Counter
      { name = "city"; group = (fun ~pkey:_ ~value -> [ T.String (city_of value) ]) };
    Index.Versionstamp { name = "log" };
  ]

let with_store body =
  with_cluster (fun cluster ->
      let db = Cluster.client cluster ~name:"index" in
      let* dir =
        Client.run db (fun tx -> Directory.create_or_open tx [ "test"; "idx" ])
      in
      body db (Index.create dir defs))

let test_index_maintenance () =
  let in_london, counts, after_move, issues, changes =
    with_store (fun db store ->
        let put id v = Client.run db (fun tx -> Index.set store tx id v) in
        let* () = put "u1" "ada,london" in
        let* () = put "u2" "grace,nyc" in
        let* () = put "u3" "edsger,london" in
        let* in_london =
          Client.run db (fun tx ->
              Index.lookup store tx ~index:"city" ~entry:[ T.String "london" ])
        in
        let* counts =
          Client.run db (fun tx ->
              let* l =
                Index.counter_value store tx ~index:"city"
                  ~group:[ T.String "london" ]
              in
              let* n =
                Index.counter_value store tx ~index:"city" ~group:[ T.String "nyc" ]
              in
              Future.return (l, n))
        in
        (* Move u1 to nyc, delete u2: old entries must vanish. *)
        let* () = put "u1" "ada,nyc" in
        let* () = Client.run db (fun tx -> Index.clear store tx "u2") in
        let* after_move =
          Client.run db (fun tx ->
              let* l =
                Index.lookup store tx ~index:"city" ~entry:[ T.String "london" ]
              in
              let* n =
                Index.lookup store tx ~index:"city" ~entry:[ T.String "nyc" ]
              in
              Future.return (l, n))
        in
        let* issues = Client.run db (fun tx -> Index.verify store tx) in
        let* changes = Client.run db (fun tx -> Index.changes store tx ~index:"log") in
        Future.return (in_london, counts, after_move, issues, changes))
  in
  Alcotest.(check (list string)) "value index lookup" [ "u1"; "u3" ] in_london;
  Alcotest.(check (pair int64 int64)) "counter aggregates" (2L, 1L) counts;
  Alcotest.(check (pair (list string) (list string)))
    "entries follow the writes" ([ "u3" ], [ "u1" ]) after_move;
  Alcotest.(check (list string)) "oracle green" [] issues;
  (* Four successful writes ran through the changelog; stamps are
     commit-version ordered, so the pkey sequence is the write order. *)
  Alcotest.(check (list string)) "changelog in commit order"
    [ "u1"; "u2"; "u3"; "u1" ]
    (List.map snd changes)

let test_verify_catches_corruption () =
  let clean, stale, missing, counter =
    with_store (fun db store ->
        let* () = Client.run db (fun tx -> Index.set store tx "u1" "ada,london") in
        let* clean = Client.run db (fun tx -> Index.verify store tx) in
        let ss = Index.subspace store in
        let stale_key =
          Subspace.pack ss
            [ T.String "i"; T.String "city"; T.String "ghost"; T.Bytes "u9" ]
        in
        let real_key =
          Subspace.pack ss
            [ T.String "i"; T.String "city"; T.String "london"; T.Bytes "u1" ]
        in
        let counter_key =
          Subspace.pack ss [ T.String "c"; T.String "city"; T.String "london" ]
        in
        (* Corrupt the indexes behind the layer's back. *)
        let* _ =
          Client.run db (fun tx ->
              Client.set tx stale_key "";
              Client.clear tx real_key;
              Client.set tx counter_key (Index.le64 7L);
              Future.return ())
        in
        let* issues = Client.run db (fun tx -> Index.verify store tx) in
        let contains_sub s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
        in
        let has what = List.exists (fun m -> contains_sub m what) issues in
        Future.return
          (clean, has "stale entry", has "missing entry", has "holds 7"))
  in
  Alcotest.(check (list string)) "green before corruption" [] clean;
  Alcotest.(check bool) "stale entry reported" true stale;
  Alcotest.(check bool) "missing entry reported" true missing;
  Alcotest.(check bool) "counter drift reported" true counter

(* ---------- unified range API: wrappers agree with Range_query ------- *)

let test_range_api_equivalence () =
  let pairs_eq =
    Alcotest.(check (list (pair string string)))
  in
  let old_new =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"range" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 39 do
                Client.set tx (Printf.sprintf "rq/%03d" i) (string_of_int i)
              done;
              Future.return ())
        in
        Client.run db (fun tx ->
            let* old_fwd =
              Client.get_range tx ~limit:10 ~from:"rq/" ~until:"rq0" ()
            in
            let* new_fwd =
              Client.range_all tx
                (Range_query.keys ~limit:10 ~from:"rq/" ~until:"rq0" ())
            in
            let* old_rev =
              Client.get_range tx ~reverse:true ~limit:7 ~from:"rq/" ~until:"rq0" ()
            in
            let* new_rev =
              Client.range_all tx
                (Range_query.keys ~reverse:true ~limit:7 ~from:"rq/" ~until:"rq0" ())
            in
            let sel_from = Client.Key_selector.first_greater_than "rq/004" in
            let sel_until = Client.Key_selector.first_greater_or_equal "rq/011" in
            let* old_sel =
              Client.get_range_sel tx ~from:sel_from ~until:sel_until ()
            in
            let* new_sel =
              Client.range_all tx
                (Range_query.create ~begin_:sel_from ~end_:sel_until ())
            in
            (* Streamed batches stitched by continuation must equal the
               one-shot read. *)
            let rec stream ?continuation acc =
              let* b =
                Client.range tx
                  (Range_query.keys ?continuation ~mode:(`Exact 6) ~from:"rq/"
                     ~until:"rq0" ())
              in
              let acc = acc @ b.Client.batch_rows in
              match b.Client.batch_continuation with
              | Some c -> stream ~continuation:c acc
              | None -> Future.return acc
            in
            let* streamed = stream [] in
            let* whole = Client.get_range tx ~from:"rq/" ~until:"rq0" () in
            Future.return
              ((old_fwd, new_fwd), (old_rev, new_rev), (old_sel, new_sel),
               (streamed, whole))))
  in
  let (of_, nf), (or_, nr), (os, ns), (st, wh) = old_new in
  pairs_eq "forward+limit agree" of_ nf;
  pairs_eq "reverse+limit agree" or_ nr;
  pairs_eq "selector endpoints agree" os ns;
  pairs_eq "stitched stream equals one-shot" st wh

let suite =
  [
    Alcotest.test_case "subspace roundtrip & nesting" `Quick test_subspace_roundtrip;
    Alcotest.test_case "subspace range" `Quick test_subspace_range_covers_packed_keys;
    Alcotest.test_case "directory reopen stable" `Quick
      test_directory_reopen_same_prefix;
    Alcotest.test_case "directory list/remove" `Quick test_directory_list_and_remove;
    Alcotest.test_case "allocator: concurrent ids distinct" `Quick
      test_allocator_concurrent_distinct;
    Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
    Alcotest.test_case "verify catches corruption" `Quick
      test_verify_catches_corruption;
    Alcotest.test_case "range API equivalence" `Quick test_range_api_equivalence;
  ]
