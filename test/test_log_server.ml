(* Direct LogServer unit tests: chain ordering, out-of-order pushes,
   duplicate deliveries, peek/pop, locking, GC + resurrection. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Mutation = Fdb_kv.Mutation

let mini_ctx () =
  let net : Message.t Network.t = Network.create () in
  {
    Context.net;
    config = Config.test_small;
    shard_map = Shard_map.build Config.test_small;
    coordinator_eps = [];
    worker_eps = [||];
    storage_eps = [||];
    metrics = Fdb_obs.Registry.create ();
  }

let entry ~lsn ~prev ?(kcv = 0L) payload =
  { Message.le_lsn = lsn; le_prev = prev; le_kcv = kcv; le_payload = payload }

let setup () =
  let ctx = mini_ctx () in
  let machine = Process.fresh_machine 1 in
  let proc = Process.create ~name:"tlog-test" machine in
  let client = Process.create ~name:"pusher" machine in
  let disk = Disk.create ~name:"tlog-disk" () in
  let _, ep = Log_server.create ctx proc ~disk ~epoch:1 ~id:0 ~start_lsn:0L in
  let push lsn prev payload =
    Context.rpc ctx ~timeout:5.0 ~from:client ep
      (Message.Log_push { lp_epoch = 1; lp_entry = entry ~lsn ~prev payload })
  in
  let peek tag from_version =
    let* reply =
      Context.rpc ctx ~timeout:5.0 ~from:client ep
        (Message.Log_peek { tag; from_version })
    in
    match reply with
    | Message.Log_peek_reply { pk_entries; pk_end; _ } -> Future.return (pk_entries, pk_end)
    | _ -> Future.fail Exit
  in
  (ctx, ep, client, proc, push, peek)

let test_in_order_push_and_peek () =
  let r =
    Engine.run (fun () ->
        let _, _, _, _, push, peek = setup () in
        let* a1 = push 5L 0L [ (0, [ Mutation.Set ("a", "1") ]) ] in
        let* a2 = push 9L 5L [ (0, [ Mutation.Set ("b", "2") ]) ] in
        let dv1 = match a1 with Message.Log_push_ack { durable_version } -> durable_version | _ -> -1L in
        let dv2 = match a2 with Message.Log_push_ack { durable_version } -> durable_version | _ -> -1L in
        let* entries, pk_end = peek 0 1L in
        Future.return (dv1, dv2, List.map fst entries, pk_end))
  in
  let dv1, dv2, versions, pk_end = r in
  Alcotest.(check bool) "first ack durable" true (dv1 >= 5L);
  Alcotest.(check bool) "second ack durable" true (dv2 >= 9L);
  Alcotest.(check (list int64)) "peek in order" [ 5L; 9L ] versions;
  Alcotest.(check int64) "caught up" 9L pk_end

let test_out_of_order_pushes_ack_in_chain_order () =
  let r =
    Engine.run (fun () ->
        let _, _, _, _, push, _ = setup () in
        (* Deliver lsn 9 (prev 5) before lsn 5: the ack for 9 must wait for
           the chain, and its durable version must cover 9 only once 5 is
           durable too. *)
        let late = push 9L 5L [ (0, [ Mutation.Set ("b", "2") ]) ] in
        let* () = Engine.sleep 0.01 in
        Alcotest.(check bool) "9 not acked before 5 arrives" true (Future.is_pending late);
        let* _ = push 5L 0L [ (0, [ Mutation.Set ("a", "1") ]) ] in
        let* a9 = late in
        match a9 with
        | Message.Log_push_ack { durable_version } -> Future.return durable_version
        | _ -> Future.fail Exit)
  in
  Alcotest.(check bool) "chain-contiguous durability" true (r >= 9L)

let test_duplicate_push_idempotent () =
  let r =
    Engine.run (fun () ->
        let _, _, _, _, push, peek = setup () in
        let* _ = push 5L 0L [ (0, [ Mutation.Set ("a", "1") ]) ] in
        let* _ = push 5L 0L [ (0, [ Mutation.Set ("a", "1") ]) ] in
        let* entries, _ = peek 0 1L in
        Future.return (List.length entries))
  in
  Alcotest.(check int) "no duplicate entries" 1 r

let test_pop_discards () =
  let r =
    Engine.run (fun () ->
        let ctx, ep, client, _, push, peek = setup () in
        let* _ = push 5L 0L [ (0, [ Mutation.Set ("a", "1") ]) ] in
        let* _ = push 9L 5L [ (0, [ Mutation.Set ("b", "2") ]) ] in
        let* _ =
          Context.rpc ctx ~timeout:5.0 ~from:client ep
            (Message.Log_pop { tag = 0; up_to = 5L })
        in
        let* entries, _ = peek 0 1L in
        Future.return (List.map fst entries))
  in
  Alcotest.(check (list int64)) "popped prefix gone" [ 9L ] r

let test_lock_stops_pushes_and_reports () =
  let r =
    Engine.run (fun () ->
        let ctx, ep, client, _, push, _ = setup () in
        let* _ = push 5L 0L [ (0, [ Mutation.Set ("a", "1") ]) ] in
        let* reply =
          Context.rpc ctx ~timeout:5.0 ~from:client ep (Message.Log_lock { ll_epoch = 2 })
        in
        let dv, n_entries =
          match reply with
          | Message.Log_lock_reply { lk_dv; lk_entries; _ } -> (lk_dv, List.length lk_entries)
          | _ -> (-1L, -1)
        in
        let* rejected =
          Future.catch
            (fun () ->
              let* _ = push 9L 5L [ (0, [ Mutation.Set ("b", "2") ]) ] in
              Future.return false)
            (function Error.Fdb Error.Wrong_epoch -> Future.return true | e -> raise e)
        in
        Future.return (dv, n_entries, rejected))
  in
  let dv, n, rejected = r in
  Alcotest.(check bool) "dv covers durable" true (dv >= 5L);
  Alcotest.(check int) "unpopped entries handed over" 1 n;
  Alcotest.(check bool) "post-lock push rejected" true rejected

let test_resurrect_after_prune () =
  (* The seed-502 regression at unit level: push, pop, wait for GC, crash,
     resurrect — the lock reply must still report the true durable version. *)
  let r =
    Engine.run (fun () ->
        let ctx, ep, client, proc, push, _ = setup () in
        let* _ = push 5L 0L [ (0, [ Mutation.Set ("a", "1") ]) ] in
        let* _ = push 9L 5L [ (0, [ Mutation.Set ("b", "2") ]) ] in
        let* _ =
          Context.rpc ctx ~timeout:5.0 ~from:client ep
            (Message.Log_pop { tag = 0; up_to = 9L })
        in
        (* GC runs every 2 s. *)
        let* () = Engine.sleep 5.0 in
        Engine.reboot proc ~delay:0.2 ();
        let* () = Engine.sleep 1.0 in
        let* reply =
          Context.rpc ctx ~timeout:5.0 ~from:client ep (Message.Log_lock { ll_epoch = 2 })
        in
        match reply with
        | Message.Log_lock_reply { lk_dv; _ } -> Future.return lk_dv
        | _ -> Future.return (-1L))
  in
  Alcotest.(check bool) "durable version survives prune + crash" true (r >= 9L)

let suite =
  [
    Alcotest.test_case "in-order push/peek" `Quick test_in_order_push_and_peek;
    Alcotest.test_case "out-of-order chain acks" `Quick test_out_of_order_pushes_ack_in_chain_order;
    Alcotest.test_case "duplicate push idempotent" `Quick test_duplicate_push_idempotent;
    Alcotest.test_case "pop discards" `Quick test_pop_discards;
    Alcotest.test_case "lock stops pushes" `Quick test_lock_stops_pushes_and_reports;
    Alcotest.test_case "resurrect after prune" `Quick test_resurrect_after_prune;
  ]
