(* Fdb_obs: registry semantics, roll-up aggregation, and the determinism
   oracle — two runs of the same seed must serialize the whole metrics plane
   to identical bytes. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Registry = Fdb_obs.Registry
module Rollup = Fdb_obs.Rollup

(* ---------- registry semantics ---------- *)

let test_counter_semantics () =
  let reg = Registry.create () in
  let c1 = Registry.counter reg ~role:Registry.Proxy ~process:1 "commits" in
  let c2 = Registry.counter reg ~role:Registry.Proxy ~process:2 "commits" in
  Registry.incr c1;
  Registry.incr c1 ~by:4;
  Registry.incr c2 ~by:2;
  Alcotest.(check int) "process 1" 5
    (Registry.counter_value reg ~role:Registry.Proxy ~process:1 "commits");
  Alcotest.(check int) "process 2" 2
    (Registry.counter_value reg ~role:Registry.Proxy ~process:2 "commits");
  Alcotest.(check int) "absent is 0" 0
    (Registry.counter_value reg ~role:Registry.Proxy ~process:9 "commits");
  Alcotest.(check int) "summed" 7 (Registry.sum_counter reg ~role:Registry.Proxy "commits");
  (* Re-fetching the handle must alias the same cell, not reset it. *)
  let c1' = Registry.counter reg ~role:Registry.Proxy ~process:1 "commits" in
  Registry.incr c1';
  Alcotest.(check int) "handle aliases cell" 6
    (Registry.counter_value reg ~role:Registry.Proxy ~process:1 "commits")

let test_gauge_and_histogram_semantics () =
  let reg = Registry.create () in
  let g = Registry.gauge reg ~role:Registry.Storage ~process:3 "lag" in
  Alcotest.(check (option (float 0.0))) "gauge starts at 0" (Some 0.0)
    (Registry.gauge_value reg ~role:Registry.Storage ~process:3 "lag");
  Registry.set_gauge g 1.5;
  Registry.set_gauge g 0.25;
  Alcotest.(check (option (float 0.0))) "gauge holds last value" (Some 0.25)
    (Registry.gauge_value reg ~role:Registry.Storage ~process:3 "lag");
  Alcotest.(check (option (float 0.0))) "absent gauge is None" None
    (Registry.gauge_value reg ~role:Registry.Storage ~process:4 "lag");
  let h = Registry.histogram reg ~role:Registry.Storage ~process:3 "read_latency" in
  Registry.observe h 0.001;
  Registry.observe h 0.002;
  (match Registry.histograms reg ~role:Registry.Storage "read_latency" with
  | [ (3, hist) ] -> Alcotest.(check int) "samples recorded" 2 (Fdb_util.Histogram.count hist)
  | l -> Alcotest.fail (Printf.sprintf "expected one histogram, got %d" (List.length l)))

let test_kind_mismatch_rejected () =
  let reg = Registry.create () in
  let _ = Registry.counter reg ~role:Registry.Log ~process:1 "pushes" in
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Fdb_obs: metric is not a gauge: pushes") (fun () ->
      ignore (Registry.gauge reg ~role:Registry.Log ~process:1 "pushes"))

let test_disabled_is_noop () =
  let reg = Registry.create ~enabled:false () in
  let c = Registry.counter reg ~role:Registry.Proxy ~process:1 "commits" in
  let g = Registry.gauge reg ~role:Registry.Storage ~process:1 "lag" in
  let h = Registry.histogram reg ~role:Registry.Proxy ~process:1 "grv_latency" in
  Alcotest.(check bool) "counter handle is constant" true (c = Registry.No_counter);
  Registry.incr c ~by:100;
  Registry.set_gauge g 9.0;
  Registry.observe h 1.0;
  Alcotest.(check int) "nothing recorded" 0
    (Registry.counter_value reg ~role:Registry.Proxy ~process:1 "commits");
  Alcotest.(check string) "serializes empty" "" (Registry.serialize reg)

let test_serialize_canonical_order () =
  let reg = Registry.create () in
  (* Insert in scrambled order; serialization must sort role/process/metric. *)
  Registry.incr (Registry.counter reg ~role:Registry.Storage ~process:2 "reads");
  Registry.incr (Registry.counter reg ~role:Registry.Proxy ~process:1 "grv_served");
  Registry.incr (Registry.counter reg ~role:Registry.Storage ~process:1 "reads");
  Registry.incr (Registry.counter reg ~role:Registry.Proxy ~process:1 "commits");
  Alcotest.(check string) "canonical dump"
    "proxy/1/commits 1\nproxy/1/grv_served 1\nproxy/1/reads 0\nstorage/1/reads 1\nstorage/2/reads 1\n"
    (let _ = Registry.counter reg ~role:Registry.Proxy ~process:1 "reads" in
     Registry.serialize reg)

(* ---------- roll-up aggregation ---------- *)

let two_storage_registry () =
  let reg = Registry.create () in
  Registry.incr (Registry.counter reg ~role:Registry.Storage ~process:1 "reads") ~by:10;
  Registry.incr (Registry.counter reg ~role:Registry.Storage ~process:2 "reads") ~by:5;
  Registry.set_gauge (Registry.gauge reg ~role:Registry.Storage ~process:1 "lag") 0.5;
  Registry.set_gauge (Registry.gauge reg ~role:Registry.Storage ~process:2 "lag") 2.0;
  let h1 = Registry.histogram reg ~role:Registry.Storage ~process:1 "read_latency" in
  let h2 = Registry.histogram reg ~role:Registry.Storage ~process:2 "read_latency" in
  List.iter (Registry.observe h1) [ 0.001; 0.002; 0.003 ];
  List.iter (Registry.observe h2) [ 0.004 ];
  reg

let test_rollup_aggregates_per_role () =
  let doc = Rollup.snapshot ~now:12.5 (two_storage_registry ()) in
  Alcotest.(check (float 0.0)) "snapshot time" 12.5 doc.Rollup.d_time;
  match doc.Rollup.d_roles with
  | [ rd ] ->
      Alcotest.(check string) "role" "storage" rd.Rollup.rd_role;
      Alcotest.(check int) "processes" 2 rd.Rollup.rd_processes;
      Alcotest.(check (list (pair string int))) "counters summed" [ ("reads", 15) ]
        rd.Rollup.rd_counters;
      (match rd.Rollup.rd_gauges with
      | [ ("lag", (lo, hi)) ] ->
          Alcotest.(check (float 1e-9)) "gauge min" 0.5 lo;
          Alcotest.(check (float 1e-9)) "gauge max" 2.0 hi
      | _ -> Alcotest.fail "expected one lag gauge");
      (match rd.Rollup.rd_latencies with
      | [ ("read_latency", l) ] ->
          Alcotest.(check int) "merged count" 4 l.Rollup.l_count;
          Alcotest.(check bool) "merged max from other process" true
            (l.Rollup.l_max >= 0.004 *. 0.97)
      | _ -> Alcotest.fail "expected one merged latency")
  | l -> Alcotest.fail (Printf.sprintf "expected one role doc, got %d" (List.length l))

let test_rollup_json_shape () =
  let doc = Rollup.snapshot ~now:1.0 (two_storage_registry ()) in
  let json = Rollup.json_of_doc doc in
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "json contains %s" needle) true
        (contains json needle))
    [
      "{\"time\":1,\"roles\":{\"storage\":{";
      "\"processes\":2";
      "\"counters\":{\"reads\":15}";
      "\"lag\":{\"min\":0.5,\"max\":2}";
      "\"read_latency\":{\"count\":4";
      "\"p99_ms\":";
    ]

let test_rollup_actor_updates () =
  let latest =
    Engine.run ~seed:3L ~max_time:100.0 (fun () ->
        let reg = Registry.create () in
        Registry.incr (Registry.counter reg ~role:Registry.Client ~process:0 "ops") ~by:3;
        let ru = Rollup.start ~interval:0.5 reg in
        Alcotest.(check bool) "no doc before first interval" true (Rollup.latest ru = None);
        let* () = Engine.sleep 1.6 in
        Rollup.stop ru;
        Future.return (Rollup.latest ru))
  in
  match latest with
  | Some doc ->
      Alcotest.(check bool) "rolled up at simulated time" true
        (doc.Rollup.d_time >= 1.0 && doc.Rollup.d_time <= 1.6);
      Alcotest.(check int) "one role" 1 (List.length doc.Rollup.d_roles)
  | None -> Alcotest.fail "roll-up actor produced no document"

(* ---------- determinism oracle ---------- *)

(* Boot a full cluster, run a fixed workload, and dump the entire metrics
   plane. Identical seeds must yield byte-identical dumps: the registry is
   fed only from simulated time and deterministic role execution. *)
let metrics_fingerprint seed =
  Engine.run ~seed ~max_time:1e4 (fun () ->
      let cluster = Cluster.create () in
      let* () = Cluster.wait_ready cluster in
      let db = Cluster.client cluster ~name:"det" in
      let rec txn i =
        if i >= 15 then Future.return ()
        else
          let* _ =
            Client.run db (fun tx ->
                Client.set tx (Printf.sprintf "det/%02d" i) (string_of_int i);
                let* _ = Client.get tx "det/00" in
                Future.return ())
          in
          txn (i + 1)
      in
      let* () = txn 0 in
      let* () = Engine.sleep 1.5 in
      let* status = Fdb_workloads.Status.gather cluster in
      let doc = Cluster.status_doc cluster in
      Future.return
        ( Registry.serialize (Cluster.metrics cluster),
          Fdb_workloads.Status.to_json status doc ))

let test_determinism_same_seed () =
  let dump1, json1 = metrics_fingerprint 101L in
  let dump2, json2 = metrics_fingerprint 101L in
  Alcotest.(check string) "registry dumps bit-identical" dump1 dump2;
  Alcotest.(check string) "status json bit-identical" json1 json2;
  Alcotest.(check bool) "dump is non-trivial" true (String.length dump1 > 200)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "gauge and histogram semantics" `Quick test_gauge_and_histogram_semantics;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "disabled registry is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "serialize canonical order" `Quick test_serialize_canonical_order;
    Alcotest.test_case "rollup aggregates per role" `Quick test_rollup_aggregates_per_role;
    Alcotest.test_case "rollup json shape" `Quick test_rollup_json_shape;
    Alcotest.test_case "rollup actor updates" `Quick test_rollup_actor_updates;
    Alcotest.test_case "metrics dump deterministic" `Slow test_determinism_same_seed;
  ]
