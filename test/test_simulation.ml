(* The paper's §4 methodology as a test: randomized whole-cluster
   simulations with fault injection and buggification, checked by the
   oracle battery, reproducible from the seed. *)

open Fdb_workloads

let run seed = Swarm.run_one ~duration:25.0 ~seed ()

let check_pass r =
  if r.Swarm.oracle_failures <> [] then
    Alcotest.fail
      (Format.asprintf "seed %Ld failed oracles: %a" r.Swarm.seed Swarm.pp_report r)

let test_seed_1 () = check_pass (run 101L)
let test_seed_2 () = check_pass (run 202L)
let test_seed_3 () = check_pass (run 303L)

let test_workloads_made_progress () =
  let r = run 404L in
  check_pass r;
  Alcotest.(check bool) "transfers happened" true (r.Swarm.transfers > 0);
  Alcotest.(check bool) "rotations happened" true (r.Swarm.rotations > 0);
  Alcotest.(check bool) "soup committed" true (r.Swarm.soup_committed > 0)

let test_deterministic_replay () =
  let a = run 505L and b = run 505L in
  Alcotest.(check bool) "identical reports for identical seeds" true (a = b)

let test_faults_actually_recover () =
  (* At least one of a handful of seeds must exercise a real recovery
     (epoch > 1); otherwise the fault injector is a no-op. *)
  let epochs = List.map (fun s -> (run s).Swarm.epochs) [ 101L; 202L; 303L; 404L ] in
  Alcotest.(check bool) "some run recovered" true (List.exists (fun e -> e > 1) epochs)

(* Seeds that historically exposed real bugs (EXPERIMENTS.md bug log):
   303 = rollback under-shoot across skipped generations,
   502 = log pruning vs resurrection dragging RV to zero,
   903 = storage peek failover off the tag's replica set. *)
let test_regression_seed_303 () = check_pass (Swarm.run_one ~duration:30.0 ~seed:303L ())
let test_regression_seed_502 () = check_pass (Swarm.run_one ~duration:30.0 ~seed:502L ())
let test_regression_seed_903 () = check_pass (Swarm.run_one ~duration:25.0 ~seed:903L ())

let suite =
  [
    Alcotest.test_case "regression seed 303" `Slow test_regression_seed_303;
    Alcotest.test_case "regression seed 502" `Slow test_regression_seed_502;
    Alcotest.test_case "regression seed 903" `Slow test_regression_seed_903;
    Alcotest.test_case "swarm seed 101" `Slow test_seed_1;
    Alcotest.test_case "swarm seed 202" `Slow test_seed_2;
    Alcotest.test_case "swarm seed 303" `Slow test_seed_3;
    Alcotest.test_case "swarm progress" `Slow test_workloads_made_progress;
    Alcotest.test_case "deterministic replay" `Slow test_deterministic_replay;
    Alcotest.test_case "faults recover" `Slow test_faults_actually_recover;
  ]
