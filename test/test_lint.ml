(* Golden-file tests for the determinism lint (fdb_lint). Each fixture
   under lint_fixtures/ carries exactly one kind of violation; its
   .expected file holds the diagnostics (with line:col) the pass must
   produce. Fixtures are linted as if they lived under lib/ so that the
   library-only rule R4 applies. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let render diags =
  String.concat ""
    (List.map (fun d -> Format.asprintf "%a@." Lint.pp_diagnostic d) diags)

let golden name () =
  let file = Filename.concat "lint_fixtures" (name ^ ".ml") in
  let as_path = "lib/lint_fixtures/" ^ name ^ ".ml" in
  let got = render (Lint.lint_file ~as_path file) in
  let want = read_file (Filename.concat "lint_fixtures" (name ^ ".expected")) in
  Alcotest.(check string) name want got

(* Rule applicability is path-dependent; exercise the boundaries through
   lint_source so no fixture staging is needed. *)

let count_rule rule diags =
  List.length (List.filter (fun d -> d.Lint.d_rule = Some rule) diags)

let test_r1_det_rng_exempt () =
  let src = "let x = Random.int 5\n" in
  Alcotest.(check int)
    "det_rng is the one sanctioned randomness site" 0
    (count_rule Lint.R1 (Lint.lint_source ~path:"lib/util/det_rng.ml" src));
  Alcotest.(check int)
    "same source elsewhere violates" 1
    (count_rule Lint.R1 (Lint.lint_source ~path:"lib/core/proxy.ml" src))

let test_r2_util_exempt () =
  let src = "let f t = Hashtbl.iter (fun _ _ -> ()) t\n" in
  Alcotest.(check int)
    "lib/util may touch raw Hashtbl" 0
    (count_rule Lint.R2 (Lint.lint_source ~path:"lib/util/det_tbl.ml" src));
  Alcotest.(check int)
    "everyone else goes through Det_tbl" 1
    (count_rule Lint.R2 (Lint.lint_source ~path:"lib/kv/btree.ml" src))

let test_r4_library_only () =
  let src = "let main () = print_endline \"hi\"\n" in
  Alcotest.(check int)
    "bin/ drivers may print" 0
    (count_rule Lint.R4 (Lint.lint_source ~path:"bin/tool.ml" src));
  Alcotest.(check int)
    "lib/ code may not" 1
    (count_rule Lint.R4 (Lint.lint_source ~path:"lib/obs/status.ml" src))

let test_r3_annotated_ok () =
  let src = "let f p = ignore (Future.try_fulfill p () : bool)\n" in
  Alcotest.(check int)
    "annotated ignore passes" 0
    (count_rule Lint.R3 (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_open_unix_flagged () =
  let src = "open Unix\nlet x = 1\n" in
  Alcotest.(check int) "open Unix is R1" 1
    (count_rule Lint.R1 (Lint.lint_source ~path:"lib/core/x.ml" src));
  let src = "module R = Random\n" in
  Alcotest.(check int) "module alias of Random is R1" 1
    (count_rule Lint.R1 (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_same_line_suppression () =
  let src =
    "let f t = Hashtbl.fold (fun _ v a -> v + a) t 0 (* fdb-lint: allow R2 -- \
     unit test *)\n"
  in
  Alcotest.(check int) "same-line suppression applies" 0
    (List.length (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_suppression_wrong_rule () =
  let src =
    "(* fdb-lint: allow R1 -- wrong rule on purpose *)\n\
     let f t = Hashtbl.fold (fun _ v a -> v + a) t 0\n"
  in
  Alcotest.(check int) "suppressing R1 does not silence R2" 1
    (count_rule Lint.R2 (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_whitelist () =
  let wl = Lint.parse_whitelist "# comment\n\nR2 lib/core/x.ml\n" in
  Alcotest.(check int) "parsed one entry" 1 (List.length wl);
  let src = "let f t = Hashtbl.fold (fun _ v a -> v + a) t 0\n" in
  Alcotest.(check int) "whitelisted file is exempt" 0
    (List.length (Lint.lint_source ~whitelist:wl ~path:"lib/core/x.ml" src));
  Alcotest.(check int) "other files still checked" 1
    (List.length (Lint.lint_source ~whitelist:wl ~path:"lib/core/y.ml" src))

let test_whitelist_rejects_unknown_rule () =
  Alcotest.check_raises "unknown rule"
    (Failure "lint whitelist: unknown rule R9") (fun () ->
      let (_ : Lint.whitelist) = Lint.parse_whitelist "R9 lib/core/x.ml\n" in
      ())

let golden_json name () =
  let file = Filename.concat "lint_fixtures" (name ^ ".ml") in
  let as_path = "lib/lint_fixtures/" ^ name ^ ".ml" in
  let got = Lint.diagnostics_to_json (Lint.lint_file ~as_path file) ^ "\n" in
  let want = read_file (Filename.concat "lint_fixtures" (name ^ ".expected.json")) in
  Alcotest.(check string) (name ^ " json") want got

(* R5 boundary and semantics probed through lint_source directly. *)

let test_r5_lib_only () =
  let src =
    "open Future.Syntax\n\
     let f t = if t.busy then Future.return () else let* v = go t in t.busy <- true; use v\n"
  in
  Alcotest.(check int) "R5 applies under lib/" 1
    (count_rule Lint.R5 (Lint.lint_source ~path:"lib/core/x.ml" src));
  Alcotest.(check int) "bin/ drivers are exempt" 0
    (count_rule Lint.R5 (Lint.lint_source ~path:"bin/tool.ml" src))

let test_r5_bind_literal () =
  (* A literal Future.bind continuation is a yield too — the let* syntax is
     not the only spelling. *)
  let src =
    "let f t =\n\
    \  if t.busy then Future.return ()\n\
    \  else Future.bind (go t) (fun v -> t.busy <- true; use v)\n"
  in
  Alcotest.(check int) "bind continuation is post-yield" 1
    (count_rule Lint.R5 (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_r5_ref_cells () =
  let src =
    "open Future.Syntax\n\
     let f r = let seen = !r in let* () = pause () in r := seen + 1; Future.return ()\n"
  in
  (* Two reports: the blind write to [r] while stale, and the use of the
     captured pre-yield value [seen] that feeds it. *)
  Alcotest.(check int) "ref read-yield-write flags" 2
    (count_rule Lint.R5 (Lint.lint_source ~path:"lib/core/x.ml" src));
  let src =
    "open Future.Syntax\n\
     let f r = let* () = pause () in incr r; Future.return ()\n"
  in
  Alcotest.(check int) "incr is an atomic read-modify-write" 0
    (count_rule Lint.R5 (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_r5_future_construction_no_yield () =
  (* Binding a letop future to a name only constructs it; the enclosing
     function does not suspend. *)
  let src =
    "open Future.Syntax\n\
     let f t =\n\
    \  match t.cache with\n\
    \  | Some v -> v\n\
    \  | None -> let fut = let* x = fetch t in decode x in t.cache <- Some fut; fut\n"
  in
  Alcotest.(check int) "future construction is not a yield" 0
    (count_rule Lint.R5 (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_r6_future_type_only () =
  let src = "let f x = ignore (count x : int)\n" in
  Alcotest.(check int) "annotated non-future ignore passes R6" 0
    (count_rule Lint.R6 (Lint.lint_source ~path:"lib/core/x.ml" src))

let test_whitelist_used_callback () =
  let wl = Lint.parse_whitelist "R2 lib/core/x.ml\n" in
  let hits = ref [] in
  let src = "let f t = Hashtbl.fold (fun _ v a -> v + a) t 0\n" in
  let (_ : Lint.diagnostic list) =
    Lint.lint_source ~whitelist:wl
      ~whitelist_used:(fun e -> hits := e :: !hits)
      ~path:"lib/core/x.ml" src
  in
  Alcotest.(check int) "callback fired once" 1 (List.length !hits);
  hits := [];
  let (_ : Lint.diagnostic list) =
    Lint.lint_source ~whitelist:wl
      ~whitelist_used:(fun e -> hits := e :: !hits)
      ~path:"lib/core/clean.ml" "let x = 1\n"
  in
  Alcotest.(check int) "no hit on a clean file" 0 (List.length !hits)

let test_explain_covers_all_rules () =
  List.iter
    (fun r ->
      let text = Lint.explain r in
      Alcotest.(check bool)
        (Lint.rule_name r ^ " explanation names itself")
        true
        (String.length text > 40
        && String.sub text 0 2 = Lint.rule_name r))
    Lint.all_rules

let suite =
  [
    Alcotest.test_case "golden: R1 unix" `Quick (golden "r1_unix");
    Alcotest.test_case "golden: R2 hashtbl" `Quick (golden "r2_hashtbl");
    Alcotest.test_case "golden: R3 ignore" `Quick (golden "r3_ignore");
    Alcotest.test_case "golden: R4 print" `Quick (golden "r4_print");
    Alcotest.test_case "golden: suppressed" `Quick (golden "suppressed");
    Alcotest.test_case "golden: bad suppression" `Quick (golden "bad_suppression");
    Alcotest.test_case "golden: R5 stale write" `Quick (golden "r5_stale_write");
    Alcotest.test_case "golden: R5 stale capture" `Quick (golden "r5_capture");
    Alcotest.test_case "golden: R5 re-read idiom clean" `Quick (golden "r5_reread");
    Alcotest.test_case "golden: R6 discards" `Quick (golden "r6_discard");
    Alcotest.test_case "golden: R6 detach clean" `Quick (golden "r6_detach");
    Alcotest.test_case "golden: stale suppression" `Quick (golden "stale_suppression");
    Alcotest.test_case "golden: R6 json" `Quick (golden_json "r6_discard");
    Alcotest.test_case "R5 lib only" `Quick test_r5_lib_only;
    Alcotest.test_case "R5 literal bind" `Quick test_r5_bind_literal;
    Alcotest.test_case "R5 ref cells" `Quick test_r5_ref_cells;
    Alcotest.test_case "R5 construction is not a yield" `Quick
      test_r5_future_construction_no_yield;
    Alcotest.test_case "R6 future types only" `Quick test_r6_future_type_only;
    Alcotest.test_case "whitelist-used callback" `Quick test_whitelist_used_callback;
    Alcotest.test_case "R1 det_rng exemption" `Quick test_r1_det_rng_exempt;
    Alcotest.test_case "R2 lib/util exemption" `Quick test_r2_util_exempt;
    Alcotest.test_case "R4 library only" `Quick test_r4_library_only;
    Alcotest.test_case "R3 annotated ok" `Quick test_r3_annotated_ok;
    Alcotest.test_case "open/alias Unix flagged" `Quick test_open_unix_flagged;
    Alcotest.test_case "same-line suppression" `Quick test_same_line_suppression;
    Alcotest.test_case "suppression rule mismatch" `Quick test_suppression_wrong_rule;
    Alcotest.test_case "whitelist" `Quick test_whitelist;
    Alcotest.test_case "whitelist unknown rule" `Quick test_whitelist_rejects_unknown_rule;
    Alcotest.test_case "explain all rules" `Quick test_explain_covers_all_rules;
  ]
