open Fdb_sim
open Fdb_core
open Future.Syntax

let with_cluster ?(seed = 1L) ?(config = Config.default) body =
  Engine.run ~seed ~max_time:1e5 (fun () ->
      let cluster = Cluster.create ~config () in
      let* () = Cluster.wait_ready cluster in
      body cluster)

let test_boot_and_ready () =
  let epoch =
    with_cluster (fun cluster ->
        let* e = Cluster.current_epoch cluster in
        Future.return e)
  in
  Alcotest.(check bool) "first generation recovered" true (epoch >= 1)

let test_set_get () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let* _v =
          Client.run db (fun tx ->
              Client.set tx "hello" "world";
              Client.set tx "foo" "bar";
              Future.return ())
        in
        Client.run db (fun tx ->
            let* a = Client.get tx "hello" in
            let* b = Client.get tx "foo" in
            let* c = Client.get tx "missing" in
            Future.return (a, b, c)))
  in
  let a, b, c = r in
  Alcotest.(check (option string)) "hello" (Some "world") a;
  Alcotest.(check (option string)) "foo" (Some "bar") b;
  Alcotest.(check (option string)) "missing" None c

let test_read_your_writes () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        Client.run db (fun tx ->
            Client.set tx "k" "v1";
            let* v1 = Client.get tx "k" in
            Client.clear tx "k";
            let* v2 = Client.get tx "k" in
            Client.set tx "k" "v3";
            let* v3 = Client.get tx "k" in
            Future.return (v1, v2, v3)))
  in
  let v1, v2, v3 = r in
  Alcotest.(check (option string)) "after set" (Some "v1") v1;
  Alcotest.(check (option string)) "after clear" None v2;
  Alcotest.(check (option string)) "after re-set" (Some "v3") v3

let test_get_range () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 9 do
                Client.set tx (Printf.sprintf "range/%02d" i) (string_of_int i)
              done;
              Future.return ())
        in
        Client.run db (fun tx ->
            let* all = Client.get_range tx ~from:"range/" ~until:"range0" () in
            let* limited =
              Client.get_range tx ~limit:3 ~from:"range/" ~until:"range0" ()
            in
            let* rev =
              Client.get_range tx ~limit:2 ~reverse:true ~from:"range/" ~until:"range0" ()
            in
            Future.return (all, limited, rev)))
  in
  let all, limited, rev = r in
  Alcotest.(check int) "all" 10 (List.length all);
  Alcotest.(check (list string)) "limited keys" [ "range/00"; "range/01"; "range/02" ]
    (List.map fst limited);
  Alcotest.(check (list string)) "reverse keys" [ "range/09"; "range/08" ]
    (List.map fst rev)

let test_clear_range () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 9 do
                Client.set tx (Printf.sprintf "cr/%02d" i) "x"
              done;
              Future.return ())
        in
        let* _ =
          Client.run db (fun tx ->
              Client.clear_range tx ~from:"cr/02" ~until:"cr/07";
              Future.return ())
        in
        Client.run db (fun tx ->
            Client.get_range tx ~from:"cr/" ~until:"cr0" ()))
  in
  Alcotest.(check (list string)) "survivors"
    [ "cr/00"; "cr/01"; "cr/07"; "cr/08"; "cr/09" ]
    (List.map fst r)

let test_conflict_detected () =
  (* Two interleaved transactions reading and writing the same key: exactly
     one must commit, the other must see Not_committed (and run's retry
     then succeeds). We use raw transactions to observe the conflict. *)
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let* _ = Client.run db (fun tx -> Client.set tx "ctr" "0"; Future.return ()) in
        let t1 = Client.begin_tx db in
        let t2 = Client.begin_tx db in
        let* _ = Client.get t1 "ctr" in
        let* _ = Client.get t2 "ctr" in
        Client.set t1 "ctr" "1";
        Client.set t2 "ctr" "2";
        let* r1 =
          Future.catch
            (fun () -> Future.map (Client.commit t1) (fun _ -> `Committed))
            (function Error.Fdb Error.Not_committed -> Future.return `Conflict | e -> raise e)
        in
        let* r2 =
          Future.catch
            (fun () -> Future.map (Client.commit t2) (fun _ -> `Committed))
            (function Error.Fdb Error.Not_committed -> Future.return `Conflict | e -> raise e)
        in
        Future.return (r1, r2))
  in
  (match r with
  | `Committed, `Conflict | `Conflict, `Committed -> ()
  | `Committed, `Committed -> Alcotest.fail "both committed: serializability violated"
  | `Conflict, `Conflict -> Alcotest.fail "both aborted: progress violated")

let test_snapshot_read_no_conflict () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let* _ = Client.run db (fun tx -> Client.set tx "sk" "0"; Future.return ()) in
        let t1 = Client.begin_tx db in
        let* _ = Client.get ~snapshot:true t1 "sk" in
        Client.set t1 "other" "x";
        (* A concurrent write to sk would normally conflict with t1. *)
        let* _ = Client.run db (fun tx -> Client.set tx "sk" "1"; Future.return ()) in
        Future.catch
          (fun () -> Future.map (Client.commit t1) (fun _ -> `Committed))
          (function Error.Fdb Error.Not_committed -> Future.return `Conflict | e -> raise e))
  in
  Alcotest.(check bool) "snapshot read does not conflict" true (r = `Committed)

let test_atomic_add_concurrent () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let le_one = String.init 8 (fun i -> if i = 0 then '\x01' else '\x00') in
        let incr () =
          Client.run db (fun tx ->
              Client.atomic_op tx Fdb_kv.Mutation.Add "counter" le_one;
              Future.return ())
        in
        let jobs = List.init 20 (fun _ -> incr ()) in
        let* _ = Future.all jobs in
        Client.run db (fun tx -> Client.get tx "counter"))
  in
  match r with
  | Some bytes ->
      Alcotest.(check int) "counter = 20" 20 (Char.code bytes.[0])
  | None -> Alcotest.fail "counter missing"

let test_versionstamped_key () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let* _ =
          Client.run db (fun tx ->
              Client.set_versionstamped_key tx
                ~template:("log/" ^ Client.versionstamp_placeholder)
                ~offset:4 ~value:"first";
              Future.return ())
        in
        let* _ =
          Client.run db (fun tx ->
              Client.set_versionstamped_key tx
                ~template:("log/" ^ Client.versionstamp_placeholder)
                ~offset:4 ~value:"second";
              Future.return ())
        in
        Client.run db (fun tx -> Client.get_range tx ~from:"log/" ~until:"log0" ()))
  in
  Alcotest.(check int) "two stamped keys" 2 (List.length r);
  Alcotest.(check (list string)) "order follows commit order" [ "first"; "second" ]
    (List.map snd r)

let test_blind_write_commits () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let t = Client.begin_tx db in
        Client.set t "blind" "w";
        let* v = Client.commit t in
        Future.return v)
  in
  Alcotest.(check bool) "got commit version" true (r > 0L)

let test_read_only_commits_locally () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        Client.run db (fun tx ->
            let* _ = Client.get tx "nothing" in
            Future.return ()))
  in
  Alcotest.(check unit) "read-only ok" () r

let test_key_limits () =
  with_cluster (fun cluster ->
      let db = Cluster.client cluster ~name:"c1" in
      let t = Client.begin_tx db in
      Alcotest.check_raises "huge key" (Error.Fdb Error.Key_too_large) (fun () ->
          Client.set t (String.make 10_001 'k') "v");
      Alcotest.check_raises "huge value" (Error.Fdb Error.Value_too_large) (fun () ->
          Client.set t "k" (String.make 100_001 'v'));
      Alcotest.check_raises "system key" (Error.Fdb Error.Key_outside_legal_range)
        (fun () -> Client.set t "\xff/system" "v");
      Future.return ())


(* End-to-end observability: after a committed workload the metrics-backed
   status report must show the traffic and a healthy storage plane. *)
let test_status_reflects_workload () =
  let st =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c1" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 19 do
                Client.set tx (Printf.sprintf "obs/%02d" i) (string_of_int i)
              done;
              Future.return ())
        in
        (* Let the storage heartbeat gauges tick so responsiveness and lag
           come from fresh samples. *)
        let* () = Engine.sleep 1.0 in
        Fdb_workloads.Status.gather cluster)
  in
  let open Fdb_workloads.Status in
  Alcotest.(check bool) "commits counted" true (st.st_commits > 0);
  Alcotest.(check bool) "grv served" true (st.st_grv_served >= st.st_commits);
  Alcotest.(check int) "all storage responsive" st.st_storage_total st.st_storage_responsive;
  Alcotest.(check bool) "storage lag bounded" true
    (st.st_max_lag >= 0.0 && st.st_max_lag < 5.0);
  Alcotest.(check bool) "commit latency measured" true (st.st_commit_p50 > 0.0);
  Alcotest.(check bool) "p99 dominates p50" true (st.st_commit_p99 >= st.st_commit_p50);
  Alcotest.(check bool) "rate budget positive" true (st.st_rate > 0.0)

let suite =
  [
    Alcotest.test_case "boot and ready" `Quick test_boot_and_ready;
    Alcotest.test_case "status reflects workload" `Quick test_status_reflects_workload;
    Alcotest.test_case "set/get" `Quick test_set_get;
    Alcotest.test_case "read your writes" `Quick test_read_your_writes;
    Alcotest.test_case "get_range" `Quick test_get_range;
    Alcotest.test_case "clear_range" `Quick test_clear_range;
    Alcotest.test_case "conflict detected" `Quick test_conflict_detected;
    Alcotest.test_case "snapshot read no conflict" `Quick test_snapshot_read_no_conflict;
    Alcotest.test_case "atomic add concurrent" `Quick test_atomic_add_concurrent;
    Alcotest.test_case "versionstamped key" `Quick test_versionstamped_key;
    Alcotest.test_case "blind write" `Quick test_blind_write_commits;
    Alcotest.test_case "read-only local commit" `Quick test_read_only_commits_locally;
    Alcotest.test_case "key limits" `Quick test_key_limits;
  ]
