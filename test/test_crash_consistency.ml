(* Crash-consistency property test for the persistent store: apply random
   mutation batches with commits at random points, crash at a random
   moment (with buggified torn writes enabled), recover — the recovered
   state must equal the model at the LAST COMMITTED batch boundary (the
   disk may admit a suffix of synced-but-unacknowledged work being absent,
   never a prefix gap or phantom data beyond what was applied). *)

open Fdb_sim
open Fdb_kv
open Future.Syntax
module Rng = Fdb_util.Det_rng
module M = Map.Make (String)

let keyn i = Printf.sprintf "k%02d" i

let random_mutation rng =
  match Rng.int rng 4 with
  | 0 | 1 -> Mutation.Set (keyn (Rng.int rng 20), Rng.alphanum rng 6)
  | 2 -> Mutation.Clear (keyn (Rng.int rng 20))
  | _ ->
      let a = Rng.int rng 20 and b = Rng.int rng 20 in
      Mutation.Clear_range (keyn (min a b), keyn (max a b))

let apply_model m = function
  | Mutation.Set (k, v) -> M.add k v m
  | Mutation.Clear k -> M.remove k m
  | Mutation.Clear_range (a, b) -> M.filter (fun k _ -> k < a || k >= b) m
  | Mutation.Atomic _ -> m

let one_trial seed =
  Engine.run ~seed ~max_time:1e6 ~buggify:true (fun () ->
      let rng = Engine.fork_rng () in
      let disk = Disk.create ~name:"cc" () in
      let* store = Persistent_store.recover ~disk ~prefix:"s" ~checkpoint_every:7 () in
      let pending = ref M.empty in
      (* Every model state reachable by a prefix of mutations at or after
         the last commit: a crash may preserve any contiguous prefix of the
         unsynced WAL tail (torn writes keep subsets, recovery keeps the
         contiguous part), but never less than the last commit. *)
      let acceptable = ref [ M.empty ] in
      let batches = 3 + Rng.int rng 15 in
      let rec run_batches i =
        if i = batches then Future.return ()
        else begin
          let muts = List.init (1 + Rng.int rng 5) (fun _ -> random_mutation rng) in
          let* () = Persistent_store.apply store muts in
          List.iter
            (fun m ->
              pending := apply_model !pending m;
              acceptable := !pending :: !acceptable)
            muts;
          if Rng.chance rng 0.7 then begin
            let* () = Persistent_store.commit store in
            (* everything before the commit is now mandatory *)
            acceptable := [ !pending ];
            run_batches (i + 1)
          end
          else run_batches (i + 1)
        end
      in
      let* () = run_batches 0 in
      Disk.crash disk;
      let* store' = Persistent_store.recover ~disk ~prefix:"s" () in
      let recovered =
        Persistent_store.get_range store' ~from:"" ~until:"z" ()
        |> List.fold_left (fun m (k, v) -> M.add k v m) M.empty
      in
      Future.return (List.exists (M.equal ( = ) recovered) !acceptable))

let test_many_seeds () =
  for seed = 1 to 60 do
    if not (one_trial (Int64.of_int seed)) then
      Alcotest.failf "crash consistency violated at seed %d" seed
  done

let suite = [ Alcotest.test_case "random crash recovery" `Quick test_many_seeds ]
