open Fdb_sim
open Fdb_core
open Future.Syntax

let with_cluster ?(seed = 7L) ?(config = Config.default) body =
  Engine.run ~seed ~max_time:1e5 (fun () ->
      let cluster = Cluster.create ~config () in
      let* () = Cluster.wait_ready cluster in
      body cluster)

(* Find a live role process by name prefix across the worker machines. *)
let find_processes cluster prefix =
  Array.to_list (Cluster.worker_machines cluster)
  |> List.concat_map (fun m -> m.Process.machine_processes)
  |> List.filter (fun p ->
         p.Process.alive
         && String.length p.Process.name >= String.length prefix
         && String.sub p.Process.name 0 (String.length prefix) = prefix)

let write_marker db k v = Client.run db (fun tx -> Client.set tx k v; Future.return ())
let read_marker db k = Client.run db (fun tx -> Client.get tx k)

let test_sequencer_kill_triggers_new_epoch () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c" in
        let* _ = write_marker db "before" "1" in
        let* epoch_before = Cluster.current_epoch cluster in
        (match find_processes cluster "sequencer" with
        | p :: _ -> Engine.kill p
        | [] -> Alcotest.fail "no sequencer process found");
        let* () = Cluster.wait_ready ~timeout:60.0 cluster in
        let* epoch_after = Cluster.current_epoch cluster in
        let* v = read_marker db "before" in
        let* _ = write_marker db "after" "2" in
        let* v2 = read_marker db "after" in
        Future.return (epoch_before, epoch_after, v, v2))
  in
  let eb, ea, v, v2 = r in
  Alcotest.(check bool) "epoch advanced" true (ea > eb);
  Alcotest.(check (option string)) "old data survives" (Some "1") v;
  Alcotest.(check (option string)) "new writes work" (Some "2") v2

let test_log_server_kill_recovers_committed_data () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 49 do
                Client.set tx (Printf.sprintf "d/%02d" i) (string_of_int i)
              done;
              Future.return ())
        in
        (* Kill one log server process; its epoch ends; recovery must
           preserve every acknowledged commit. *)
        (match find_processes cluster "tlog" with
        | p :: _ -> Engine.kill p
        | [] -> Alcotest.fail "no tlog process found");
        let* () = Cluster.wait_ready ~timeout:60.0 cluster in
        Client.run db (fun tx -> Client.get_range tx ~limit:100 ~from:"d/" ~until:"d0" ()))
  in
  Alcotest.(check int) "all 50 rows survive" 50 (List.length r)

let test_storage_server_kill_reads_from_replicas () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c" in
        let* _ = write_marker db "sskill" "v" in
        (match find_processes cluster "storage-" with
        | p :: _ -> Engine.kill p
        | [] -> Alcotest.fail "no storage process found");
        let* () = Engine.sleep 0.5 in
        read_marker db "sskill")
  in
  Alcotest.(check (option string)) "served by surviving replicas" (Some "v") r

let test_storage_server_reboot_catches_up () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c" in
        let* _ = write_marker db "k1" "v1" in
        let victims = find_processes cluster "storage-" in
        let victim = List.hd victims in
        Engine.reboot victim ~delay:1.0 ();
        (* Write while it is down; it must catch up from the logs. *)
        let* _ = write_marker db "k2" "v2" in
        let* () = Engine.sleep 15.0 in
        let* res = Fdb_workloads.Consistency_check.check cluster in
        Future.return res)
  in
  (match r with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("replicas diverged after reboot: " ^ m))

let test_full_cluster_reboot_durability () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 19 do
                Client.set tx (Printf.sprintf "dur/%02d" i) "x"
              done;
              Future.return ())
        in
        (* Give storage a beat, then restart every machine simultaneously —
           the paper's upgrade path (§6.3). *)
        let* () = Engine.sleep 1.0 in
        Array.iter
          (fun m -> Fdb_sim.Fault_injector.reboot_machine ~delay:0.5 m)
          (Cluster.worker_machines cluster);
        let* () = Cluster.wait_ready ~timeout:90.0 cluster in
        Client.run db (fun tx ->
            Client.get_range tx ~limit:100 ~from:"dur/" ~until:"dur0" ()))
  in
  Alcotest.(check int) "acknowledged rows survive full restart" 20 (List.length r)

let test_repeated_recoveries () =
  let r =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"c" in
        let rec cycle i =
          if i = 3 then Future.return ()
          else begin
            let* _ = write_marker db (Printf.sprintf "cyc/%d" i) "x" in
            (match find_processes cluster "sequencer" with
            | p :: _ -> Engine.kill p
            | [] -> ());
            let* () = Cluster.wait_ready ~timeout:60.0 cluster in
            cycle (i + 1)
          end
        in
        let* () = cycle 0 in
        let* epoch = Cluster.current_epoch cluster in
        let* rows =
          Client.run db (fun tx -> Client.get_range tx ~from:"cyc/" ~until:"cyc0" ())
        in
        Future.return (epoch, List.length rows))
  in
  Alcotest.(check bool) "several epochs" true (fst r >= 4);
  Alcotest.(check int) "all markers survive" 3 (snd r)

let test_bank_under_faults () =
  let failures =
    Engine.run ~seed:21L ~max_time:1e5 (fun () ->
        let cluster = Cluster.create ~config:Config.default () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"bank" in
        let* () = Fdb_workloads.Bank.setup db ~accounts:20 ~initial:100 in
        let stop_at = Engine.now () +. 30.0 in
        let rng = Engine.fork_rng () in
        let bank_job =
          Fdb_workloads.Bank.transfer_loop db ~accounts:20 ~until:stop_at ~rng
        in
        let faults =
          {
            Fault_injector.default with
            duration = 30.0;
            kill_mean_interval = 10.0;
            partition_mean_interval = 15.0;
          }
        in
        let fault_job =
          Fault_injector.run
            ~net:(Cluster.context cluster).Context.net
            ~machines:(Cluster.worker_machines cluster)
            faults
        in
        let* _stats = bank_job and* () = fault_job in
        let* () = Cluster.wait_ready ~timeout:90.0 cluster in
        let check_db = Cluster.client cluster ~name:"bank-check" in
        let* res = Fdb_workloads.Bank.check check_db ~accounts:20 ~expected_total:2000 in
        let* cons = Fdb_workloads.Consistency_check.check cluster in
        Future.return
          ((match res with Ok () -> [] | Error m -> [ m ])
          @ (match cons with Ok () -> [] | Error m -> [ m ])))
  in
  Alcotest.(check (list string)) "oracles pass under faults" [] failures

let test_log_prune_survives_reboot_and_recovery () =
  (* Regression for the seed-502 class: let the logs get pruned (storage
     pops + the 2 s GC), then reboot every current log server and force a
     recovery — the recovered RV must not regress below acknowledged
     commits, and all data must remain readable. *)
  let r =
    with_cluster ~seed:44L (fun cluster ->
        let db = Cluster.client cluster ~name:"c" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 29 do
                Client.set tx (Printf.sprintf "pr/%02d" i) "x"
              done;
              Future.return ())
        in
        (* Storage durable loop (0.25 s), pops, then log GC (every 2 s). *)
        let* () = Engine.sleep 6.0 in
        let* epoch = Cluster.current_epoch cluster in
        List.iter
          (fun p -> Engine.reboot p ~delay:0.5 ())
          (find_processes cluster (Printf.sprintf "tlog-%d." epoch));
        let* () = Cluster.wait_ready ~timeout:60.0 cluster in
        let* rows =
          Client.run db (fun tx -> Client.get_range tx ~limit:50 ~from:"pr/" ~until:"pr0" ())
        in
        let* _ = write_marker db "pr-after" "y" in
        let* v = read_marker db "pr-after" in
        Future.return (List.length rows, v))
  in
  Alcotest.(check int) "all rows survive" 30 (fst r);
  Alcotest.(check (option string)) "writes work" (Some "y") (snd r)

(* The ratekeeper now reads storage load off the shared metrics plane, so we
   can drive it directly: impersonate an overloaded storage server by
   publishing a huge lag gauge with a fresh heartbeat, and watch the budget
   collapse; let the heartbeat go stale and watch it climb back. A background
   writer keeps the real servers' versions advancing so their genuine lag
   stays under the throttle limit throughout. *)
let test_ratekeeper_throttles_on_metrics () =
  let module R = Fdb_obs.Registry in
  let r =
    with_cluster (fun cluster ->
        let reg = Cluster.metrics cluster in
        let rate () =
          List.fold_left (fun a (_, v) -> Float.max a v) 0.0
            (R.gauges reg ~role:R.Ratekeeper "rate")
        in
        let db = Cluster.client cluster ~name:"rk-pump" in
        let rec pump_writes until i =
          if Engine.now () >= until then Future.return ()
          else
            let* _ = write_marker db "rk/pump" (string_of_int i) in
            let* () = Engine.sleep 0.1 in
            pump_writes until (i + 1)
        in
        let stop_at = Engine.now () +. 13.0 in
        let writer = pump_writes stop_at 0 in
        let* () = Engine.sleep 2.0 in
        let rate_before = rate () in
        let hb = R.gauge reg ~role:R.Storage ~process:9999 "heartbeat" in
        R.set_gauge (R.gauge reg ~role:R.Storage ~process:9999 "lag") 100.0;
        let rec refresh_heartbeat n =
          if n = 0 then Future.return ()
          else begin
            R.set_gauge hb (Engine.now ());
            let* () = Engine.sleep 0.1 in
            refresh_heartbeat (n - 1)
          end
        in
        let* () = refresh_heartbeat 30 in
        let rate_during = rate () in
        let throttles = R.sum_counter reg ~role:R.Ratekeeper "throttles" in
        (* The heartbeat needs stale_after (1 s) to age out, during which the
           ratekeeper may throttle once or twice more — measure the trough
           after that, then give additive increase room to show recovery. *)
        let* () = Engine.sleep 1.5 in
        let rate_trough = rate () in
        let* () = Engine.sleep 6.0 in
        let rate_after = rate () in
        let* () = writer in
        Future.return (rate_before, rate_during, throttles, rate_trough, rate_after))
  in
  let rate_before, rate_during, throttles, rate_trough, rate_after = r in
  Alcotest.(check bool) "budget collapsed under fake lag" true (rate_during < rate_before /. 2.0);
  Alcotest.(check bool) "throttle decisions counted" true (throttles > 0);
  Alcotest.(check bool) "budget recovers once stale" true (rate_after > rate_trough *. 1.2)

let suite =
  [
    Alcotest.test_case "sequencer kill -> new epoch" `Quick test_sequencer_kill_triggers_new_epoch;
    Alcotest.test_case "ratekeeper throttles on metrics" `Quick test_ratekeeper_throttles_on_metrics;
    Alcotest.test_case "log server kill recovers data" `Quick test_log_server_kill_recovers_committed_data;
    Alcotest.test_case "storage kill -> replica reads" `Quick test_storage_server_kill_reads_from_replicas;
    Alcotest.test_case "storage reboot catches up" `Quick test_storage_server_reboot_catches_up;
    Alcotest.test_case "full cluster reboot durability" `Quick test_full_cluster_reboot_durability;
    Alcotest.test_case "repeated recoveries" `Quick test_repeated_recoveries;
    Alcotest.test_case "bank under faults" `Slow test_bank_under_faults;
    Alcotest.test_case "log prune + reboot + recovery" `Quick
      test_log_prune_survives_reboot_and_recovery;
  ]
