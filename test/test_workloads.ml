open Fdb_workloads
module S = Serializability_checker

let txn rv cv reads writes =
  {
    S.rc_read_version = rv;
    rc_commit_version = cv;
    rc_reads = reads;
    rc_writes = writes;
  }

let test_checker_accepts_serial () =
  let c = S.create () in
  S.record c (txn 0L 10L [] [ ("k", Some "a") ]);
  S.record c (txn 10L 20L [ ("k", Some "a") ] [ ("k", Some "b") ]);
  S.record c (txn 25L 30L [ ("k", Some "b") ] []);
  Alcotest.(check bool) "serial history ok" true (S.verify c = Ok ())

let test_checker_rejects_stale_read () =
  let c = S.create () in
  S.record c (txn 0L 10L [] [ ("k", Some "a") ]);
  S.record c (txn 10L 20L [] [ ("k", Some "b") ]);
  (* reads at rv=25 but observes the value overwritten at cv=20 *)
  S.record c (txn 25L 30L [ ("k", Some "a") ] []);
  Alcotest.(check bool) "stale read detected" true (S.verify c <> Ok ())

let test_checker_rejects_phantom () =
  let c = S.create () in
  S.record c (txn 5L 10L [ ("k", Some "ghost") ] []);
  Alcotest.(check bool) "phantom detected" true (S.verify c <> Ok ())

let test_checker_accepts_absent () =
  let c = S.create () in
  S.record c (txn 5L 10L [ ("k", None) ] [ ("k", Some "v") ]);
  S.record c (txn 15L 20L [ ("k", Some "v") ] []);
  Alcotest.(check bool) "absent then value" true (S.verify c = Ok ())

let test_checker_same_version_ties () =
  (* Batched transactions share a commit version; either value may win. *)
  let c = S.create () in
  S.record c (txn 0L 10L [] [ ("k", Some "x") ]);
  S.record c (txn 0L 10L [] [ ("k", Some "y") ]);
  S.record c (txn 15L 20L [ ("k", Some "y") ] []);
  Alcotest.(check bool) "tie accepted" true (S.verify c = Ok ());
  let c2 = S.create () in
  S.record c2 (txn 0L 10L [] [ ("k", Some "x") ]);
  S.record c2 (txn 0L 10L [] [ ("k", Some "y") ]);
  S.record c2 (txn 15L 20L [ ("k", Some "z") ] []);
  Alcotest.(check bool) "non-candidate rejected" true (S.verify c2 <> Ok ())

let test_checker_clear_visible () =
  let c = S.create () in
  S.record c (txn 0L 10L [] [ ("k", Some "v") ]);
  S.record c (txn 10L 20L [] [ ("k", None) ]);
  S.record c (txn 25L 30L [ ("k", None) ] []);
  Alcotest.(check bool) "clear observed" true (S.verify c = Ok ())

let qcheck_checker_accepts_any_true_serial_history =
  (* Generate a random serial history over a tiny key space, derive reads
     from the true state; the checker must accept. *)
  QCheck.Test.make ~name:"checker accepts generated serial histories" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 40) (pair (int_range 0 4) small_nat)))
    (fun ops ->
      let c = S.create () in
      let state = Hashtbl.create 8 in
      List.iteri
        (fun i (k, v) ->
          let key = "k" ^ string_of_int k in
          let rv = Int64.of_int (i * 10) in
          let cv = Int64.of_int ((i * 10) + 5) in
          let observed = Hashtbl.find_opt state key in
          let value = Printf.sprintf "v%d" v in
          S.record c (txn rv cv [ (key, observed) ] [ (key, Some value) ]);
          Hashtbl.replace state key value)
        ops;
      S.verify c = Ok ())

(* ---------- skewed key generators: distribution shape ---------- *)

let keygen_masses gen ~seed ~draws ~n =
  let rng = Fdb_util.Det_rng.create (Int64.of_int seed) in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Random_ops.Keygen.next_rank gen rng in
    counts.(r) <- counts.(r) + 1
  done;
  counts

let qcheck_zipfian_top_mass =
  (* Zipf(1.0) over 1000 keys: the hottest 1% of ranks must carry far more
     than their uniform share (analytically ~39%; we assert a safe 25%). *)
  QCheck.Test.make ~name:"zipfian concentrates mass in the top 1%" ~count:20
    QCheck.(make Gen.(int_range 1 1_000_000))
    (fun seed ->
      let n = 1000 and draws = 20_000 in
      let gen = Random_ops.Keygen.zipfian ~n ~theta:1.0 in
      let counts = keygen_masses gen ~seed ~draws ~n in
      let top = ref 0 in
      for i = 0 to (n / 100) - 1 do
        top := !top + counts.(i)
      done;
      float_of_int !top /. float_of_int draws >= 0.25)

let qcheck_hot_key_mass =
  QCheck.Test.make ~name:"hot-key generator respects hot_prob" ~count:20
    QCheck.(make Gen.(int_range 1 1_000_000))
    (fun seed ->
      let n = 1000 and draws = 20_000 in
      let gen = Random_ops.Keygen.hot_key ~n ~hot:10 ~hot_prob:0.9 in
      let counts = keygen_masses gen ~seed ~draws ~n in
      let hot = ref 0 in
      for i = 0 to 9 do
        hot := !hot + counts.(i)
      done;
      let frac = float_of_int !hot /. float_of_int draws in
      frac >= 0.85 && frac <= 0.95)

let qcheck_sequential_monotone =
  QCheck.Test.make ~name:"sequential generator emits strictly increasing keys" ~count:20
    QCheck.(make Gen.(pair (int_range 0 1000) (int_range 2 200)))
    (fun (start, draws) ->
      let gen = Random_ops.Keygen.sequential ~start () in
      let rng = Fdb_util.Det_rng.create 1L in
      let keys =
        List.init draws (fun _ -> Random_ops.Keygen.next_key ~prefix:"seq/" gen rng)
      in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      (* zero-padding makes lexicographic order = numeric order *)
      increasing keys
      && List.hd keys = Printf.sprintf "seq/%09d" start)

let test_bank_and_ring_in_sim () =
  let open Fdb_sim in
  let open Fdb_core in
  let open Future.Syntax in
  let r =
    Engine.run ~seed:77L ~max_time:1e4 (fun () ->
        let cluster = Cluster.create ~config:Config.test_small () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"w" in
        let* () = Bank.setup db ~accounts:10 ~initial:50 in
        let* () = Ring.setup db ~n:8 in
        let rng = Engine.fork_rng () in
        let until = Engine.now () +. 3.0 in
        let* _ = Bank.transfer_loop db ~accounts:10 ~until ~rng in
        let* _ = Ring.rotate_loop db ~n:8 ~until:(Engine.now () +. 3.0) ~rng in
        let* b = Bank.check db ~accounts:10 ~expected_total:500 in
        let* g = Ring.check db ~n:8 in
        Future.return (b, g))
  in
  (match fst r with Ok () -> () | Error m -> Alcotest.fail ("bank: " ^ m));
  match snd r with Ok () -> () | Error m -> Alcotest.fail ("ring: " ^ m)

let test_status_report () =
  let open Fdb_sim in
  let open Fdb_core in
  let open Future.Syntax in
  let st =
    Engine.run ~seed:88L ~max_time:1e4 (fun () ->
        let cluster = Cluster.create ~config:Config.test_small () in
        let* () = Cluster.wait_ready cluster in
        Status.gather cluster)
  in
  Alcotest.(check bool) "recovered" true st.Status.st_recovered;
  Alcotest.(check bool) "epoch >= 1" true (st.Status.st_epoch >= 1);
  Alcotest.(check int) "all storage responsive" st.Status.st_storage_total
    st.Status.st_storage_responsive

let suite =
  [
    Alcotest.test_case "status report" `Quick test_status_report;
    Alcotest.test_case "checker accepts serial" `Quick test_checker_accepts_serial;
    Alcotest.test_case "checker rejects stale read" `Quick test_checker_rejects_stale_read;
    Alcotest.test_case "checker rejects phantom" `Quick test_checker_rejects_phantom;
    Alcotest.test_case "checker accepts absent" `Quick test_checker_accepts_absent;
    Alcotest.test_case "checker same-version ties" `Quick test_checker_same_version_ties;
    Alcotest.test_case "checker clear visible" `Quick test_checker_clear_visible;
    QCheck_alcotest.to_alcotest qcheck_checker_accepts_any_true_serial_history;
    QCheck_alcotest.to_alcotest qcheck_zipfian_top_mass;
    QCheck_alcotest.to_alcotest qcheck_hot_key_mass;
    QCheck_alcotest.to_alcotest qcheck_sequential_monotone;
    Alcotest.test_case "bank+ring on small cluster" `Quick test_bank_and_ring_in_sim;
  ]
