(* The promise-lifecycle sanitizer (runtime backstop behind lint rule R6):
   leaked wakeups, double resolves, race-loser cancellation, and the
   detach idiom's failure routing. *)

open Fdb_sim

exception Boom

let lifecycle_after f =
  let (_ : unit) = Engine.run f in
  Engine.last_run_lifecycle ()

let test_leak_detected () =
  let lc =
    lifecycle_after (fun () ->
        let fut, _p = Future.make ~label:"test.leak" () in
        Future.on_resolve fut (fun _ -> ());
        Engine.sleep 0.1)
  in
  Alcotest.(check int) "one leak" 1 (Future.Lifecycle.total_leaks lc);
  Alcotest.(check (list (pair string int)))
    "labeled" [ ("test.leak", 1) ] lc.Future.Lifecycle.lr_leaked

let test_no_waiters_no_leak () =
  (* A pending promise nobody waits on is idle, not a lost wakeup. *)
  let lc =
    lifecycle_after (fun () ->
        let _fut, _p = Future.make ~label:"test.idle" () in
        Engine.sleep 0.1)
  in
  Alcotest.(check int) "no waiter, no leak" 0 (Future.Lifecycle.total_leaks lc)

let test_resolved_no_leak () =
  let lc =
    lifecycle_after (fun () ->
        let fut, p = Future.make ~label:"test.ok" () in
        Future.on_resolve fut (fun _ -> ());
        Future.fulfill p ();
        Engine.sleep 0.1)
  in
  Alcotest.(check int) "resolved, no leak" 0 (Future.Lifecycle.total_leaks lc);
  Alcotest.(check bool) "created counted" true (lc.Future.Lifecycle.lr_created >= 1)

let test_dead_owner_no_leak () =
  (* A promise whose creating process died with it is torn down, not
     leaked: its waiters died too. *)
  let lc =
    lifecycle_after (fun () ->
        let machine = Process.fresh_machine ~dc:"dc1" 77 in
        let proc = Process.create ~name:"doomed" machine in
        Engine.with_process proc (fun () ->
            let fut, _p = Future.make ~label:"test.doomed" () in
            Future.on_resolve fut (fun _ -> ()));
        Engine.kill proc;
        Engine.sleep 0.1)
  in
  Alcotest.(check int) "dead owner, no leak" 0 (Future.Lifecycle.total_leaks lc)

let test_double_resolve_tallied () =
  let lc =
    lifecycle_after (fun () ->
        let _fut, p = Future.make ~label:"test.double" () in
        Future.fulfill p ();
        Alcotest.(check bool) "second resolve loses" false (Future.try_fulfill p ());
        Engine.sleep 0.1)
  in
  Alcotest.(check (list (pair string int)))
    "tallied under its label"
    [ ("test.double", 1) ]
    lc.Future.Lifecycle.lr_double_resolved

let test_detach_failure_traced () =
  let lc =
    lifecycle_after (fun () ->
        Future.detach ~name:"exploding-actor" (Future.fail Boom);
        Engine.sleep 0.1)
  in
  Alcotest.(check (list (pair string int)))
    "failure tallied" [ ("exploding-actor", 1) ]
    lc.Future.Lifecycle.lr_detach_failures;
  Alcotest.(check int) "failure traced" 1 (Trace.count "future_detached_error")

let test_detach_success_silent () =
  let lc =
    lifecycle_after (fun () ->
        Future.detach ~name:"fine-actor" (Future.return 42);
        Engine.sleep 0.1)
  in
  Alcotest.(check (list (pair string int)))
    "no tally" [] lc.Future.Lifecycle.lr_detach_failures;
  Alcotest.(check int) "no trace" 0 (Trace.count "future_detached_error")

let test_race_losers_cancelled () =
  (* The known leak offender: race losers used to stay pending forever.
     Now the winner cancels them (traced), so they neither leak nor accept
     a late resolution. *)
  let lc =
    lifecycle_after (fun () ->
        let f1, p1 = Future.make ~label:"test.racer1" () in
        let f2, _p2 = Future.make ~label:"test.racer2" () in
        let r = Future.race [ f1; f2 ] in
        Future.on_resolve r (fun _ -> ());
        Future.fulfill p1 ();
        Alcotest.(check bool) "loser resolved" true (Future.is_resolved f2);
        Engine.sleep 0.1)
  in
  Alcotest.(check int) "no leaks" 0 (Future.Lifecycle.total_leaks lc);
  Alcotest.(check int) "cancellation traced" 1
    (Trace.count "future_race_loser_cancelled")

let test_disabled_outside_run () =
  (* Outside Engine.run the sanitizer is off: promises are not tracked and
     the last report is whatever the previous run left behind. *)
  let before = Engine.last_run_lifecycle () in
  let fut, _p = Future.make ~label:"test.untracked" () in
  Future.on_resolve fut (fun _ -> ());
  let after = Engine.last_run_lifecycle () in
  Alcotest.(check int) "report unchanged" before.Future.Lifecycle.lr_created
    after.Future.Lifecycle.lr_created

let suite =
  [
    Alcotest.test_case "leak detected" `Quick test_leak_detected;
    Alcotest.test_case "no waiters, no leak" `Quick test_no_waiters_no_leak;
    Alcotest.test_case "resolved, no leak" `Quick test_resolved_no_leak;
    Alcotest.test_case "dead owner, no leak" `Quick test_dead_owner_no_leak;
    Alcotest.test_case "double resolve tallied" `Quick test_double_resolve_tallied;
    Alcotest.test_case "detach failure traced" `Quick test_detach_failure_traced;
    Alcotest.test_case "detach success silent" `Quick test_detach_success_silent;
    Alcotest.test_case "race losers cancelled" `Quick test_race_losers_cancelled;
    Alcotest.test_case "disabled outside run" `Quick test_disabled_outside_run;
  ]
