open Fdb_sim
open Future.Syntax

exception Boom

let test_return_bind () =
  let f = Future.bind (Future.return 1) (fun x -> Future.return (x + 1)) in
  Alcotest.(check (option int)) "bound" (Some 2) (Future.peek f)

let test_pending_then_fulfill () =
  let f, p = Future.make () in
  let g = Future.map f (fun x -> x * 10 ) in
  Alcotest.(check bool) "pending" true (Future.is_pending g);
  Future.fulfill p 4;
  Alcotest.(check (option int)) "resolved" (Some 40) (Future.peek g)

let test_double_fulfill_raises () =
  let _, p = Future.make () in
  Future.fulfill p 1;
  Alcotest.check_raises "double fulfill" (Invalid_argument "Future: already resolved")
    (fun () -> Future.fulfill p 2)

let test_try_fulfill () =
  let _, p = Future.make () in
  Alcotest.(check bool) "first try" true (Future.try_fulfill p 1);
  Alcotest.(check bool) "second try" false (Future.try_fulfill p 2);
  Alcotest.(check bool) "break after fulfill" false (Future.try_break p Boom)

let test_failure_propagates () =
  let f, p = Future.make () in
  let g = Future.bind f (fun x -> Future.return (x + 1)) in
  Future.break p Boom;
  Alcotest.(check bool) "failed propagated" true
    (Future.is_resolved g && Future.peek g = None)

let test_catch () =
  let f = Future.catch (fun () -> Future.fail Boom) (fun _ -> Future.return 7) in
  Alcotest.(check (option int)) "caught" (Some 7) (Future.peek f);
  let g = Future.catch (fun () -> raise Boom) (fun _ -> Future.return 8) in
  Alcotest.(check (option int)) "caught sync raise" (Some 8) (Future.peek g)

let test_catch_pending () =
  let f, p = Future.make () in
  let g = Future.catch (fun () -> f) (fun _ -> Future.return 9) in
  Future.break p Boom;
  Alcotest.(check (option int)) "caught async" (Some 9) (Future.peek g)

let test_protect_runs_finally () =
  let ran = ref 0 in
  let f, p = Future.make () in
  let g = Future.protect ~finally:(fun () -> incr ran) (fun () -> f) in
  Alcotest.(check int) "not yet" 0 !ran;
  Future.break p Boom;
  Alcotest.(check int) "ran once" 1 !ran;
  Alcotest.(check bool) "failure preserved" true (Future.is_resolved g && Future.peek g = None)

let test_all_order () =
  let f1, p1 = Future.make () in
  let f2, p2 = Future.make () in
  let all = Future.all [ f1; f2 ] in
  Future.fulfill p2 2;
  Alcotest.(check bool) "still pending" true (Future.is_pending all);
  Future.fulfill p1 1;
  Alcotest.(check (option (list int))) "input order" (Some [ 1; 2 ]) (Future.peek all)

let test_all_empty () =
  Alcotest.(check (option (list int))) "empty all" (Some []) (Future.peek (Future.all []))

let test_all_fails_fast () =
  let f1, p1 = Future.make () in
  let f2, _p2 = Future.make () in
  let all = Future.all [ f1; f2 ] in
  Future.break p1 Boom;
  Alcotest.(check bool) "failed without waiting" true (Future.is_resolved all)

let test_race () =
  let f1, _p1 = Future.make () in
  let f2, p2 = Future.make () in
  let r = Future.race [ f1; f2 ] in
  Future.fulfill p2 42;
  Alcotest.(check (option int)) "winner" (Some 42) (Future.peek r)

let test_race_empty () =
  Alcotest.(check bool) "empty race fails" true (Future.is_resolved (Future.race []))

let test_syntax () =
  let f =
    let* x = Future.return 2
    and* y = Future.return 3 in
    let+ z = Future.return 4 in
    x + y + z
  in
  Alcotest.(check (option int)) "let-ops" (Some 9) (Future.peek f)

let test_callback_order () =
  let order = ref [] in
  let f, p = Future.make () in
  Future.on_resolve f (fun _ -> order := 1 :: !order);
  Future.on_resolve f (fun _ -> order := 2 :: !order);
  Future.fulfill p ();
  Alcotest.(check (list int)) "registration order" [ 1; 2 ] (List.rev !order)

let suite =
  [
    Alcotest.test_case "return/bind" `Quick test_return_bind;
    Alcotest.test_case "pending then fulfill" `Quick test_pending_then_fulfill;
    Alcotest.test_case "double fulfill raises" `Quick test_double_fulfill_raises;
    Alcotest.test_case "try_fulfill" `Quick test_try_fulfill;
    Alcotest.test_case "failure propagates" `Quick test_failure_propagates;
    Alcotest.test_case "catch" `Quick test_catch;
    Alcotest.test_case "catch pending" `Quick test_catch_pending;
    Alcotest.test_case "protect runs finally" `Quick test_protect_runs_finally;
    Alcotest.test_case "all preserves order" `Quick test_all_order;
    Alcotest.test_case "all empty" `Quick test_all_empty;
    Alcotest.test_case "all fails fast" `Quick test_all_fails_fast;
    Alcotest.test_case "race" `Quick test_race;
    Alcotest.test_case "race empty" `Quick test_race_empty;
    Alcotest.test_case "syntax" `Quick test_syntax;
    Alcotest.test_case "callback order" `Quick test_callback_order;
  ]
