(* The dynamic half of the determinism contract: the engine folds every
   executed event into an FNV-1a checksum, and running the same seed twice
   must produce the same stream bit-for-bit (paper §4 — this is the oracle
   that catches whatever the static lint cannot see). *)

module Swarm = Fdb_workloads.Swarm

let test_double_run_identical () =
  List.iter
    (fun seed ->
      match Swarm.check_determinism ~buggify:true ~duration:5.0 ~seed () with
      | Ok r ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld checksum nonzero" seed)
            true
            (not (Int64.equal r.Swarm.trace_checksum 0L))
      | Error (a, b) ->
          Alcotest.failf "seed %Ld diverged: %016Lx <> %016Lx" seed a b)
    [ 7L; 11L; 23L; 31L; 42L; 57L; 88L; 101L ]

(* Same oracle with active data distribution: the rebalancer plus the
   swarm's mover job fire splits, merges and fetch-then-cutover moves all
   through the chaos, and the double run must agree on the event-stream
   checksum AND the shard-map history checksum — a diverging shard-move
   schedule fails the seed even if the event streams happened to match. *)
let test_double_run_identical_with_movement () =
  List.iter
    (fun seed ->
      match
        Swarm.check_determinism ~buggify:true ~duration:4.0 ~dd_movement:true ~seed ()
      with
      | Ok r ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld shard checksum nonzero" seed)
            true
            (not (Int64.equal r.Swarm.shard_checksum 0L))
      | Error (a, b) ->
          Alcotest.failf "seed %Ld diverged under movement: %016Lx <> %016Lx" seed a b)
    [ 7L; 11L; 23L; 31L; 42L; 57L; 88L; 101L ]

let test_distinct_seeds_distinct_streams () =
  let csum seed =
    (Swarm.run_one ~buggify:false ~duration:2.0 ~seed ()).Swarm.trace_checksum
  in
  Alcotest.(check bool)
    "different seeds exercise different event streams" true
    (not (Int64.equal (csum 3L) (csum 4L)))

let test_checksum_sensitive_to_trace_kinds () =
  (* Same scheduling skeleton, different Trace.emit kinds — the observer
     must fold the kind into the checksum. *)
  let open Fdb_sim in
  let run kind =
    let () =
      Engine.run ~seed:99L (fun () ->
          Trace.emit kind [];
          Future.return ())
    in
    Engine.last_run_checksum ()
  in
  Alcotest.(check bool)
    "trace kind feeds the checksum" true
    (not (Int64.equal (run "alpha") (run "beta")))

let suite =
  [
    Alcotest.test_case "double run identical checksum" `Slow test_double_run_identical;
    Alcotest.test_case "double run identical with movement" `Slow
      test_double_run_identical_with_movement;
    Alcotest.test_case "distinct seeds distinct streams" `Quick
      test_distinct_seeds_distinct_streams;
    Alcotest.test_case "trace kinds feed checksum" `Quick
      test_checksum_sensitive_to_trace_kinds;
  ]
