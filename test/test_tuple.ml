open Fdb_core
module T = Tuple

let sample =
  [
    [];
    [ T.Null ];
    [ T.Int 0L ];
    [ T.Int 1L ];
    [ T.Int (-1L) ];
    [ T.Int 255L ];
    [ T.Int 256L ];
    [ T.Int (-255L) ];
    [ T.Int (-256L) ];
    [ T.Int Int64.max_int ];
    [ T.Int Int64.min_int ];
    [ T.Bytes "" ];
    [ T.Bytes "a" ];
    [ T.Bytes "a\x00b" ];
    [ T.Bytes "a\xffb" ];
    [ T.String "hello" ];
    [ T.Float 0.0 ];
    [ T.Float (-0.0) ];
    [ T.Float 1.5 ];
    [ T.Float (-1.5) ];
    [ T.Float infinity ];
    [ T.Float neg_infinity ];
    [ T.Bool true ];
    [ T.Bool false ];
    [ T.Nested [] ];
    [ T.Nested [ T.Null ] ];
    [ T.Nested [ T.Int 7L; T.Bytes "x\x00" ] ];
    [ T.Int 42L; T.String "users"; T.Nested [ T.Bool true; T.Float 2.5 ] ];
  ]

let test_roundtrip () =
  List.iter
    (fun t ->
      let t' = T.unpack (T.pack t) in
      if T.compare_elements t t' <> 0 then
        Alcotest.failf "roundtrip mismatch: %a vs %a" T.pp t T.pp t')
    sample

let test_order_contract_samples () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let natural = T.compare_elements a b in
          let packed = compare (T.pack a) (T.pack b) in
          if (natural < 0) <> (packed < 0) || (natural = 0) <> (packed = 0) then
            Alcotest.failf "order mismatch between %a and %a (natural %d, packed %d)"
              T.pp a T.pp b natural packed)
        sample)
    sample

let test_range_contains_extensions () =
  let prefix = [ T.String "users"; T.Int 7L ] in
  let lo, hi = T.range prefix in
  let inside = T.pack (prefix @ [ T.String "email" ]) in
  let outside = T.pack [ T.String "users"; T.Int 8L ] in
  Alcotest.(check bool) "extension inside" true (lo <= inside && inside < hi);
  Alcotest.(check bool) "sibling outside" false (lo <= outside && outside < hi)

let test_subspace_prefix () =
  let sub = T.subspace [ T.String "app" ] [ T.Int 1L ] in
  let p = T.pack [ T.String "app" ] in
  Alcotest.(check string) "prefixed" p (String.sub sub 0 (String.length p))

let element_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let base =
        oneof
          [
            return T.Null;
            map (fun s -> T.Bytes s) (string_size (int_range 0 8));
            map (fun s -> T.String s) (string_size (int_range 0 8));
            map (fun i -> T.Int (Int64.of_int i)) int;
            map (fun i -> T.Int (Int64.of_int (-i))) nat;
            map (fun f -> T.Float f) (float_bound_inclusive 1e12);
            map (fun f -> T.Float (-.f)) (float_bound_inclusive 1e12);
            map (fun b -> T.Bool b) bool;
          ]
      in
      if n <= 1 then base
      else
        frequency
          [ (4, base); (1, map (fun l -> T.Nested l) (list_size (int_range 0 3) (self (n / 2)))) ])

let tuple_gen = QCheck.Gen.(list_size (int_range 0 5) element_gen)
let tuple_arb = QCheck.make ~print:(Format.asprintf "%a" T.pp) tuple_gen

let qcheck_roundtrip =
  QCheck.Test.make ~name:"tuple pack/unpack roundtrip" ~count:500 tuple_arb (fun t ->
      T.compare_elements t (T.unpack (T.pack t)) = 0)

let qcheck_order =
  QCheck.Test.make ~name:"tuple order preserved by pack" ~count:500
    (QCheck.pair tuple_arb tuple_arb) (fun (a, b) ->
      let natural = T.compare_elements a b in
      let packed = compare (T.pack a) (T.pack b) in
      (natural < 0) = (packed < 0) && (natural = 0) = (packed = 0))

(* Adversarial ordering property: int64 size-class boundaries, empty
   strings/bytes, and deep nesting — the places where length-prefixed or
   size-coded encodings typically diverge from natural tuple order. *)

let boundary_ints =
  let shifts = [ 8; 16; 24; 32; 40; 48; 56 ] in
  let around =
    List.concat_map
      (fun s ->
        let b = Int64.shift_left 1L s in
        [ Int64.sub b 1L; b; Int64.add b 1L; Int64.neg (Int64.sub b 1L);
          Int64.neg b; Int64.neg (Int64.add b 1L) ])
      shifts
  in
  [ 0L; 1L; -1L; Int64.max_int; Int64.min_int;
    Int64.add Int64.min_int 1L; Int64.sub Int64.max_int 1L ]
  @ around

let adversarial_element =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let base =
           oneof
             [
               return T.Null;
               return (T.Bytes "");
               return (T.String "");
               map (fun s -> T.Bytes s)
                 (string_size ~gen:(oneofl [ '\x00'; '\x01'; 'a'; '\xfe'; '\xff' ])
                    (int_range 0 4));
               map (fun s -> T.String s)
                 (string_size ~gen:(oneofl [ '\x00'; 'a'; '\xff' ]) (int_range 0 4));
               map (fun i -> T.Int i) (oneofl boundary_ints);
               map (fun i -> T.Int (Int64.of_int i)) (int_range (-1000) 1000);
               map (fun b -> T.Bool b) bool;
             ]
         in
         if n <= 1 then base
         else
           frequency
             [
               (3, base);
               (2, map (fun l -> T.Nested l) (list_size (int_range 0 3) (self (n / 2))));
             ])

let adversarial_tuple =
  QCheck.make
    ~print:(Format.asprintf "%a" T.pp)
    QCheck.Gen.(list_size (int_range 0 4) adversarial_element)

let qcheck_order_adversarial =
  QCheck.Test.make ~name:"tuple order at encoding boundaries" ~count:2000
    (QCheck.pair adversarial_tuple adversarial_tuple) (fun (a, b) ->
      let natural = T.compare_elements a b in
      let packed = compare (T.pack a) (T.pack b) in
      (natural < 0) = (packed < 0) && (natural = 0) = (packed = 0))

let test_boundary_ints_exhaustive () =
  let ts = List.map (fun i -> [ T.Int i ]) boundary_ints in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let natural = T.compare_elements a b in
          let packed = compare (T.pack a) (T.pack b) in
          if (natural < 0) <> (packed < 0) || (natural = 0) <> (packed = 0) then
            Alcotest.failf "int boundary order mismatch: %a vs %a" T.pp a T.pp b)
        ts)
    ts

let suite =
  [
    Alcotest.test_case "roundtrip samples" `Quick test_roundtrip;
    Alcotest.test_case "order contract samples" `Quick test_order_contract_samples;
    Alcotest.test_case "range contains extensions" `Quick test_range_contains_extensions;
    Alcotest.test_case "subspace prefix" `Quick test_subspace_prefix;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_order;
    Alcotest.test_case "int64 boundary order exhaustive" `Quick
      test_boundary_ints_exhaustive;
    QCheck_alcotest.to_alcotest qcheck_order_adversarial;
  ]
