(* Active data distribution (paper §2.3.1, §2.5): DD health metrics, the
   generation / Wrong_shard re-resolution contract, cutover atomicity of
   fetch-then-cutover moves, and the move-during-everything swarm. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Registry = Fdb_obs.Registry
module Status = Fdb_workloads.Status
module Swarm = Fdb_workloads.Swarm

let probe_proc name =
  let machine = Process.fresh_machine ~dc:"dc1" 910_000 in
  Process.create ~name machine

(* ---------- DD health metrics registration ---------- *)

let test_dd_metrics_registered () =
  let st, unhealthy, loss_risk, moves =
    Engine.run ~seed:19L ~max_time:1e4 (fun () ->
        let cluster = Cluster.create ~config:Config.test_small () in
        let* () = Cluster.wait_ready cluster in
        (* Let the DD singleton finish recruiting and publish its gauges. *)
        let* () = Engine.sleep 3.0 in
        let reg = Cluster.metrics cluster in
        let g name =
          Registry.gauge_value reg ~role:Registry.Data_distributor ~process:0 name
        in
        let* st = Status.gather cluster in
        Future.return
          ( st, g "unhealthy_teams", g "data_loss_risk",
            Registry.counters reg ~role:Registry.Data_distributor "moves_committed" ))
  in
  Alcotest.(check bool) "unhealthy_teams gauge registered" true (unhealthy <> None);
  Alcotest.(check bool) "data_loss_risk gauge registered" true (loss_risk <> None);
  Alcotest.(check bool) "moves_committed counter registered" true (moves <> []);
  Alcotest.(check bool) "status sees the DD" true st.Status.st_dd_recruited;
  Alcotest.(check int) "healthy cluster: no unhealthy teams" 0
    st.Status.st_unhealthy_teams;
  Alcotest.(check bool) "no data-loss risk" false st.Status.st_data_loss_risk

(* ---------- set_team bumps generation; stale reads get Wrong_shard ---------- *)

let test_stale_generation_wrong_shard () =
  let gen_bumped, updates_emitted, stale_reply, value =
    Engine.run ~seed:21L ~max_time:1e4 (fun () ->
        let cluster = Cluster.create ~config:Config.test_small () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"dd-test" in
        let* _ = Client.run db (fun tx -> Client.set tx "dd/x" "v"; Future.return ()) in
        (* let every replica drain the log before shrinking the team *)
        let* () = Engine.sleep 1.0 in
        let ctx = Cluster.context cluster in
        let sm = ctx.Context.shard_map in
        let g0 = Shard_map.generation sm in
        let upd0 = Trace.count "shard_map_update" in
        let team = Shard_map.team_for_key sm "dd/x" in
        let keep = List.fold_left min (List.hd team) team in
        let dropped = List.filter (fun s -> s <> keep) team in
        let ranges = Shard_map.ranges sm in
        let idx = ref 0 in
        Array.iteri
          (fun i (lo, hi) -> if lo <= "dd/x" && "dd/x" < hi then idx := i)
          ranges;
        Shard_map.set_team sm ~shard:!idx ~team:[ keep ];
        let gen_bumped = Shard_map.generation sm > g0 in
        let updates = Trace.count "shard_map_update" > upd0 in
        (* A read resolved against the old generation lands on a server that
           no longer serves the shard: it must answer Wrong_shard. *)
        let* version, epoch = Client.run db (fun tx -> Client.read_snapshot tx) in
        let proc = probe_proc "stale-reader" in
        let* reply =
          Future.catch
            (fun () ->
              let* r =
                Context.rpc ctx ~timeout:2.0 ~from:proc
                  ctx.Context.storage_eps.(List.hd dropped)
                  (Message.Storage_get { key = "dd/x"; version; rv_epoch = epoch })
              in
              ignore r;
              Future.return `Served)
            (function
              | Error.Fdb Error.Wrong_shard -> Future.return `Wrong_shard
              | e -> Future.return (`Other (Printexc.to_string e)))
        in
        (* ...and a live client re-resolves transparently. *)
        let* value = Client.run db (fun tx -> Client.get tx "dd/x") in
        Future.return (gen_bumped, updates, reply, value))
  in
  Alcotest.(check bool) "set_team bumps generation" true gen_bumped;
  Alcotest.(check bool) "set_team emits shard_map_update" true updates_emitted;
  (match stale_reply with
  | `Wrong_shard -> ()
  | `Served -> Alcotest.fail "stale replica served the read"
  | `Other e -> Alcotest.failf "expected Wrong_shard, got %s" e);
  Alcotest.(check (option string)) "client re-resolves and reads" (Some "v") value

(* ---------- cutover atomicity ---------- *)

(* While a fetch-then-cutover move runs, a reader hammering the moved range
   must never observe a half-moved shard: every read returns the complete
   row set, before, during, and after the cutover. *)
let test_cutover_atomicity () =
  let move_result, reads, bad_reads, team_changed =
    Engine.run ~seed:31L ~max_time:1e4 (fun () ->
        let cluster = Cluster.create ~config:Config.test_small () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"mv-writer" in
        let keys = List.init 24 (fun i -> Printf.sprintf "mv/%03d" i) in
        let expected = List.map (fun k -> (k, "v" ^ k)) keys in
        let* _ =
          Client.run db (fun tx ->
              List.iter (fun (k, v) -> Client.set tx k v) expected;
              Future.return ())
        in
        let* () = Engine.sleep 1.0 in
        let ctx = Cluster.context cluster in
        let sm = ctx.Context.shard_map in
        let lo, _ = Shard_map.shard_range_for_key sm "mv/000" in
        let src = Shard_map.team_for_key sm "mv/000" in
        let n_ss = Array.length ctx.Context.storage_eps in
        let missing =
          List.filter (fun s -> not (List.mem s src)) (List.init n_ss Fun.id)
        in
        (* swap one member out for a newcomer: a genuine snapshot fetch *)
        let dst = List.sort compare (List.hd missing :: List.tl src) in
        let stop = ref false in
        let reads = ref 0 in
        let bad = ref 0 in
        let reader_db = Cluster.client cluster ~name:"mv-reader" in
        let rec reader () =
          if !stop then Future.return ()
          else
            let* rows =
              Client.run reader_db (fun tx ->
                  Client.get_range tx ~limit:500 ~from:"mv/" ~until:"mv0" ())
            in
            incr reads;
            if rows <> expected then incr bad;
            reader ()
        in
        let reader_done = reader () in
        let proc = probe_proc "mv-mover" in
        let* res = Data_distributor.move_shard ctx ~proc ~db ~lo ~dst in
        (* keep reading a little past the cutover *)
        let* () = Engine.sleep 1.0 in
        stop := true;
        let* () = reader_done in
        Future.return (res, !reads, !bad, Shard_map.team_for_key sm "mv/000" = dst))
  in
  (match move_result with
  | Ok () -> ()
  | Error m -> Alcotest.failf "move failed: %s" m);
  Alcotest.(check bool) "reads happened during the move" true (reads > 0);
  Alcotest.(check int) "no read observed a half-moved shard" 0 bad_reads;
  Alcotest.(check bool) "destination serves after cutover" true team_changed

(* ---------- move-during-everything swarm ---------- *)

(* Bank, ring and the random-ops soup run under fault injection and
   buggification while the rebalancer and the mover job split, merge and
   move shards continuously; every oracle must still pass. *)
let test_move_during_everything () =
  List.iter
    (fun seed ->
      let r = Swarm.run_one ~buggify:true ~duration:6.0 ~dd_movement:true ~seed () in
      if r.Swarm.oracle_failures <> [] then
        Alcotest.failf "seed %Ld: %s" seed (String.concat "; " r.Swarm.oracle_failures))
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]

let suite =
  [
    Alcotest.test_case "dd metrics registered" `Quick test_dd_metrics_registered;
    Alcotest.test_case "stale generation gets Wrong_shard" `Quick
      test_stale_generation_wrong_shard;
    Alcotest.test_case "cutover atomicity" `Quick test_cutover_atomicity;
    Alcotest.test_case "move during everything" `Slow test_move_during_everything;
  ]
