open Fdb_sim
open Future.Syntax

let test_time_advances () =
  let final =
    Engine.run (fun () ->
        let* () = Engine.sleep 1.5 in
        let* () = Engine.sleep 2.5 in
        Future.return (Engine.now ()))
  in
  Alcotest.(check (float 1e-9)) "virtual time" 4.0 final

let test_ordering_fifo_at_same_time () =
  let order =
    Engine.run (fun () ->
        let acc = ref [] in
        Engine.schedule (fun () -> acc := 1 :: !acc);
        Engine.schedule (fun () -> acc := 2 :: !acc);
        Engine.schedule ~after:0.0 (fun () -> acc := 3 :: !acc);
        let* () = Engine.sleep 0.1 in
        Future.return (List.rev !acc))
  in
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3 ] order

let test_deadlock_detected () =
  Alcotest.check_raises "deadlock" Engine.Deadlock (fun () ->
      Engine.run (fun () ->
          let f, _p = Future.make () in
          f))

let test_deterministic_runs () =
  let run_once seed =
    Engine.run ~seed (fun () ->
        let acc = ref [] in
        let rec actor name n =
          if n = 0 then Future.return ()
          else
            let* () = Engine.sleep (Engine.random_float 1.0) in
            acc := (name, Engine.now ()) :: !acc;
            actor name (n - 1)
        in
        let* () = Future.all_unit [ actor "a" 20; actor "b" 20 ] in
        Future.return (List.rev !acc))
  in
  Alcotest.(check bool) "same seed same schedule" true (run_once 99L = run_once 99L);
  Alcotest.(check bool) "different seed different schedule" true
    (run_once 99L <> run_once 100L)

let test_timeout_fires () =
  let r =
    Engine.run (fun () ->
        let f, _p = Future.make () in
        Future.catch
          (fun () -> Future.map (Engine.timeout 1.0 f) (fun _ -> `Ok))
          (function Engine.Timed_out -> Future.return `Timeout | e -> raise e))
  in
  Alcotest.(check bool) "timed out" true (r = `Timeout)

let test_timeout_win () =
  let r =
    Engine.run (fun () ->
        let f, p = Future.make () in
        Engine.schedule ~after:0.5 (fun () -> Future.fulfill p 42);
        Engine.timeout 1.0 f)
  in
  Alcotest.(check int) "value before timeout" 42 r

let test_kill_drops_tasks () =
  let r =
    Engine.run (fun () ->
        let m = Process.fresh_machine 1 in
        let p = Process.create ~name:"victim" m in
        let hits = ref 0 in
        Engine.schedule ~after:1.0 ~process:p (fun () -> incr hits);
        Engine.schedule ~after:0.5 (fun () -> Engine.kill p);
        let* () = Engine.sleep 2.0 in
        Future.return !hits)
  in
  Alcotest.(check int) "task dropped after kill" 0 r

let test_reboot_runs_boot_and_invalidates () =
  let r =
    Engine.run (fun () ->
        let m = Process.fresh_machine 1 in
        let p = Process.create ~name:"victim" m in
        let boots = ref 0 in
        p.Process.boot <- (fun () -> incr boots);
        let stale = ref 0 in
        Engine.schedule ~after:2.0 ~process:p (fun () -> incr stale);
        Engine.schedule ~after:0.5 (fun () -> Engine.reboot p ~delay:0.1 ());
        let* () = Engine.sleep 5.0 in
        Future.return (!boots, !stale))
  in
  Alcotest.(check (pair int int)) "boot ran, stale dropped" (1, 0) r

let test_reboot_hooks_run () =
  let r =
    Engine.run (fun () ->
        let m = Process.fresh_machine 1 in
        let p = Process.create m in
        let cleaned = ref false in
        Process.on_reboot p (fun () -> cleaned := true);
        Engine.kill p;
        Future.return !cleaned)
  in
  Alcotest.(check bool) "hook ran" true r

let test_cpu_queueing () =
  (* Two 1-second jobs on the same core: the second finishes at t=2. *)
  let r =
    Engine.run (fun () ->
        let m = Process.fresh_machine 1 in
        let p = Process.create m in
        let t1 = ref 0.0 and t2 = ref 0.0 in
        let job t_out () =
          let* () = Engine.cpu p 1.0 in
          t_out := Engine.now ();
          Future.return ()
        in
        let f1 = job t1 () in
        let f2 = job t2 () in
        let* () = Future.all_unit [ f1; f2 ] in
        Future.return (!t1, !t2))
  in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "fcfs queue" (1.0, 2.0) r

let test_cpu_idle_skips () =
  let r =
    Engine.run (fun () ->
        let m = Process.fresh_machine 1 in
        let p = Process.create m in
        let* () = Engine.sleep 10.0 in
        let* () = Engine.cpu p 0.5 in
        Future.return (Engine.now ()))
  in
  Alcotest.(check (float 1e-9)) "no retroactive queue" 10.5 r

let test_spawn_error_traced () =
  Engine.run (fun () ->
      Engine.spawn "bad-actor" (fun () -> Future.fail Exit);
      let* () = Engine.sleep 0.1 in
      Future.return ());
  (* trace was reset by run; rerun capturing inside *)
  let count =
    Engine.run (fun () ->
        Engine.spawn "bad-actor" (fun () -> Future.fail Exit);
        let* () = Engine.sleep 0.1 in
        Future.return (Trace.count "actor_error"))
  in
  Alcotest.(check int) "actor error traced" 1 count

let test_max_time_guard () =
  Alcotest.(check bool) "max_time raises" true
    (try
       Engine.run ~max_time:10.0 (fun () ->
           let rec loop () =
             let* () = Engine.sleep 1.0 in
             loop ()
           in
           loop ())
     with Failure _ -> true)

let test_no_nested_runs () =
  Alcotest.(check bool) "nested run rejected" true
    (Engine.run (fun () ->
         Future.return
           (try
              Engine.run (fun () -> Future.return false)
            with Failure _ -> true)))

let test_buggify_off_by_default () =
  let fired =
    Engine.run (fun () -> Future.return (Buggify.on ~p:1.0 "test_point"))
  in
  Alcotest.(check bool) "inert without buggify" false fired

let test_buggify_fires_when_enabled () =
  (* With p=1.0 per evaluation, an activated point always fires; activation
     is ~25% per run, so across seeds some run must fire. *)
  let fired_any = ref false in
  for seed = 1 to 40 do
    let fired =
      Engine.run ~seed:(Int64.of_int seed) ~buggify:true (fun () ->
          Future.return (Buggify.on ~p:1.0 "test_point"))
    in
    if fired then fired_any := true
  done;
  Alcotest.(check bool) "fires under some seed" true !fired_any

let suite =
  [
    Alcotest.test_case "time advances" `Quick test_time_advances;
    Alcotest.test_case "fifo ties" `Quick test_ordering_fifo_at_same_time;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
    Alcotest.test_case "timeout fires" `Quick test_timeout_fires;
    Alcotest.test_case "timeout win" `Quick test_timeout_win;
    Alcotest.test_case "kill drops tasks" `Quick test_kill_drops_tasks;
    Alcotest.test_case "reboot boots and invalidates" `Quick test_reboot_runs_boot_and_invalidates;
    Alcotest.test_case "reboot hooks" `Quick test_reboot_hooks_run;
    Alcotest.test_case "cpu queueing" `Quick test_cpu_queueing;
    Alcotest.test_case "cpu idle skips" `Quick test_cpu_idle_skips;
    Alcotest.test_case "spawn error traced" `Quick test_spawn_error_traced;
    Alcotest.test_case "max_time guard" `Quick test_max_time_guard;
    Alcotest.test_case "no nested runs" `Quick test_no_nested_runs;
    Alcotest.test_case "buggify off by default" `Quick test_buggify_off_by_default;
    Alcotest.test_case "buggify fires when enabled" `Quick test_buggify_fires_when_enabled;
  ]
