open Fdb_core
module Mutation = Fdb_kv.Mutation

let map = Shard_map.build Config.default
let config = Config.default

let test_covers_keyspace () =
  let ranges = Shard_map.ranges map in
  Alcotest.(check string) "starts at empty" "" (fst ranges.(0));
  Alcotest.(check string) "ends at system end" Types.system_key_space_end
    (snd ranges.(Array.length ranges - 1));
  Array.iteri
    (fun i (_, hi) ->
      if i < Array.length ranges - 1 then
        Alcotest.(check string) "contiguous" hi (fst ranges.(i + 1)))
    ranges

let test_team_sizes () =
  Array.iter
    (fun team ->
      Alcotest.(check int) "replication degree" config.Config.storage_replication
        (List.length team);
      Alcotest.(check int) "distinct members" (List.length team)
        (List.length (List.sort_uniq compare team)))
    (Shard_map.tag_teams map)

let test_teams_span_machines () =
  let machine ss = ss / config.Config.storage_per_machine in
  Array.iter
    (fun team ->
      let machines = List.sort_uniq compare (List.map machine team) in
      Alcotest.(check int) "one process per machine" (List.length team)
        (List.length machines))
    (Shard_map.tag_teams map)

let test_key_lookup_consistent () =
  List.iter
    (fun key ->
      let team = Shard_map.team_for_key map key in
      let fragment = Shard_map.shards_for_range map ~from:key ~until:(Types.next_key key) in
      match fragment with
      | [ (_, _, team') ] -> Alcotest.(check (list int)) "same team" team team'
      | _ -> Alcotest.fail "single-key range must be one fragment")
    [ ""; "a"; "hello"; "zzz"; "\x7f\xff"; "\xfe" ]

let test_range_fragments () =
  let fragments = Shard_map.shards_for_range map ~from:"" ~until:Types.key_space_end in
  Alcotest.(check bool) "multiple fragments over whole space" true
    (List.length fragments > 1);
  (* fragments must tile the range *)
  let rec check prev = function
    | [] -> Alcotest.(check bool) "reaches end" true (prev >= Types.key_space_end)
    | (f, u, _) :: rest ->
        Alcotest.(check string) "tiles" prev f;
        Alcotest.(check bool) "non-empty" true (f < u);
        check u rest
  in
  check "" fragments

let test_empty_range () =
  Alcotest.(check int) "empty range" 0
    (List.length (Shard_map.shards_for_range map ~from:"b" ~until:"a"))

let test_tags_for_mutation () =
  let tags = Shard_map.tags_for_mutation map (Mutation.Set ("hello", "v")) in
  Alcotest.(check (list int)) "set tags = its team" (List.sort compare (Shard_map.team_for_key map "hello")) (List.sort compare tags);
  let wide = Shard_map.tags_for_mutation map (Mutation.Clear_range ("", Types.key_space_end)) in
  Alcotest.(check bool) "range clear touches many" true (List.length wide > List.length tags)

let test_explicit_boundaries () =
  let config' = { config with Config.shard_boundaries = [ "m" ] } in
  let m = Shard_map.build config' in
  Alcotest.(check int) "two shards" 2 (Shard_map.shard_count m);
  Alcotest.(check bool) "split at m" true
    (Shard_map.team_for_key m "a" <> Shard_map.team_for_key m "z"
    || Shard_map.team_for_key m "a" = Shard_map.team_for_key m "z")

let test_shards_of_storage_roundtrip () =
  let n = Config.storage_count config in
  for ss = 0 to n - 1 do
    List.iter
      (fun (lo, _) ->
        Alcotest.(check bool) "team contains server" true
          (List.mem ss (Shard_map.team_for_key map lo)))
      (Shard_map.shards_of_storage map ss)
  done

let suite =
  [
    Alcotest.test_case "covers keyspace" `Quick test_covers_keyspace;
    Alcotest.test_case "team sizes" `Quick test_team_sizes;
    Alcotest.test_case "teams span machines" `Quick test_teams_span_machines;
    Alcotest.test_case "key lookup consistent" `Quick test_key_lookup_consistent;
    Alcotest.test_case "range fragments tile" `Quick test_range_fragments;
    Alcotest.test_case "empty range" `Quick test_empty_range;
    Alcotest.test_case "tags for mutation" `Quick test_tags_for_mutation;
    Alcotest.test_case "explicit boundaries" `Quick test_explicit_boundaries;
    Alcotest.test_case "shards_of_storage roundtrip" `Quick test_shards_of_storage_roundtrip;
  ]
